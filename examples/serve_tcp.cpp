// The full reproduction, end-to-end over real sockets: a GAA-protected web
// server listening on loopback, exercised by a TCP client.  (The scenario
// examples use the deterministic in-process entry points; this one proves
// the same stack answers on a real port.)
#include <cstdio>

#include "http/doc_tree.h"
#include "http/tcp_server.h"
#include "integration/connection_stats.h"
#include "integration/gaa_web_server.h"

int main() {
  gaa::web::GaaWebServer::Options options;
  options.use_real_clock = true;
  options.notification_latency_us = 0;
  gaa::web::GaaWebServer gaa_server(gaa::http::DocTree::DemoSite(), options);
  gaa_server.AddUser("alice", "wonder");
  auto system_policy = gaa_server.AddSystemPolicy(R"(
eacl_mode 1
neg_access_right * *
pre_cond_accessid GROUP local BadGuys
)");
  if (!system_policy.ok()) {
    std::fprintf(stderr, "policy error: %s\n",
                 system_policy.error().ToString().c_str());
    return 1;
  }
  auto policy = gaa_server.SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
rr_cond_update_log local on:failure/BadGuys/info:ip
pos_access_right apache *
)");
  if (!policy.ok()) {
    std::fprintf(stderr, "policy error: %s\n",
                 policy.error().ToString().c_str());
    return 1;
  }

  gaa::http::TcpServer tcp(&gaa_server.server(), {});
  // Publish connection-layer counters into SystemState so adaptive
  // policies can consult transport pressure (tcp.active, tcp.shed, ...).
  gaa::web::WireConnectionStats(tcp, &gaa_server.state());
  auto started = tcp.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "tcp error: %s\n",
                 started.error().ToString().c_str());
    return 1;
  }
  std::printf("GAA-protected server listening on 127.0.0.1:%u\n\n",
              tcp.port());

  auto fetch = [&](const std::string& target) {
    auto response =
        gaa::http::TcpFetch(tcp.port(), gaa::http::BuildGetRequest(target));
    std::string status = response.ok()
                             ? response.value().substr(0, response.value().find('\r'))
                             : response.error().ToString();
    std::printf("GET %-42s -> %s\n", target.c_str(), status.c_str());
  };

  fetch("/index.html");
  fetch("/cgi-bin/search?q=apache");
  fetch("/cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd");
  // The loopback "attacker" is now blacklisted; everything is denied.
  fetch("/index.html");

  std::printf("\nconnections accepted: %llu (reused %llu); BadGuys: %zu entr%s\n",
              static_cast<unsigned long long>(tcp.connections_accepted()),
              static_cast<unsigned long long>(tcp.connections_reused()),
              gaa_server.state().GroupSize("BadGuys"),
              gaa_server.state().GroupSize("BadGuys") == 1 ? "y" : "ies");
  std::printf("SystemState tcp.requests = %s\n",
              gaa_server.state().GetVariable("tcp.requests").value_or("?").c_str());
  tcp.Stop();
  return 0;
}
