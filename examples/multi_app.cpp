// Multi-application deployment (paper sections 1 and 9): the same GAA-API
// instance protects the web server AND an sshd-like login daemon.  A
// system-wide policy — including the blacklist populated by web-side
// detections — applies to both, with no change to the API code.
#include <cstdio>

#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"
#include "integration/sshd.h"

int main() {
  gaa::web::GaaWebServer::Options options;
  options.notification_latency_us = 0;
  gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);
  gaa::web::SshDaemon sshd(&server.api(), &server.passwords());
  sshd.AddUser("root", "toor");

  auto r1 = server.AddSystemPolicy(R"(
eacl_mode 1
neg_access_right * *
pre_cond_accessid GROUP local BadGuys
)");
  auto r2 = server.SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
rr_cond_update_log local on:failure/BadGuys/info:ip
pos_access_right apache *
)");
  auto r3 = server.SetLocalPolicy("/sshd", R"(
pos_access_right sshd login
pre_cond_threshold local failed_auth:%ip 3 60
pre_cond_accessid USER sshd *
)");
  if (!r1.ok() || !r2.ok() || !r3.ok()) {
    std::fprintf(stderr, "policy setup failed\n");
    return 1;
  }

  auto login = [&](const char* user, const char* password, const char* ip) {
    auto result = sshd.Login(user, password, ip);
    std::printf("ssh login %s@%s (password '%s') -> %s\n", user, ip, password,
                gaa::web::LoginResultName(result));
  };

  std::printf("-- normal operation --\n");
  login("root", "toor", "203.0.113.9");

  std::printf("\n-- the host now attacks the WEB server --\n");
  auto response = server.Get("/cgi-bin/phf?Qalias=x", "203.0.113.9");
  std::printf("web GET /cgi-bin/phf from 203.0.113.9 -> %d %s\n",
              static_cast<int>(response.status),
              gaa::http::StatusReason(response.status));
  std::printf("BadGuys blacklist: %zu entries\n",
              server.state().GroupSize("BadGuys"));

  std::printf("\n-- the system-wide blacklist now denies SSH too --\n");
  login("root", "toor", "203.0.113.9");
  login("root", "toor", "10.0.0.1");

  std::printf("\n-- ssh password guessing trips the threshold condition --\n");
  login("root", "123456", "198.51.100.7");
  login("root", "password", "198.51.100.7");
  login("root", "letmein", "198.51.100.7");
  login("root", "toor", "198.51.100.7");  // correct, but locked out
  login("root", "toor", "10.0.0.2");      // other hosts unaffected

  std::printf("\n(one generic authorization API, two applications, one\n"
              " shared adaptive security policy — the paper's core claim)\n");
  return 0;
}
