// Policy tooling: the automated policy-analysis tool the paper lists as
// future work ("the function of defining the order of EACL entries ...
// can be best served by an automated tool to ensure policy correctness and
// consistency", §2), plus an `explain` mode that prints the full
// condition-by-condition evaluation trace for a request.
//
//   policy_tools lint <policy-file>
//   policy_tools explain <policy-file> <object> <client-ip> [user]
//   policy_tools               # runs both modes on a built-in demo policy
#include <cstdio>
#include <cstring>

#include "conditions/builtin.h"
#include "eacl/parser.h"
#include "eacl/printer.h"
#include "eacl/validate.h"
#include "gaa/api.h"
#include "gaa/policy_store.h"
#include "gaa/system_state.h"
#include "util/config.h"

namespace {

constexpr const char* kDemoPolicy = R"(
# Demo policy with deliberate mistakes for the linter to find.
neg_access_right apache *
pre_cond_regex gnu *phf*
pos_access_right apache *
pos_access_right apache GET         # unreachable: shadowed by the entry above
pre_cond_time local 09:00-17:00
neg_access_right apache *           # unreachable AND contradicts the grant
)";

int Lint(const std::string& text) {
  auto parsed = gaa::eacl::ParseEacl(text);
  if (!parsed.ok()) {
    std::printf("PARSE ERROR: %s\n", parsed.error().ToString().c_str());
    return 1;
  }
  auto valid = gaa::eacl::Validate(parsed.value());
  if (!valid.ok()) {
    std::printf("INVALID: %s\n", valid.error().ToString().c_str());
    return 1;
  }
  auto warnings = gaa::eacl::AnalyzePolicy(parsed.value());
  std::printf("%zu entr%s, %zu warning%s\n", parsed.value().entries.size(),
              parsed.value().entries.size() == 1 ? "y" : "ies",
              warnings.size(), warnings.size() == 1 ? "" : "s");
  for (const auto& warning : warnings) {
    std::printf("  [%s] %s\n",
                gaa::eacl::PolicyWarningKindName(warning.kind),
                warning.message.c_str());
  }
  return warnings.empty() ? 0 : 2;
}

int Explain(const std::string& text, const std::string& object,
            const std::string& client_ip, const std::string& user) {
  gaa::util::SimulatedClock clock(1053345600LL * gaa::util::kMicrosPerSecond);
  gaa::core::SystemState state(&clock);
  gaa::core::EvalServices services;
  services.state = &state;
  services.clock = &clock;

  gaa::core::PolicyStore store;
  auto added = store.SetLocalPolicy("/", text);
  if (!added.ok()) {
    std::printf("PARSE ERROR: %s\n", added.error().ToString().c_str());
    return 1;
  }

  gaa::core::GaaApi api(&store, services);
  gaa::core::RoutineCatalog catalog;
  gaa::cond::RegisterBuiltinRoutines(catalog);
  auto init = api.Initialize(catalog, gaa::cond::DefaultConfigText(), "");
  if (!init.ok()) {
    std::printf("INIT ERROR: %s\n", init.error().ToString().c_str());
    return 1;
  }

  gaa::core::RequestContext ctx;
  ctx.application = "apache";
  ctx.operation = "GET";
  ctx.object = object;
  ctx.raw_url = object;
  ctx.client_ip = gaa::util::Ipv4Address::Parse(client_ip).value_or(
      gaa::util::Ipv4Address(0));
  if (!user.empty()) {
    ctx.authenticated = true;
    ctx.user = user;
  }

  auto authz = api.Authorize(object, {"apache", "GET"}, ctx);
  std::printf("request: GET %s from %s%s%s\n", object.c_str(),
              client_ip.c_str(), user.empty() ? "" : " as ",
              user.c_str());
  std::printf("decision: %s%s\n", gaa::util::TristateName(authz.status),
              authz.applicable ? "" : " (no applicable entry: default deny)");
  std::printf("\nevaluation trace (%zu conditions):\n", authz.trace.size());
  for (const auto& step : authz.trace) {
    std::printf("  [%-14s] %-50s -> %-5s %s\n",
                gaa::eacl::CondPhaseName(step.phase),
                gaa::eacl::PrintCondition(step.cond).c_str(),
                gaa::util::TristateName(step.outcome.status),
                step.outcome.detail.c_str());
  }
  if (!authz.unevaluated.empty()) {
    std::printf("\nunevaluated conditions (drive 401/302 translation):\n");
    for (const auto& cond : authz.unevaluated) {
      std::printf("  %s\n", gaa::eacl::PrintCondition(cond).c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "lint") == 0) {
    auto text = gaa::util::ReadFileToString(argv[2]);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.error().ToString().c_str());
      return 1;
    }
    return Lint(text.value());
  }
  if (argc >= 5 && std::strcmp(argv[1], "explain") == 0) {
    auto text = gaa::util::ReadFileToString(argv[2]);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.error().ToString().c_str());
      return 1;
    }
    return Explain(text.value(), argv[3], argv[4],
                   argc >= 6 ? argv[5] : "");
  }

  // No arguments: demo both modes on the built-in policy.
  std::printf("== lint (built-in demo policy) ==\n");
  Lint(kDemoPolicy);
  std::printf("\n== explain: attacker probes /cgi-bin/phf ==\n");
  Explain(kDemoPolicy, "/cgi-bin/phf?Qalias=x", "203.0.113.9", "");
  std::printf("\n== explain: benign request inside office hours ==\n");
  Explain(kDemoPolicy, "/index.html", "10.0.0.1", "");
  std::printf(
      "\nusage:\n  policy_tools lint <policy-file>\n"
      "  policy_tools explain <policy-file> <object> <client-ip> [user]\n");
  return 0;
}
