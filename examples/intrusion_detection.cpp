// The paper's section 7.2 deployment, runnable: signature-based detection
// of CGI abuse with automatic response — administrator notification and a
// shared blacklist that blocks follow-up probes with signatures the policy
// does NOT know.
#include <cstdio>

#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"
#include "workload/trace.h"

int main() {
  gaa::web::GaaWebServer::Options options;
  options.notification_latency_us = 0;
  gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);

  // System-wide: BadGuys are denied everything, everywhere.
  auto r1 = server.AddSystemPolicy(R"(
eacl_mode 1
neg_access_right * *
pre_cond_accessid GROUP local BadGuys
)");
  // Local: the known attack signatures of section 7.2, plus the DoS, NIMDA
  // and buffer-overflow detectors the paper describes.
  auto r2 = server.SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
rr_cond_notify local on:failure/sysadmin/info:cgiexploit
rr_cond_update_log local on:failure/BadGuys/info:ip
neg_access_right apache *
pre_cond_regex gnu *///////////////////*
rr_cond_update_log local on:failure/BadGuys/info:ip
neg_access_right apache *
pre_cond_regex gnu *%*
rr_cond_update_log local on:failure/BadGuys/info:ip
neg_access_right apache *
pre_cond_expr local cgi_input_length >1000
rr_cond_update_log local on:failure/BadGuys/info:ip
pos_access_right apache *
)");
  if (!r1.ok() || !r2.ok()) {
    std::fprintf(stderr, "policy setup failed\n");
    return 1;
  }

  auto show = [&](const char* what, const gaa::http::HttpResponse& response) {
    std::printf("%-56s -> %d %s\n", what, static_cast<int>(response.status),
                gaa::http::StatusReason(response.status));
  };

  std::printf("-- benign traffic --\n");
  show("GET /index.html", server.Get("/index.html", "10.0.0.1"));
  show("GET /cgi-bin/search?q=apache",
       server.Get("/cgi-bin/search?q=apache", "10.0.0.1"));

  std::printf("\n-- known-signature attacks (all detected and denied) --\n");
  show("phf meta-character exploit",
       server.Get("/cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd",
                  "203.0.113.9"));
  show("many-slashes Apache DoS",
       server.Get("/" + std::string(40, '/'), "203.0.113.10"));
  show("NIMDA-style percent URL",
       server.Get("/scripts/..%255c..%255cwinnt/system32/cmd.exe?/c+dir",
                  "203.0.113.11"));
  show("1200-byte CGI input (buffer overflow)",
       server.Get("/cgi-bin/search?q=" + std::string(1200, 'A'),
                  "203.0.113.12"));

  std::printf("\n-- the response in action --\n");
  std::printf("administrator notifications sent: %zu\n",
              server.notifier().sent_count());
  std::printf("BadGuys blacklist now holds %zu address(es): ",
              server.state().GroupSize("BadGuys"));
  for (const auto& member : server.state().GroupMembers("BadGuys")) {
    std::printf("%s ", member.c_str());
  }
  std::printf("\n");

  std::printf("\n-- unknown-signature follow-ups from a blacklisted host --\n");
  gaa::workload::TraceGenerator gen({});
  for (const auto& probe : gen.VulnerabilityScan("203.0.113.9", 3)) {
    auto response = server.HandleText(probe.raw, probe.client_ip);
    show(probe.raw.substr(0, probe.raw.find('\r')).c_str(), response);
  }
  std::printf("\n(the unknown probes carry no known signature, yet the\n"
              " blacklist entry created by the first phf hit blocks them —\n"
              " the paper's section 7.2 claim)\n");

  std::printf("\nIDS threat level after the incident: %s\n",
              gaa::core::ThreatLevelName(server.state().threat_level()));
  return 0;
}
