// The paper's section 7.1 deployment, runnable: an IDS-supplied threat
// level adapts the authentication policy, and the mandatory system-wide
// policy locks the site down entirely under attack.
#include <cstdio>

#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"

namespace {

const char* Show(const gaa::http::HttpResponse& response) {
  switch (response.status) {
    case gaa::http::StatusCode::kOk:
      return "ALLOWED (200)";
    case gaa::http::StatusCode::kUnauthorized:
      return "CREDENTIALS REQUIRED (401)";
    case gaa::http::StatusCode::kForbidden:
      return "DENIED (403)";
    default:
      return "other";
  }
}

}  // namespace

int main() {
  using gaa::core::ThreatLevel;

  gaa::web::GaaWebServer::Options options;
  options.notification_latency_us = 0;
  gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);
  server.AddUser("alice", "wonder");

  // System-wide policy (mode narrow): nothing is reachable at threat high.
  auto r1 = server.AddSystemPolicy(R"(
eacl_mode 1
neg_access_right * *
pre_cond_system_threat_level local =high
)");
  // Local policy: authentication required above threat low; open otherwise.
  auto r2 = server.SetLocalPolicy("/", R"(
pos_access_right apache *
pre_cond_system_threat_level local >low
pre_cond_accessid USER apache *
pos_access_right apache *
pre_cond_system_threat_level local =low
)");
  if (!r1.ok() || !r2.ok()) {
    std::fprintf(stderr, "policy setup failed\n");
    return 1;
  }

  auto credentials =
      std::make_pair(std::string("alice"), std::string("wonder"));
  for (ThreatLevel level :
       {ThreatLevel::kLow, ThreatLevel::kMedium, ThreatLevel::kHigh}) {
    server.state().SetThreatLevel(level);
    std::printf("threat level %s:\n", gaa::core::ThreatLevelName(level));
    std::printf("  anonymous  -> %s\n",
                Show(server.Get("/index.html", "10.0.0.1")));
    std::printf("  alice      -> %s\n",
                Show(server.Get("/index.html", "10.0.0.1", credentials)));
  }

  // Now drive the same transition through the IDS: a burst of detected
  // attacks escalates the level; quiet time decays it.
  std::printf("\ndriving the threat level through the IDS:\n");
  server.state().SetThreatLevel(ThreatLevel::kLow);
  gaa::core::IdsReport attack;
  attack.kind = gaa::core::ReportKind::kDetectedAttack;
  attack.severity = 8;
  attack.confidence = 1.0;
  attack.source_ip = "203.0.113.9";
  server.ids().Report(attack);
  server.ids().Report(attack);
  std::printf("  after 2 attack reports: threat=%s, anonymous -> %s\n",
              gaa::core::ThreatLevelName(server.state().threat_level()),
              Show(server.Get("/index.html", "10.0.0.1")));
  server.sim_clock()->Advance(10LL * 60 * gaa::util::kMicrosPerSecond);
  server.ids().threat().Tick();
  std::printf("  after 10 quiet minutes: threat=%s, anonymous -> %s\n",
              gaa::core::ThreatLevelName(server.state().threat_level()),
              Show(server.Get("/index.html", "10.0.0.1")));
  return 0;
}
