// Adaptive redirection (paper section 6, step 2d): the GAA_MAYBE answer
// with a single unevaluated pre_cond_redirect condition becomes an HTTP
// redirect whose target lives in the policy — used for load balancing,
// network distance, or shedding risky traffic to a hardened mirror.
#include <cstdio>

#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"

int main() {
  gaa::web::GaaWebServer::Options options;
  options.notification_latency_us = 0;
  gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);

  // Policy: clients from the remote 192.0.2.0/24 network are served by the
  // EU replica; under elevated threat, anonymous traffic goes to a
  // hardened mirror; everyone else is served locally.
  auto result = server.SetLocalPolicy("/", R"(
pos_access_right apache *
pre_cond_location local 192.0.2.0/24
pre_cond_redirect local http://replica-eu.example.org/
pos_access_right apache *
pre_cond_system_threat_level local >low
pre_cond_redirect local http://hardened-mirror.example.org/
pos_access_right apache *
)");
  if (!result.ok()) {
    std::fprintf(stderr, "policy error: %s\n",
                 result.error().ToString().c_str());
    return 1;
  }

  auto show = [](const char* what, const gaa::http::HttpResponse& response) {
    if (response.status == gaa::http::StatusCode::kFound) {
      std::printf("%-40s -> 302 Location: %s\n", what,
                  response.headers.at("Location").c_str());
    } else {
      std::printf("%-40s -> %d %s\n", what, static_cast<int>(response.status),
                  gaa::http::StatusReason(response.status));
    }
  };

  std::printf("threat level low:\n");
  show("client 10.0.0.1 (local net)", server.Get("/index.html", "10.0.0.1"));
  show("client 192.0.2.44 (remote net)",
       server.Get("/index.html", "192.0.2.44"));

  server.state().SetThreatLevel(gaa::core::ThreatLevel::kMedium);
  std::printf("\nthreat level medium (IDS raised it):\n");
  show("client 10.0.0.1 (local net)", server.Get("/index.html", "10.0.0.1"));
  show("client 192.0.2.44 (remote net)",
       server.Get("/index.html", "192.0.2.44"));

  std::printf("\n(the redirect targets are plain EACL condition values —\n"
              " the policy officer can repoint traffic without touching\n"
              " server code, and the GAA-API itself never interprets the\n"
              " URL: it returns the condition unevaluated, per the paper)\n");
  return 0;
}
