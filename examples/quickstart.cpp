// Quickstart: protect a small site with GAA-API policies in ~40 lines.
//
//   build/examples/quickstart
//
// Shows the core loop: build a server, load an EACL policy, serve requests,
// observe decisions and audit records.
#include <cstdio>

#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"

int main() {
  using gaa::web::GaaWebServer;

  // 1. A virtual site: static pages under /, reports under /private,
  //    CGI scripts under /cgi-bin (see http::DocTree::DemoSite()).
  GaaWebServer::Options options;
  options.notification_latency_us = 0;
  GaaWebServer server(gaa::http::DocTree::DemoSite(), options);
  server.AddUser("alice", "wonder");

  // 2. One local policy in the EACL language (paper section 2):
  //    - /private requires an authenticated user,
  //    - CGI probes for phf/test-cgi are rejected and audited,
  //    - everything else is allowed.
  auto result = server.SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
rr_cond_audit local on:failure/intrusion
pos_access_right apache *
)");
  if (!result.ok()) {
    std::fprintf(stderr, "policy error: %s\n", result.error().ToString().c_str());
    return 1;
  }
  result = server.SetLocalPolicy("/private", R"(
pos_access_right apache *
pre_cond_accessid USER apache *
)");
  if (!result.ok()) {
    std::fprintf(stderr, "policy error: %s\n", result.error().ToString().c_str());
    return 1;
  }

  // 3. Serve a few requests and print what happened.
  struct Shot {
    const char* what;
    gaa::http::HttpResponse response;
  };
  Shot shots[] = {
      {"anonymous GET /index.html",
       server.Get("/index.html", "10.0.0.1")},
      {"anonymous GET /private/report.html",
       server.Get("/private/report.html", "10.0.0.1")},
      {"alice GET /private/report.html",
       server.Get("/private/report.html", "10.0.0.1",
                  std::make_pair(std::string("alice"), std::string("wonder")))},
      {"attacker GET /cgi-bin/phf?Qalias=x%0acat",
       server.Get("/cgi-bin/phf?Qalias=x%0acat", "203.0.113.9")},
  };
  std::printf("%-44s %s\n", "request", "status");
  for (const auto& shot : shots) {
    std::printf("%-44s %d %s\n", shot.what,
                static_cast<int>(shot.response.status),
                gaa::http::StatusReason(shot.response.status));
  }

  // 4. The intrusion was audited.
  std::printf("\naudit records in category 'intrusion':\n");
  for (const auto& record : server.audit_log().ByCategory("intrusion")) {
    std::printf("  %s\n", record.message.c_str());
  }
  return 0;
}
