// Minimal wiring for microbenchmarks (mirror of tests/testing/helpers.h
// without the gtest dependency).
#pragma once

#include "audit/audit_log.h"
#include "audit/notification.h"
#include "gaa/services.h"
#include "gaa/system_state.h"
#include "util/clock.h"
#include "util/ip.h"

namespace gaa::bench {

struct BenchRig {
  BenchRig()
      : clock(1053345600LL * util::kMicrosPerSecond),
        state(&clock),
        audit(&clock),
        notifier(&clock, 0) {
    services.state = &state;
    services.clock = &clock;
    services.audit = &audit;
    services.notifier = &notifier;
  }

  util::SimulatedClock clock;
  core::SystemState state;
  audit::AuditLog audit;
  audit::SimulatedSmtpNotifier notifier;
  core::EvalServices services;
};

inline core::RequestContext MakeBenchContext() {
  core::RequestContext ctx;
  ctx.application = "apache";
  ctx.operation = "GET";
  ctx.object = "/index.html";
  ctx.raw_url = "/index.html";
  ctx.client_ip = util::Ipv4Address::Parse("10.0.0.1").value();
  return ctx;
}

}  // namespace gaa::bench
