// A7 — baseline: post-hoc log analysis vs integrated prevention.
//
// The paper's related work (§10) contrasts the GAA integration with
// Almgren et al.'s log-based monitor, which detects attacks in CLF logs
// but "can not directly interact with a web server and, thus, can not stop
// the ongoing attacks."  This harness runs the same attack trace through
//
//   (a) an unprotected server + offline LogMonitor over its access log, and
//   (b) the GAA-integrated server,
//
// and reports how many attack requests were *served* (damage done) in each
// case, plus the two systems' detection counts.
#include <cstdio>

#include "bench_common.h"
#include "http/server.h"
#include "ids/log_monitor.h"
#include "util/clock.h"
#include "workload/trace.h"

int main() {
  using namespace gaa::bench;
  using gaa::http::StatusCode;
  using gaa::workload::RequestKind;

  PrintHeader("A7: log-based monitor (related work) vs GAA prevention");

  gaa::workload::TraceOptions trace_options;
  trace_options.count = 3000;
  trace_options.attack_fraction = 0.12;
  trace_options.seed = 1977;
  gaa::workload::TraceGenerator gen(trace_options);
  auto trace = gen.Generate();

  auto is_signature_attack = [](RequestKind kind) {
    return kind == RequestKind::kCgiProbe || kind == RequestKind::kDosSlashes ||
           kind == RequestKind::kNimdaPercent ||
           kind == RequestKind::kOverflowInput;
  };

  std::size_t attacks = 0;
  for (const auto& r : trace) {
    if (is_signature_attack(r.kind)) ++attacks;
  }

  // --- (a) unprotected server + offline log monitor ---------------------------
  std::size_t served_unprotected = 0;
  std::size_t monitor_detections = 0;
  std::size_t monitor_detected_served = 0;
  {
    auto tree = gaa::http::DocTree::DemoSite();
    gaa::http::AllowAllController controller;
    gaa::http::WebServer server(&tree, &controller,
                                &gaa::util::RealClock::Instance());
    for (const auto& r : trace) {
      auto response = server.HandleText(
          r.raw, gaa::util::Ipv4Address::Parse(r.client_ip).value());
      if (is_signature_attack(r.kind) &&
          response.status == StatusCode::kOk) {
        ++served_unprotected;
      }
    }
    // The nightly log scan (detection happens AFTER the requests ran).
    gaa::ids::LogMonitor monitor;
    gaa::util::Stopwatch scan;
    auto findings = monitor.ScanServerLog(server.AccessLog());
    double scan_ms = scan.ElapsedMs();
    monitor_detections = findings.size();
    for (const auto& finding : findings) {
      if (finding.was_served) ++monitor_detected_served;
    }
    std::printf("offline log scan: %zu log lines in %.2f ms\n",
                server.AccessLog().size(), scan_ms);
  }

  // --- (b) GAA-integrated server -----------------------------------------------
  std::size_t served_gaa = 0;
  std::size_t gaa_live_reports = 0;
  {
    gaa::web::GaaWebServer::Options options;
    options.use_real_clock = true;
    options.notification_latency_us = 0;
    gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);
    server.AddUser("alice", "wonder");
    if (!server.AddSystemPolicy(IntrusionSystemPolicy()).ok() ||
        !server
             .SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi* *%* *///////////////////*
rr_cond_update_log local on:failure/BadGuys/info:ip
neg_access_right apache *
pre_cond_expr local cgi_input_length >1000
rr_cond_update_log local on:failure/BadGuys/info:ip
pos_access_right apache *
)")
             .ok()) {
      std::fprintf(stderr, "policy setup failed\n");
      return 1;
    }
    for (const auto& r : trace) {
      auto response = server.HandleText(r.raw, r.client_ip);
      if (is_signature_attack(r.kind) && response.status == StatusCode::kOk) {
        ++served_gaa;
      }
    }
    gaa_live_reports =
        server.ids().CountKind(gaa::core::ReportKind::kDetectedAttack);
  }

  std::printf("\n%-44s %10s\n", "metric", "value");
  std::printf("%-44s %10zu\n", "signature attacks in trace", attacks);
  std::printf("%-44s %9zu/%zu\n",
              "(a) log monitor: attacks detected in log",
              monitor_detections, attacks);
  std::printf("%-44s %9zu/%zu\n",
              "(a) log monitor: attacks SERVED before detection",
              served_unprotected, attacks);
  std::printf("%-44s %10zu\n",
              "(a) detections that came too late (served)",
              monitor_detected_served);
  std::printf("%-44s %9zu/%zu\n", "(b) GAA: attacks SERVED", served_gaa,
              attacks);
  std::printf("%-44s %10zu\n", "(b) GAA: live detected-attack reports",
              gaa_live_reports);
  std::printf(
      "\nshape (paper section 10): the log monitor sees the attacks but only\n"
      "after the server already served them; the integrated GAA path serves\n"
      "none — countermeasures apply before damage is done.\n");
  return 0;
}
