// A6 — ablation: synchronous vs asynchronous notification.
//
// The paper's §8 "with notification" overhead (80 %) is dominated by the
// blocking mail hand-off inside the request path.  This harness holds the
// notification latency fixed and compares three designs:
//
//   none   — notification disabled (the paper's 30 %-overhead row)
//   sync   — blocking delivery inside the request (the paper's 80 % row)
//   queued — hand-off to a background delivery thread (the obvious fix)
//
// Expected shape: queued restores nearly all of the no-notification
// request latency while still delivering every message.
#include <cstdio>

#include "bench_common.h"
#include "util/clock.h"

namespace gaa::bench {
namespace {

constexpr int kRequests = 200;
constexpr gaa::util::DurationUs kLatencyUs = 500;  // fixed delivery cost

struct Row {
  const char* config;
  Stats latency;
  std::size_t delivered = 0;
};

Row MeasureConfig(const char* name, bool enable, bool async) {
  web::GaaWebServer::Options options;
  options.use_real_clock = true;
  options.notification_latency_us = enable ? kLatencyUs : 0;
  options.asynchronous_notification = async;
  options.threat.medium_score = 1e18;  // pin the threat level (see E1)
  options.threat.high_score = 1e18;
  web::GaaWebServer server(http::DocTree::DemoSite(), options);
  if (!server.SetLocalPolicy("/", IntrusionLocalPolicy()).ok()) {
    std::fprintf(stderr, "policy setup failed\n");
    std::exit(1);
  }

  std::vector<double> samples;
  for (int i = 0; i < kRequests; ++i) {
    // Fresh source per request: each probe is a first offence (see E1).
    std::string ip = "203.0." + std::to_string(i / 250) + "." +
                     std::to_string(1 + i % 250);
    std::string raw =
        http::BuildGetRequest("/cgi-bin/phf?Qalias=n" + std::to_string(i));
    util::Stopwatch watch;
    (void)server.HandleText(raw, ip);
    samples.push_back(watch.ElapsedMs());
  }

  Row row;
  row.config = name;
  row.latency = Summarize(std::move(samples));
  if (async) {
    server.queued_notifier()->Flush();
    row.delivered = server.queued_notifier()->delivered_count();
  } else {
    row.delivered = server.notifier().sent_count();
  }
  return row;
}

}  // namespace
}  // namespace gaa::bench

int main() {
  using namespace gaa::bench;
  PrintHeader("A6: synchronous vs asynchronous notification");
  std::printf("fixed delivery latency: %.1f ms per notification, %d attack "
              "requests\n\n",
              kLatencyUs / 1000.0, kRequests);

  Row rows[] = {
      MeasureConfig("zero-latency", false, false),
      MeasureConfig("sync (paper)", true, false),
      MeasureConfig("queued", true, true),
  };

  std::printf("%-14s %12s %12s %12s %12s\n", "config", "mean_ms", "p50_ms",
              "p95_ms", "delivered");
  for (const Row& row : rows) {
    std::printf("%-14s %12.4f %12.4f %12.4f %12zu\n", row.config,
                row.latency.mean_ms, row.latency.p50_ms, row.latency.p95_ms,
                row.delivered);
  }
  std::printf(
      "\nshape: sync pays the full delivery latency on every attack request\n"
      "(the paper's 5.9 -> 53.3 ms jump); queued keeps request latency at\n"
      "the no-notification level while delivering the same messages.\n");
  return 0;
}
