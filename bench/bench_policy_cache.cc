// A1 — ablation of the policy cache (paper §9 future work: "we will add
// support for caching of the retrieved and translated policies for later
// reuse by subsequent requests").
//
// The paper's implementation read and translated the policy files on every
// request (gaa_get_object_policy_info); the cache was to remove that cost.
// We therefore run the store in its paper-faithful parse-on-retrieve mode
// and sweep the policy size, comparing the per-request cost with the cache
// disabled vs enabled, plus hit rate and post-change invalidation cost.
#include <cstdio>

#include "bench_common.h"
#include "util/clock.h"

namespace gaa::bench {
namespace {

std::string PolicyWithEntries(int entries) {
  std::string text;
  for (int i = 0; i < entries - 1; ++i) {
    // Non-matching signature entries: realistic "many rules" policies.
    text += "neg_access_right apache *\n";
    text += "pre_cond_regex gnu *never-seen-" + std::to_string(i) + "*\n";
  }
  text += "pos_access_right apache *\n";
  return text;
}

/// Pure host-screening policy: N-1 non-matching CIDR deny entries, then an
/// unconditional grant.  Every condition is kPure, so the compiled engine
/// both pre-parses the CIDRs at compile time AND memoizes the terminal
/// decision — the interpreter re-tokenizes and re-parses each CIDR on every
/// request (signature entries are kEffect and would disable memoization,
/// which A1c measures separately via the hit-rate column).
std::string HostPolicyWithEntries(int entries) {
  std::string text;
  for (int i = 0; i < entries - 1; ++i) {
    text += "neg_access_right apache *\n";
    text += "pre_cond_accessid HOST local 172.16." + std::to_string(i % 250) +
            ".0/24\n";
  }
  text += "pos_access_right apache *\n";
  return text;
}

double MeasureMeanMs(gaa::web::GaaWebServer& server, int iterations) {
  std::vector<double> samples;
  for (int i = 0; i < iterations; ++i) {
    gaa::util::Stopwatch watch;
    (void)server.Get("/docs/guide.html", "10.0.0.1");
    samples.push_back(watch.ElapsedMs());
  }
  return Summarize(std::move(samples)).mean_ms;
}

}  // namespace
}  // namespace gaa::bench

int main(int argc, char** argv) {
  using namespace gaa::bench;
  JsonReport report("policy_cache");
  const std::string json_path = JsonPathFromArgs(argc, argv);

  PrintHeader("A1: policy-cache ablation (paper section 9 future work)");
  std::printf("%-10s %14s %14s %10s %10s\n", "entries", "no_cache_ms",
              "cache_ms", "speedup", "hit_rate");

  for (int entries : {1, 4, 16, 64, 256}) {
    double no_cache_ms;
    {
      gaa::web::GaaWebServer::Options options;
      options.use_real_clock = true;
      options.notification_latency_us = 0;
      options.enable_policy_cache = false;
      options.enable_compiled_engine = false;
      gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);
      server.policy_store().SetParseOnRetrieve(true);
      if (!server.SetLocalPolicy("/", PolicyWithEntries(entries)).ok()) {
        std::fprintf(stderr, "policy setup failed\n");
        return 1;
      }
      no_cache_ms = MeasureMeanMs(server, 2000);
    }
    double cache_ms;
    double hit_rate;
    {
      gaa::web::GaaWebServer::Options options;
      options.use_real_clock = true;
      options.notification_latency_us = 0;
      options.enable_policy_cache = true;
      options.enable_compiled_engine = false;
      gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);
      server.policy_store().SetParseOnRetrieve(true);
      if (!server.SetLocalPolicy("/", PolicyWithEntries(entries)).ok()) {
        std::fprintf(stderr, "policy setup failed\n");
        return 1;
      }
      cache_ms = MeasureMeanMs(server, 2000);
      const auto& cache = server.api().cache();
      hit_rate = 100.0 * static_cast<double>(cache.hits()) /
                 static_cast<double>(cache.hits() + cache.misses());
    }
    std::printf("%-10d %14.5f %14.5f %9.2fx %9.1f%%\n", entries, no_cache_ms,
                cache_ms, no_cache_ms / cache_ms, hit_rate);
    const std::string suffix = std::to_string(entries);
    report.Set("lru_ablation_" + suffix, "no_cache_ms", no_cache_ms);
    report.Set("lru_ablation_" + suffix, "cache_ms", cache_ms);
    report.Set("lru_ablation_" + suffix, "hit_rate_pct", hit_rate);
  }

  // A1c — the compiled engine (DESIGN.md §9) against the LRU policy cache,
  // both warm.  The LRU removes the compose cost but still interprets the
  // AST per request; the compiled path does one atomic snapshot load and,
  // on a memo hit, returns the cached terminal decision outright.
  PrintHeader("A1c: warm LRU interpreter vs compiled snapshot engine");
  std::printf("%-10s %14s %14s %10s\n", "entries", "lru_warm_ms",
              "compiled_ms", "speedup");
  for (int entries : {1, 16, 64, 256}) {
    double lru_ms;
    {
      gaa::web::GaaWebServer::Options options;
      options.use_real_clock = true;
      options.notification_latency_us = 0;
      options.enable_policy_cache = true;
      options.enable_compiled_engine = false;
      gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);
      if (!server.SetLocalPolicy("/", HostPolicyWithEntries(entries)).ok()) {
        std::fprintf(stderr, "policy setup failed\n");
        return 1;
      }
      (void)MeasureMeanMs(server, 200);  // warm
      lru_ms = MeasureMeanMs(server, 2000);
    }
    double compiled_ms;
    double memo_hit_rate;
    {
      gaa::web::GaaWebServer::Options options;
      options.use_real_clock = true;
      options.notification_latency_us = 0;
      gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);
      if (!server.SetLocalPolicy("/", HostPolicyWithEntries(entries)).ok()) {
        std::fprintf(stderr, "policy setup failed\n");
        return 1;
      }
      (void)MeasureMeanMs(server, 200);  // warm
      compiled_ms = MeasureMeanMs(server, 2000);
      const auto& memo = server.api().decision_cache();
      memo_hit_rate = 100.0 * static_cast<double>(memo.hits()) /
                      static_cast<double>(memo.hits() + memo.misses());
    }
    std::printf("%-10d %14.5f %14.5f %9.2fx  (memo hit %4.1f%%)\n", entries,
                lru_ms, compiled_ms, lru_ms / compiled_ms, memo_hit_rate);
    const std::string suffix = std::to_string(entries);
    report.Set("compiled_vs_lru_" + suffix, "lru_warm_ms", lru_ms);
    report.Set("compiled_vs_lru_" + suffix, "compiled_ms", compiled_ms);
    report.Set("compiled_vs_lru_" + suffix, "speedup", lru_ms / compiled_ms);
    report.Set("compiled_vs_lru_" + suffix, "memo_hit_rate_pct",
               memo_hit_rate);
  }

  // Invalidation correctness cost: a policy change mid-run must be seen
  // immediately; only the next retrieval per object pays the refill.
  PrintHeader("A1b: cache invalidation on policy change");
  gaa::web::GaaWebServer::Options options;
  options.use_real_clock = true;
  options.notification_latency_us = 0;
  options.enable_policy_cache = true;
  gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);
  server.policy_store().SetParseOnRetrieve(true);
  if (!server.SetLocalPolicy("/", PolicyWithEntries(64)).ok()) return 1;
  (void)MeasureMeanMs(server, 500);  // warm the cache
  auto before = server.api().cache().misses();
  if (!server.SetLocalPolicy("/", PolicyWithEntries(64)).ok()) return 1;
  double first_after_change;
  {
    gaa::util::Stopwatch watch;
    (void)server.Get("/docs/guide.html", "10.0.0.1");
    first_after_change = watch.ElapsedMs();
  }
  double steady_after = MeasureMeanMs(server, 500);
  std::printf("first request after change: %.5f ms (cache refill), steady "
              "state after: %.5f ms, extra misses: %llu\n",
              first_after_change, steady_after,
              static_cast<unsigned long long>(server.api().cache().misses() -
                                              before));
  if (!report.WriteFile(json_path)) return 1;
  return 0;
}
