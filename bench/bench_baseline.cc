// A5 — baseline comparison: stock-Apache .htaccess access control vs the
// GAA-backed controller vs no access control, over the same benign
// workload.  Quantifies what the integration costs relative to what Apache
// already did (the fair version of the paper's §8 "overhead" framing) and
// what the GAA path buys that .htaccess cannot express.
#include <cstdio>

#include "bench_common.h"
#include "http/server.h"
#include "util/clock.h"
#include "workload/trace.h"

namespace gaa::bench {
namespace {

struct RunResult {
  double mean_ms;
  double p95_ms;
  double rps;
};

template <typename Handler>
RunResult Run(const std::vector<gaa::workload::TraceRequest>& trace,
              Handler&& handle) {
  std::vector<double> samples;
  gaa::util::Stopwatch run;
  for (const auto& request : trace) {
    gaa::util::Stopwatch watch;
    handle(request);
    samples.push_back(watch.ElapsedMs());
  }
  double elapsed_s = run.ElapsedUs() / 1e6;
  Stats s = Summarize(std::move(samples));
  return {s.mean_ms, s.p95_ms, static_cast<double>(trace.size()) / elapsed_s};
}

}  // namespace
}  // namespace gaa::bench

int main() {
  using namespace gaa::bench;

  PrintHeader("A5: baseline comparison — htaccess vs GAA vs none");

  gaa::workload::TraceOptions trace_options;
  trace_options.count = 5000;
  trace_options.attack_fraction = 0.0;  // benign-only: pure overhead compare
  gaa::workload::TraceGenerator gen(trace_options);
  auto trace = gen.Generate();

  auto clock = &gaa::util::RealClock::Instance();

  // --- no access control -------------------------------------------------------
  RunResult none;
  {
    auto tree = gaa::http::DocTree::DemoSite();
    gaa::http::AllowAllController controller;
    gaa::http::WebServer server(&tree, &controller, clock);
    none = Run(trace, [&](const gaa::workload::TraceRequest& r) {
      (void)server.HandleText(
          r.raw, gaa::util::Ipv4Address::Parse(r.client_ip).value());
    });
  }

  // --- stock .htaccess ----------------------------------------------------------
  RunResult htaccess;
  {
    auto tree = gaa::http::DocTree::DemoSite();
    tree.SetHtaccess("/private",
                     "AuthType Basic\nAuthUserFile staff\nRequire valid-user\n");
    tree.SetHtaccess("/", "Order Deny,Allow\nAllow from All\n");
    gaa::http::HtpasswdRegistry passwords;
    passwords.GetOrCreate("staff").SetUser("alice", "wonder");
    gaa::http::HtaccessController controller(&tree, &passwords);
    gaa::http::WebServer server(&tree, &controller, clock);
    htaccess = Run(trace, [&](const gaa::workload::TraceRequest& r) {
      (void)server.HandleText(
          r.raw, gaa::util::Ipv4Address::Parse(r.client_ip).value());
    });
  }

  // --- GAA (section 7 policies, no cache) ---------------------------------------
  auto run_gaa = [&](bool cache) {
    gaa::web::GaaWebServer::Options options;
    options.use_real_clock = true;
    options.notification_latency_us = 0;
    options.enable_policy_cache = cache;
    gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);
    // Paper-faithful retrieval: policy files are read and translated per
    // request unless the (future-work) cache serves them.
    server.policy_store().SetParseOnRetrieve(true);
    server.AddUser("alice", "wonder");
    if (!server.AddSystemPolicy(IntrusionSystemPolicy()).ok() ||
        !server.SetLocalPolicy("/", IntrusionLocalPolicy()).ok()) {
      std::fprintf(stderr, "policy setup failed\n");
      std::exit(1);
    }
    return Run(trace, [&](const gaa::workload::TraceRequest& r) {
      (void)server.HandleText(r.raw, r.client_ip);
    });
  };
  RunResult gaa_nocache = run_gaa(false);
  RunResult gaa_cache = run_gaa(true);

  std::printf("%-24s %10s %10s %12s %10s\n", "configuration", "mean_ms",
              "p95_ms", "requests/s", "vs none");
  auto print = [&](const char* name, const RunResult& r) {
    std::printf("%-24s %10.5f %10.5f %12.0f %9.2fx\n", name, r.mean_ms,
                r.p95_ms, r.rps, r.mean_ms / none.mean_ms);
  };
  print("no access control", none);
  print("htaccess (stock Apache)", htaccess);
  print("GAA (sec. 7 policies)", gaa_nocache);
  print("GAA + policy cache", gaa_cache);

  std::printf(
      "\nshape: GAA costs more than stock .htaccess (it evaluates richer\n"
      "policies and runs response actions) but the cache claws most of the\n"
      "retrieval cost back; only GAA blocks the attack classes of sec. 7.2.\n");
  return 0;
}
