// E3 — the §7.2 application-level intrusion detection & response
// deployment, measured over a synthetic attack trace.
//
// Reports, per trace: detection rate over known-signature attacks, false
// positives over benign traffic, blacklist growth, and — the paper's key
// claim — how many *unknown-signature* follow-up probes the blacklist
// response blocks ("subsequent requests from that host, checking for
// vulnerabilities we might not yet know about, can still be blocked").
#include <cstdio>

#include "bench_common.h"
#include "util/clock.h"
#include "workload/trace.h"

int main() {
  using namespace gaa::bench;
  using gaa::http::StatusCode;
  using gaa::workload::RequestKind;

  PrintHeader("E3: section 7.2 — intrusion detection and response");

  gaa::web::GaaWebServer::Options options;
  options.use_real_clock = true;
  options.notification_latency_us = 0;
  gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);
  server.AddUser("alice", "wonder");
  if (!server.AddSystemPolicy(IntrusionSystemPolicy()).ok() ||
      !server
           .SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi* *%* *///////////////////*
rr_cond_notify local on:failure/sysadmin/info:attack
rr_cond_update_log local on:failure/BadGuys/info:ip
neg_access_right apache *
pre_cond_expr local cgi_input_length >1000
rr_cond_update_log local on:failure/BadGuys/info:ip
pos_access_right apache *
)")
           .ok()) {
    std::fprintf(stderr, "policy setup failed\n");
    return 1;
  }

  // --- part 1: mixed trace ----------------------------------------------------
  gaa::workload::TraceOptions trace_options;
  trace_options.count = 4000;
  trace_options.attack_fraction = 0.10;
  trace_options.seed = 2003;
  gaa::workload::TraceGenerator gen(trace_options);
  auto trace = gen.Generate();

  std::size_t benign = 0, benign_denied = 0;
  std::size_t signature_attacks = 0, signature_blocked = 0;
  std::size_t illformed = 0, illformed_rejected = 0;
  std::size_t guesses = 0;
  for (const auto& request : trace) {
    auto response = server.HandleText(request.raw, request.client_ip);
    bool denied = response.status == StatusCode::kForbidden;
    bool rejected_400 = static_cast<int>(response.status) >= 400 &&
                        static_cast<int>(response.status) < 500;
    switch (request.kind) {
      case RequestKind::kStaticPage:
      case RequestKind::kSearchCgi:
      case RequestKind::kPrivatePage:
        ++benign;
        if (denied) ++benign_denied;
        break;
      case RequestKind::kCgiProbe:
      case RequestKind::kDosSlashes:
      case RequestKind::kNimdaPercent:
      case RequestKind::kOverflowInput:
        ++signature_attacks;
        if (denied) ++signature_blocked;
        break;
      case RequestKind::kIllFormed:
        ++illformed;
        if (rejected_400) ++illformed_rejected;
        break;
      case RequestKind::kPasswordGuess:
        ++guesses;
        break;
      default:
        break;
    }
  }

  std::printf("trace: %zu requests, %.0f%% attack fraction, seed %llu\n",
              trace.size(), 100.0 * trace_options.attack_fraction,
              static_cast<unsigned long long>(trace_options.seed));
  std::printf("%-34s %10s\n", "metric", "value");
  std::printf("%-34s %9zu/%zu\n", "signature attacks blocked",
              signature_blocked, signature_attacks);
  std::printf("%-34s %9zu/%zu\n", "ill-formed requests rejected",
              illformed_rejected, illformed);
  std::printf("%-34s %9zu/%zu\n", "benign requests denied (FP)",
              benign_denied, benign);
  std::printf("%-34s %10zu\n", "blacklist (BadGuys) size",
              server.state().GroupSize("BadGuys"));
  std::printf("%-34s %10zu\n", "IDS detected-attack reports",
              server.ids().CountKind(gaa::core::ReportKind::kDetectedAttack));
  std::printf("%-34s %10zu\n", "admin notifications sent",
              server.notifier().sent_count());
  std::printf("%-34s %10s\n", "threat level after trace",
              gaa::core::ThreatLevelName(server.state().threat_level()));

  // --- part 2: the unknown-signature blocking claim ---------------------------
  PrintHeader("E3b: blacklist blocks unknown-signature follow-ups");
  std::printf("%-12s %-22s %-10s\n", "scan step", "request kind", "result");
  gaa::web::GaaWebServer fresh(gaa::http::DocTree::DemoSite(), options);
  if (!fresh.AddSystemPolicy(IntrusionSystemPolicy()).ok() ||
      !fresh.SetLocalPolicy("/", IntrusionLocalPolicy()).ok()) {
    std::fprintf(stderr, "policy setup failed\n");
    return 1;
  }
  auto scan = gen.VulnerabilityScan("203.0.113.77", 7);
  std::size_t unknown_blocked = 0;
  for (std::size_t i = 0; i < scan.size(); ++i) {
    auto response = fresh.HandleText(scan[i].raw, scan[i].client_ip);
    bool denied = response.status == StatusCode::kForbidden;
    if (i > 0 && denied) ++unknown_blocked;
    std::printf("%-12zu %-22s %-10s\n", i,
                gaa::workload::RequestKindName(scan[i].kind),
                denied ? "BLOCKED" : "served");
  }
  std::printf("\nunknown-signature probes blocked after the first known hit: "
              "%zu/%zu (paper claim: all)\n",
              unknown_blocked, scan.size() - 1);

  // Without the rr_cond_update_log response, the same scan sails through —
  // quantifies what the response action buys.
  gaa::web::GaaWebServer no_response(gaa::http::DocTree::DemoSite(), options);
  if (!no_response
           .SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
pos_access_right apache *
)")
           .ok()) {
    std::fprintf(stderr, "policy setup failed\n");
    return 1;
  }
  std::size_t served_without_response = 0;
  for (std::size_t i = 1; i < scan.size(); ++i) {
    auto response = no_response.HandleText(scan[i].raw, scan[i].client_ip);
    if (response.status != StatusCode::kForbidden) ++served_without_response;
  }
  std::printf("ablation (no blacklist response action): %zu/%zu unknown "
              "probes reach the server\n",
              served_without_response, scan.size() - 1);
  return 0;
}
