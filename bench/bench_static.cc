// E5: zero-copy static content plane (DESIGN.md §11).
//
// Measures the template fast tier against the PR-5 wire path it replaces.
// Four configurations over real loopback sockets with C keep-alive
// connections issuing R requests each:
//
//   gaa_plane_off    full GAA pipeline, Options::http.enable_static_plane
//                    = false (the PR-5 baseline wire behaviour)
//   gaa_plane_on     full GAA pipeline with the plane enabled (validators
//                    and templates exist; the GAA controller still runs,
//                    so the zero-alloc tier stays out of the way)
//   fast_plane_off   AllowAllController, plane off: the memoized inline
//                    tier parses, dispatches and serializes per request
//   fast_plane_on    AllowAllController, plane on: pre-serialized header
//                    templates + DocTree body views, zero copies/allocs
//
// The headline number is fast_plane_on / fast_plane_off RPS; the tentpole
// target is >= 1.3x.
//
//   bench_static [--conns C] [--requests R] [--repeats N] [--json out.json]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "http/request.h"
#include "http/tcp_server.h"

namespace gaa::bench {
namespace {

struct RunResult {
  double seconds = 0;
  double rps = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t inline_served = 0;
};

/// How many requests a client writes back-to-back before collecting the
/// responses.  Pipelining keeps syscall and scheduling overhead (identical
/// in every configuration) from drowning the per-request serving cost that
/// the plane actually changes.
constexpr int kPipelineDepth = 16;

int ConnectLoopback(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Writes `count` pipelined copies of `request` and reads until that many
/// Content-Length-framed responses (all expected to be 200s) come back.
/// Returns the number of responses successfully consumed.
int PipelineBatch(int fd, const std::string& request, int count) {
  std::string burst;
  burst.reserve(request.size() * static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) burst.append(request);
  std::size_t sent = 0;
  while (sent < burst.size()) {
    ssize_t n = ::send(fd, burst.data() + sent, burst.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return 0;
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string in;
  int done = 0;
  std::size_t parsed = 0;
  char buf[16384];
  while (done < count) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return done;
    }
    in.append(buf, static_cast<std::size_t>(n));
    for (;;) {
      std::string_view rest(in.data() + parsed, in.size() - parsed);
      std::size_t head_end = rest.find("\r\n\r\n");
      if (head_end == std::string_view::npos) break;
      std::size_t body = 0;
      std::size_t pos = rest.find("Content-Length: ");
      if (pos != std::string_view::npos && pos < head_end) {
        for (pos += 16;
             pos < head_end && rest[pos] >= '0' && rest[pos] <= '9'; ++pos) {
          body = body * 10 + static_cast<std::size_t>(rest[pos] - '0');
        }
      }
      std::size_t total = head_end + 4 + body;
      if (rest.size() < total) break;
      if (rest.compare(0, 12, "HTTP/1.1 200") == 0) ++done;
      parsed += total;
    }
    if (parsed > 0 && parsed == in.size()) {
      in.clear();
      parsed = 0;
    }
  }
  return done;
}

RunResult DriveLoad(std::uint16_t port, int conns, int requests_per_conn) {
  std::vector<std::vector<double>> per_thread_us(conns);
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> clients;
  clients.reserve(conns);

  auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < conns; ++c) {
    clients.emplace_back([port, requests_per_conn, c, &per_thread_us,
                          &errors] {
      int fd = ConnectLoopback(port);
      if (fd < 0) {
        errors.fetch_add(static_cast<std::uint64_t>(requests_per_conn));
        return;
      }
      std::string raw = http::BuildGetRequest("/index.html");
      auto& samples = per_thread_us[c];
      samples.reserve(static_cast<std::size_t>(requests_per_conn));
      for (int i = 0; i < requests_per_conn; i += kPipelineDepth) {
        int batch = std::min(kPipelineDepth, requests_per_conn - i);
        auto s0 = std::chrono::steady_clock::now();
        int got = PipelineBatch(fd, raw, batch);
        auto s1 = std::chrono::steady_clock::now();
        errors.fetch_add(static_cast<std::uint64_t>(batch - got));
        double per_request_us =
            got > 0 ? std::chrono::duration<double, std::micro>(s1 - s0)
                              .count() /
                          got
                    : 0;
        for (int k = 0; k < got; ++k) samples.push_back(per_request_us);
        if (got < batch) break;  // connection dropped mid-batch
      }
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();
  auto t1 = std::chrono::steady_clock::now();

  std::vector<double> all_us;
  for (auto& samples : per_thread_us) {
    all_us.insert(all_us.end(), samples.begin(), samples.end());
  }
  std::sort(all_us.begin(), all_us.end());

  RunResult out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.requests = all_us.size();
  out.errors = errors.load();
  out.rps = out.seconds > 0 ? static_cast<double>(out.requests) / out.seconds
                            : 0;
  if (!all_us.empty()) {
    out.p50_us = all_us[all_us.size() / 2];
    out.p99_us = all_us[std::min(all_us.size() - 1, all_us.size() * 99 / 100)];
  }
  return out;
}

RunResult RunOverTransport(http::WebServer* server, int conns,
                           int requests_per_conn, int repeats) {
  http::TcpServer::Options tcp_options;
  tcp_options.reactor_shards = 1;
  tcp_options.worker_threads = 4;
  tcp_options.max_connections = 4096;
  http::TcpServer tcp(server, tcp_options);
  auto started = tcp.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 started.error().ToString().c_str());
    std::exit(1);
  }
  // Warmup primes decision memos, buffer pools and header templates so the
  // steady state is what gets measured.  Best-of-N repetitions damp
  // scheduler noise, which easily exceeds the effect under measurement on
  // a small shared box.
  DriveLoad(tcp.port(), std::min(conns, 8), 50);
  RunResult result;
  for (int rep = 0; rep < repeats; ++rep) {
    RunResult r = DriveLoad(tcp.port(), conns, requests_per_conn);
    if (r.rps > result.rps) result = r;
  }
  result.inline_served = tcp.inline_served();
  tcp.Stop();
  return result;
}

RunResult RunGaaConfig(bool plane_on, int conns, int requests_per_conn,
                       int repeats) {
  web::GaaWebServer::Options options;
  options.use_real_clock = true;
  options.tuning.trace_sample_period = 0;  // transport numbers, not spans
  options.http.enable_static_plane = plane_on;
  web::GaaWebServer gws(http::DocTree::DemoSite(), options);
  if (!gws.SetLocalPolicy("/", "pos_access_right apache *\n").ok()) {
    std::fprintf(stderr, "policy setup failed\n");
    std::exit(1);
  }
  return RunOverTransport(&gws.server(), conns, requests_per_conn, repeats);
}

RunResult RunFastConfig(bool plane_on, int conns, int requests_per_conn,
                        int repeats) {
  auto tree = std::make_unique<http::DocTree>(http::DocTree::DemoSite());
  http::AllowAllController allow_all;
  http::WebServer::Options options;
  options.enable_static_plane = plane_on;
  http::WebServer server(tree.get(), &allow_all,
                         &util::RealClock::Instance(), options);
  // The template tier declines traced requests; measure the serving path.
  server.telemetry()->set_tracing_enabled(false);
  return RunOverTransport(&server, conns, requests_per_conn, repeats);
}

int Main(int argc, char** argv) {
  // One pipelined connection per shard is the cleanest serving-path cost
  // measurement: client-side overhead is identical across configurations
  // and never competes with the reactor for a core.  896 keeps warm-up
  // plus measurement under the 1000-request keep-alive cap.
  int conns = 1;
  int requests_per_conn = 896;
  int repeats = 3;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--conns") conns = std::atoi(argv[i + 1]);
    if (std::string(argv[i]) == "--requests") {
      requests_per_conn = std::atoi(argv[i + 1]);
    }
    if (std::string(argv[i]) == "--repeats") repeats = std::atoi(argv[i + 1]);
  }

  struct Config {
    const char* name;
    bool gaa;
    bool plane_on;
  };
  const Config configs[] = {
      {"gaa_plane_off", true, false},
      {"gaa_plane_on", true, true},
      {"fast_plane_off", false, false},
      {"fast_plane_on", false, true},
  };

  JsonReport report("static");
  PrintHeader("E5: zero-copy static plane (" + std::to_string(conns) +
              " conns x " + std::to_string(requests_per_conn) + " requests)");
  std::printf("%-20s %10s %10s %10s %10s %12s\n", "config", "rps", "p50_us",
              "p99_us", "errors", "inline");

  double rps_off = 0, rps_on = 0;
  for (const Config& config : configs) {
    RunResult r =
        config.gaa
            ? RunGaaConfig(config.plane_on, conns, requests_per_conn, repeats)
            : RunFastConfig(config.plane_on, conns, requests_per_conn,
                            repeats);
    std::printf("%-20s %10.0f %10.1f %10.1f %10llu %12llu\n", config.name,
                r.rps, r.p50_us, r.p99_us,
                static_cast<unsigned long long>(r.errors),
                static_cast<unsigned long long>(r.inline_served));
    report.Set(config.name, "rps", r.rps);
    report.Set(config.name, "p50_us", r.p50_us);
    report.Set(config.name, "p99_us", r.p99_us);
    report.Set(config.name, "requests", static_cast<double>(r.requests));
    report.Set(config.name, "errors", static_cast<double>(r.errors));
    report.Set(config.name, "inline_served",
               static_cast<double>(r.inline_served));
    if (std::string(config.name) == "fast_plane_off") rps_off = r.rps;
    if (std::string(config.name) == "fast_plane_on") rps_on = r.rps;
  }

  double speedup = rps_off > 0 ? rps_on / rps_off : 0;
  std::printf("\ntemplate-plane speedup over plane-off fast path: %.2fx\n",
              speedup);
  report.Set("summary", "speedup_plane_on_vs_off", speedup);

  if (!report.WriteFile(JsonPathFromArgs(argc, argv))) return 1;
  return 0;
}

}  // namespace
}  // namespace gaa::bench

int main(int argc, char** argv) { return gaa::bench::Main(argc, argv); }
