// E7: open-loop tail latency vs offered load (EXPERIMENTS.md E7).
//
// The closed-loop E-series harnesses measure how fast the server can go;
// this one measures what users at a *fixed arrival rate* experience.  The
// workload::LoadGenerator fixes every request's intended send time before
// the run starts and charges queueing behind stalls to latency, so the
// reported p99/p999 are free of coordinated omission.  The sweep crosses
// offered rates with three scenarios — benign, mixed (90% benign + the
// full attack corpus), adversarial (attacks only) — against the real
// sharded transport with the event-loop lag probe armed.
//
// The harness asserts the integration story, not just throughput:
//   * benign traffic meets its p99 SLO at every offered rate;
//   * every adversarial request kind is classified — denied by the EACL
//     signature policy (403), rejected by parser/framing hardening (4xx),
//     or diagnosed as a truncated request — and none of it is ever 2xx;
//   * the attack stream is visible to the IDS (ids_reports_total rises);
//   * the reactor health gauges (loop lag, ring depth) appear in
//     /__status/metrics.json.
//
//   bench_load [--rates r1,r2,...] [--seconds S] [--conns C] [--smoke]
//              [--json out.json]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "http/request.h"
#include "http/tcp_server.h"
#include "workload/loadgen.h"

namespace gaa::bench {
namespace {

/// EACL policy for the load sweep: deny the §7.2 signature set (CGI
/// probes, NIMDA percent URLs, the many-slashes DoS, cmd.exe traversal)
/// and over-long CGI input, then grant everything else.  Deliberately NO
/// rr_cond_update_log blacklisting: every loadgen client shares 127.0.0.1,
/// so an IP blacklist would take the benign traffic down with the attacks.
const char* LoadSweepPolicy() {
  return R"(
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi* *%* *///////////////////* *cmd.exe*
neg_access_right apache *
pre_cond_expr local cgi_input_length >1000
pos_access_right apache *
)";
}

struct CellResult {
  workload::LoadResult load;
  std::uint64_t ids_reports = 0;      ///< ids_reports_total across kinds
  std::uint64_t transport_rejected = 0;
  std::uint64_t ring_high_watermark = 0;
  std::string status_metrics;         ///< /__status/metrics.json body
};

std::uint64_t SumIdsReports(telemetry::MetricRegistry& registry) {
  std::uint64_t total = 0;
  for (const auto& slot : registry.List()) {
    if (slot.name == "ids_reports_total" && slot.counter != nullptr) {
      total += slot.counter->Value();
    }
  }
  return total;
}

CellResult RunCell(const workload::LoadScenario& scenario, double rate_rps,
                   double seconds, std::size_t conns, std::uint64_t seed) {
  // A fresh server per cell isolates counters and decision memos, so every
  // cell measures the same cold-start-then-steady-state story.
  web::GaaWebServer::Options options;
  options.use_real_clock = true;
  options.tuning.trace_sample_period = 0;  // tracing off: transport numbers
  web::GaaWebServer gws(http::DocTree::DemoSite(), options);
  if (!gws.SetLocalPolicy("/", LoadSweepPolicy()).ok()) {
    std::fprintf(stderr, "policy setup failed\n");
    std::exit(1);
  }

  http::TcpServer::Options tcp_options;
  tcp_options.reactor_shards = 2;
  tcp_options.worker_threads = 2;
  tcp_options.max_connections = 512;
  tcp_options.lag_probe_interval_ms = 100;
  http::TcpServer tcp(&gws.server(), tcp_options);
  auto started = tcp.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 started.error().ToString().c_str());
    std::exit(1);
  }

  workload::LoadgenOptions lg;
  lg.seed = seed;
  lg.rate_rps = rate_rps;
  lg.total_requests =
      static_cast<std::size_t>(rate_rps * seconds < 20 ? 20
                                                       : rate_rps * seconds);
  lg.connections = conns;
  CellResult cell;
  cell.load = workload::LoadGenerator(lg, scenario).Run(tcp.port());

  cell.ids_reports = SumIdsReports(gws.telemetry().registry());
  cell.ring_high_watermark = tcp.stats().ring_high_watermark;
  cell.transport_rejected = tcp.stats().rejected;
  auto status = http::TcpFetch(
      tcp.port(), http::BuildGetRequest("/__status/metrics.json"));
  if (status.ok()) cell.status_metrics = status.value();
  tcp.Stop();
  return cell;
}

int Main(int argc, char** argv) {
  std::vector<double> rates = {100, 250, 500};
  double seconds = 2.0;
  std::size_t conns = 16;
  double slo_p99_us = 500'000;  // benign p99 SLO: 500ms open-loop
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      // CI configuration: one modest rate, short run, same assertions.
      rates = {80};
      seconds = 1.5;
      conns = 8;
    }
    if (i + 1 >= argc) continue;
    if (std::string(argv[i]) == "--seconds") seconds = std::atof(argv[i + 1]);
    if (std::string(argv[i]) == "--conns") {
      conns = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    }
    if (std::string(argv[i]) == "--rates") {
      rates.clear();
      const char* cursor = argv[i + 1];
      while (*cursor != '\0') {
        rates.push_back(std::strtod(cursor, const_cast<char**>(&cursor)));
        if (*cursor == ',') ++cursor;
      }
    }
  }

  const workload::LoadScenario scenarios[] = {workload::BenignScenario(),
                                              workload::MixedScenario(),
                                              workload::AdversarialScenario()};

  JsonReport report("load");
  report.SetParam("seconds_per_cell", seconds);
  report.SetParam("connections", static_cast<double>(conns));
  for (std::size_t i = 0; i < rates.size(); ++i) {
    report.SetParam("rate_" + std::to_string(i), rates[i]);
  }

  std::vector<std::string> failures;
  std::string last_status_metrics;
  PrintHeader("E7: open-loop tail latency vs offered load");
  std::printf("%-24s %8s %8s %9s %9s %9s %9s %7s\n", "cell", "offered",
              "achieved", "p50_us", "p99_us", "p999_us", "max_us", "4xx");

  for (const auto& scenario : scenarios) {
    for (double rate : rates) {
      CellResult cell =
          RunCell(scenario, rate, seconds, conns,
                  42 + static_cast<std::uint64_t>(rate));
      const workload::LoadResult& r = cell.load;
      last_status_metrics = cell.status_metrics;

      std::uint64_t total_4xx = 0, total_2xx = 0;
      for (const auto& [kind, ks] : r.by_kind) {
        total_4xx += ks.status_4xx;
        total_2xx += ks.ok_2xx;
      }
      std::string cell_name =
          scenario.name + "@" + std::to_string(static_cast<int>(rate));
      std::printf("%-24s %8.0f %8.0f %9.0f %9.0f %9.0f %9llu %7llu\n",
                  cell_name.c_str(), rate, r.achieved_rps,
                  r.latency.Quantile(0.50), r.latency.Quantile(0.99),
                  r.latency.Quantile(0.999),
                  static_cast<unsigned long long>(r.latency.max),
                  static_cast<unsigned long long>(total_4xx));

      report.Set(cell_name, "offered_rps", rate);
      report.Set(cell_name, "achieved_rps", r.achieved_rps);
      report.SetHistogram(cell_name, r.latency);
      report.Set(cell_name, "benign_p50_us", r.benign_latency.Quantile(0.5));
      report.Set(cell_name, "benign_p99_us", r.benign_latency.Quantile(0.99));
      // Closed-loop view for the same run: the gap between service_p99 and
      // p99 is the coordinated omission a closed-loop harness would hide.
      report.Set(cell_name, "service_p99_us", r.service.Quantile(0.99));
      report.Set(cell_name, "sent", static_cast<double>(r.sent));
      report.Set(cell_name, "responded", static_cast<double>(r.responded));
      report.Set(cell_name, "status_4xx", static_cast<double>(total_4xx));
      report.Set(cell_name, "status_2xx", static_cast<double>(total_2xx));
      report.Set(cell_name, "transport_errors",
                 static_cast<double>(r.transport_errors));
      report.Set(cell_name, "ids_reports",
                 static_cast<double>(cell.ids_reports));
      report.Set(cell_name, "transport_rejected",
                 static_cast<double>(cell.transport_rejected));
      report.Set(cell_name, "ring_high_watermark",
                 static_cast<double>(cell.ring_high_watermark));

      // --- assertions -----------------------------------------------------
      if (r.transport_errors > 0) {
        failures.push_back(cell_name + ": " +
                           std::to_string(r.transport_errors) +
                           " transport errors");
      }
      const bool has_benign = r.benign_latency.count > 0;
      if (has_benign && r.benign_latency.Quantile(0.99) > slo_p99_us) {
        failures.push_back(
            cell_name + ": benign p99 " +
            std::to_string(r.benign_latency.Quantile(0.99)) +
            "us breaches the " + std::to_string(slo_p99_us) + "us SLO");
      }
      for (const auto& [kind_name, ks] : r.by_kind) {
        bool attack = true;
        for (const auto& [kind, weight] : scenario.mix) {
          if (workload::RequestKindName(kind) == kind_name) {
            attack = workload::IsAttackKind(kind);
          }
        }
        if (!attack) {
          if (ks.ok_2xx != ks.sent) {
            failures.push_back(cell_name + ": benign kind " + kind_name +
                               " not fully served (" +
                               std::to_string(ks.ok_2xx) + "/" +
                               std::to_string(ks.sent) + " 2xx)");
          }
          continue;
        }
        // Every adversarial request must be classified: a 4xx denial from
        // the EACL/parser/framing layers, or (slowloris) no response by
        // design.  A 2xx for an attack kind is a detection miss.
        if (ks.ok_2xx != 0) {
          failures.push_back(cell_name + ": attack kind " + kind_name +
                             " got " + std::to_string(ks.ok_2xx) + " 2xx");
        }
        if (kind_name == "slow_headers") {
          if (ks.no_response != ks.sent) {
            failures.push_back(cell_name +
                               ": slow_headers should never see a response");
          }
        } else if (ks.sent > 0 && ks.status_4xx == 0) {
          failures.push_back(cell_name + ": attack kind " + kind_name +
                             " was never answered 4xx (sent " +
                             std::to_string(ks.sent) + ")");
        }
      }
      if (scenario.name != "benign" && r.sent > 0 && cell.ids_reports == 0) {
        failures.push_back(cell_name +
                           ": attack traffic produced no IDS reports");
      }
    }
  }

  // Reactor health gauges must be visible to scrapes (tentpole part 2).
  for (const char* metric :
       {"transport_shard_loop_lag_ms", "transport_shard_ring_depth",
        "transport_shard_ring_high_watermark", "transport_loop_lag_us",
        "transport_dispatch_delay_us"}) {
    if (last_status_metrics.find(metric) == std::string::npos) {
      failures.push_back(std::string("/__status/metrics.json missing ") +
                         metric);
    }
  }

  report.Set("summary", "failures", static_cast<double>(failures.size()));
  if (!report.WriteFile(JsonPathFromArgs(argc, argv))) return 1;

  for (const std::string& failure : failures) {
    std::fprintf(stderr, "FAIL: %s\n", failure.c_str());
  }
  if (failures.empty()) {
    std::printf("\nall SLO and classification assertions held\n");
  }
  return failures.empty() ? 0 : 1;
}

}  // namespace
}  // namespace gaa::bench

int main(int argc, char** argv) { return gaa::bench::Main(argc, argv); }
