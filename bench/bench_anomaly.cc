// A8 — ablation of the anomaly detector (paper §9 future work: "a simple
// profile building module and anomaly detector ... to support
// anomaly-based intrusion detection in addition to the signature-based").
//
// Trains per-client profiles on benign traffic, then scores a held-out mix
// of benign and attack requests, sweeping the decision threshold:
// the detection-rate / false-positive trade-off curve, plus what anomaly
// detection adds over signatures alone (novel attacks with NO signature).
#include <cstdio>

#include "bench_common.h"
#include "http/request.h"
#include "util/strings.h"
#include "ids/anomaly.h"
#include "util/rng.h"
#include "workload/trace.h"

namespace gaa::bench {
namespace {

gaa::ids::RequestFeatures FeaturesOf(const gaa::workload::TraceRequest& r) {
  gaa::ids::RequestFeatures f;
  f.principal = r.client_ip;
  auto parsed = gaa::http::ParseRequest(r.raw);
  if (parsed.ok()) {
    f.path = parsed.request->path;
    f.query_length = static_cast<double>(parsed.request->query.size());
    f.url_depth = static_cast<double>(
        gaa::util::CountChar(parsed.request->path, '/'));
  }
  return f;
}

}  // namespace
}  // namespace gaa::bench

int main() {
  using namespace gaa::bench;
  using gaa::workload::RequestKind;

  PrintHeader("A8: anomaly detector (section 9 future work)");

  // Benign clients with stable habits: train 100 requests each.
  gaa::util::SimulatedClock clock(0);
  gaa::workload::TraceOptions train_options;
  train_options.count = 3000;
  train_options.attack_fraction = 0.0;
  train_options.benign_clients = 16;
  train_options.seed = 11;
  auto training = gaa::workload::TraceGenerator(train_options).Generate();

  // Held-out evaluation set: benign from the same pool + attacks that we
  // FORCE onto benign source addresses (an insider / compromised host —
  // the case signatures alone already handle; anomaly detection must flag
  // the *behaviour* change of a known principal).
  gaa::workload::TraceOptions eval_options = train_options;
  eval_options.count = 600;
  eval_options.seed = 12;
  auto benign_eval = gaa::workload::TraceGenerator(eval_options).Generate();

  gaa::workload::TraceOptions attack_options;
  attack_options.count = 0;
  attack_options.seed = 13;
  gaa::workload::TraceGenerator attack_gen(attack_options);
  std::vector<gaa::workload::TraceRequest> attack_eval;
  gaa::util::Rng rng(14);
  for (int i = 0; i < 200; ++i) {
    auto kind = rng.NextBool(0.5) ? RequestKind::kOverflowInput
                                  : RequestKind::kCgiProbe;
    auto r = attack_gen.Make(kind);
    // Re-home the attack on a trained benign client address.
    r.client_ip = "10.0.0." + std::to_string(1 + rng.NextBelow(16));
    attack_eval.push_back(std::move(r));
  }

  std::printf("training: %zu benign requests over %zu clients; evaluation: "
              "%zu benign + %zu attacks (re-homed to benign sources)\n\n",
              training.size(), static_cast<std::size_t>(16),
              benign_eval.size(), attack_eval.size());

  std::printf("%-10s %14s %14s\n", "threshold", "detection_rate",
              "false_pos_rate");
  for (double threshold : {1.0, 1.5, 2.0, 3.0, 4.0, 6.0}) {
    gaa::ids::AnomalyDetector::Options options;
    options.score_threshold = threshold;
    gaa::ids::AnomalyDetector detector(&clock, options);
    for (const auto& r : training) {
      clock.Advance(gaa::util::kMicrosPerSecond);
      detector.Train(FeaturesOf(r));
    }
    std::size_t tp = 0;
    for (const auto& r : attack_eval) {
      if (detector.IsAnomalous(FeaturesOf(r))) ++tp;
    }
    std::size_t fp = 0;
    for (const auto& r : benign_eval) {
      if (detector.IsAnomalous(FeaturesOf(r))) ++fp;
    }
    std::printf("%-10.1f %13.1f%% %13.1f%%\n", threshold,
                100.0 * static_cast<double>(tp) / attack_eval.size(),
                100.0 * static_cast<double>(fp) / benign_eval.size());
  }
  std::printf(
      "\nshape: a mid-range threshold separates the behaviour change of a\n"
      "compromised benign client from its normal traffic; low thresholds\n"
      "trade false positives for recall (the IDS-tuning knob the paper\n"
      "wanted the GAA-API to consume as an adaptive value).\n");
  return 0;
}
