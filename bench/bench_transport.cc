// E4: sharded multi-reactor transport scaling (DESIGN.md §10).
//
// Drives the full GAA pipeline over real loopback sockets with C keep-alive
// connections issuing R requests each, and sweeps the reactor shard count
// {1, 2, 4} plus an inline-fast-path-off ablation at 4 shards.  Reports
// aggregate RPS and client-observed p50/p99 round-trip latency per
// configuration; the tentpole target is >= 2x RPS at 4 shards vs 1.
//
//   bench_transport [--conns C] [--requests R] [--json out.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "http/request.h"
#include "http/tcp_server.h"

namespace gaa::bench {
namespace {

struct RunResult {
  double seconds = 0;
  double rps = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t inline_served = 0;
};

RunResult DriveLoad(std::uint16_t port, int conns, int requests_per_conn) {
  std::vector<std::vector<double>> per_thread_us(conns);
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> clients;
  clients.reserve(conns);

  auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < conns; ++c) {
    clients.emplace_back([port, requests_per_conn, c, &per_thread_us,
                          &errors] {
      http::TcpClient client(port);
      if (!client.connected()) {
        errors.fetch_add(static_cast<std::uint64_t>(requests_per_conn));
        return;
      }
      std::string raw = http::BuildGetRequest("/index.html");
      auto& samples = per_thread_us[c];
      samples.reserve(static_cast<std::size_t>(requests_per_conn));
      for (int i = 0; i < requests_per_conn; ++i) {
        auto s0 = std::chrono::steady_clock::now();
        auto response = client.RoundTrip(raw);
        auto s1 = std::chrono::steady_clock::now();
        if (!response.ok() ||
            response.value().find("200 OK") == std::string::npos) {
          errors.fetch_add(1);
          continue;
        }
        samples.push_back(
            std::chrono::duration<double, std::micro>(s1 - s0).count());
      }
    });
  }
  for (auto& t : clients) t.join();
  auto t1 = std::chrono::steady_clock::now();

  std::vector<double> all_us;
  for (auto& samples : per_thread_us) {
    all_us.insert(all_us.end(), samples.begin(), samples.end());
  }
  std::sort(all_us.begin(), all_us.end());

  RunResult out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.requests = all_us.size();
  out.errors = errors.load();
  out.rps = out.seconds > 0 ? static_cast<double>(out.requests) / out.seconds
                            : 0;
  if (!all_us.empty()) {
    out.p50_us = all_us[all_us.size() / 2];
    out.p99_us = all_us[std::min(all_us.size() - 1, all_us.size() * 99 / 100)];
  }
  return out;
}

RunResult RunConfig(std::size_t shards, bool inline_fast_path, int conns,
                    int requests_per_conn) {
  web::GaaWebServer::Options options;
  options.use_real_clock = true;  // measuring wall-clock latency
  options.tuning.trace_sample_period = 0;  // tracing off: transport numbers
  web::GaaWebServer gws(http::DocTree::DemoSite(), options);
  if (!gws.SetLocalPolicy("/", "pos_access_right apache *\n").ok()) {
    std::fprintf(stderr, "policy setup failed\n");
    std::exit(1);
  }

  http::TcpServer::Options tcp_options;
  tcp_options.reactor_shards = shards;
  tcp_options.inline_fast_path = inline_fast_path;
  tcp_options.worker_threads = 4;
  tcp_options.max_connections = 4096;
  http::TcpServer tcp(&gws.server(), tcp_options);
  auto started = tcp.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 started.error().ToString().c_str());
    std::exit(1);
  }

  // Short warmup primes the decision memo so the steady state (not the
  // one-time cold misses) is what gets measured.
  DriveLoad(tcp.port(), std::min(conns, 8), 50);

  RunResult result = DriveLoad(tcp.port(), conns, requests_per_conn);
  result.inline_served = tcp.inline_served();
  tcp.Stop();
  return result;
}

int Main(int argc, char** argv) {
  int conns = 64;
  int requests_per_conn = 400;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--conns") conns = std::atoi(argv[i + 1]);
    if (std::string(argv[i]) == "--requests") {
      requests_per_conn = std::atoi(argv[i + 1]);
    }
  }

  struct Config {
    const char* name;
    std::size_t shards;
    bool inline_fast_path;
  };
  const Config configs[] = {
      {"shards_1", 1, true},
      {"shards_2", 2, true},
      {"shards_4", 4, true},
      {"shards_4_no_inline", 4, false},
  };

  JsonReport report("transport");
  report.SetParam("conns", conns);
  report.SetParam("requests_per_conn", requests_per_conn);
  PrintHeader("E4: sharded transport scaling (" + std::to_string(conns) +
              " conns x " + std::to_string(requests_per_conn) + " requests)");
  std::printf("%-20s %10s %10s %10s %10s %12s\n", "config", "rps", "p50_us",
              "p99_us", "errors", "inline");

  double rps_1 = 0, rps_4 = 0;
  for (const Config& config : configs) {
    RunResult r = RunConfig(config.shards, config.inline_fast_path, conns,
                            requests_per_conn);
    std::printf("%-20s %10.0f %10.1f %10.1f %10llu %12llu\n", config.name,
                r.rps, r.p50_us, r.p99_us,
                static_cast<unsigned long long>(r.errors),
                static_cast<unsigned long long>(r.inline_served));
    report.Set(config.name, "rps", r.rps);
    report.Set(config.name, "p50_us", r.p50_us);
    report.Set(config.name, "p99_us", r.p99_us);
    report.Set(config.name, "requests", static_cast<double>(r.requests));
    report.Set(config.name, "errors", static_cast<double>(r.errors));
    report.Set(config.name, "inline_served",
               static_cast<double>(r.inline_served));
    if (std::string(config.name) == "shards_1") rps_1 = r.rps;
    if (std::string(config.name) == "shards_4") rps_4 = r.rps;
  }

  double speedup = rps_1 > 0 ? rps_4 / rps_1 : 0;
  std::printf("\n4-shard speedup over 1 shard: %.2fx\n", speedup);
  report.Set("summary", "speedup_4_vs_1", speedup);

  if (!report.WriteFile(JsonPathFromArgs(argc, argv))) return 1;
  return 0;
}

}  // namespace
}  // namespace gaa::bench

int main(int argc, char** argv) { return gaa::bench::Main(argc, argv); }
