// A3 — microbenchmark: EACL evaluation cost vs policy size.
//
// Sweeps the number of entries and the number of pre-conditions per entry;
// also measures the parser.  google-benchmark binary.
#include <benchmark/benchmark.h>

#include "conditions/builtin.h"
#include "eacl/parser.h"
#include "gaa/api.h"
#include "gaa/policy_store.h"
#include "gaa/system_state.h"
#include "testing_support.h"

namespace gaa::bench {
namespace {

std::string PolicyText(int entries, int conds_per_entry) {
  std::string text;
  for (int i = 0; i < entries - 1; ++i) {
    text += "neg_access_right apache *\n";
    for (int c = 0; c < conds_per_entry; ++c) {
      text += "pre_cond_regex gnu *no-match-" + std::to_string(i) + "-" +
              std::to_string(c) + "*\n";
    }
  }
  text += "pos_access_right apache *\n";
  return text;
}

void BM_EaclParse(benchmark::State& state) {
  std::string text = PolicyText(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    auto parsed = eacl::ParseEacl(text);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EaclParse)->RangeMultiplier(4)->Range(1, 512)->Complexity();

void BM_CheckAuthorization(benchmark::State& state) {
  BenchRig rig;
  core::PolicyStore store;
  core::GaaApi api(&store, rig.services);
  core::RoutineCatalog catalog;
  cond::RegisterBuiltinRoutines(catalog);
  if (!api.Initialize(catalog, cond::DefaultConfigText(), "").ok()) {
    state.SkipWithError("init failed");
    return;
  }
  if (!store
           .SetLocalPolicy("/",
                           PolicyText(static_cast<int>(state.range(0)),
                                      static_cast<int>(state.range(1))))
           .ok()) {
    state.SkipWithError("policy failed");
    return;
  }
  auto composed = store.PoliciesFor("/index.html");
  core::RequestedRight right{"apache", "GET"};
  for (auto _ : state) {
    core::RequestContext ctx = MakeBenchContext();
    auto authz = api.CheckAuthorization(composed, right, ctx);
    benchmark::DoNotOptimize(authz);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckAuthorization)
    ->ArgsProduct({{1, 8, 64, 512}, {1, 4, 8}});

void BM_PolicyRetrievalAndCompose(benchmark::State& state) {
  core::PolicyStore store;
  if (!store.AddSystemPolicy("eacl_mode 1\nneg_access_right * *\n"
                             "pre_cond_system_threat_level local =high\n")
           .ok() ||
      !store.SetLocalPolicy("/", PolicyText(static_cast<int>(state.range(0)), 2))
           .ok()) {
    state.SkipWithError("policy failed");
    return;
  }
  for (auto _ : state) {
    auto composed = store.PoliciesFor("/a/b/c/doc.html");
    benchmark::DoNotOptimize(composed);
  }
}
BENCHMARK(BM_PolicyRetrievalAndCompose)->RangeMultiplier(4)->Range(1, 256);

}  // namespace
}  // namespace gaa::bench

BENCHMARK_MAIN();
