// E2 — the §7.1 network-lockdown deployment: behaviour matrix and the cost
// of threat-adaptive policy evaluation.
//
// Prints the decision matrix (threat level x credential state -> HTTP
// status) that the §7.1 policies produce, then measures request throughput
// at each threat level — the "policy gets stricter, requests get slower or
// blocked" series.
#include <cstdio>

#include "bench_common.h"
#include "util/clock.h"

namespace gaa::bench {
namespace {

const char* StatusLabel(gaa::http::StatusCode code) {
  switch (code) {
    case gaa::http::StatusCode::kOk:
      return "200_allow";
    case gaa::http::StatusCode::kUnauthorized:
      return "401_auth";
    case gaa::http::StatusCode::kForbidden:
      return "403_deny";
    default:
      return "other";
  }
}

}  // namespace
}  // namespace gaa::bench

int main() {
  using namespace gaa::bench;
  using gaa::core::ThreatLevel;

  PrintHeader("E2: section 7.1 — network lockdown");

  gaa::web::GaaWebServer::Options options;
  options.use_real_clock = true;
  options.notification_latency_us = 0;
  gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);
  server.AddUser("alice", "wonder");
  if (!server.AddSystemPolicy(LockdownSystemPolicy()).ok() ||
      !server.SetLocalPolicy("/", LockdownLocalPolicy()).ok()) {
    std::fprintf(stderr, "policy setup failed\n");
    return 1;
  }

  const ThreatLevel levels[] = {ThreatLevel::kLow, ThreatLevel::kMedium,
                                ThreatLevel::kHigh};
  auto credentials =
      std::make_pair(std::string("alice"), std::string("wonder"));
  auto bad_credentials =
      std::make_pair(std::string("alice"), std::string("guess"));

  std::printf("decision matrix (request: GET /index.html):\n");
  std::printf("%-10s %-14s %-14s %-14s\n", "threat", "anonymous",
              "bad_password", "authenticated");
  for (ThreatLevel level : levels) {
    server.state().SetThreatLevel(level);
    auto anon = server.Get("/index.html", "10.0.0.1");
    auto bad = server.Get("/index.html", "10.0.0.1", bad_credentials);
    auto good = server.Get("/index.html", "10.0.0.1", credentials);
    std::printf("%-10s %-14s %-14s %-14s\n",
                gaa::core::ThreatLevelName(level), StatusLabel(anon.status),
                StatusLabel(bad.status), StatusLabel(good.status));
  }
  std::printf("expected: low: allow/allow/allow; medium: auth/auth/allow; "
              "high: deny/deny/deny\n");

  // --- evaluation cost per threat level --------------------------------------
  std::printf("\nper-request policy-evaluation latency by threat level "
              "(authenticated client, 2000 requests each):\n");
  std::printf("%-10s %12s %12s %12s %14s\n", "threat", "mean_ms", "p50_ms",
              "p95_ms", "requests/sec");
  for (ThreatLevel level : levels) {
    server.state().SetThreatLevel(level);
    std::vector<double> samples;
    gaa::util::Stopwatch run;
    for (int i = 0; i < 2000; ++i) {
      gaa::util::Stopwatch watch;
      (void)server.Get("/index.html", "10.0.0.1", credentials);
      samples.push_back(watch.ElapsedMs());
    }
    double elapsed_s = run.ElapsedUs() / 1e6;
    Stats s = Summarize(std::move(samples));
    std::printf("%-10s %12.5f %12.5f %12.5f %14.0f\n",
                gaa::core::ThreatLevelName(level), s.mean_ms, s.p50_ms,
                s.p95_ms, 2000.0 / elapsed_s);
  }
  std::printf("\nshape: medium costs slightly more than low (extra identity "
              "condition + Basic verification); high is cheapest (mandatory "
              "deny short-circuits before local policy)\n");
  return 0;
}
