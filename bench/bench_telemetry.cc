// A9 — telemetry overhead: the instrumentation must not perturb what it
// measures.  The registry's increment path is lock-free (sharded relaxed
// atomics, copy-on-write lookup table), so the cost of wiring telemetry
// through the whole pipeline should be noise.
//
// Two angles:
//   * primitives — ns/op for counter increments (single-threaded and
//     8-way contended on ONE counter) and histogram records;
//   * end-to-end — req/s through the full GaaWebServer pipeline with
//     telemetry wired everywhere vs detached entirely
//     (Options::enable_telemetry = false), reporting the regression.
//
// For a compile-time baseline, configure with -DGAA_TELEMETRY_NOOP=ON:
// every mutation compiles to nothing and this bench reports the residual
// cost of the call sites themselves.  The banner says which build this is.
#include <cstdio>

#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "telemetry/metrics.h"
#include "util/clock.h"

namespace gaa::bench {
namespace {

constexpr int kPrimitiveOps = 8'000'000;
constexpr int kThreads = 8;
constexpr int kRequests = 80'000;

double CounterSingleThreadNs() {
  telemetry::MetricRegistry registry;
  telemetry::Counter* counter = registry.GetCounter("bench_counter");
  util::Stopwatch watch;
  for (int i = 0; i < kPrimitiveOps; ++i) counter->Inc();
  return static_cast<double>(watch.ElapsedUs()) * 1000.0 / kPrimitiveOps;
}

double CounterContendedNs() {
  telemetry::MetricRegistry registry;
  telemetry::Counter* counter = registry.GetCounter("bench_counter");
  const int per_thread = kPrimitiveOps / kThreads;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  util::Stopwatch watch;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, per_thread] {
      for (int i = 0; i < per_thread; ++i) counter->Inc();
    });
  }
  for (auto& t : threads) t.join();
  double ns = static_cast<double>(watch.ElapsedUs()) * 1000.0 /
              (static_cast<double>(per_thread) * kThreads);
#ifndef GAA_TELEMETRY_NOOP
  if (counter->Value() !=
      static_cast<std::uint64_t>(per_thread) * kThreads) {
    std::fprintf(stderr, "counter lost updates under contention!\n");
    std::exit(1);
  }
#endif
  return ns;
}

double HistogramRecordNs() {
  telemetry::MetricRegistry registry;
  telemetry::Histogram* hist = registry.GetHistogram("bench_latency_us");
  util::Stopwatch watch;
  for (int i = 0; i < kPrimitiveOps; ++i) {
    hist->Record(static_cast<std::uint64_t>(i % 500'000));
  }
  return static_cast<double>(watch.ElapsedUs()) * 1000.0 / kPrimitiveOps;
}

std::unique_ptr<web::GaaWebServer> MakeServer(bool enable_telemetry) {
  web::GaaWebServer::Options options;
  options.use_real_clock = true;
  options.enable_telemetry = enable_telemetry;
  auto server = std::make_unique<web::GaaWebServer>(http::DocTree::DemoSite(),
                                                    options);
  if (!server->SetLocalPolicy("/", "pos_access_right apache *\n").ok()) {
    std::fprintf(stderr, "policy setup failed\n");
    std::exit(1);
  }
  return server;
}

/// Time `n` requests; returns elapsed milliseconds.
double RunRequests(web::GaaWebServer& server, int n) {
  std::string raw = http::BuildGetRequest("/index.html");
  auto ip = util::Ipv4Address::Parse("10.1.2.3").value();
  util::Stopwatch watch;
  for (int i = 0; i < n; ++i) {
    (void)server.server().HandleText(raw, ip);
  }
  return watch.ElapsedMs();
}

}  // namespace
}  // namespace gaa::bench

int main(int argc, char** argv) {
  using namespace gaa::bench;

  JsonReport report;
  const std::string json_path = JsonPathFromArgs(argc, argv);

#ifdef GAA_TELEMETRY_NOOP
  PrintHeader("A9: telemetry overhead (GAA_TELEMETRY_NOOP build)");
#else
  PrintHeader("A9: telemetry overhead");
#endif

  double single_ns = CounterSingleThreadNs();
  double contended_ns = CounterContendedNs();
  double record_ns = HistogramRecordNs();
  std::printf("counter inc, 1 thread:            %8.2f ns/op\n", single_ns);
  std::printf("counter inc, %d threads (shared):  %8.2f ns/op\n", kThreads,
              contended_ns);
  std::printf("histogram record, 1 thread:       %8.2f ns/op\n", record_ns);
  report.Set("primitives", "counter_inc_ns", single_ns);
  report.Set("primitives", "counter_inc_contended_ns", contended_ns);
  report.Set("primitives", "histogram_record_ns", record_ns);

  auto off = MakeServer(/*enable_telemetry=*/false);
  auto metrics_only = MakeServer(/*enable_telemetry=*/true);
  metrics_only->telemetry().set_tracing_enabled(false);
  auto sampled = MakeServer(/*enable_telemetry=*/true);
  sampled->telemetry().tracer().set_sample_period(16);
  auto on = MakeServer(/*enable_telemetry=*/true);

  // Interleave the configurations in short rounds so clock-frequency and
  // cache drift over the run hits every mode equally; back-to-back blocks
  // systematically flatter whichever config runs first.
  struct Mode {
    gaa::web::GaaWebServer* server;
    double total_ms = 0;
  };
  Mode modes[] = {{off.get()}, {metrics_only.get()}, {sampled.get()},
                  {on.get()}};
  constexpr int kRounds = 10;
  const int per_round = kRequests / kRounds;
  for (Mode& mode : modes) (void)RunRequests(*mode.server, 500);  // warm
  for (int round = 0; round < kRounds; ++round) {
    for (Mode& mode : modes) {
      mode.total_ms += RunRequests(*mode.server, per_round);
    }
  }
  auto rps = [per_round](const Mode& mode) {
    return kRounds * per_round / (mode.total_ms / 1000.0);
  };
  double off_rps = rps(modes[0]);
  double metrics_rps = rps(modes[1]);
  double sampled_rps = rps(modes[2]);
  double on_rps = rps(modes[3]);
  double metrics_pct = 100.0 * (off_rps - metrics_rps) / off_rps;
  double sampled_pct = 100.0 * (off_rps - sampled_rps) / off_rps;
  double overhead_pct = 100.0 * (off_rps - on_rps) / off_rps;
  std::printf("\nfull pipeline, %d x GET /index.html:\n", kRequests);
  std::printf("  telemetry detached:       %10.0f req/s\n", off_rps);
  std::printf("  metrics, tracing off:     %10.0f req/s  (%+.1f%%, "
              "acceptance: < 5%%)\n",
              metrics_rps, metrics_pct);
  std::printf("  metrics + 1/16 sampled\n"
              "  tracing:                  %10.0f req/s  (%+.1f%%, "
              "acceptance: < 5%%)\n",
              sampled_rps, sampled_pct);
  std::printf("  metrics + every-request\n"
              "  tracing:                  %10.0f req/s  (%+.1f%%)\n",
              on_rps, overhead_pct);
  report.Set("end_to_end", "rps_telemetry_off", off_rps);
  report.Set("end_to_end", "rps_metrics_only", metrics_rps);
  report.Set("end_to_end", "rps_sampled_tracing", sampled_rps);
  report.Set("end_to_end", "rps_telemetry_on", on_rps);
  report.Set("end_to_end", "metrics_overhead_pct", metrics_pct);
  report.Set("end_to_end", "sampled_overhead_pct", sampled_pct);
  report.Set("end_to_end", "overhead_pct", overhead_pct);
  report.SetHistogram("end_to_end_latency",
                      on->telemetry()
                          .registry()
                          .GetHistogram("http_request_latency_us")
                          ->TakeSnapshot());
  return report.WriteFile(json_path) ? 0 : 1;
}
