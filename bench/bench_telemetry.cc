// A9 — telemetry overhead: the instrumentation must not perturb what it
// measures.  The registry's increment path is lock-free (sharded relaxed
// atomics, copy-on-write lookup table), so the cost of wiring telemetry
// through the whole pipeline should be noise.
//
// Two angles:
//   * primitives — ns/op for counter increments (single-threaded and
//     8-way contended on ONE counter) and histogram records;
//   * end-to-end — req/s through the full GaaWebServer pipeline with
//     telemetry wired everywhere vs detached entirely
//     (Options::enable_telemetry = false), reporting the regression.
//
// For a compile-time baseline, configure with -DGAA_TELEMETRY_NOOP=ON:
// every mutation compiles to nothing and this bench reports the residual
// cost of the call sites themselves.  The banner says which build this is.
#include <cstdio>

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "audit/audit_stream.h"
#include "bench_common.h"
#include "telemetry/metrics.h"
#include "util/clock.h"

namespace gaa::bench {
namespace {

constexpr int kPrimitiveOps = 8'000'000;
constexpr int kThreads = 8;
constexpr int kRequests = 80'000;

double CounterSingleThreadNs() {
  telemetry::MetricRegistry registry;
  telemetry::Counter* counter = registry.GetCounter("bench_counter");
  util::Stopwatch watch;
  for (int i = 0; i < kPrimitiveOps; ++i) counter->Inc();
  return static_cast<double>(watch.ElapsedUs()) * 1000.0 / kPrimitiveOps;
}

double CounterContendedNs() {
  telemetry::MetricRegistry registry;
  telemetry::Counter* counter = registry.GetCounter("bench_counter");
  const int per_thread = kPrimitiveOps / kThreads;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  util::Stopwatch watch;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, per_thread] {
      for (int i = 0; i < per_thread; ++i) counter->Inc();
    });
  }
  for (auto& t : threads) t.join();
  double ns = static_cast<double>(watch.ElapsedUs()) * 1000.0 /
              (static_cast<double>(per_thread) * kThreads);
#ifndef GAA_TELEMETRY_NOOP
  if (counter->Value() !=
      static_cast<std::uint64_t>(per_thread) * kThreads) {
    std::fprintf(stderr, "counter lost updates under contention!\n");
    std::exit(1);
  }
#endif
  return ns;
}

double HistogramRecordNs() {
  telemetry::MetricRegistry registry;
  telemetry::Histogram* hist = registry.GetHistogram("bench_latency_us");
  util::Stopwatch watch;
  for (int i = 0; i < kPrimitiveOps; ++i) {
    hist->Record(static_cast<std::uint64_t>(i % 500'000));
  }
  return static_cast<double>(watch.ElapsedUs()) * 1000.0 / kPrimitiveOps;
}

std::unique_ptr<web::GaaWebServer> MakeServer(bool enable_telemetry) {
  web::GaaWebServer::Options options;
  options.use_real_clock = true;
  options.enable_telemetry = enable_telemetry;
  auto server = std::make_unique<web::GaaWebServer>(http::DocTree::DemoSite(),
                                                    options);
  if (!server->SetLocalPolicy("/", "pos_access_right apache *\n").ok()) {
    std::fprintf(stderr, "policy setup failed\n");
    std::exit(1);
  }
  return server;
}

/// Time `n` requests; returns elapsed milliseconds.
double RunRequests(web::GaaWebServer& server, int n) {
  std::string raw = http::BuildGetRequest("/index.html");
  auto ip = util::Ipv4Address::Parse("10.1.2.3").value();
  util::Stopwatch watch;
  for (int i = 0; i < n; ++i) {
    (void)server.server().HandleText(raw, ip);
  }
  return watch.ElapsedMs();
}

// --- audit pipeline mode -----------------------------------------------------

enum class AuditMode {
  kDetached,       ///< telemetry off, no stream — the floor
  kTelemetryOnly,  ///< metrics + tracing, no stream/watchdog — the baseline
  kFullPipeline,   ///< + JSONL audit stream + slow-request watchdog
};

/// Server for the audit-pipeline comparison: a 50/50 granted/denied policy
/// so half the requests produce attributed decision records.
std::unique_ptr<web::GaaWebServer> MakeAuditServer(AuditMode mode,
                                                   const std::string& path) {
  web::GaaWebServer::Options options;
  options.use_real_clock = true;
  options.enable_telemetry = mode != AuditMode::kDetached;
  if (mode == AuditMode::kFullPipeline) {
    options.audit_stream.path = path;
    options.watchdog.enabled = true;
    options.watchdog.deadline_ms = 1000;
    options.watchdog.poll_interval_ms = 100;
  }
  auto server = std::make_unique<web::GaaWebServer>(http::DocTree::DemoSite(),
                                                    options);
  if (!server->SetLocalPolicy("/", "pos_access_right apache *\n").ok() ||
      !server->SetLocalPolicy("/private", "neg_access_right apache *\n")
           .ok()) {
    std::fprintf(stderr, "policy setup failed\n");
    std::exit(1);
  }
  return server;
}

/// Time `n` requests alternating granted and denied; returns elapsed ms.
double RunMixedRequests(web::GaaWebServer& server, int n) {
  std::string granted = http::BuildGetRequest("/index.html");
  std::string denied = http::BuildGetRequest("/private/report.html");
  auto ip = util::Ipv4Address::Parse("10.1.2.3").value();
  util::Stopwatch watch;
  for (int i = 0; i < n; ++i) {
    (void)server.server().HandleText(i % 2 == 0 ? granted : denied, ip);
  }
  return watch.ElapsedMs();
}

/// A sink wedged inside Write() until released — the fault-injection disk.
class WedgedSink final : public audit::AuditStreamSink {
 public:
  bool Write(const std::string&) override {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return released_; });
    return true;
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
};

constexpr int kRecordOps = 200'000;

/// ns/op of AuditLog::Record() itself — the request-thread cost the async
/// design is supposed to bound.  With `streamed`, the sink is wedged and the
/// queue oversized so every Record() runs the full enqueue path (lock, copy,
/// push) with zero drain interference: pure producer-side cost.
double RecordPathNs(bool streamed) {
  util::SimulatedClock clock(0);
  audit::AuditLog log(&clock);
  WedgedSink* wedge = nullptr;
  if (streamed) {
    auto sink = std::make_unique<WedgedSink>();
    wedge = sink.get();
    audit::AuditLog::StreamOptions opts;
    opts.queue_capacity = kRecordOps + 64;
    log.AttachStream(std::move(sink), opts);
  }
  core::AuditEvent event;
  event.category = "decision";
  event.message = "authz=NO right=apache:GET object=/private/report.html";
  event.client = "10.1.2.3";
  event.decision = "no";
  event.policy = "local:/private";
  event.entry = 0;
  util::Stopwatch watch;
  for (int i = 0; i < kRecordOps; ++i) log.Record(event);
  double ns = static_cast<double>(watch.ElapsedUs()) * 1000.0 / kRecordOps;
  if (wedge != nullptr) wedge->Release();
  return ns;
}

}  // namespace
}  // namespace gaa::bench

int main(int argc, char** argv) {
  using namespace gaa::bench;

  JsonReport report("telemetry");
  const std::string json_path = JsonPathFromArgs(argc, argv);

#ifdef GAA_TELEMETRY_NOOP
  PrintHeader("A9: telemetry overhead (GAA_TELEMETRY_NOOP build)");
#else
  PrintHeader("A9: telemetry overhead");
#endif

  double single_ns = CounterSingleThreadNs();
  double contended_ns = CounterContendedNs();
  double record_ns = HistogramRecordNs();
  std::printf("counter inc, 1 thread:            %8.2f ns/op\n", single_ns);
  std::printf("counter inc, %d threads (shared):  %8.2f ns/op\n", kThreads,
              contended_ns);
  std::printf("histogram record, 1 thread:       %8.2f ns/op\n", record_ns);
  report.Set("primitives", "counter_inc_ns", single_ns);
  report.Set("primitives", "counter_inc_contended_ns", contended_ns);
  report.Set("primitives", "histogram_record_ns", record_ns);

  auto off = MakeServer(/*enable_telemetry=*/false);
  auto metrics_only = MakeServer(/*enable_telemetry=*/true);
  metrics_only->telemetry().set_tracing_enabled(false);
  auto sampled = MakeServer(/*enable_telemetry=*/true);
  sampled->telemetry().tracer().set_sample_period(16);
  auto on = MakeServer(/*enable_telemetry=*/true);

  // Interleave the configurations in short rounds so clock-frequency and
  // cache drift over the run hits every mode equally; back-to-back blocks
  // systematically flatter whichever config runs first.
  struct Mode {
    gaa::web::GaaWebServer* server;
    double total_ms = 0;
  };
  Mode modes[] = {{off.get()}, {metrics_only.get()}, {sampled.get()},
                  {on.get()}};
  constexpr int kRounds = 10;
  const int per_round = kRequests / kRounds;
  for (Mode& mode : modes) (void)RunRequests(*mode.server, 500);  // warm
  for (int round = 0; round < kRounds; ++round) {
    for (Mode& mode : modes) {
      mode.total_ms += RunRequests(*mode.server, per_round);
    }
  }
  auto rps = [per_round](const Mode& mode) {
    return kRounds * per_round / (mode.total_ms / 1000.0);
  };
  double off_rps = rps(modes[0]);
  double metrics_rps = rps(modes[1]);
  double sampled_rps = rps(modes[2]);
  double on_rps = rps(modes[3]);
  double metrics_pct = 100.0 * (off_rps - metrics_rps) / off_rps;
  double sampled_pct = 100.0 * (off_rps - sampled_rps) / off_rps;
  double overhead_pct = 100.0 * (off_rps - on_rps) / off_rps;
  std::printf("\nfull pipeline, %d x GET /index.html:\n", kRequests);
  std::printf("  telemetry detached:       %10.0f req/s\n", off_rps);
  std::printf("  metrics, tracing off:     %10.0f req/s  (%+.1f%%, "
              "acceptance: < 5%%)\n",
              metrics_rps, metrics_pct);
  std::printf("  metrics + 1/16 sampled\n"
              "  tracing:                  %10.0f req/s  (%+.1f%%, "
              "acceptance: < 5%%)\n",
              sampled_rps, sampled_pct);
  std::printf("  metrics + every-request\n"
              "  tracing:                  %10.0f req/s  (%+.1f%%)\n",
              on_rps, overhead_pct);
  report.Set("end_to_end", "rps_telemetry_off", off_rps);
  report.Set("end_to_end", "rps_metrics_only", metrics_rps);
  report.Set("end_to_end", "rps_sampled_tracing", sampled_rps);
  report.Set("end_to_end", "rps_telemetry_on", on_rps);
  report.Set("end_to_end", "metrics_overhead_pct", metrics_pct);
  report.Set("end_to_end", "sampled_overhead_pct", sampled_pct);
  report.Set("end_to_end", "overhead_pct", overhead_pct);
  report.SetHistogram("end_to_end_latency",
                      on->telemetry()
                          .registry()
                          .GetHistogram("http_request_latency_us")
                          ->TakeSnapshot());

  // --- audit pipeline: full observability stack vs everything detached ------
  // 50/50 granted/denied traffic so half the requests emit attributed
  // decision records into the async JSONL stream, with the watchdog's
  // monitor thread live the whole time.
  const std::string stream_path = "/tmp/bench_audit_stream.jsonl";
  std::remove(stream_path.c_str());
  auto plain = MakeAuditServer(AuditMode::kDetached, "");
  auto traced = MakeAuditServer(AuditMode::kTelemetryOnly, "");
  auto piped = MakeAuditServer(AuditMode::kFullPipeline, stream_path);
  Mode audit_modes[] = {{plain.get()}, {traced.get()}, {piped.get()}};
  for (Mode& mode : audit_modes) (void)RunMixedRequests(*mode.server, 500);
  for (int round = 0; round < kRounds; ++round) {
    for (Mode& mode : audit_modes) {
      mode.total_ms += RunMixedRequests(*mode.server, per_round);
    }
  }
  double plain_rps = rps(audit_modes[0]);
  double traced_rps = rps(audit_modes[1]);
  double piped_rps = rps(audit_modes[2]);
  // The acceptance target is the *stream's* cost: full pipeline vs the same
  // telemetry config without it.  (Tracing cost is priced separately above.)
  // On a single-core host this figure also absorbs the drain thread's
  // format+write CPU — there is no spare core to hide it on — so the
  // request-path ns/op below is the cleaner read on the blocking contract.
  double stream_pct = 100.0 * (traced_rps - piped_rps) / traced_rps;
  double total_pct = 100.0 * (plain_rps - piped_rps) / plain_rps;
  piped->audit_log().Flush();
  unsigned cores = std::thread::hardware_concurrency();
  std::printf("\naudit pipeline, %d x 50/50 granted/denied (%u core%s):\n",
              kRequests, cores, cores == 1 ? "" : "s");
  std::printf("  everything detached:      %10.0f req/s\n", plain_rps);
  std::printf("  telemetry, no stream:     %10.0f req/s\n", traced_rps);
  std::printf("  + stream + watchdog:      %10.0f req/s  (stream %+.1f%%, "
              "acceptance: < 5%% with a spare core; total %+.1f%%)\n",
              piped_rps, stream_pct, total_pct);
  std::printf("  stream records written:   %10llu   dropped: %llu\n",
              static_cast<unsigned long long>(piped->audit_log().stream_written()),
              static_cast<unsigned long long>(piped->audit_log().stream_dropped()));
  report.Set("audit_pipeline", "rps_detached", plain_rps);
  report.Set("audit_pipeline", "rps_telemetry_only", traced_rps);
  report.Set("audit_pipeline", "rps_full_pipeline", piped_rps);
  report.Set("audit_pipeline", "stream_overhead_pct", stream_pct);
  report.Set("audit_pipeline", "total_overhead_pct", total_pct);
  report.Set("audit_pipeline", "stream_written",
             static_cast<double>(piped->audit_log().stream_written()));
  report.Set("audit_pipeline", "stream_dropped",
             static_cast<double>(piped->audit_log().stream_dropped()));
  std::remove(stream_path.c_str());

  double record_plain_ns = RecordPathNs(/*streamed=*/false);
  double record_stream_ns = RecordPathNs(/*streamed=*/true);
  std::printf("  Record() w/o stream:      %10.2f ns/op\n", record_plain_ns);
  std::printf("  Record() with stream:     %10.2f ns/op  (request-thread "
              "cost only; the write happens on the drain thread)\n",
              record_stream_ns);
  report.Set("audit_pipeline", "record_path_ns", record_plain_ns);
  report.Set("audit_pipeline", "record_path_streamed_ns", record_stream_ns);

  // --- fault injection: a wedged sink must not slow the request path --------
  // The sink blocks forever inside Write(); Record() keeps its non-blocking
  // contract by dropping once the bounded queue fills, and the drop count
  // proves the backpressure path ran.
  auto wedged_server = MakeAuditServer(AuditMode::kFullPipeline, "");
  auto wedged_sink = std::make_unique<WedgedSink>();
  WedgedSink* wedge = wedged_sink.get();
  gaa::audit::AuditLog::StreamOptions wedge_opts;
  wedge_opts.queue_capacity = 64;
  wedged_server->audit_log().AttachStream(std::move(wedged_sink), wedge_opts);
  constexpr int kWedgedRequests = 20'000;
  double wedged_ms = RunMixedRequests(*wedged_server, kWedgedRequests);
  double wedged_rps = kWedgedRequests / (wedged_ms / 1000.0);
  double wedged_pct = 100.0 * (piped_rps - wedged_rps) / piped_rps;
  std::uint64_t wedged_drops = wedged_server->audit_log().stream_dropped();
  std::printf("\nfault injection, %d requests against a hung audit disk:\n",
              kWedgedRequests);
  std::printf("  throughput:               %10.0f req/s  (%+.1f%% vs the "
              "healthy pipeline; must stay in the same league)\n",
              wedged_rps, wedged_pct);
  std::printf("  records dropped:          %10llu   (> 0 proves the "
              "non-blocking path)\n",
              static_cast<unsigned long long>(wedged_drops));
  report.Set("audit_pipeline", "wedged_sink_rps", wedged_rps);
  report.Set("audit_pipeline", "wedged_sink_dropped",
             static_cast<double>(wedged_drops));
  if (wedged_drops == 0) {
    std::fprintf(stderr,
                 "wedged sink produced no drops — Record() may be blocking\n");
    return 1;
  }
  wedge->Release();  // unwedge so the writer's drain thread can shut down

  return report.WriteFile(json_path) ? 0 : 1;
}
