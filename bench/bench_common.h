// Shared helpers for the paper-reproduction benchmark harnesses.
#pragma once

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"
#include "telemetry/metrics.h"
#include "util/clock.h"

namespace gaa::bench {

/// The §7.1 system-wide policy (narrow composition, lockdown at high).
inline const char* LockdownSystemPolicy() {
  return R"(
eacl_mode 1
neg_access_right * *
pre_cond_system_threat_level local =high
)";
}

/// The §7.1 local policy plus a normal-operation entry.
inline const char* LockdownLocalPolicy() {
  return R"(
pos_access_right apache *
pre_cond_system_threat_level local >low
pre_cond_accessid USER apache *
pos_access_right apache *
pre_cond_system_threat_level local =low
)";
}

/// The §7.2 local policy (signatures, notify, blacklist update, fallthrough
/// grant) — the configuration the paper measured (§8: "we used the
/// system-wide and local policy files shown in Sections 7.1 and 7.2").
inline const char* IntrusionLocalPolicy() {
  return R"(
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
rr_cond_notify local on:failure/sysadmin/info:cgiexploit
rr_cond_update_log local on:failure/BadGuys/info:ip
pos_access_right apache *
)";
}

/// The §7.2 system-wide policy (BadGuys blacklist).
inline const char* IntrusionSystemPolicy() {
  return R"(
eacl_mode 1
neg_access_right * *
pre_cond_accessid GROUP local BadGuys
)";
}

struct Stats {
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
};

inline Stats Summarize(std::vector<double> samples_ms) {
  Stats s;
  if (samples_ms.empty()) return s;
  std::sort(samples_ms.begin(), samples_ms.end());
  s.mean_ms = std::accumulate(samples_ms.begin(), samples_ms.end(), 0.0) /
              static_cast<double>(samples_ms.size());
  s.p50_ms = samples_ms[samples_ms.size() / 2];
  s.p95_ms = samples_ms[samples_ms.size() * 95 / 100];
  s.min_ms = samples_ms.front();
  s.max_ms = samples_ms.back();
  return s;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Value of the shared `--json <path>` flag (empty = no JSON output).
inline std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "";
}

/// Machine-readable bench results for CI artifacts.  Every E/A-series
/// bench emits the same envelope so downstream tooling can consume any
/// BENCH_*.json without per-bench parsing:
///
///   { "bench":   "<harness name>",
///     "params":  { <knobs the run was invoked with> },
///     "metrics": { "<section>": { <numeric results> }, ... } }
///
/// Sections and keys preserve insertion order so artifacts diff cleanly
/// run-to-run.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name = "")
      : bench_name_(std::move(bench_name)) {}

  /// Record one invocation knob (request counts, rates, flags) under
  /// "params" — the provenance half of the envelope.
  void SetParam(const std::string& key, double value) {
    params_.emplace_back(key, value);
  }

  void Set(const std::string& section, const std::string& key, double value) {
    SectionRef(section).emplace_back(key, value);
  }

  void SetStats(const std::string& section, const Stats& stats) {
    Set(section, "mean_ms", stats.mean_ms);
    Set(section, "p50_ms", stats.p50_ms);
    Set(section, "p95_ms", stats.p95_ms);
    Set(section, "min_ms", stats.min_ms);
    Set(section, "max_ms", stats.max_ms);
  }

  /// Latency percentiles straight from a telemetry histogram — the same
  /// numbers /__status exposes, so CI artifacts and scrapes agree.  The
  /// p999 and max come from the histogram's tracked maximum, so the tail
  /// is not truncated to the last finite bucket bound.
  void SetHistogram(const std::string& section,
                    const telemetry::Histogram::Snapshot& snap) {
    Set(section, "count", static_cast<double>(snap.count));
    Set(section, "mean_us", snap.Mean());
    Set(section, "p50_us", snap.Quantile(0.50));
    Set(section, "p90_us", snap.Quantile(0.90));
    Set(section, "p99_us", snap.Quantile(0.99));
    Set(section, "p999_us", snap.Quantile(0.999));
    Set(section, "max_us", static_cast<double>(snap.max));
  }

  /// Write to `path`; a no-op when the path is empty (flag not given).
  bool WriteFile(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"%s\",\n", bench_name_.c_str());
    std::fprintf(f, "  \"params\": {");
    for (std::size_t i = 0; i < params_.size(); ++i) {
      std::fprintf(f, "%s\"%s\": %.6g", i == 0 ? "" : ", ",
                   params_[i].first.c_str(), params_[i].second);
    }
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"metrics\": {\n");
    for (std::size_t s = 0; s < sections_.size(); ++s) {
      std::fprintf(f, "    \"%s\": {", sections_[s].first.c_str());
      const auto& entries = sections_[s].second;
      for (std::size_t i = 0; i < entries.size(); ++i) {
        std::fprintf(f, "%s\"%s\": %.6g", i == 0 ? "" : ", ",
                     entries[i].first.c_str(), entries[i].second);
      }
      std::fprintf(f, "}%s\n", s + 1 < sections_.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  using Section = std::vector<std::pair<std::string, double>>;

  Section& SectionRef(const std::string& name) {
    for (auto& [existing, entries] : sections_) {
      if (existing == name) return entries;
    }
    sections_.emplace_back(name, Section{});
    return sections_.back().second;
  }

  std::string bench_name_;
  Section params_;
  std::vector<std::pair<std::string, Section>> sections_;
};

}  // namespace gaa::bench
