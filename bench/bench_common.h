// Shared helpers for the paper-reproduction benchmark harnesses.
#pragma once

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"
#include "util/clock.h"

namespace gaa::bench {

/// The §7.1 system-wide policy (narrow composition, lockdown at high).
inline const char* LockdownSystemPolicy() {
  return R"(
eacl_mode 1
neg_access_right * *
pre_cond_system_threat_level local =high
)";
}

/// The §7.1 local policy plus a normal-operation entry.
inline const char* LockdownLocalPolicy() {
  return R"(
pos_access_right apache *
pre_cond_system_threat_level local >low
pre_cond_accessid USER apache *
pos_access_right apache *
pre_cond_system_threat_level local =low
)";
}

/// The §7.2 local policy (signatures, notify, blacklist update, fallthrough
/// grant) — the configuration the paper measured (§8: "we used the
/// system-wide and local policy files shown in Sections 7.1 and 7.2").
inline const char* IntrusionLocalPolicy() {
  return R"(
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
rr_cond_notify local on:failure/sysadmin/info:cgiexploit
rr_cond_update_log local on:failure/BadGuys/info:ip
pos_access_right apache *
)";
}

/// The §7.2 system-wide policy (BadGuys blacklist).
inline const char* IntrusionSystemPolicy() {
  return R"(
eacl_mode 1
neg_access_right * *
pre_cond_accessid GROUP local BadGuys
)";
}

struct Stats {
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
};

inline Stats Summarize(std::vector<double> samples_ms) {
  Stats s;
  if (samples_ms.empty()) return s;
  std::sort(samples_ms.begin(), samples_ms.end());
  s.mean_ms = std::accumulate(samples_ms.begin(), samples_ms.end(), 0.0) /
              static_cast<double>(samples_ms.size());
  s.p50_ms = samples_ms[samples_ms.size() / 2];
  s.p95_ms = samples_ms[samples_ms.size() * 95 / 100];
  s.min_ms = samples_ms.front();
  s.max_ms = samples_ms.back();
  return s;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace gaa::bench
