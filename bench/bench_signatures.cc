// A4 — microbenchmark: signature-matching cost.
//
// Sweeps the signature-database size against benign and attack subjects,
// and isolates the compiled-glob quick-reject win over naive matching.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "ids/signature_db.h"
#include "util/glob.h"

namespace gaa::bench {
namespace {

ids::SignatureDb MakeDb(int signatures) {
  ids::SignatureDb db = ids::SignatureDb::KnownWebAttacks();
  for (int i = static_cast<int>(db.size()); i < signatures; ++i) {
    db.Add({"synthetic_" + std::to_string(i),
            "*attack-pattern-" + std::to_string(i) + "*", "synthetic", 5, ""});
  }
  return db;
}

void BM_SignatureDbBenign(benchmark::State& state) {
  auto db = MakeDb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto hits = db.Match("/docs/guide.html", "q=apache+policy");
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SignatureDbBenign)->RangeMultiplier(4)->Range(4, 1024);

void BM_SignatureDbAttack(benchmark::State& state) {
  auto db = MakeDb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto hits = db.Match("/cgi-bin/phf", "Qalias=x%0a/bin/cat%20/etc/passwd");
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_SignatureDbAttack)->RangeMultiplier(4)->Range(4, 1024);

void BM_GlobMatchDirect(benchmark::State& state) {
  std::string subject = "/cgi-bin/search?q=" + std::string(200, 'a');
  for (auto _ : state) {
    bool hit = util::GlobMatch("*attack-pattern-999*", subject);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_GlobMatchDirect);

void BM_CompiledGlobQuickReject(benchmark::State& state) {
  util::CompiledGlob glob("*attack-pattern-999*");
  std::string subject = "/cgi-bin/search?q=" + std::string(200, 'a');
  for (auto _ : state) {
    bool hit = glob.Matches(subject);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_CompiledGlobQuickReject);

void BM_GlobPathological(benchmark::State& state) {
  // Attacker-controlled subject engineered against a backtracking matcher.
  std::string subject(static_cast<std::size_t>(state.range(0)), 'a');
  for (auto _ : state) {
    bool hit = util::GlobMatch("*a*a*a*a*a*a*a*b", subject);
    benchmark::DoNotOptimize(hit);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GlobPathological)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

}  // namespace
}  // namespace gaa::bench

BENCHMARK_MAIN();
