// E1 — reproduces the paper's §8 performance experiment.
//
// Paper setup: system-wide + local policies of §7.1 and §7.2, 20
// repetitions, Intel P4 1.8 GHz, RedHat 7.1.  Paper numbers:
//
//   GAA-API functions:            5.9 ms   (53.3 ms with notification)
//   Apache incl. GAA functions:  19.4 ms   (66.8 ms with notification)
//   overhead (GAA share):          30 %     (80 %)
//
// Our substrate is an in-process server on a modern CPU, so absolute times
// are orders of magnitude smaller.  To reproduce the paper's *shape* we
// keep the two ratios the paper's testbed embodied:
//
//   * non-GAA Apache work   = (19.4 - 5.9) / 5.9 = 2.29x the GAA cost
//     (fork/exec, file I/O, logging around the API on 2003 hardware);
//   * notification latency  = (53.3 - 5.9) / 5.9 = 8.03x the GAA cost
//     (the synchronous sendmail hand-off).
//
// We first calibrate the GAA-function cost on this machine, scale the
// simulated notification latency and the Apache-envelope by those ratios,
// then run the paper's 20-repetition experiment.  Expected output: a GAA
// share of ~30 % without notification and ~80 % with it — who wins and by
// how much matches §8; the absolute milliseconds do not (and should not).
// A transport-level experiment (E1t) rides along: the same request stream
// over real sockets, close-per-request (the 2003-era connection model the
// paper inherited from Apache) vs HTTP/1.1 keep-alive on the event-driven
// connection layer — the per-connection setup cost the paper's numbers
// silently include.
#include <cstdio>

#include <thread>
#include <vector>

#include "bench_common.h"
#include "http/request.h"
#include "http/tcp_server.h"
#include "util/clock.h"

namespace gaa::bench {
namespace {

constexpr int kRepetitions = 20;  // as in the paper
constexpr int kBatch = 50;        // inner calls per repetition (timer noise)
constexpr double kEnvelopeRatio = (19.4 - 5.9) / 5.9;  // non-GAA Apache work
constexpr double kNotifyRatio = (53.3 - 5.9) / 5.9;    // notification cost

std::unique_ptr<web::GaaWebServer> MakeServer(
    util::DurationUs notify_latency_us) {
  web::GaaWebServer::Options options;
  options.use_real_clock = true;
  options.notification_latency_us = notify_latency_us;
  // The paper's section-8 measurement ran against a static threat profile;
  // pin the level by making escalation unreachable (otherwise the measured
  // attack stream would trip the section-7.1 lockdown mid-experiment and
  // the mandatory deny would skip the notify action entirely).
  options.threat.medium_score = 1e18;
  options.threat.high_score = 1e18;
  auto server = std::make_unique<web::GaaWebServer>(http::DocTree::DemoSite(),
                                                    options);
  server->AddUser("alice", "wonder");
  bool ok = server->AddSystemPolicy(LockdownSystemPolicy()).ok() &&
            server->AddSystemPolicy(IntrusionSystemPolicy()).ok() &&
            server->SetLocalPolicy("/", IntrusionLocalPolicy()).ok();
  if (!ok) {
    std::fprintf(stderr, "policy setup failed\n");
    std::exit(1);
  }
  return server;
}

/// Time the GAA-API functions alone (policy retrieval + authorization +
/// translation) on a §7.2 probe request.  Each repetition averages kBatch
/// calls so the sub-microsecond per-call cost rises above timer noise.
/// Fresh source per call: the §7.2 response blacklists each probing host,
/// and a blacklisted host takes the cheap mandatory-deny path that skips
/// the notify action — every measured call must be a first offence.
util::Ipv4Address FreshAttackerIp(int n) {
  return util::Ipv4Address(0xCB000000u + 0x10000u +
                           static_cast<std::uint32_t>(n));  // 203.0.x.y pool
}

double TimeGaaOnce(web::GaaWebServer& server, int i) {
  static int next_source = 0;
  std::string raw =
      http::BuildGetRequest("/cgi-bin/phf?Qalias=g" + std::to_string(i));
  auto parsed = http::ParseRequest(raw);
  std::vector<http::RequestRec> recs(kBatch, *parsed.request);
  for (auto& rec : recs) rec.client_ip = FreshAttackerIp(next_source++);
  util::Stopwatch watch;
  for (auto& rec : recs) {
    (void)server.controller().Check(rec);
  }
  return watch.ElapsedMs() / kBatch;
}

/// Time the full server path (parse + access control + handler + log).
double TimeTotalOnce(web::GaaWebServer& server, int i) {
  static int next_source = 1'000'000;
  std::string raw =
      http::BuildGetRequest("/cgi-bin/phf?Qalias=t" + std::to_string(i));
  std::vector<util::Ipv4Address> sources(kBatch);
  for (auto& ip : sources) ip = FreshAttackerIp(next_source++);
  util::Stopwatch watch;
  for (const auto& ip : sources) {
    (void)server.server().HandleText(raw, ip);
  }
  return watch.ElapsedMs() / kBatch;
}

/// E1t: req/s over real TCP at the same client-thread count, with and
/// without keep-alive.  Returns requests per second.
double RunTransportMode(web::GaaWebServer& server, bool keep_alive,
                        int client_threads, int requests_per_thread) {
  http::TcpServer::Options options;
  options.keep_alive = keep_alive;
  options.worker_threads = 4;
  http::TcpServer tcp(&server.server(), options);
  auto started = tcp.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "tcp: %s\n", started.error().ToString().c_str());
    std::exit(1);
  }
  std::string raw = http::BuildGetRequest("/index.html");
  util::Stopwatch watch;
  std::vector<std::thread> clients;
  clients.reserve(client_threads);
  for (int c = 0; c < client_threads; ++c) {
    clients.emplace_back([&] {
      if (keep_alive) {
        http::TcpClient client(tcp.port());
        for (int i = 0; i < requests_per_thread; ++i) {
          if (!client.RoundTrip(raw).ok()) break;
        }
      } else {
        for (int i = 0; i < requests_per_thread; ++i) {
          (void)http::TcpFetch(tcp.port(), raw);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  double seconds = watch.ElapsedMs() / 1000.0;
  double total = static_cast<double>(client_threads) * requests_per_thread;
  std::printf(
      "%-18s %10.0f req/s   (conns accepted %llu, reused %llu)\n",
      keep_alive ? "keep_alive" : "close_per_request", total / seconds,
      static_cast<unsigned long long>(tcp.connections_accepted()),
      static_cast<unsigned long long>(tcp.connections_reused()));
  tcp.Stop();
  return total / seconds;
}

}  // namespace
}  // namespace gaa::bench

int main(int argc, char** argv) {
  using namespace gaa::bench;

  JsonReport report("performance");
  const std::string json_path = JsonPathFromArgs(argc, argv);

  PrintHeader("E1: paper section 8 — GAA-API overhead (20 repetitions)");
  std::printf(
      "paper reference: GAA 5.9 ms / Apache+GAA 19.4 ms -> 30%% share;\n"
      "                 GAA 53.3 ms / Apache+GAA 66.8 ms -> 80%% share "
      "(with notification)\n");

  // --- run the no-notification experiment first --------------------------
  struct Row {
    const char* config;
    const char* paper;
    Stats gaa;
    Stats total;
  };
  Row rows[2] = {{"no_notification", "30%", {}, {}},
                 {"with_notification", "80%", {}, {}}};

  auto run_config = [&](Row& row, gaa::util::DurationUs latency_us) {
    auto server = MakeServer(latency_us);
    // Warm-up: touch every code path once before measuring.
    (void)TimeGaaOnce(*server, 999);
    (void)TimeTotalOnce(*server, 999);
    std::vector<double> gaa_ms;
    std::vector<double> total_ms;
    for (int i = 0; i < kRepetitions; ++i) {
      gaa_ms.push_back(TimeGaaOnce(*server, i));
      total_ms.push_back(TimeTotalOnce(*server, i));
    }
    row.gaa = Summarize(gaa_ms);
    row.total = Summarize(total_ms);
  };

  run_config(rows[0], 0);

  // Scale the simulated notification latency and the synthetic Apache
  // envelope from the measured GAA cost, exactly per the paper's ratios.
  double base_gaa_ms = rows[0].gaa.mean_ms;
  auto notify_latency_us = static_cast<gaa::util::DurationUs>(
      base_gaa_ms * kNotifyRatio * 1000.0);
  double envelope_ms = base_gaa_ms * kEnvelopeRatio;
  std::printf(
      "\ncalibration: GAA functions %.4f ms on this machine;\n"
      "scaled notification latency %.4f ms, scaled Apache envelope %.4f ms\n",
      base_gaa_ms, notify_latency_us / 1000.0, envelope_ms);

  run_config(rows[1], notify_latency_us);

  std::printf("\nraw in-process measurements:\n");
  std::printf("%-20s %14s %14s\n", "config", "gaa_mean_ms", "total_mean_ms");
  for (const Row& row : rows) {
    std::printf("%-20s %14.4f %14.4f\n", row.config, row.gaa.mean_ms,
                row.total.mean_ms);
  }

  std::printf(
      "\npaper-comparable table (total = measured GAA + scaled envelope):\n");
  std::printf("%-20s %12s %12s %12s %10s\n", "config", "gaa_ms", "total_ms",
              "gaa_share", "paper");
  for (const Row& row : rows) {
    double total = row.gaa.mean_ms + envelope_ms;
    std::printf("%-20s %12.4f %12.4f %11.1f%% %10s\n", row.config,
                row.gaa.mean_ms, total, 100.0 * row.gaa.mean_ms / total,
                row.paper);
    report.SetStats(std::string("e1_") + row.config + "_gaa", row.gaa);
    report.SetStats(std::string("e1_") + row.config + "_total", row.total);
    report.Set(std::string("e1_") + row.config + "_gaa", "gaa_share_pct",
               100.0 * row.gaa.mean_ms / total);
  }

  std::printf(
      "\nlatency detail, no notification (ms): gaa p50/p95 = %.4f/%.4f, "
      "in-process total p50/p95 = %.4f/%.4f\n",
      rows[0].gaa.p50_ms, rows[0].gaa.p95_ms, rows[0].total.p50_ms,
      rows[0].total.p95_ms);

  PrintHeader(
      "E1t: transport — close-per-request vs keep-alive over real TCP");
  constexpr int kClientThreads = 4;
  constexpr int kRequestsPerThread = 2000;
  auto transport_server = MakeServer(0);
  std::printf("%d client threads x %d GET /index.html each:\n",
              kClientThreads, kRequestsPerThread);
  double close_rps = RunTransportMode(*transport_server, /*keep_alive=*/false,
                                      kClientThreads, kRequestsPerThread);
  double ka_rps = RunTransportMode(*transport_server, /*keep_alive=*/true,
                                   kClientThreads, kRequestsPerThread);
  std::printf("keep-alive speedup: %.2fx\n", ka_rps / close_rps);

  report.Set("e1t_transport", "close_per_request_rps", close_rps);
  report.Set("e1t_transport", "keep_alive_rps", ka_rps);
  report.Set("e1t_transport", "keep_alive_speedup", ka_rps / close_rps);
  // The request-latency percentiles as served by telemetry — identical to
  // what a /__status scrape of this server would report.
  report.SetHistogram("e1t_request_latency",
                      transport_server->telemetry()
                          .registry()
                          .GetHistogram("http_request_latency_us")
                          ->TakeSnapshot());
  return report.WriteFile(json_path) ? 0 : 1;
}
