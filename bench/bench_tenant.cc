// E8 — multi-tenant policy namespaces over the content-addressed IR store
// (DESIGN.md §14).
//
// Two questions drive the experiment:
//
//   1. Does compiled-policy memory and configuration time stay sublinear in
//      the tenant count when tenants share most of their policy structure?
//      The fleet models a hosting deployment at 90% sharing: every tenant
//      installs the same five boilerplate system policies (interned once by
//      the IrStore no matter how many tenants reference them) and every
//      tenth tenant adds one small unique local policy.  Scaling the fleet
//      10x must grow IR bytes well under 2x.
//
//   2. What does namespace resolution cost per request?  A tenant-routed
//      request (Host header → namespace → per-tenant snapshot) is compared
//      against the identical single-namespace deployment; the paper-shaped
//      serving path must not pay measurably for the tenancy layer.
//
// Usage: bench_tenant [--smoke] [--json <path>]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "http/request.h"
#include "util/clock.h"

namespace gaa::bench {
namespace {

constexpr int kBoilerplatePolicies = 5;
constexpr int kEntriesPerBoilerplate = 28;

/// One of the five shared boilerplate policies: 19 non-matching pure
/// host-screening denies plus a terminal grant.  Identical text (and the
/// same positional provenance name) for every tenant — the IrStore interns
/// each of the five exactly once per process.
std::string BoilerplatePolicy(int index) {
  std::string text;
  for (int i = 0; i < kEntriesPerBoilerplate - 1; ++i) {
    text += "neg_access_right apache *\n";
    text += "pre_cond_accessid HOST local 172.16." +
            std::to_string((index * (kEntriesPerBoilerplate - 1) + i) % 250) +
            ".0/24\n";
  }
  text += "pos_access_right apache *\n";
  return text;
}

/// The 10% tail: one tenant-specific screening entry no other tenant
/// shares (deny-only — grants come from the shared boilerplate layer).
std::string UniqueLocalPolicy(int tenant) {
  return "neg_access_right apache *\n"
         "pre_cond_accessid HOST local 10." + std::to_string(tenant / 250) +
         "." + std::to_string(tenant % 250) + ".0/24\n";
}

struct FleetResult {
  double setup_ms = 0;
  gaa::eacl::IrStore::Stats ir;
};

FleetResult BuildFleet(int tenants) {
  gaa::web::GaaWebServer::Options options;
  options.use_real_clock = true;
  options.notification_latency_us = 0;
  gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);
  if (!server.SetLocalPolicy("/", "pos_access_right apache *\n").ok()) {
    std::fprintf(stderr, "global policy setup failed\n");
    std::exit(1);
  }

  std::vector<std::string> boilerplate;
  for (int p = 0; p < kBoilerplatePolicies; ++p) {
    boilerplate.push_back(BoilerplatePolicy(p));
  }

  gaa::util::Stopwatch watch;
  for (int t = 0; t < tenants; ++t) {
    const std::string name = "tenant" + std::to_string(t);
    for (const auto& policy : boilerplate) {
      if (!server.AddTenantSystemPolicy(name, policy).ok()) {
        std::fprintf(stderr, "tenant policy setup failed\n");
        std::exit(1);
      }
    }
    if (t % 10 == 0) {
      if (!server.SetTenantLocalPolicy(name, "/", UniqueLocalPolicy(t)).ok()) {
        std::fprintf(stderr, "tenant local setup failed\n");
        std::exit(1);
      }
    }
  }

  FleetResult result;
  result.setup_ms = watch.ElapsedMs();
  result.ir = server.policy_store().ir_store_stats();
  return result;
}

Stats MeasureRequests(gaa::web::GaaWebServer& server, const std::string& raw,
                      int iterations) {
  // Warm the decision memo and the inline caches before sampling.
  for (int i = 0; i < iterations / 10 + 1; ++i) {
    (void)server.HandleText(raw, "10.0.0.1");
  }
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(iterations));
  for (int i = 0; i < iterations; ++i) {
    gaa::util::Stopwatch watch;
    (void)server.HandleText(raw, "10.0.0.1");
    samples.push_back(watch.ElapsedMs());
  }
  return Summarize(std::move(samples));
}

}  // namespace
}  // namespace gaa::bench

int main(int argc, char** argv) {
  using namespace gaa::bench;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const std::string json_path = JsonPathFromArgs(argc, argv);

  JsonReport report("tenant");
  report.SetParam("smoke", smoke ? 1 : 0);

  // --- E8a: IR sharing at fleet scale --------------------------------------
  const int n_lo = smoke ? 20 : 100;
  const int n_hi = smoke ? 100 : 1000;
  report.SetParam("tenants_lo", n_lo);
  report.SetParam("tenants_hi", n_hi);

  PrintHeader("E8a: content-addressed IR sharing across tenant fleets");
  std::printf("%-10s %12s %12s %10s %12s %12s\n", "tenants", "ir_bytes",
              "ir_entries", "setup_ms", "dedup_hits", "misses");

  FleetResult lo = BuildFleet(n_lo);
  FleetResult hi = BuildFleet(n_hi);
  for (const auto& [n, r] :
       {std::pair<int, const FleetResult&>{n_lo, lo}, {n_hi, hi}}) {
    std::printf("%-10d %12zu %12zu %10.1f %12llu %12llu\n", n, r.ir.bytes,
                r.ir.entries, r.setup_ms,
                static_cast<unsigned long long>(r.ir.hits),
                static_cast<unsigned long long>(r.ir.misses));
    const std::string section = "fleet_" + std::to_string(n);
    report.Set(section, "ir_bytes", static_cast<double>(r.ir.bytes));
    report.Set(section, "ir_entries", static_cast<double>(r.ir.entries));
    report.Set(section, "setup_ms", r.setup_ms);
    report.Set(section, "dedup_hits", static_cast<double>(r.ir.hits));
    report.Set(section, "dedup_misses", static_cast<double>(r.ir.misses));
  }

  const double fleet_ratio = static_cast<double>(n_hi) / n_lo;
  const double bytes_ratio =
      static_cast<double>(hi.ir.bytes) / static_cast<double>(lo.ir.bytes);
  const double setup_ratio = hi.setup_ms / lo.setup_ms;
  std::printf("\n%dx more tenants -> %.2fx IR bytes, %.2fx setup time\n",
              static_cast<int>(fleet_ratio), bytes_ratio, setup_ratio);
  report.Set("scaling", "fleet_ratio", fleet_ratio);
  report.Set("scaling", "ir_bytes_ratio", bytes_ratio);
  report.Set("scaling", "setup_ms_ratio", setup_ratio);

  // The headline claim: at 90% structural sharing, a 5-10x fleet costs
  // well under 2x the compiled-IR memory (only the unique 10% scales).
  if (bytes_ratio > 2.0) {
    std::fprintf(stderr, "FAIL: IR bytes scaled %.2fx (expected <= 2x)\n",
                 bytes_ratio);
    return 1;
  }
  if (hi.ir.hits <= hi.ir.misses) {
    std::fprintf(stderr, "FAIL: dedup hits (%llu) <= misses (%llu)\n",
                 static_cast<unsigned long long>(hi.ir.hits),
                 static_cast<unsigned long long>(hi.ir.misses));
    return 1;
  }

  // --- E8b: per-request cost of namespace resolution ------------------------
  const int iterations = smoke ? 800 : 5000;
  report.SetParam("iterations", iterations);

  PrintHeader("E8b: tenant-routed request vs single-namespace baseline");
  std::printf("%-22s %10s %10s %10s\n", "config", "mean_ms", "p50_ms",
              "p95_ms");

  const std::string policy = BoilerplatePolicy(0);
  Stats baseline;
  {
    gaa::web::GaaWebServer::Options options;
    options.use_real_clock = true;
    options.notification_latency_us = 0;
    gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);
    if (!server.AddSystemPolicy("eacl_mode 1\n" + policy).ok() ||
        !server.SetLocalPolicy("/", "pos_access_right apache *\n").ok()) {
      std::fprintf(stderr, "baseline setup failed\n");
      return 1;
    }
    baseline = MeasureRequests(
        server, gaa::http::BuildGetRequest("/index.html"), iterations);
  }
  std::printf("%-22s %10.5f %10.5f %10.5f\n", "single_namespace",
              baseline.mean_ms, baseline.p50_ms, baseline.p95_ms);
  report.SetStats("single_namespace", baseline);

  Stats routed;
  {
    gaa::web::GaaWebServer::Options options;
    options.use_real_clock = true;
    options.notification_latency_us = 0;
    gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);
    if (!server.AddTenant("acme", "acme.example").ok() ||
        !server.AddTenantSystemPolicy("acme", "eacl_mode 1\n" + policy).ok() ||
        !server.SetLocalPolicy("/", "pos_access_right apache *\n").ok()) {
      std::fprintf(stderr, "tenant setup failed\n");
      return 1;
    }
    routed = MeasureRequests(
        server,
        gaa::http::BuildGetRequest("/index.html",
                                   {{"Host", "acme.example"}}),
        iterations);
  }
  std::printf("%-22s %10.5f %10.5f %10.5f\n", "tenant_routed", routed.mean_ms,
              routed.p50_ms, routed.p95_ms);
  report.SetStats("tenant_routed", routed);

  const double overhead_pct =
      100.0 * (routed.p50_ms - baseline.p50_ms) / baseline.p50_ms;
  std::printf("\nnamespace-resolution overhead: %+.2f%% (p50)\n",
              overhead_pct);
  report.Set("overhead", "p50_pct", overhead_pct);

  // Smoke gate: generous bound (CI machines are noisy single-core boxes);
  // the committed full-run artifact documents the real margin (~<5%).
  if (smoke && overhead_pct > 50.0) {
    std::fprintf(stderr, "FAIL: tenant routing overhead %.1f%% > 50%%\n",
                 overhead_pct);
    return 1;
  }

  if (!json_path.empty() && !report.WriteFile(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
