// E6: streaming-IDS cost vs client cardinality (DESIGN.md §12).
//
// The tentpole claim of the sketch IDS is O(sketch) per-request cost and
// fixed memory no matter how many distinct clients the server sees.  This
// bench drives the StreamingAnomalyProvider directly (no sockets — the
// transport cost is identical per cardinality and would only dilute the
// number under test) with a synthetic request stream drawn from client
// populations of 1k up to 10M, and checks:
//
//   * flat per-request cost: the most expensive cardinality may cost at
//     most `--max-ratio` (default 1.25x) of the cheapest;
//   * bounded memory: MemoryBytes() is byte-identical at every
//     cardinality (it is fixed at construction — the bench proves no
//     per-client state sneaks in through a side door).
//
// The exact AnomalyDetector the provider replaces is measured at the two
// smallest cardinalities for reference (its per-principal map makes large
// populations both slow and memory-proportional — the very thing the
// sketches exist to avoid).
//
//   bench_ids [--requests N] [--repeats R] [--max-ratio X] [--json out.json]
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ids/anomaly.h"
#include "ids/sketch/stream_ids.h"
#include "util/rng.h"

namespace gaa::bench {
namespace {

struct RunResult {
  double ns_per_request = 0;
  std::size_t memory_bytes = 0;
};

/// Fixed-width client id so string-building cost is identical at every
/// cardinality (the generator overhead cancels out of the ratio).
void FormatClient(char* buf, std::size_t len, std::uint64_t id) {
  std::snprintf(buf, len, "c%09" PRIu64, id);
}

RunResult RunStreaming(std::uint64_t cardinality, std::uint64_t requests,
                       int repeats) {
  // Paths drawn from a fixed catalog: URI-rate and fan-out sketches see
  // the same resource distribution at every cardinality.
  std::vector<std::string> paths;
  paths.reserve(512);
  for (int i = 0; i < 512; ++i) {
    paths.push_back("/docs/page" + std::to_string(i) + ".html");
  }

  RunResult best;
  for (int rep = 0; rep < repeats; ++rep) {
    ids::sketch::StreamingAnomalyProvider provider{
        ids::sketch::StreamingAnomalyProvider::Options{}};
    util::Rng rng(static_cast<std::uint64_t>(rep) * 977 + cardinality);
    char client[24];
    util::TimePoint now = 0;

    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < requests; ++i) {
      now += 50;  // 20k synthetic requests per simulated second
      FormatClient(client, sizeof(client), rng.NextBelow(cardinality));
      provider.Observe(client, paths[rng.NextBelow(paths.size())], now);
      // The transport tick, at bench rate: cheap no-op inside the window,
      // one halving/rotation when the 60 s window rolls over.
      if ((i & 0xffff) == 0) provider.MaintenanceTick(now);
    }
    auto t1 = std::chrono::steady_clock::now();

    double ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                static_cast<double>(requests);
    if (best.ns_per_request == 0 || ns < best.ns_per_request) {
      best.ns_per_request = ns;
    }
    best.memory_bytes = provider.MemoryBytes();
  }
  return best;
}

double RunExactReference(std::uint64_t cardinality, std::uint64_t requests,
                         int repeats) {
  std::vector<std::string> paths;
  for (int i = 0; i < 512; ++i) {
    paths.push_back("/docs/page" + std::to_string(i) + ".html");
  }
  double best = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    util::SimulatedClock clock(0);
    ids::AnomalyDetector detector(&clock);
    util::Rng rng(static_cast<std::uint64_t>(rep) * 977 + cardinality);
    char client[24];
    ids::RequestFeatures features;
    features.query_length = 10;
    features.url_depth = 2;

    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < requests; ++i) {
      clock.Advance(50);
      FormatClient(client, sizeof(client), rng.NextBelow(cardinality));
      features.principal.assign(client);
      features.path = paths[rng.NextBelow(paths.size())];
      detector.Observe(features);
    }
    auto t1 = std::chrono::steady_clock::now();
    double ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                static_cast<double>(requests);
    if (best == 0 || ns < best) best = ns;
  }
  return best;
}

int Main(int argc, char** argv) {
  std::uint64_t requests = 2'000'000;
  int repeats = 3;
  double max_ratio = 1.25;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0) {
      requests = std::strtoull(argv[i + 1], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--repeats") == 0) {
      repeats = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--max-ratio") == 0) {
      max_ratio = std::atof(argv[i + 1]);
    }
  }

  const std::uint64_t cardinalities[] = {1'000, 10'000, 100'000, 1'000'000,
                                         10'000'000};

  JsonReport report("ids");
  PrintHeader("E6: streaming IDS cost vs client cardinality (" +
              std::to_string(requests) + " requests/run)");
  std::printf("%-14s %14s %16s\n", "clients", "ns/request", "sketch bytes");

  double min_ns = 0, max_ns = 0;
  std::size_t min_bytes = 0, max_bytes = 0;
  for (std::uint64_t cardinality : cardinalities) {
    RunResult r = RunStreaming(cardinality, requests, repeats);
    std::printf("%-14" PRIu64 " %14.1f %16zu\n", cardinality,
                r.ns_per_request, r.memory_bytes);
    std::string section = "clients_" + std::to_string(cardinality);
    report.Set(section, "ns_per_request", r.ns_per_request);
    report.Set(section, "memory_bytes",
               static_cast<double>(r.memory_bytes));
    report.Set(section, "requests", static_cast<double>(requests));
    if (min_ns == 0 || r.ns_per_request < min_ns) min_ns = r.ns_per_request;
    if (r.ns_per_request > max_ns) max_ns = r.ns_per_request;
    if (min_bytes == 0 || r.memory_bytes < min_bytes) {
      min_bytes = r.memory_bytes;
    }
    if (r.memory_bytes > max_bytes) max_bytes = r.memory_bytes;
  }

  // Reference: the exact per-principal detector, small populations only
  // (its cost and memory grow with the client map; 10M principals would
  // be the OOM scenario the sketches eliminate).
  std::printf("\n%-14s %14s\n", "exact ref", "ns/request");
  for (std::uint64_t cardinality : {1'000ULL, 10'000ULL}) {
    double ns = RunExactReference(cardinality, requests / 10, repeats);
    std::printf("%-14" PRIu64 " %14.1f\n", cardinality, ns);
    report.Set("exact_clients_" + std::to_string(cardinality),
               "ns_per_request", ns);
  }

  double cost_ratio = min_ns > 0 ? max_ns / min_ns : 0;
  bool memory_flat = min_bytes == max_bytes;
  std::printf("\ncost ratio (worst/best cardinality): %.3fx (limit %.2fx)\n",
              cost_ratio, max_ratio);
  std::printf("sketch memory constant across cardinalities: %s (%zu bytes)\n",
              memory_flat ? "yes" : "NO", max_bytes);
  report.Set("summary", "cost_ratio", cost_ratio);
  report.Set("summary", "max_ratio_limit", max_ratio);
  report.Set("summary", "memory_flat", memory_flat ? 1 : 0);
  report.Set("summary", "memory_bytes", static_cast<double>(max_bytes));

  if (!report.WriteFile(JsonPathFromArgs(argc, argv))) return 1;
  if (cost_ratio > max_ratio) {
    std::fprintf(stderr,
                 "FAIL: per-request cost is not flat (%.3fx > %.2fx)\n",
                 cost_ratio, max_ratio);
    return 1;
  }
  if (!memory_flat) {
    std::fprintf(stderr, "FAIL: sketch memory varies with cardinality\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace gaa::bench

int main(int argc, char** argv) { return gaa::bench::Main(argc, argv); }
