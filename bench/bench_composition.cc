// A2 — ablation of the composition modes (paper §2.1: expand / narrow /
// stop).  Shows (a) the decisions each mode produces on system/local
// conflict shapes and (b) the evaluation cost per mode.
#include <cstdio>

#include "bench_common.h"
#include "eacl/composition.h"
#include "util/clock.h"

namespace gaa::bench {
namespace {

const char* ModePolicy(gaa::eacl::CompositionMode mode, const char* body) {
  static std::string storage;
  storage = "eacl_mode " +
            std::to_string(static_cast<int>(mode)) + "\n" + body;
  return storage.c_str();
}

const char* Label(gaa::http::StatusCode code) {
  switch (code) {
    case gaa::http::StatusCode::kOk:
      return "allow";
    case gaa::http::StatusCode::kForbidden:
      return "deny";
    case gaa::http::StatusCode::kUnauthorized:
      return "auth";
    default:
      return "other";
  }
}

}  // namespace
}  // namespace gaa::bench

int main() {
  using namespace gaa::bench;
  using gaa::eacl::CompositionMode;

  PrintHeader("A2: composition modes (section 2.1)");

  struct Shape {
    const char* name;
    const char* system_body;
    const char* local;
  };
  const Shape shapes[] = {
      {"system grants, local denies", "pos_access_right apache *\n",
       "neg_access_right apache *\n"},
      {"system denies, local grants", "neg_access_right apache *\n",
       "pos_access_right apache *\n"},
      {"both grant", "pos_access_right apache *\n",
       "pos_access_right apache *\n"},
      {"both deny", "neg_access_right apache *\n",
       "neg_access_right apache *\n"},
  };
  const CompositionMode modes[] = {CompositionMode::kExpand,
                                   CompositionMode::kNarrow,
                                   CompositionMode::kStop};

  std::printf("%-30s %-8s %-8s %-8s\n", "conflict shape", "expand", "narrow",
              "stop");
  for (const Shape& shape : shapes) {
    std::printf("%-30s", shape.name);
    for (CompositionMode mode : modes) {
      gaa::web::GaaWebServer::Options options;
      options.use_real_clock = true;
      options.notification_latency_us = 0;
      gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);
      if (!server.AddSystemPolicy(ModePolicy(mode, shape.system_body)).ok() ||
          !server.SetLocalPolicy("/", shape.local).ok()) {
        std::fprintf(stderr, "policy setup failed\n");
        return 1;
      }
      auto response = server.Get("/index.html", "10.0.0.1");
      std::printf(" %-8s", Label(response.status));
    }
    std::printf("\n");
  }
  std::printf("expected: expand = disjunction of grants, narrow = "
              "conjunction, stop = system-wide only\n");

  // --- evaluation cost per mode ----------------------------------------------
  PrintHeader("A2b: evaluation cost per composition mode");
  std::printf("%-8s %12s %16s\n", "mode", "mean_ms", "note");
  for (CompositionMode mode : modes) {
    gaa::web::GaaWebServer::Options options;
    options.use_real_clock = true;
    options.notification_latency_us = 0;
    gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);
    // A denying system side over a 16-entry local policy: under narrow the
    // local side is skipped, under expand it must still be evaluated.
    std::string local;
    for (int i = 0; i < 15; ++i) {
      local += "neg_access_right apache *\n";
      local += "pre_cond_regex gnu *never-" + std::to_string(i) + "*\n";
    }
    local += "pos_access_right apache *\n";
    if (!server.AddSystemPolicy(ModePolicy(mode, "neg_access_right apache *\n"))
             .ok() ||
        !server.SetLocalPolicy("/", local).ok()) {
      std::fprintf(stderr, "policy setup failed\n");
      return 1;
    }
    std::vector<double> samples;
    for (int i = 0; i < 3000; ++i) {
      gaa::util::Stopwatch watch;
      (void)server.Get("/index.html", "10.0.0.1");
      samples.push_back(watch.ElapsedMs());
    }
    const char* note = mode == CompositionMode::kExpand
                           ? "evaluates both sides"
                           : "skips local side";
    std::printf("%-8s %12.5f %16s\n",
                gaa::eacl::CompositionModeName(mode),
                Summarize(std::move(samples)).mean_ms, note);
  }
  return 0;
}
