// E9: cluster-mode scaling and threat convergence (DESIGN.md §15).
//
// Compares one process with two reactor shards against two shared-nothing
// processes with one shard each — the same total shard count, so the delta
// is purely what process isolation costs (or buys: no shared policy plane,
// no shared allocator, independent audit pipelines).  Then measures the
// shared-memory bus's threat propagation: the wall-clock lag between one
// process detecting an attack (threat cell published) and every process
// in the fleet reporting the raised level through its heartbeat.
//
//   bench_cluster [--conns C] [--requests R] [--smoke] [--json out.json]
//
// --smoke asserts: zero request errors, fleet convergence within the
// two-tick budget, and — gated on core count, since two processes cannot
// outrun one on a single core — a scaling floor for 2-process RPS.
#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cluster/bus.h"
#include "cluster/cluster_server.h"
#include "cluster/supervisor.h"
#include "http/request.h"
#include "http/tcp_server.h"

namespace gaa::cluster {

// Bus tick interval requested by the children.  The effective publication
// granularity is the timer wheel's 32ms slot, so the convergence budget
// below is two *effective* ticks, not two requested ones.
constexpr int kTickMs = 25;
constexpr int kEffectiveTickMs = 32;

int BenchChildMain(ChildContext& ctx) {
  ClusterChildOptions options;
  options.tick_interval_ms = kTickMs;
  options.tcp.worker_threads = 2;
  options.tcp.max_keepalive_requests = 1'000'000;
  // One signature hit clears medium so a single phf probe raises the level
  // the convergence phase measures.
  options.web.threat.medium_score = 5.0;
  options.web.threat.high_score = 1000.0;
  options.web.tuning.trace_sample_period = 0;  // tracing off: transport numbers
  options.configure = [](web::GaaWebServer& web) {
    if (!web.SetLocalPolicy("/", "pos_access_right apache *\n").ok()) {
      std::fprintf(stderr, "bench cluster child: policy setup failed\n");
      ::_exit(4);
    }
  };
  return RunClusterChild(ctx, std::move(options));
}

}  // namespace gaa::cluster

namespace gaa::bench {
namespace {

struct RunResult {
  double seconds = 0;
  double rps = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
};

RunResult DriveLoad(std::uint16_t port, int conns, int requests_per_conn) {
  std::vector<std::vector<double>> per_thread_us(conns);
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> clients;
  clients.reserve(conns);

  auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < conns; ++c) {
    clients.emplace_back([port, requests_per_conn, c, &per_thread_us,
                          &errors] {
      http::TcpClient client(port);
      if (!client.connected()) {
        errors.fetch_add(static_cast<std::uint64_t>(requests_per_conn));
        return;
      }
      std::string raw = http::BuildGetRequest("/index.html");
      auto& samples = per_thread_us[c];
      samples.reserve(static_cast<std::size_t>(requests_per_conn));
      for (int i = 0; i < requests_per_conn; ++i) {
        auto s0 = std::chrono::steady_clock::now();
        auto response = client.RoundTrip(raw);
        auto s1 = std::chrono::steady_clock::now();
        if (!response.ok() ||
            response.value().find("200 OK") == std::string::npos) {
          errors.fetch_add(1);
          continue;
        }
        samples.push_back(
            std::chrono::duration<double, std::micro>(s1 - s0).count());
      }
    });
  }
  for (auto& t : clients) t.join();
  auto t1 = std::chrono::steady_clock::now();

  std::vector<double> all_us;
  for (auto& samples : per_thread_us) {
    all_us.insert(all_us.end(), samples.begin(), samples.end());
  }
  std::sort(all_us.begin(), all_us.end());

  RunResult out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.requests = all_us.size();
  out.errors = errors.load();
  out.rps = out.seconds > 0 ? static_cast<double>(out.requests) / out.seconds
                            : 0;
  if (!all_us.empty()) {
    out.p50_us = all_us[all_us.size() / 2];
    out.p99_us = all_us[std::min(all_us.size() - 1, all_us.size() * 99 / 100)];
  }
  return out;
}

cluster::SupervisorOptions FleetOptions(std::uint32_t processes,
                                        std::uint32_t shards_per_process) {
  cluster::SupervisorOptions options;
  options.processes = processes;
  options.shards_per_process = shards_per_process;
  options.drain_deadline_ms = 2000;
  return options;
}

RunResult RunConfig(std::uint32_t processes, std::uint32_t shards_per_process,
                    int conns, int requests_per_conn) {
  cluster::Supervisor supervisor(FleetOptions(processes, shards_per_process));
  auto started = supervisor.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cluster start failed: %s\n",
                 started.error().ToString().c_str());
    std::exit(1);
  }

  // Warmup primes each process's decision memo; with SO_REUSEPORT spreading
  // fresh connections, 8 conns x 50 requests touch every process.
  DriveLoad(supervisor.port(), std::min(conns, 8), 50);

  RunResult result = DriveLoad(supervisor.port(), conns, requests_per_conn);
  supervisor.Stop();
  return result;
}

/// Raise the threat level in one process and measure how long the rest of
/// the fleet takes to report it.  t0 is the threat cell flipping (the
/// origin publishes synchronously from its threat hook); converged is every
/// live slot's heartbeat carrying level >= medium.
double MeasureConvergenceMs() {
  cluster::Supervisor supervisor(FleetOptions(2, 1));
  auto started = supervisor.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cluster start failed: %s\n",
                 started.error().ToString().c_str());
    std::exit(1);
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int attempt = 0;
  while (supervisor.bus()->ReadThreat().level < 1) {
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "threat level never raised\n");
      std::exit(1);
    }
    auto response = http::TcpFetch(
        supervisor.port(),
        "GET /cgi-bin/phf?x=" + std::to_string(attempt++) +
            " HTTP/1.1\r\nHost: localhost\r\n\r\n");
    if (!response.ok()) {
      std::fprintf(stderr, "probe failed\n");
      std::exit(1);
    }
  }
  const auto t0 = std::chrono::steady_clock::now();

  bool converged = false;
  while (!converged) {
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "fleet never converged\n");
      std::exit(1);
    }
    converged = true;
    for (const auto& p : supervisor.bus()->ViewProcesses()) {
      if (p.live && p.threat_level < 1) converged = false;
    }
    if (!converged) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  supervisor.Stop();
  return ms;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  int conns = 32;
  int requests_per_conn = 400;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
    if (std::string(argv[i]) == "--conns" && i + 1 < argc) {
      conns = std::atoi(argv[i + 1]);
    }
    if (std::string(argv[i]) == "--requests" && i + 1 < argc) {
      requests_per_conn = std::atoi(argv[i + 1]);
    }
  }
  if (smoke) {
    conns = std::min(conns, 16);
    requests_per_conn = std::min(requests_per_conn, 150);
  }
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  JsonReport report("cluster");
  report.SetParam("conns", conns);
  report.SetParam("requests_per_conn", requests_per_conn);
  report.SetParam("smoke", smoke ? 1 : 0);
  report.SetParam("cores", cores);
  report.SetParam("tick_ms", cluster::kTickMs);

  PrintHeader("E9: cluster scaling (" + std::to_string(conns) + " conns x " +
              std::to_string(requests_per_conn) + " requests, " +
              std::to_string(cores) + " cores)");
  std::printf("%-24s %10s %10s %10s %10s\n", "config", "rps", "p50_us",
              "p99_us", "errors");

  struct Config {
    const char* name;
    std::uint32_t processes;
    std::uint32_t shards;
  };
  // Same total shard count (2) in both configurations: the comparison
  // isolates the process boundary, not parallelism.
  const Config configs[] = {
      {"procs_1_shards_2", 1, 2},
      {"procs_2_shards_1", 2, 1},
  };

  double rps_1 = 0, rps_2 = 0;
  std::uint64_t total_errors = 0;
  for (const Config& config : configs) {
    RunResult r =
        RunConfig(config.processes, config.shards, conns, requests_per_conn);
    std::printf("%-24s %10.0f %10.1f %10.1f %10llu\n", config.name, r.rps,
                r.p50_us, r.p99_us,
                static_cast<unsigned long long>(r.errors));
    report.Set(config.name, "rps", r.rps);
    report.Set(config.name, "p50_us", r.p50_us);
    report.Set(config.name, "p99_us", r.p99_us);
    report.Set(config.name, "requests", static_cast<double>(r.requests));
    report.Set(config.name, "errors", static_cast<double>(r.errors));
    if (config.processes == 1) rps_1 = r.rps;
    if (config.processes == 2) rps_2 = r.rps;
    total_errors += r.errors;
  }

  const double scaling = rps_1 > 0 ? rps_2 / rps_1 : 0;
  const double convergence_ms = MeasureConvergenceMs();
  // Two effective ticks (drain + heartbeat publication) plus scheduler
  // slack for the polling observer.
  const double budget_ms = 2.0 * cluster::kEffectiveTickMs + 150.0;
  std::printf("\n2-process scaling over 1 process: %.2fx\n", scaling);
  std::printf("fleet threat convergence: %.1f ms (budget %.0f ms)\n",
              convergence_ms, budget_ms);
  report.Set("summary", "scaling_2_vs_1", scaling);
  report.Set("summary", "convergence_ms", convergence_ms);
  report.Set("summary", "convergence_budget_ms", budget_ms);

  if (!report.WriteFile(JsonPathFromArgs(argc, argv))) return 1;

  if (smoke) {
    if (total_errors != 0) {
      std::fprintf(stderr, "SMOKE FAIL: %llu request errors\n",
                   static_cast<unsigned long long>(total_errors));
      return 1;
    }
    if (convergence_ms > budget_ms) {
      std::fprintf(stderr,
                   "SMOKE FAIL: convergence %.1f ms exceeds %.0f ms budget\n",
                   convergence_ms, budget_ms);
      return 1;
    }
    // Scaling floors are core-count gated: two processes cannot outrun one
    // on a single core, and on two or three the second process shares
    // cores with the client threads.
    double floor = 0.0;
    if (cores >= 4) {
      floor = 1.7;
    } else if (cores >= 2) {
      floor = 1.2;
    }
    if (floor > 0.0 && scaling < floor) {
      std::fprintf(stderr,
                   "SMOKE FAIL: scaling %.2fx below %.1fx floor (%u cores)\n",
                   scaling, floor, cores);
      return 1;
    }
    std::printf("smoke assertions passed (%u cores, floor %.1fx)\n", cores,
                floor);
  }
  return 0;
}

}  // namespace
}  // namespace gaa::bench

int main(int argc, char** argv) {
  // A re-exec'd cluster child never reaches the benchmark path.
  gaa::cluster::MaybeRunChildFromEnv(gaa::cluster::BenchChildMain);
  return gaa::bench::Main(argc, argv);
}
