// F1 — regenerates Figure 1 as a measured pipeline.
//
// The paper's Figure 1 shows the GAA-Apache integration: an initialization
// phase, the per-request access-control steps (2a build policy list, 2b
// build requested rights, 2c check authorization, 2d translate), the
// execution-control phase (3) and the post-execution phase (4).  This
// harness measures every box of that figure over a request mix and prints
// the per-phase latency breakdown — the figure's structure, with numbers.
#include <cstdio>

#include "bench_common.h"
#include "conditions/builtin.h"
#include "http/request.h"
#include "integration/translate.h"
#include "util/clock.h"

namespace gaa::bench {
namespace {

constexpr int kIterations = 2000;

struct PhaseRow {
  const char* phase;
  const char* figure_box;
  Stats stats;
};

}  // namespace
}  // namespace gaa::bench

int main(int argc, char** argv) {
  using namespace gaa::bench;
  using gaa::util::Stopwatch;

  JsonReport report("phases");
  const std::string json_path = JsonPathFromArgs(argc, argv);

  PrintHeader("F1: figure 1 — per-phase latency of the GAA-Apache pipeline");

  // --- initialization phase (box 1) -----------------------------------------
  std::vector<double> init_ms;
  for (int i = 0; i < 50; ++i) {
    Stopwatch watch;
    gaa::core::PolicyStore store;
    gaa::core::EvalServices services;  // bare services: init cost only
    gaa::core::GaaApi api(&store, services);
    gaa::core::RoutineCatalog catalog;
    gaa::cond::RegisterBuiltinRoutines(catalog);
    if (!api.Initialize(catalog, gaa::cond::DefaultConfigText(), "").ok()) {
      std::fprintf(stderr, "init failed\n");
      return 1;
    }
    init_ms.push_back(watch.ElapsedMs());
  }

  // --- per-request phases -----------------------------------------------------
  gaa::web::GaaWebServer::Options options;
  options.use_real_clock = true;
  options.notification_latency_us = 0;  // phase costs without the mail sink
  gaa::web::GaaWebServer server(gaa::http::DocTree::DemoSite(), options);
  server.AddUser("alice", "wonder");
  if (!server.AddSystemPolicy(IntrusionSystemPolicy()).ok() ||
      !server.SetLocalPolicy("/", IntrusionLocalPolicy()).ok()) {
    std::fprintf(stderr, "policy setup failed\n");
    return 1;
  }
  // Give the granting entry mid and post blocks so phases 3 and 4 have work.
  if (!server
           .SetLocalPolicy("/cgi-bin", R"(
pos_access_right apache *
mid_cond_cpu local 1.0
post_cond_log local on:any/ops
)")
           .ok()) {
    std::fprintf(stderr, "cgi policy setup failed\n");
    return 1;
  }

  std::vector<double> get_policy_ms;
  std::vector<double> build_rights_ms;
  std::vector<double> check_authz_ms;
  std::vector<double> translate_ms;
  std::vector<double> exec_control_ms;
  std::vector<double> post_exec_ms;

  auto& api = server.api();
  for (int i = 0; i < kIterations; ++i) {
    // Alternate benign static, benign CGI and attack requests.
    const char* target = i % 3 == 0   ? "/index.html"
                         : i % 3 == 1 ? "/cgi-bin/search?q=policy"
                                      : "/cgi-bin/phf?Qalias=x";
    std::string raw = gaa::http::BuildGetRequest(target);
    auto parsed = gaa::http::ParseRequest(raw);
    gaa::http::RequestRec rec = *parsed.request;
    rec.client_ip =
        gaa::util::Ipv4Address::Parse("10.0." + std::to_string(i % 200) + "." +
                                      std::to_string(1 + i % 250))
            .value();

    // 2a: retrieve + compose the object's policies.
    Stopwatch w2a;
    auto composed = api.GetObjectPolicyInfo(rec.path);
    get_policy_ms.push_back(w2a.ElapsedMs());

    // 2b: build the requested right + classified parameter list.
    Stopwatch w2b;
    auto ctx = server.controller().BuildContext(rec);
    gaa::core::RequestedRight right{"apache", rec.method};
    build_rights_ms.push_back(w2b.ElapsedMs());

    // 2c: check authorization.
    Stopwatch w2c;
    auto authz = api.CheckAuthorization(composed, right, ctx);
    check_authz_ms.push_back(w2c.ElapsedMs());

    // 2d: translate to the Apache status.
    Stopwatch w2d;
    auto translation = gaa::web::TranslateAuthz(authz, "realm");
    (void)translation;
    translate_ms.push_back(w2d.ElapsedMs());

    if (authz.status == gaa::util::Tristate::kYes) {
      // 3: execution control over live stats.
      ctx.stats.cpu_seconds = 0.002;
      ctx.stats.wall_us = 2000;
      Stopwatch w3;
      (void)api.ExecutionControl(authz, ctx);
      exec_control_ms.push_back(w3.ElapsedMs());

      // 4: post-execution actions.
      Stopwatch w4;
      (void)api.PostExecutionActions(authz, ctx, /*operation_succeeded=*/true);
      post_exec_ms.push_back(w4.ElapsedMs());
    }
  }

  PhaseRow rows[] = {
      {"initialization", "box 1", Summarize(init_ms)},
      {"get_object_policy_info", "box 2a", Summarize(get_policy_ms)},
      {"build_requested_rights", "box 2b", Summarize(build_rights_ms)},
      {"check_authorization", "box 2c", Summarize(check_authz_ms)},
      {"translate_decision", "box 2d", Summarize(translate_ms)},
      {"execution_control", "box 3", Summarize(exec_control_ms)},
      {"post_execution_actions", "box 4", Summarize(post_exec_ms)},
  };

  std::printf("%-26s %-8s %12s %12s %12s\n", "phase", "figure", "mean_ms",
              "p50_ms", "p95_ms");
  double per_request_total = 0;
  for (const PhaseRow& row : rows) {
    std::printf("%-26s %-8s %12.5f %12.5f %12.5f\n", row.phase,
                row.figure_box, row.stats.mean_ms, row.stats.p50_ms,
                row.stats.p95_ms);
    report.SetStats(row.phase, row.stats);
    if (std::string(row.phase) != "initialization") {
      per_request_total += row.stats.mean_ms;
    }
  }
  std::printf("%-26s %-8s %12.5f\n", "per-request total", "2a-4",
              per_request_total);
  report.Set("per_request_total", "mean_ms", per_request_total);
  std::printf("\n(initialization runs once at daemon start; "
              "per-request phases ran over %d mixed requests)\n",
              kIterations);
  return report.WriteFile(json_path) ? 0 : 1;
}
