// Bundle of the two telemetry facilities a server instance owns: the metric
// registry and the request tracer.  Components receive a Telemetry* (or the
// individual pieces) and treat null as "telemetry disabled".
#pragma once

#include <atomic>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gaa::telemetry {

class Telemetry {
 public:
  Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricRegistry& registry() { return registry_; }
  const MetricRegistry& registry() const { return registry_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// Per-request tracing can be switched off independently of metrics (the
  /// ring buffer copy is the most expensive part of the pipeline's
  /// instrumentation).
  bool tracing_enabled() const {
    return tracing_enabled_.load(std::memory_order_relaxed);
  }
  void set_tracing_enabled(bool on) {
    tracing_enabled_.store(on, std::memory_order_relaxed);
  }

 private:
  MetricRegistry registry_;
  Tracer tracer_;
  std::atomic<bool> tracing_enabled_{true};
};

}  // namespace gaa::telemetry
