#include "telemetry/trace.h"

#include <chrono>

namespace gaa::telemetry {

namespace {
std::int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

RequestTrace::RequestTrace(std::uint64_t id, std::int64_t start_unix_us)
    : id_(id), start_unix_us_(start_unix_us), start_us_(SteadyNowUs()) {
  spans_.reserve(8);
}

std::size_t RequestTrace::OpenSpan(const char* name) {
  Span s;
  s.name = name;
  s.depth = open_depth_++;
  s.start_us = SteadyNowUs();
  spans_.push_back(std::move(s));
  return spans_.size() - 1;
}

void RequestTrace::CloseSpan(std::size_t index) {
  if (index >= spans_.size()) return;
  Span& s = spans_[index];
  if (s.end_us != 0) return;  // already closed
  s.end_us = SteadyNowUs();
  if (open_depth_ > 0) --open_depth_;
}

void RequestTrace::Finish() { end_us_ = SteadyNowUs(); }

std::unique_ptr<RequestTrace> Tracer::Begin() {
  const std::uint64_t period = sample_period_.load(std::memory_order_relaxed);
  if (period == 0) return nullptr;
  if (period > 1 &&
      seen_.fetch_add(1, std::memory_order_relaxed) % period != 0) {
    return nullptr;
  }
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t unix_us = clock_ ? clock_->Now() : 0;
  auto trace = std::make_unique<RequestTrace>(id, unix_us);
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.emplace(id, trace->start_us());
  }
  return trace;
}

void Tracer::Finish(std::unique_ptr<RequestTrace> trace) {
  if (!trace) return;
  trace->Finish();
  bool was_flagged = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(trace->id());
    was_flagged = flagged_.erase(trace->id()) > 0;
  }
  trace->slow = was_flagged;

  std::function<void(const RequestTrace&)> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (was_flagged) {
      pinned_.push_back(*trace);  // pin a copy before ring eviction can bite
      while (pinned_.size() > pinned_capacity_) pinned_.pop_front();
      hook = slow_hook_;
    }
    if (hook) {
      ring_.push_back(*trace);  // keep *trace intact for the hook below
    } else {
      ring_.push_back(std::move(*trace));
    }
    while (ring_.size() > capacity_) ring_.pop_front();
  }
  // Runs on this (request) thread with no lock held: the span tree is
  // complete and user code cannot deadlock back into the tracer.
  if (hook) hook(*trace);
}

std::vector<RequestTrace> Tracer::Recent(std::size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = ring_.size();
  if (limit != 0 && limit < n) n = limit;
  std::vector<RequestTrace> out;
  out.reserve(n);
  for (std::size_t i = ring_.size() - n; i < ring_.size(); ++i) {
    out.push_back(ring_[i]);
  }
  return out;
}

std::size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void Tracer::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  while (ring_.size() > capacity_) ring_.pop_front();
}

void Tracer::set_pinned_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  pinned_capacity_ = capacity;
  while (pinned_.size() > pinned_capacity_) pinned_.pop_front();
}

std::vector<Tracer::SlowCandidate> Tracer::FlagSlowerThan(
    std::int64_t deadline_us) {
  const std::int64_t now = SteadyNowUs();
  std::vector<SlowCandidate> flagged;
  std::lock_guard<std::mutex> lock(inflight_mu_);
  for (const auto& [id, start_us] : inflight_) {
    const std::int64_t elapsed = now - start_us;
    if (elapsed < deadline_us) continue;
    if (!flagged_.insert(id).second) continue;  // already flagged
    flagged.push_back(SlowCandidate{id, elapsed});
  }
  return flagged;
}

std::size_t Tracer::inflight() const {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  return inflight_.size();
}

std::vector<RequestTrace> Tracer::Pinned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<RequestTrace>(pinned_.begin(), pinned_.end());
}

void Tracer::set_slow_retired_hook(
    std::function<void(const RequestTrace&)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_hook_ = std::move(hook);
}

void Tracer::Clear() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    pinned_.clear();
  }
  std::lock_guard<std::mutex> lock(inflight_mu_);
  flagged_.clear();
}

}  // namespace gaa::telemetry
