#include "telemetry/trace.h"

#include <chrono>

namespace gaa::telemetry {

namespace {
std::int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

RequestTrace::RequestTrace(std::uint64_t id, std::int64_t start_unix_us)
    : id_(id), start_unix_us_(start_unix_us), start_us_(SteadyNowUs()) {
  spans_.reserve(8);
}

std::size_t RequestTrace::OpenSpan(const char* name) {
  Span s;
  s.name = name;
  s.depth = open_depth_++;
  s.start_us = SteadyNowUs();
  spans_.push_back(std::move(s));
  return spans_.size() - 1;
}

void RequestTrace::CloseSpan(std::size_t index) {
  if (index >= spans_.size()) return;
  Span& s = spans_[index];
  if (s.end_us != 0) return;  // already closed
  s.end_us = SteadyNowUs();
  if (open_depth_ > 0) --open_depth_;
}

void RequestTrace::Finish() { end_us_ = SteadyNowUs(); }

std::unique_ptr<RequestTrace> Tracer::Begin() {
  const std::uint64_t period = sample_period_.load(std::memory_order_relaxed);
  if (period == 0) return nullptr;
  if (period > 1 &&
      seen_.fetch_add(1, std::memory_order_relaxed) % period != 0) {
    return nullptr;
  }
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t unix_us = clock_ ? clock_->Now() : 0;
  return std::make_unique<RequestTrace>(id, unix_us);
}

void Tracer::Finish(std::unique_ptr<RequestTrace> trace) {
  if (!trace) return;
  trace->Finish();
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(*trace));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<RequestTrace> Tracer::Recent(std::size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = ring_.size();
  if (limit != 0 && limit < n) n = limit;
  std::vector<RequestTrace> out;
  out.reserve(n);
  for (std::size_t i = ring_.size() - n; i < ring_.size(); ++i) {
    out.push_back(ring_[i]);
  }
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

}  // namespace gaa::telemetry
