// Per-request tracing: a trace id plus a flat list of timed, depth-nested
// spans, mirroring the paper's request pipeline — parse, policy lookup and
// composition (phase 2a), pre / request-result condition evaluation (2b–2d),
// mid-execution control (3), post-execution actions (4), response write.
//
// A RequestTrace is owned by exactly one thread at a time (the connection
// layer hands it to the worker through the job queue, whose mutex provides
// the happens-before edge), so span recording needs no synchronisation.
// Completed traces are pushed into the Tracer's mutex-guarded ring buffer
// where /__status and tests read them.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/clock.h"

namespace gaa::telemetry {

/// One timed region inside a request.  Times are steady-clock microseconds
/// relative to an arbitrary process origin; subtract the trace's start_us to
/// get request-relative offsets.
struct Span {
  /// Span names are string literals (static storage), so a view avoids a
  /// heap allocation per span on the request hot path.
  std::string_view name;
  int depth = 0;               ///< nesting depth at open time (0 = top level)
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;     ///< 0 while still open

  std::int64_t DurationUs() const { return end_us - start_us; }
};

/// A single request's trace.  Not thread-safe; ownership transfers between
/// threads must be externally synchronised (the job queue does this).
class RequestTrace {
 public:
  RequestTrace(std::uint64_t id, std::int64_t start_unix_us);

  std::uint64_t id() const { return id_; }

  // Request identity, filled in as the pipeline learns it.
  std::string method;
  std::string target;
  std::string client_ip;
  int status = 0;

  /// Set by the Tracer when the slow-request watchdog flagged this request
  /// while it was in flight (it blew its deadline).
  bool slow = false;

  /// Wall-clock start (Unix µs via the wired Clock; 0 if none).
  std::int64_t start_unix_us() const { return start_unix_us_; }
  std::int64_t start_us() const { return start_us_; }
  std::int64_t end_us() const { return end_us_; }
  std::int64_t DurationUs() const { return end_us_ - start_us_; }

  /// Open a span at the current nesting depth.  Returns its index for
  /// CloseSpan.  Prefer ScopedSpan.
  std::size_t OpenSpan(const char* name);
  void CloseSpan(std::size_t index);

  /// Stamp the trace's end time (idempotent: keeps the latest call).
  void Finish();

  const std::vector<Span>& spans() const { return spans_; }

 private:
  std::uint64_t id_;
  std::int64_t start_unix_us_;
  std::int64_t start_us_;
  std::int64_t end_us_ = 0;
  int open_depth_ = 0;
  std::vector<Span> spans_;
};

/// RAII span.  Null-safe: a null trace makes every operation a no-op, so
/// instrumented code does not branch on "is tracing enabled".
class ScopedSpan {
 public:
  ScopedSpan(RequestTrace* trace, const char* name) : trace_(trace) {
    if (trace_) index_ = trace_->OpenSpan(name);
  }
  ~ScopedSpan() { End(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Close early (before scope exit).  Idempotent.
  void End() {
    if (trace_) {
      trace_->CloseSpan(index_);
      trace_ = nullptr;
    }
  }

 private:
  RequestTrace* trace_;
  std::size_t index_ = 0;
};

/// Id of a possibly-null trace (0 = untraced) — audit/log correlation.
inline std::uint64_t TraceId(const RequestTrace* trace) {
  return trace != nullptr ? trace->id() : 0;
}

/// Creates traces and retains the last `capacity` completed ones.  Also the
/// slow-request bookkeeper: sampled in-flight requests are registered (id +
/// steady start time only — the trace itself stays single-owner), so the
/// watchdog can flag deadline-blowers without touching live span trees.
/// Flagged traces are marked `slow`, pinned into a separate small ring that
/// fast traffic cannot evict, and reported through the slow-retired hook on
/// the request thread that owns them.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  static constexpr std::size_t kDefaultCapacity = 128;
  static constexpr std::size_t kDefaultPinnedCapacity = 16;

  /// Wall clock used only for start_unix_us stamps (span timing is always
  /// steady-clock).  Null reverts to "no wall timestamps".
  void set_clock(const util::Clock* clock) { clock_ = clock; }

  /// Trace one request in every `period` (1 = every request, the default;
  /// 0 disables).  Span timing costs ~2 clock reads per span, so busy
  /// servers sample; metrics stay exact regardless.
  void set_sample_period(std::uint64_t period) {
    sample_period_.store(period, std::memory_order_relaxed);
  }
  std::uint64_t sample_period() const {
    return sample_period_.load(std::memory_order_relaxed);
  }

  /// Null when this request is not sampled — all consumers are null-safe.
  std::unique_ptr<RequestTrace> Begin();

  /// Completes the trace (stamps end time) and retires it into the ring.
  void Finish(std::unique_ptr<RequestTrace> trace);

  /// Most-recent-last copy of the retained traces.
  std::vector<RequestTrace> Recent(std::size_t limit = 0) const;

  std::uint64_t started() const {
    return next_id_.load(std::memory_order_relaxed) - 1;
  }
  std::size_t capacity() const;

  /// Resize the completed-trace ring (config / env knob); trims to fit.
  void set_capacity(std::size_t capacity);
  /// Resize the pinned slow-trace ring; trims to fit.
  void set_pinned_capacity(std::size_t capacity);

  // --- slow-request support (driven by SlowRequestWatchdog) ----------------

  /// An in-flight request that just blew the deadline.
  struct SlowCandidate {
    std::uint64_t id = 0;
    std::int64_t elapsed_us = 0;
  };

  /// Flag every in-flight trace older than `deadline_us` that is not
  /// already flagged, and return the newly flagged ones.  Safe to call from
  /// any thread: only the (id, start time) registry is read, never the
  /// request-owned trace.
  std::vector<SlowCandidate> FlagSlowerThan(std::int64_t deadline_us);

  std::size_t inflight() const;

  /// Flagged traces, pinned at retirement so bursty fast traffic cannot
  /// evict the interesting ones.  Most-recent-last.
  std::vector<RequestTrace> Pinned() const;

  /// Invoked on the request thread when a flagged trace retires — the one
  /// point where the full span tree is both complete and race-free.  Keep
  /// it cheap; it runs inside request teardown.
  void set_slow_retired_hook(std::function<void(const RequestTrace&)> hook);

  void Clear();

 private:
  std::size_t capacity_;
  std::size_t pinned_capacity_ = kDefaultPinnedCapacity;
  const util::Clock* clock_ = nullptr;
  std::atomic<std::uint64_t> sample_period_{1};
  std::atomic<std::uint64_t> seen_{0};  ///< requests offered to Begin()
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::deque<RequestTrace> ring_;        ///< guarded by mu_
  std::deque<RequestTrace> pinned_;      ///< guarded by mu_
  std::function<void(const RequestTrace&)> slow_hook_;  ///< guarded by mu_

  /// In-flight registry: trace id → steady start µs.  A separate mutex so
  /// the watchdog's periodic scan never contends with ring retirement.
  mutable std::mutex inflight_mu_;
  std::unordered_map<std::uint64_t, std::int64_t> inflight_;
  std::unordered_set<std::uint64_t> flagged_;
};

}  // namespace gaa::telemetry
