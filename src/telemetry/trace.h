// Per-request tracing: a trace id plus a flat list of timed, depth-nested
// spans, mirroring the paper's request pipeline — parse, policy lookup and
// composition (phase 2a), pre / request-result condition evaluation (2b–2d),
// mid-execution control (3), post-execution actions (4), response write.
//
// A RequestTrace is owned by exactly one thread at a time (the connection
// layer hands it to the worker through the job queue, whose mutex provides
// the happens-before edge), so span recording needs no synchronisation.
// Completed traces are pushed into the Tracer's mutex-guarded ring buffer
// where /__status and tests read them.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"

namespace gaa::telemetry {

/// One timed region inside a request.  Times are steady-clock microseconds
/// relative to an arbitrary process origin; subtract the trace's start_us to
/// get request-relative offsets.
struct Span {
  /// Span names are string literals (static storage), so a view avoids a
  /// heap allocation per span on the request hot path.
  std::string_view name;
  int depth = 0;               ///< nesting depth at open time (0 = top level)
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;     ///< 0 while still open

  std::int64_t DurationUs() const { return end_us - start_us; }
};

/// A single request's trace.  Not thread-safe; ownership transfers between
/// threads must be externally synchronised (the job queue does this).
class RequestTrace {
 public:
  RequestTrace(std::uint64_t id, std::int64_t start_unix_us);

  std::uint64_t id() const { return id_; }

  // Request identity, filled in as the pipeline learns it.
  std::string method;
  std::string target;
  std::string client_ip;
  int status = 0;

  /// Wall-clock start (Unix µs via the wired Clock; 0 if none).
  std::int64_t start_unix_us() const { return start_unix_us_; }
  std::int64_t start_us() const { return start_us_; }
  std::int64_t end_us() const { return end_us_; }
  std::int64_t DurationUs() const { return end_us_ - start_us_; }

  /// Open a span at the current nesting depth.  Returns its index for
  /// CloseSpan.  Prefer ScopedSpan.
  std::size_t OpenSpan(const char* name);
  void CloseSpan(std::size_t index);

  /// Stamp the trace's end time (idempotent: keeps the latest call).
  void Finish();

  const std::vector<Span>& spans() const { return spans_; }

 private:
  std::uint64_t id_;
  std::int64_t start_unix_us_;
  std::int64_t start_us_;
  std::int64_t end_us_ = 0;
  int open_depth_ = 0;
  std::vector<Span> spans_;
};

/// RAII span.  Null-safe: a null trace makes every operation a no-op, so
/// instrumented code does not branch on "is tracing enabled".
class ScopedSpan {
 public:
  ScopedSpan(RequestTrace* trace, const char* name) : trace_(trace) {
    if (trace_) index_ = trace_->OpenSpan(name);
  }
  ~ScopedSpan() { End(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Close early (before scope exit).  Idempotent.
  void End() {
    if (trace_) {
      trace_->CloseSpan(index_);
      trace_ = nullptr;
    }
  }

 private:
  RequestTrace* trace_;
  std::size_t index_ = 0;
};

/// Id of a possibly-null trace (0 = untraced) — audit/log correlation.
inline std::uint64_t TraceId(const RequestTrace* trace) {
  return trace != nullptr ? trace->id() : 0;
}

/// Creates traces and retains the last `capacity` completed ones.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  static constexpr std::size_t kDefaultCapacity = 128;

  /// Wall clock used only for start_unix_us stamps (span timing is always
  /// steady-clock).  Null reverts to "no wall timestamps".
  void set_clock(const util::Clock* clock) { clock_ = clock; }

  /// Trace one request in every `period` (1 = every request, the default;
  /// 0 disables).  Span timing costs ~2 clock reads per span, so busy
  /// servers sample; metrics stay exact regardless.
  void set_sample_period(std::uint64_t period) {
    sample_period_.store(period, std::memory_order_relaxed);
  }
  std::uint64_t sample_period() const {
    return sample_period_.load(std::memory_order_relaxed);
  }

  /// Null when this request is not sampled — all consumers are null-safe.
  std::unique_ptr<RequestTrace> Begin();

  /// Completes the trace (stamps end time) and retires it into the ring.
  void Finish(std::unique_ptr<RequestTrace> trace);

  /// Most-recent-last copy of the retained traces.
  std::vector<RequestTrace> Recent(std::size_t limit = 0) const;

  std::uint64_t started() const {
    return next_id_.load(std::memory_order_relaxed) - 1;
  }
  std::size_t capacity() const { return capacity_; }

  void Clear();

 private:
  std::size_t capacity_;
  const util::Clock* clock_ = nullptr;
  std::atomic<std::uint64_t> sample_period_{1};
  std::atomic<std::uint64_t> seen_{0};  ///< requests offered to Begin()
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::deque<RequestTrace> ring_;  ///< guarded by mu_
};

}  // namespace gaa::telemetry
