// Slow-request watchdog: a monitor thread that periodically scans the
// tracer's in-flight registry for requests that blew a wall deadline.
//
// When a request exceeds `deadline_us` the watchdog (a) flags it in the
// tracer — so at retirement the trace is marked `slow`, pinned into the
// slow-trace ring and reported through the tracer's slow-retired hook —
// (b) bumps `slow_requests_total`, and (c) invokes the SlowHook with the
// id/elapsed snapshot, typically wired to the audit stream by the
// integration layer (telemetry must not depend on audit).
//
// The scan reads only the (id, start-time) registry, never a live span
// tree, so it is data-race-free against request threads by construction.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/trace.h"

namespace gaa::telemetry {

class Counter;
class MetricRegistry;

class SlowRequestWatchdog {
 public:
  struct Options {
    std::int64_t deadline_us = 1'000'000;     ///< 1 s default
    std::int64_t poll_interval_us = 100'000;  ///< 100 ms default
  };

  /// Fired once per newly flagged request, from the watchdog thread.
  struct SlowEvent {
    std::uint64_t trace_id = 0;
    std::int64_t elapsed_us = 0;  ///< age at flag time, still running
  };
  using SlowHook = std::function<void(const SlowEvent&)>;

  SlowRequestWatchdog(Tracer* tracer, MetricRegistry* registry,
                      Options options, SlowHook hook = nullptr);
  ~SlowRequestWatchdog();

  SlowRequestWatchdog(const SlowRequestWatchdog&) = delete;
  SlowRequestWatchdog& operator=(const SlowRequestWatchdog&) = delete;

  /// One scan pass; returns how many requests were newly flagged.  The
  /// monitor thread calls this every poll interval; tests call it directly
  /// for determinism.
  std::size_t ScanOnce();

  void Stop();  ///< idempotent; the destructor calls it

  std::uint64_t flagged_total() const;
  const Options& options() const { return options_; }

 private:
  void Loop();

  Tracer* tracer_;
  Options options_;
  SlowHook hook_;
  Counter* slow_counter_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t flagged_total_ = 0;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace gaa::telemetry
