#include "telemetry/exposition.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string_view>
#include <unordered_set>

namespace gaa::telemetry {

namespace {

std::string SanitizeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string RenderPrometheus(const MetricRegistry& registry) {
  std::ostringstream out;
  std::unordered_set<std::string> typed;  // one # TYPE line per family
  for (const MetricRegistry::Entry& e : registry.List()) {
    const std::string family = SanitizeName(e.name);
    if (typed.insert(family).second) {
      out << "# TYPE " << family << ' ' << KindName(e.kind) << '\n';
    }
    const std::string braces =
        e.labels.empty() ? std::string() : "{" + e.labels + "}";
    switch (e.kind) {
      case MetricKind::kCounter:
        out << family << braces << ' ' << e.counter->Value() << '\n';
        break;
      case MetricKind::kGauge:
        out << family << braces << ' ' << e.gauge->Value() << '\n';
        break;
      case MetricKind::kHistogram: {
        const Histogram::Snapshot s = e.histogram->TakeSnapshot();
        const std::string sep = e.labels.empty() ? "" : ",";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          cumulative += s.counts[i];
          out << family << "_bucket{" << e.labels << sep
              << "le=\"" << s.bounds[i] << "\"} " << cumulative << '\n';
        }
        cumulative += s.counts.back();
        out << family << "_bucket{" << e.labels << sep << "le=\"+Inf\"} "
            << cumulative << '\n';
        out << family << "_sum" << braces << ' ' << s.sum << '\n';
        out << family << "_count" << braces << ' ' << s.count << '\n';
        break;
      }
    }
  }
  return out.str();
}

std::string RenderTracesJson(const Tracer& tracer, std::size_t limit) {
  const std::vector<RequestTrace> traces = tracer.Recent(limit);
  std::string out;
  out.reserve(256 * traces.size() + 2);
  out.push_back('[');
  bool first_trace = true;
  for (const RequestTrace& t : traces) {
    if (!first_trace) out.push_back(',');
    first_trace = false;
    out += "{\"id\":" + std::to_string(t.id());
    out += ",\"method\":";
    AppendJsonString(out, t.method);
    out += ",\"target\":";
    AppendJsonString(out, t.target);
    out += ",\"client_ip\":";
    AppendJsonString(out, t.client_ip);
    out += ",\"status\":" + std::to_string(t.status);
    out += ",\"start_unix_us\":" + std::to_string(t.start_unix_us());
    out += ",\"duration_us\":" + std::to_string(t.DurationUs());
    out += ",\"spans\":[";
    bool first_span = true;
    for (const Span& s : t.spans()) {
      if (!first_span) out.push_back(',');
      first_span = false;
      out += "{\"name\":";
      AppendJsonString(out, s.name);
      out += ",\"depth\":" + std::to_string(s.depth);
      out += ",\"start_us\":" + std::to_string(s.start_us - t.start_us());
      const std::int64_t end = s.end_us == 0 ? t.end_us() : s.end_us;
      out += ",\"duration_us\":" + std::to_string(end - s.start_us);
      out.push_back('}');
    }
    out += "]}";
  }
  out.push_back(']');
  return out;
}

}  // namespace gaa::telemetry
