#include "telemetry/exposition.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>
#include <vector>
#include <string_view>
#include <unordered_set>

namespace gaa::telemetry {

namespace {

std::string SanitizeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string RenderPrometheus(const MetricRegistry& registry) {
  return RenderPrometheus(registry, std::string());
}

std::string RenderPrometheus(const MetricRegistry& registry,
                             const std::string& extra_label) {
  std::ostringstream out;
  std::unordered_set<std::string> typed;  // one # TYPE line per family
  for (const MetricRegistry::Entry& e : registry.List()) {
    const std::string family = SanitizeName(e.name);
    if (typed.insert(family).second) {
      out << "# TYPE " << family << ' ' << KindName(e.kind) << '\n';
    }
    const std::string labels =
        extra_label.empty()
            ? e.labels
            : (e.labels.empty() ? extra_label : e.labels + "," + extra_label);
    const std::string braces =
        labels.empty() ? std::string() : "{" + labels + "}";
    switch (e.kind) {
      case MetricKind::kCounter:
        out << family << braces << ' ' << e.counter->Value() << '\n';
        break;
      case MetricKind::kGauge:
        out << family << braces << ' ' << e.gauge->Value() << '\n';
        break;
      case MetricKind::kHistogram: {
        const Histogram::Snapshot s = e.histogram->TakeSnapshot();
        const std::string sep = labels.empty() ? "" : ",";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          cumulative += s.counts[i];
          out << family << "_bucket{" << labels << sep
              << "le=\"" << s.bounds[i] << "\"} " << cumulative << '\n';
        }
        cumulative += s.counts.back();
        out << family << "_bucket{" << labels << sep << "le=\"+Inf\"} "
            << cumulative << '\n';
        out << family << "_sum" << braces << ' ' << s.sum << '\n';
        out << family << "_count" << braces << ' ' << s.count << '\n';
        out << family << "_max" << braces << ' ' << s.max << '\n';
        break;
      }
    }
  }
  return out.str();
}

namespace {

std::string RenderTraceArray(const std::vector<RequestTrace>& traces) {
  std::string out;
  out.reserve(256 * traces.size() + 2);
  out.push_back('[');
  bool first_trace = true;
  for (const RequestTrace& t : traces) {
    if (!first_trace) out.push_back(',');
    first_trace = false;
    out += "{\"id\":" + std::to_string(t.id());
    out += ",\"method\":";
    AppendJsonString(out, t.method);
    out += ",\"target\":";
    AppendJsonString(out, t.target);
    out += ",\"client_ip\":";
    AppendJsonString(out, t.client_ip);
    out += ",\"status\":" + std::to_string(t.status);
    out += std::string(",\"slow\":") + (t.slow ? "true" : "false");
    out += ",\"start_unix_us\":" + std::to_string(t.start_unix_us());
    out += ",\"duration_us\":" + std::to_string(t.DurationUs());
    out += ",\"spans\":[";
    bool first_span = true;
    for (const Span& s : t.spans()) {
      if (!first_span) out.push_back(',');
      first_span = false;
      out += "{\"name\":";
      AppendJsonString(out, s.name);
      out += ",\"depth\":" + std::to_string(s.depth);
      out += ",\"start_us\":" + std::to_string(s.start_us - t.start_us());
      const std::int64_t end = s.end_us == 0 ? t.end_us() : s.end_us;
      out += ",\"duration_us\":" + std::to_string(end - s.start_us);
      out.push_back('}');
    }
    out += "]}";
  }
  out.push_back(']');
  return out;
}

void AppendDouble(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out += buf;
}

void AppendQuantiles(std::string& out, const Histogram::Snapshot& s) {
  out += ",\"count\":" + std::to_string(s.count);
  out += ",\"sum\":" + std::to_string(s.sum);
  out += ",\"mean\":";
  AppendDouble(out, s.Mean());
  out += ",\"p50\":";
  AppendDouble(out, s.Quantile(0.50));
  out += ",\"p95\":";
  AppendDouble(out, s.Quantile(0.95));
  out += ",\"p99\":";
  AppendDouble(out, s.Quantile(0.99));
  out += ",\"p999\":";
  AppendDouble(out, s.Quantile(0.999));
  out += ",\"max\":" + std::to_string(s.max);
}

/// Parse a `key="value",...` label string into pairs.  Values are the
/// registry's own (we never emit embedded quotes), so a flat scan is enough.
std::vector<std::pair<std::string, std::string>> ParseLabels(
    const std::string& labels) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t pos = 0;
  while (pos < labels.size()) {
    std::size_t eq = labels.find("=\"", pos);
    if (eq == std::string::npos) break;
    std::size_t close = labels.find('"', eq + 2);
    if (close == std::string::npos) break;
    out.emplace_back(labels.substr(pos, eq - pos),
                     labels.substr(eq + 2, close - eq - 2));
    pos = close + 1;
    if (pos < labels.size() && labels[pos] == ',') ++pos;
  }
  return out;
}

std::string LabelValue(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string& key) {
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return std::string();
}

}  // namespace

std::string RenderTracesJson(const Tracer& tracer, std::size_t limit) {
  return RenderTraceArray(tracer.Recent(limit));
}

std::string RenderSlowTracesJson(const Tracer& tracer) {
  return RenderTraceArray(tracer.Pinned());
}

std::string RenderMetricsJson(const MetricRegistry& registry, int process) {
  std::string body = RenderMetricsJson(registry);  // "{...}"
  body.replace(0, 1, "{\"process\":" + std::to_string(process) + ",");
  return body;
}

std::string RenderMetricsJson(const MetricRegistry& registry) {
  std::string counters, gauges, histograms;
  for (const MetricRegistry::Entry& e : registry.List()) {
    std::string item = "{\"name\":";
    AppendJsonString(item, e.name);
    item += ",\"labels\":";
    AppendJsonString(item, e.labels);
    switch (e.kind) {
      case MetricKind::kCounter:
        item += ",\"value\":" + std::to_string(e.counter->Value()) + "}";
        if (!counters.empty()) counters.push_back(',');
        counters += item;
        break;
      case MetricKind::kGauge:
        item += ",\"value\":" + std::to_string(e.gauge->Value()) + "}";
        if (!gauges.empty()) gauges.push_back(',');
        gauges += item;
        break;
      case MetricKind::kHistogram: {
        AppendQuantiles(item, e.histogram->TakeSnapshot());
        item.push_back('}');
        if (!histograms.empty()) histograms.push_back(',');
        histograms += item;
        break;
      }
    }
  }
  return "{\"counters\":[" + counters + "],\"gauges\":[" + gauges +
         "],\"histograms\":[" + histograms + "]}";
}

std::string RenderPoliciesJson(const MetricRegistry& registry) {
  // policy name -> entry index -> outcome -> count, preserving first-seen
  // policy/entry order (registry creation order is evaluation order).
  struct EntryCounts {
    int entry = 0;
    std::uint64_t outcomes[4] = {0, 0, 0, 0};  // yes, no, maybe, miss
  };
  std::vector<std::pair<std::string, std::vector<EntryCounts>>> policies;
  std::string conditions;

  auto policy_slot = [&](const std::string& name)
      -> std::vector<EntryCounts>& {
    for (auto& [n, entries] : policies) {
      if (n == name) return entries;
    }
    policies.emplace_back(name, std::vector<EntryCounts>());
    return policies.back().second;
  };
  auto entry_slot = [](std::vector<EntryCounts>& entries,
                       int index) -> EntryCounts& {
    for (auto& e : entries) {
      if (e.entry == index) return e;
    }
    entries.push_back(EntryCounts{index, {0, 0, 0, 0}});
    return entries.back();
  };

  for (const MetricRegistry::Entry& e : registry.List()) {
    if (e.kind == MetricKind::kCounter &&
        e.name == "eacl_entry_decisions_total") {
      const auto labels = ParseLabels(e.labels);
      const std::string outcome = LabelValue(labels, "outcome");
      int outcome_idx = outcome == "yes"     ? 0
                        : outcome == "no"    ? 1
                        : outcome == "maybe" ? 2
                                             : 3;
      int entry_idx = 0;
      const std::string entry_text = LabelValue(labels, "entry");
      if (!entry_text.empty()) entry_idx = std::atoi(entry_text.c_str());
      EntryCounts& slot =
          entry_slot(policy_slot(LabelValue(labels, "policy")), entry_idx);
      slot.outcomes[outcome_idx] += e.counter->Value();
    } else if (e.kind == MetricKind::kHistogram &&
               e.name == "gaa_cond_eval_us") {
      const auto labels = ParseLabels(e.labels);
      std::string item = "{\"cond\":";
      AppendJsonString(item, LabelValue(labels, "cond"));
      item += ",\"auth\":";
      AppendJsonString(item, LabelValue(labels, "auth"));
      AppendQuantiles(item, e.histogram->TakeSnapshot());
      item.push_back('}');
      if (!conditions.empty()) conditions.push_back(',');
      conditions += item;
    }
  }

  std::string out = "{\"policies\":[";
  bool first_policy = true;
  for (auto& [name, entries] : policies) {
    if (!first_policy) out.push_back(',');
    first_policy = false;
    std::sort(entries.begin(), entries.end(),
              [](const EntryCounts& a, const EntryCounts& b) {
                return a.entry < b.entry;
              });
    out += "{\"policy\":";
    AppendJsonString(out, name);
    out += ",\"entries\":[";
    bool first_entry = true;
    for (const EntryCounts& e : entries) {
      if (!first_entry) out.push_back(',');
      first_entry = false;
      out += "{\"entry\":" + std::to_string(e.entry);
      out += ",\"yes\":" + std::to_string(e.outcomes[0]);
      out += ",\"no\":" + std::to_string(e.outcomes[1]);
      out += ",\"maybe\":" + std::to_string(e.outcomes[2]);
      out += ",\"miss\":" + std::to_string(e.outcomes[3]);
      out.push_back('}');
    }
    out += "]}";
  }
  out += "],\"conditions\":[" + conditions + "]}";
  return out;
}

}  // namespace gaa::telemetry
