#include "telemetry/watchdog.h"

#include <chrono>
#include <utility>

#include "telemetry/metrics.h"

namespace gaa::telemetry {

SlowRequestWatchdog::SlowRequestWatchdog(Tracer* tracer,
                                         MetricRegistry* registry,
                                         Options options, SlowHook hook)
    : tracer_(tracer), options_(options), hook_(std::move(hook)) {
  if (registry != nullptr) {
    slow_counter_ = registry->GetCounter("slow_requests_total");
  }
  if (options_.poll_interval_us > 0) {
    thread_ = std::thread([this] { Loop(); });
  }
}

SlowRequestWatchdog::~SlowRequestWatchdog() { Stop(); }

std::size_t SlowRequestWatchdog::ScanOnce() {
  if (tracer_ == nullptr) return 0;
  std::vector<Tracer::SlowCandidate> flagged =
      tracer_->FlagSlowerThan(options_.deadline_us);
  if (flagged.empty()) return 0;
  if (slow_counter_ != nullptr) slow_counter_->Inc(flagged.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    flagged_total_ += flagged.size();
  }
  if (hook_) {
    for (const auto& candidate : flagged) {
      hook_(SlowEvent{candidate.id, candidate.elapsed_us});
    }
  }
  return flagged.size();
}

void SlowRequestWatchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      if (thread_.joinable()) thread_.join();
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void SlowRequestWatchdog::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::microseconds(options_.poll_interval_us),
                 [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    ScanOnce();
    lock.lock();
  }
}

std::uint64_t SlowRequestWatchdog::flagged_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flagged_total_;
}

}  // namespace gaa::telemetry
