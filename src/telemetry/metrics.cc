#include "telemetry/metrics.h"

#include <algorithm>

namespace gaa::telemetry {

const std::vector<std::uint64_t>& Histogram::DefaultLatencyBoundsUs() {
  static const std::vector<std::uint64_t> bounds = {
      10,     25,     50,     100,     250,     500,       1'000,
      2'500,  5'000,  10'000, 25'000,  50'000,  100'000,   250'000,
      500'000, 1'000'000, 2'500'000};
  return bounds;
}

const std::vector<std::uint64_t>& Histogram::WideLatencyBoundsUs() {
  static const std::vector<std::uint64_t> bounds =
      LogBounds(1, 60'000'000, 32);
  return bounds;
}

std::vector<std::uint64_t> Histogram::LogBounds(std::uint64_t min_value,
                                                std::uint64_t max_value,
                                                std::uint64_t sub_buckets) {
  if (min_value == 0) min_value = 1;
  if (sub_buckets == 0) sub_buckets = 1;
  std::vector<std::uint64_t> bounds;
  bounds.push_back(min_value);
  std::uint64_t octave = min_value;  // lower edge of the current doubling
  std::uint64_t value = min_value;
  while (value < max_value) {
    std::uint64_t step = octave / sub_buckets;
    if (step == 0) step = 1;
    value += step;
    if (value >= octave * 2) octave *= 2;
    bounds.push_back(std::min(value, max_value));
  }
  return bounds;
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(bounds.empty() ? DefaultLatencyBoundsUs() : std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::Reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      // Interpolate within [lower, upper].  The +Inf bucket spans
      // (last bound, max]; any bucket containing the observed max is
      // clamped to it — without this, p99 of a distribution with a 10s
      // tail silently saturates at the last finite bound.
      const double lower = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      double upper = i < bounds.size() ? static_cast<double>(bounds[i])
                                       : static_cast<double>(max);
      if (max > 0 && static_cast<double>(max) < upper) {
        upper = static_cast<double>(max);
      }
      if (upper < lower) upper = lower;
      const double frac =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, frac));
    }
    cumulative += in_bucket;
  }
  return max > 0 ? static_cast<double>(max)
                 : (bounds.empty() ? 0.0 : static_cast<double>(bounds.back()));
}

namespace {
char KindPrefix(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return 'c';
    case MetricKind::kGauge:
      return 'g';
    case MetricKind::kHistogram:
      return 'h';
  }
  return '?';
}

std::string MakeKey(MetricKind kind, const std::string& name,
                    const std::string& labels) {
  std::string key;
  key.reserve(name.size() + labels.size() + 3);
  key.push_back(KindPrefix(kind));
  key.push_back(':');
  key += name;
  key.push_back('\x01');
  key += labels;
  return key;
}
}  // namespace

MetricRegistry::~MetricRegistry() = default;

MetricRegistry::Slot* MetricRegistry::FindOrCreate(
    MetricKind kind, const std::string& name, const std::string& labels,
    std::vector<std::uint64_t> histogram_bounds) {
  const std::string key = MakeKey(kind, name, labels);

  // Fast path: lock-free lookup in the currently-published table.
  if (const Table* t = table_.load(std::memory_order_acquire)) {
    auto it = t->by_key.find(key);
    if (it != t->by_key.end()) return it->second;
  }

  std::lock_guard<std::mutex> lock(create_mu_);
  // Re-check under the lock (another thread may have created it).
  const Table* current = table_.load(std::memory_order_acquire);
  if (current) {
    auto it = current->by_key.find(key);
    if (it != current->by_key.end()) return it->second;
  }

  auto slot = std::make_unique<Slot>();
  slot->name = name;
  slot->labels = labels;
  slot->kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      slot->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      slot->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      slot->histogram = std::make_unique<Histogram>(std::move(histogram_bounds));
      break;
  }
  Slot* raw = slot.get();
  slots_.push_back(std::move(slot));

  // Copy-on-write: build the successor table and publish it.  Old tables are
  // retained so concurrent lock-free readers never chase a freed pointer.
  auto next = std::make_unique<Table>();
  if (current) *next = *current;
  next->by_key.emplace(key, raw);
  next->ordered.push_back(raw);
  table_.store(next.get(), std::memory_order_release);
  tables_.push_back(std::move(next));
  return raw;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& labels) {
  return FindOrCreate(MetricKind::kCounter, name, labels, {})->counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& labels) {
  return FindOrCreate(MetricKind::kGauge, name, labels, {})->gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& labels,
                                        std::vector<std::uint64_t> bounds) {
  return FindOrCreate(MetricKind::kHistogram, name, labels, std::move(bounds))
      ->histogram.get();
}

std::vector<MetricRegistry::Entry> MetricRegistry::List() const {
  std::vector<Entry> out;
  const Table* t = table_.load(std::memory_order_acquire);
  if (!t) return out;
  out.reserve(t->ordered.size());
  for (Slot* s : t->ordered) {
    Entry e;
    e.name = s->name;
    e.labels = s->labels;
    e.kind = s->kind;
    e.counter = s->counter.get();
    e.gauge = s->gauge.get();
    e.histogram = s->histogram.get();
    out.push_back(std::move(e));
  }
  return out;
}

void MetricRegistry::ResetAll() {
  const Table* t = table_.load(std::memory_order_acquire);
  if (!t) return;
  for (Slot* s : t->ordered) {
    if (s->counter) s->counter->Reset();
    if (s->histogram) s->histogram->Reset();
  }
}

}  // namespace gaa::telemetry
