// Renders registry contents as Prometheus text exposition format and recent
// traces as JSON.  Used by the /__status endpoint and by benches that want a
// scrape without an HTTP round-trip.
#pragma once

#include <cstddef>
#include <string>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gaa::telemetry {

/// Prometheus text format (version 0.0.4).  Metric names have '.' and other
/// illegal characters mapped to '_'; histograms expand into cumulative
/// `_bucket{le=...}` series plus `_sum` and `_count`.
std::string RenderPrometheus(const MetricRegistry& registry);

/// Same, with `extra_label` (e.g. `process="2"`) appended to every series'
/// label set — the cluster mode's per-process attribution (DESIGN.md §15).
/// An empty `extra_label` renders byte-identically to the overload above.
std::string RenderPrometheus(const MetricRegistry& registry,
                             const std::string& extra_label);

/// JSON array of the most recent `limit` completed traces (0 = all
/// retained), oldest first:
///   [{"id":1,"method":"GET","target":"/x","client_ip":"1.2.3.4",
///     "status":200,"slow":false,"start_unix_us":...,"duration_us":...,
///     "spans":[{"name":"parse","depth":0,"start_us":0,"duration_us":12},...]}]
/// Span start_us values are relative to the trace start.
std::string RenderTracesJson(const Tracer& tracer, std::size_t limit = 0);

/// Same trace shape, but for the pinned slow-trace ring (requests the
/// watchdog flagged): the /__status/slow view.
std::string RenderSlowTracesJson(const Tracer& tracer);

/// JSON object with every metric; histograms carry count/mean and
/// p50/p95/p99 summary estimates:
///   {"counters":[{"name":"...","labels":"...","value":1}],
///    "gauges":[...],
///    "histograms":[{"name":"...","labels":"...","count":9,"sum":123,
///                   "mean":13.7,"p50":12.0,"p95":31.0,"p99":44.0}]}
std::string RenderMetricsJson(const MetricRegistry& registry);

/// Same JSON shape with a leading `"process":N` field identifying the
/// cluster process slot that produced the metrics (cluster mode only; the
/// single-process overload above stays byte-compatible).
std::string RenderMetricsJson(const MetricRegistry& registry, int process);

/// The /__status/policies view: per-EACL-entry decision counters
/// (`eacl_entry_decisions_total{policy,entry,outcome}`) grouped by policy,
/// plus per-condition evaluation-latency percentiles (`gaa_cond_eval_us`):
///   {"policies":[{"policy":"system#0","entries":[
///        {"entry":0,"yes":10,"no":2,"maybe":0,"miss":1}]}],
///    "conditions":[{"cond":"pre_cond_access_id_ip","auth":"router",
///        "count":12,"mean":3.1,"p50":2.5,"p95":6.0,"p99":8.8}]}
std::string RenderPoliciesJson(const MetricRegistry& registry);

}  // namespace gaa::telemetry
