// Renders registry contents as Prometheus text exposition format and recent
// traces as JSON.  Used by the /__status endpoint and by benches that want a
// scrape without an HTTP round-trip.
#pragma once

#include <cstddef>
#include <string>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gaa::telemetry {

/// Prometheus text format (version 0.0.4).  Metric names have '.' and other
/// illegal characters mapped to '_'; histograms expand into cumulative
/// `_bucket{le=...}` series plus `_sum` and `_count`.
std::string RenderPrometheus(const MetricRegistry& registry);

/// JSON array of the most recent `limit` completed traces (0 = all
/// retained), oldest first:
///   [{"id":1,"method":"GET","target":"/x","client_ip":"1.2.3.4",
///     "status":200,"start_unix_us":...,"duration_us":...,
///     "spans":[{"name":"parse","depth":0,"start_us":0,"duration_us":12},...]}]
/// Span start_us values are relative to the trace start.
std::string RenderTracesJson(const Tracer& tracer, std::size_t limit = 0);

}  // namespace gaa::telemetry
