// Metrics registry: named counters, gauges and fixed-bucket histograms,
// designed for the request hot path.
//
// Design constraints (the layer every perf PR is judged against):
//
//   * The increment path never acquires a mutex.  Counters spread their
//     updates over cache-line-padded shards indexed by a per-thread slot, so
//     concurrent workers do not bounce one cache line; histograms use relaxed
//     atomic adds on per-bucket counters.
//   * Metric *lookup* by name is lock-free after first creation: the registry
//     publishes an immutable table through an atomic pointer (copy-on-write;
//     creation — cold — takes a mutex and installs a new table).  Call sites
//     on truly hot paths should still cache the returned handle: handles are
//     stable for the registry's lifetime.
//   * Reads (Value(), snapshots, exposition) are approximate under
//     concurrency in the usual Prometheus sense: monotone, eventually exact
//     once writers quiesce.
//
// Compiling with -DGAA_TELEMETRY_NOOP turns every mutation into a no-op so
// the cost of the instrumentation itself can be measured (bench_telemetry
// compares the two builds; the runtime equivalent is detaching telemetry).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace gaa::telemetry {

namespace internal {
/// Per-thread shard slot, assigned round-robin on first use.
inline unsigned ThreadShardSlot() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}
}  // namespace internal

/// Monotone counter.  Inc() is wait-free: one relaxed fetch_add on a shard
/// owned (mostly) by the calling thread.
class Counter {
 public:
  static constexpr unsigned kShards = 16;  // power of two

  void Inc(std::uint64_t n = 1) {
#ifndef GAA_TELEMETRY_NOOP
    shards_[internal::ThreadShardSlot() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  /// Zero the counter (tests, WebServer::ClearLogs).  Not atomic with
  /// respect to concurrent increments.
  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Last-value gauge (signed).
class Gauge {
 public:
  void Set(std::int64_t v) {
#ifndef GAA_TELEMETRY_NOOP
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(std::int64_t d) {
#ifndef GAA_TELEMETRY_NOOP
    v_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }
  std::int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram.  Record() is three relaxed atomic adds (bucket,
/// count, sum) plus a CAS-max on the observed maximum; bucket choice is a
/// branch-free-ish binary search over the immutable bound list.
class Histogram {
 public:
  /// Default bounds for request latencies in microseconds: 10us .. 2.5s.
  static const std::vector<std::uint64_t>& DefaultLatencyBoundsUs();

  /// Wide-range log-bucketed bounds: 1us .. 60s, 32 sub-buckets per octave
  /// (HDR-style).  Relative bucket width is <= 1/32 (~3.1%) everywhere, so
  /// interpolated quantiles carry bounded relative error across the whole
  /// range — built for the open-loop load harness where a stalled server
  /// must show up as a multi-second tail, not a saturated 2.5s cap.
  static const std::vector<std::uint64_t>& WideLatencyBoundsUs();

  /// Generator behind WideLatencyBoundsUs(): inclusive upper bounds from
  /// `min_value` to `max_value` with `sub_buckets` linear steps per octave
  /// (doubling).  Steps never fall below 1, so small octaves are exact.
  static std::vector<std::uint64_t> LogBounds(std::uint64_t min_value,
                                              std::uint64_t max_value,
                                              std::uint64_t sub_buckets);

  /// `bounds` are inclusive upper bounds, strictly increasing; an implicit
  /// +Inf bucket is appended.  Empty means DefaultLatencyBoundsUs().
  explicit Histogram(std::vector<std::uint64_t> bounds = {});

  void Record(std::uint64_t value) {
#ifndef GAA_TELEMETRY_NOOP
    std::size_t lo = 0, hi = bounds_.size();
    while (lo < hi) {  // first bound >= value; bounds_.size() == +Inf bucket
      std::size_t mid = (lo + hi) / 2;
      if (bounds_[mid] < value) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    buckets_[lo].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (value > prev &&
           !max_.compare_exchange_weak(prev, value,
                                       std::memory_order_relaxed)) {
    }
#else
    (void)value;
#endif
  }

  struct Snapshot {
    std::vector<std::uint64_t> bounds;  ///< upper bounds, +Inf implicit last
    std::vector<std::uint64_t> counts;  ///< bounds.size()+1 buckets
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;  ///< largest value ever recorded

    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    /// Quantile estimate (q in [0,1]) by linear interpolation inside the
    /// containing bucket.  The bucket holding the observed max (including
    /// the +Inf overflow bucket) interpolates toward `max` instead of
    /// saturating at the last finite bound, so overflow tails stay visible.
    double Quantile(double q) const;
  };

  Snapshot TakeSnapshot() const;
  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Thread-safe metric registry.  Creation is mutex-guarded (cold); lookup
/// of an existing metric is lock-free (atomic table pointer + hash find);
/// returned handles are stable until the registry dies.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  ~MetricRegistry();
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// `name` is the Prometheus family name (snake_case); `labels` the
  /// rendered label pairs without braces, e.g. `right="GET",outcome="yes"`.
  /// The (kind, name, labels) triple identifies the metric.
  Counter* GetCounter(const std::string& name, const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& labels = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& labels = "",
                          std::vector<std::uint64_t> bounds = {});

  struct Entry {
    std::string name;
    std::string labels;
    MetricKind kind = MetricKind::kCounter;
    Counter* counter = nullptr;      // set when kind == kCounter
    Gauge* gauge = nullptr;          // set when kind == kGauge
    Histogram* histogram = nullptr;  // set when kind == kHistogram
  };

  /// Every metric, in creation order (exposition + tests).  The handles are
  /// live objects — values read from them are as fresh as the caller reads.
  std::vector<Entry> List() const;

  /// Zero every counter and histogram (gauges keep their last value).
  void ResetAll();

 private:
  struct Slot {
    std::string name;
    std::string labels;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Table {
    std::unordered_map<std::string, Slot*> by_key;
    std::vector<Slot*> ordered;
  };

  Slot* FindOrCreate(MetricKind kind, const std::string& name,
                     const std::string& labels,
                     std::vector<std::uint64_t> histogram_bounds);

  std::atomic<const Table*> table_{nullptr};
  mutable std::mutex create_mu_;                   // creation only
  std::vector<std::unique_ptr<Slot>> slots_;       // guarded by create_mu_
  std::vector<std::unique_ptr<Table>> tables_;     // all published tables
};

}  // namespace gaa::telemetry
