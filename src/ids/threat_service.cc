#include "ids/threat_service.h"

#include "telemetry/metrics.h"

namespace gaa::ids {

using core::ThreatLevel;

ThreatService::ThreatService(core::SystemState* state, util::Clock* clock,
                             Options options)
    : state_(state), clock_(clock), options_(options) {}

void ThreatService::ReportAlert(double severity) {
  ThreatLevel now;
  {
    std::lock_guard<std::mutex> lock(mu_);
    alerts_.emplace_back(clock_->Now(), severity);
    RecomputeLocked();
    now = level_;
  }
  // Outside the lock: the hook publishes to the cluster bus, and remote
  // processes may call back into ReportRemoteAlert concurrently.
  if (bus_hook_) bus_hook_(severity, now);
}

void ThreatService::ReportRemoteAlert(double severity) {
  std::lock_guard<std::mutex> lock(mu_);
  alerts_.emplace_back(clock_->Now(), severity);
  RecomputeLocked();
}

void ThreatService::Tick() {
  std::lock_guard<std::mutex> lock(mu_);
  RecomputeLocked();
}

void ThreatService::ForceLevel(ThreatLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  ThreatLevel previous = level_;
  level_ = level;
  last_escalation_us_ = clock_->Now();
  if (state_ != nullptr) state_->SetThreatLevel(level_);
  PublishLevelLocked(previous);
}

void ThreatService::AttachMetrics(telemetry::MetricRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry == nullptr) {
    level_gauge_ = nullptr;
    transitions_ = nullptr;
    return;
  }
  level_gauge_ = registry->GetGauge("ids_threat_level");
  transitions_ = registry->GetCounter("ids_threat_transitions_total");
  level_gauge_->Set(static_cast<int>(level_));
}

void ThreatService::PublishLevelLocked(ThreatLevel previous) {
  if (level_gauge_ != nullptr) level_gauge_->Set(static_cast<int>(level_));
  if (transitions_ != nullptr && level_ != previous) transitions_->Inc();
}

ThreatLevel ThreatService::level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return level_;
}

double ThreatService::WindowScore() const {
  std::lock_guard<std::mutex> lock(mu_);
  util::TimePoint cutoff = clock_->Now() - options_.window_us;
  double score = 0;
  for (const auto& [t, s] : alerts_) {
    if (t >= cutoff) score += s;
  }
  return score;
}

void ThreatService::RecomputeLocked() {
  ThreatLevel previous = level_;
  util::TimePoint now = clock_->Now();
  while (!alerts_.empty() && alerts_.front().first < now - options_.window_us) {
    alerts_.pop_front();
  }
  double score = 0;
  for (const auto& [t, s] : alerts_) score += s;

  ThreatLevel target = ThreatLevel::kLow;
  if (score >= options_.high_score) {
    target = ThreatLevel::kHigh;
  } else if (score >= options_.medium_score) {
    target = ThreatLevel::kMedium;
  }

  if (target > level_) {
    level_ = target;
    last_escalation_us_ = now;
  } else if (target < level_ &&
             now - last_escalation_us_ >= options_.decay_us) {
    // Step down one notch per decay period; a calm system does not jump
    // straight from high to low.
    level_ = static_cast<ThreatLevel>(static_cast<int>(level_) - 1);
    last_escalation_us_ = now;
  }
  if (state_ != nullptr) state_->SetThreatLevel(level_);
  PublishLevelLocked(previous);
}

}  // namespace gaa::ids
