// HyperLogLog (Flajolet et al.): fixed-memory distinct counting for the
// streaming IDS (DESIGN.md §12).
//
// m = 2^precision single-byte registers; each item routes to one register
// by its top `precision` hash bits and the register keeps the maximum
// leading-zero rank of the remaining bits (CAS-max, so concurrent Add is
// lock-free and order-independent).  Standard error ≈ 1.04/√m — precision
// 12 (4096 registers, 4 KiB) keeps it under 2%.
//
// HllMatrix packs B independent small HLLs into one flat register plane:
// the per-client distinct-resource fan-out estimator.  A client maps to a
// bucket by hash; colliding clients merge into one bucket, which can only
// INFLATE a client's apparent fan-out (fails safe, like the count-min
// overestimate).  Two generations rotate on the aging tick so estimates
// cover a bounded sliding window: Add writes the current generation,
// Estimate reads the max of both, and the flip clears the retiring plane.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace gaa::ids::sketch {

class HyperLogLog {
 public:
  /// `precision` in [4, 16]: m = 2^precision registers.
  explicit HyperLogLog(std::uint8_t precision);

  void Add(std::uint64_t item_hash);
  double Estimate() const;
  void Clear();

  std::size_t registers() const { return m_; }
  std::size_t MemoryBytes() const {
    return m_ * sizeof(std::atomic<std::uint8_t>);
  }

  /// Shared by HllMatrix: fold one item into an external register plane.
  static void AddToPlane(std::atomic<std::uint8_t>* regs,
                         std::uint8_t precision, std::uint64_t item_hash);
  static double EstimatePlane(const std::atomic<std::uint8_t>* regs,
                              std::uint8_t precision);

 private:
  std::uint8_t p_;
  std::size_t m_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> regs_;
};

class HllMatrix {
 public:
  /// `buckets` rounded up to a power of two; each bucket is a 2^precision
  /// register HLL, duplicated across two generations.
  HllMatrix(std::size_t buckets, std::uint8_t precision);

  /// Count `item_hash` into `key_hash`'s bucket (current generation).
  void Add(std::uint64_t key_hash, std::uint64_t item_hash);

  /// The bucket's distinct-count estimate across both generations (a
  /// sliding window of one to two aging periods).
  double Estimate(std::uint64_t key_hash) const;

  /// Aging tick: retire the older generation (clear it) and make it
  /// current.  Call from one maintenance thread.
  void Rotate();

  std::size_t buckets() const { return bucket_mask_ + 1; }
  std::size_t MemoryBytes() const {
    return 2 * (bucket_mask_ + 1) * regs_per_bucket_ *
           sizeof(std::atomic<std::uint8_t>);
  }

 private:
  std::atomic<std::uint8_t>* Plane(std::size_t generation) const {
    return regs_.get() + generation * (bucket_mask_ + 1) * regs_per_bucket_;
  }

  std::uint8_t precision_;
  std::size_t regs_per_bucket_;
  std::size_t bucket_mask_;
  std::atomic<std::size_t> current_{0};
  std::unique_ptr<std::atomic<std::uint8_t>[]> regs_;
};

}  // namespace gaa::ids::sketch
