#include "ids/sketch/count_min.h"

#include <algorithm>
#include <cmath>

namespace gaa::ids::sketch {

namespace {
std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

CountMinSketch::CountMinSketch(Options options) {
  std::size_t width = RoundUpPow2(std::max<std::size_t>(options.width, 16));
  mask_ = width - 1;
  depth_ = std::max<std::size_t>(options.depth, 1);
  cells_ = std::make_unique<std::atomic<std::uint32_t>[]>(width * depth_);
  for (std::size_t i = 0; i < width * depth_; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
}

std::uint64_t CountMinSketch::Add(std::uint64_t item_hash,
                                  std::uint64_t count) {
  std::uint64_t estimate = ~0ULL;
  const std::uint32_t delta = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(count, 0x7fffffffULL));
  for (std::size_t row = 0; row < depth_; ++row) {
    std::atomic<std::uint32_t>& cell =
        cells_[row * (mask_ + 1) + Index(item_hash, row)];
    std::uint32_t after =
        cell.fetch_add(delta, std::memory_order_relaxed) + delta;
    estimate = std::min<std::uint64_t>(estimate, after);
  }
  total_.fetch_add(count, std::memory_order_relaxed);
  return estimate;
}

std::uint64_t CountMinSketch::Estimate(std::uint64_t item_hash) const {
  std::uint64_t estimate = ~0ULL;
  for (std::size_t row = 0; row < depth_; ++row) {
    std::uint64_t v = cells_[row * (mask_ + 1) + Index(item_hash, row)].load(
        std::memory_order_relaxed);
    estimate = std::min(estimate, v);
  }
  return estimate;
}

void CountMinSketch::Halve() {
  const std::size_t cells = (mask_ + 1) * depth_;
  for (std::size_t i = 0; i < cells; ++i) {
    // Load-shift-store instead of a CAS loop: a concurrent increment that
    // lands between the load and the store is absorbed into the halved
    // value or lost entirely — either way the counter stays a (smaller)
    // overestimate, which is the decayed window's whole point.
    cells_[i].store(cells_[i].load(std::memory_order_relaxed) >> 1,
                    std::memory_order_relaxed);
  }
  total_.store(total_.load(std::memory_order_relaxed) / 2,
               std::memory_order_relaxed);
}

double CountMinSketch::epsilon() const {
  return std::exp(1.0) / static_cast<double>(mask_ + 1);
}

double CountMinSketch::delta() const {
  return std::exp(-static_cast<double>(depth_));
}

}  // namespace gaa::ids::sketch
