// Count-min sketch (Cormode & Muthukrishnan): fixed-memory frequency
// estimation for the streaming IDS (DESIGN.md §12).
//
// depth × width matrix of atomic counters; an item increments one counter
// per row (indices from the double-hashing family h1 + i*h2) and its
// estimate is the row minimum.  Collisions only ever inflate counts, so the
// estimate is an OVERESTIMATE of the true frequency — never an
// underestimate — and the classic bound holds: with width w and depth d,
//   estimate ≤ true + (e/w)·N   with probability ≥ 1 − e^(−d)
// where N is the total count in the sketch.  The IDS compares estimates
// against rate thresholds, so overestimation fails safe (flags early).
//
// Thread-safety: Add/Estimate are lock-free (relaxed atomics — counters are
// independent saturating tallies, not synchronization).  Halve() ages the
// window concurrently with writers; an increment racing a halving may be
// lost, which only shrinks an overestimate and never corrupts a counter.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace gaa::ids::sketch {

class CountMinSketch {
 public:
  struct Options {
    /// Counters per row; rounded up to a power of two.  ε = e/width.
    std::size_t width = 4096;
    /// Rows; failure probability δ = e^(−depth).
    std::size_t depth = 4;
  };

  explicit CountMinSketch(Options options);

  /// Count `count` occurrences of the item; returns the post-add estimate
  /// (the row minimum), so hot-path callers get the feature for free.
  std::uint64_t Add(std::uint64_t item_hash, std::uint64_t count = 1);

  /// Row-minimum estimate of the item's frequency since the last aging.
  std::uint64_t Estimate(std::uint64_t item_hash) const;

  /// Age the window: every counter is halved in place (exponential decay,
  /// one call per window period).  Totals halve with it.
  void Halve();

  /// Total count added since the last Halve() (N in the error bound).
  std::uint64_t Total() const {
    return total_.load(std::memory_order_relaxed);
  }

  std::size_t width() const { return mask_ + 1; }
  std::size_t depth() const { return depth_; }
  /// ε in the overestimate bound: estimate ≤ true + epsilon()·Total().
  double epsilon() const;
  /// δ: probability the bound fails (all depth rows collide badly).
  double delta() const;
  std::size_t MemoryBytes() const {
    return (mask_ + 1) * depth_ * sizeof(std::atomic<std::uint32_t>);
  }

 private:
  std::size_t Index(std::uint64_t item_hash, std::size_t row) const {
    // Double hashing: h2 is odd so the row strides are coprime with the
    // power-of-two width.
    std::uint64_t h2 = (item_hash >> 32) | 1ULL;
    return static_cast<std::size_t>(item_hash + row * h2) & mask_;
  }

  std::size_t mask_ = 0;
  std::size_t depth_ = 0;
  std::unique_ptr<std::atomic<std::uint32_t>[]> cells_;
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace gaa::ids::sketch
