#include "ids/sketch/hyperloglog.h"

#include <algorithm>
#include <cmath>

namespace gaa::ids::sketch {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::uint8_t ClampPrecision(std::uint8_t precision) {
  return std::max<std::uint8_t>(4, std::min<std::uint8_t>(precision, 16));
}

// Bias-correction constant alpha_m for m registers (HLL paper, §4).
double AlphaM(std::size_t m) {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

std::uint8_t Rank(std::uint64_t bits, std::uint8_t precision) {
  // Leading-zero count of the post-index bits, +1.  OR-ing in a sentinel
  // below the usable bits bounds the rank for the all-zero tail.
  std::uint64_t w = (bits << precision) | (1ULL << (precision - 1));
  std::uint8_t rank = 1;
  while (!(w & (1ULL << 63))) {
    w <<= 1;
    ++rank;
  }
  return rank;
}

void ClearPlane(std::atomic<std::uint8_t>* regs, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    regs[i].store(0, std::memory_order_relaxed);
  }
}

}  // namespace

void HyperLogLog::AddToPlane(std::atomic<std::uint8_t>* regs,
                             std::uint8_t precision,
                             std::uint64_t item_hash) {
  const std::size_t idx =
      static_cast<std::size_t>(item_hash >> (64 - precision));
  const std::uint8_t rank = Rank(item_hash, precision);
  std::uint8_t cur = regs[idx].load(std::memory_order_relaxed);
  // CAS-max: registers only grow, so concurrent adds commute.
  while (rank > cur &&
         !regs[idx].compare_exchange_weak(cur, rank,
                                          std::memory_order_relaxed)) {
  }
}

double HyperLogLog::EstimatePlane(const std::atomic<std::uint8_t>* regs,
                                  std::uint8_t precision) {
  const std::size_t m = static_cast<std::size_t>(1) << precision;
  double sum = 0.0;
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint8_t reg = regs[i].load(std::memory_order_relaxed);
    sum += std::ldexp(1.0, -static_cast<int>(reg));
    if (reg == 0) ++zeros;
  }
  double estimate = AlphaM(m) * static_cast<double>(m) *
                    static_cast<double>(m) / sum;
  if (estimate <= 2.5 * static_cast<double>(m) && zeros != 0) {
    // Linear counting corrects the small-cardinality bias.
    estimate = static_cast<double>(m) *
               std::log(static_cast<double>(m) / static_cast<double>(zeros));
  }
  return estimate;
}

HyperLogLog::HyperLogLog(std::uint8_t precision)
    : p_(ClampPrecision(precision)),
      m_(static_cast<std::size_t>(1) << p_),
      regs_(std::make_unique<std::atomic<std::uint8_t>[]>(m_)) {
  ClearPlane(regs_.get(), m_);
}

void HyperLogLog::Add(std::uint64_t item_hash) {
  AddToPlane(regs_.get(), p_, item_hash);
}

double HyperLogLog::Estimate() const {
  return EstimatePlane(regs_.get(), p_);
}

void HyperLogLog::Clear() { ClearPlane(regs_.get(), m_); }

HllMatrix::HllMatrix(std::size_t buckets, std::uint8_t precision)
    : precision_(ClampPrecision(precision)),
      regs_per_bucket_(static_cast<std::size_t>(1) << precision_),
      bucket_mask_(RoundUpPow2(std::max<std::size_t>(buckets, 1)) - 1),
      regs_(std::make_unique<std::atomic<std::uint8_t>[]>(
          2 * (bucket_mask_ + 1) * regs_per_bucket_)) {
  ClearPlane(regs_.get(), 2 * (bucket_mask_ + 1) * regs_per_bucket_);
}

void HllMatrix::Add(std::uint64_t key_hash, std::uint64_t item_hash) {
  const std::size_t bucket = static_cast<std::size_t>(key_hash) & bucket_mask_;
  std::atomic<std::uint8_t>* regs =
      Plane(current_.load(std::memory_order_relaxed)) +
      bucket * regs_per_bucket_;
  HyperLogLog::AddToPlane(regs, precision_, item_hash);
}

double HllMatrix::Estimate(std::uint64_t key_hash) const {
  const std::size_t bucket = static_cast<std::size_t>(key_hash) & bucket_mask_;
  double best = 0.0;
  for (std::size_t gen = 0; gen < 2; ++gen) {
    const std::atomic<std::uint8_t>* regs =
        Plane(gen) + bucket * regs_per_bucket_;
    best = std::max(best, HyperLogLog::EstimatePlane(regs, precision_));
  }
  return best;
}

void HllMatrix::Rotate() {
  const std::size_t retiring = 1 - current_.load(std::memory_order_relaxed);
  ClearPlane(Plane(retiring), (bucket_mask_ + 1) * regs_per_bucket_);
  current_.store(retiring, std::memory_order_relaxed);
}

}  // namespace gaa::ids::sketch
