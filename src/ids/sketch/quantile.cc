#include "ids/sketch/quantile.h"

#include <algorithm>
#include <cmath>

namespace gaa::ids::sketch {

namespace {
std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

P2Quantile::P2Quantile(double q) : q_(std::min(std::max(q, 1e-6), 1.0 - 1e-6)) {
  desired_[0] = 1;
  desired_[1] = 1 + 2 * q_;
  desired_[2] = 1 + 4 * q_;
  desired_[3] = 3 + 2 * q_;
  desired_[4] = 5;
  increments_[0] = 0;
  increments_[1] = q_ / 2;
  increments_[2] = q_;
  increments_[3] = (1 + q_) / 2;
  increments_[4] = 1;
}

double P2Quantile::Parabolic(int i, double d) const {
  return heights_[i] +
         d / (positions_[i + 1] - positions_[i - 1]) *
             ((positions_[i] - positions_[i - 1] + d) *
                  (heights_[i + 1] - heights_[i]) /
                  (positions_[i + 1] - positions_[i]) +
              (positions_[i + 1] - positions_[i] - d) *
                  (heights_[i] - heights_[i - 1]) /
                  (positions_[i] - positions_[i - 1]));
}

double P2Quantile::Linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

void P2Quantile::Observe(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) {
      std::sort(heights_, heights_ + 5);
    }
    return;
  }
  ++count_;

  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1 && positions_[i + 1] - positions_[i] > 1) ||
        (d <= -1 && positions_[i - 1] - positions_[i] < -1)) {
      const double step = d >= 0 ? 1 : -1;
      const double h = Parabolic(i, step);
      // Fall back to linear interpolation when the parabola would break
      // marker monotonicity (the P² paper's guard).
      if (heights_[i - 1] < h && h < heights_[i + 1]) {
        heights_[i] = h;
      } else {
        heights_[i] = Linear(i, step);
      }
      positions_[i] += step;
    }
  }
}

double P2Quantile::Estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact quantile over the few samples seen so far.
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const std::size_t idx = static_cast<std::size_t>(
        q_ * static_cast<double>(count_ - 1) + 0.5);
    return sorted[std::min<std::size_t>(idx, count_ - 1)];
  }
  return heights_[2];
}

ShardedQuantile::ShardedQuantile(std::size_t shards, double q)
    : mask_(RoundUpPow2(std::max<std::size_t>(shards, 1)) - 1),
      shards_(std::make_unique<std::unique_ptr<Shard>[]>(mask_ + 1)) {
  for (std::size_t i = 0; i <= mask_; ++i) {
    shards_[i] = std::make_unique<Shard>(q);
  }
}

void ShardedQuantile::Observe(std::uint64_t key_hash, double x) {
  Shard& shard = *shards_[static_cast<std::size_t>(key_hash) & mask_];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.est.Observe(x);
}

double ShardedQuantile::Estimate() const {
  double weighted = 0.0;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= mask_; ++i) {
    const Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    const std::uint64_t n = shard.est.Count();
    if (n == 0) continue;
    weighted += shard.est.Estimate() * static_cast<double>(n);
    total += n;
  }
  return total == 0 ? 0.0 : weighted / static_cast<double>(total);
}

std::uint64_t ShardedQuantile::Count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= mask_; ++i) {
    const Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.est.Count();
  }
  return total;
}

}  // namespace gaa::ids::sketch
