// P² streaming quantile estimation (Jain & Chlamtac 1985) for the
// streaming IDS (DESIGN.md §12): inter-arrival-time percentiles in O(1)
// memory per estimator — five markers, no sample buffer.
//
// ShardedQuantile fans writers across N independent estimators, each
// behind its own mutex ("finely sharded"): a request's client hash picks
// the shard, so contention is 1/N of a global lock and a single hot
// client cannot serialize the whole transport.  Query() merges shards by
// averaging the per-shard estimates weighted by observation count.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

namespace gaa::ids::sketch {

class P2Quantile {
 public:
  /// `q` in (0, 1): the quantile to track (e.g. 0.05 for p5).
  explicit P2Quantile(double q);

  void Observe(double x);
  /// Current estimate; exact until five observations have arrived.
  double Estimate() const;
  std::uint64_t Count() const { return count_; }

 private:
  double Parabolic(int i, double d) const;
  double Linear(int i, double d) const;

  double q_;
  std::uint64_t count_ = 0;
  double heights_[5] = {0, 0, 0, 0, 0};
  double positions_[5] = {1, 2, 3, 4, 5};
  double desired_[5] = {0, 0, 0, 0, 0};
  double increments_[5] = {0, 0, 0, 0, 0};
};

class ShardedQuantile {
 public:
  ShardedQuantile(std::size_t shards, double q);

  /// Fold `x` into the shard selected by `key_hash`.
  void Observe(std::uint64_t key_hash, double x);

  /// Count-weighted average of the shard estimates.
  double Estimate() const;
  std::uint64_t Count() const;

  std::size_t shards() const { return mask_ + 1; }
  std::size_t MemoryBytes() const {
    return (mask_ + 1) * sizeof(Shard);
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    P2Quantile est;
    explicit Shard(double q) : est(q) {}
  };

  std::size_t mask_;
  std::unique_ptr<std::unique_ptr<Shard>[]> shards_;
};

}  // namespace gaa::ids::sketch
