#include "ids/sketch/stream_ids.h"

#include <algorithm>

#include "ids/sketch/hash.h"
#include "telemetry/metrics.h"

namespace gaa::ids::sketch {

namespace {
std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

StreamingAnomalyProvider::StreamingAnomalyProvider(Options options)
    : options_(options),
      client_rate_(options.client_rate),
      uri_rate_(options.uri_rate),
      fanout_(options.fanout_buckets, options.fanout_precision),
      interarrival_p5_(options.quantile_shards, 0.05),
      slot_mask_(
          RoundUpPow2(std::max<std::size_t>(options.interarrival_slots, 16)) -
          1),
      slots_(std::make_unique<Slot[]>(slot_mask_ + 1)) {}

double StreamingAnomalyProvider::InterArrivalUs(std::uint64_t client_hash,
                                                util::TimePoint now_us) {
  Slot& slot = slots_[static_cast<std::size_t>(client_hash) & slot_mask_];
  const std::uint64_t prev_fp =
      slot.fingerprint.load(std::memory_order_relaxed);
  const std::int64_t prev_seen =
      slot.last_seen_us.load(std::memory_order_relaxed);
  slot.fingerprint.store(client_hash, std::memory_order_relaxed);
  slot.last_seen_us.store(now_us, std::memory_order_relaxed);
  // A colliding client overwrote the slot, or this is the first sighting:
  // no usable gap.  Collisions are tolerable noise — the quantile only
  // steers a soft severity weight, never a hard decision.
  if (prev_fp != client_hash || prev_seen <= 0 || now_us < prev_seen) {
    return -1.0;
  }
  return static_cast<double>(now_us - prev_seen);
}

double StreamingAnomalyProvider::Observe(std::string_view client,
                                         std::string_view path,
                                         util::TimePoint now_us) {
  const std::uint64_t client_hash = HashBytes(client);
  const std::uint64_t path_hash = HashBytes(path);

  const std::uint64_t client_count = client_rate_.Add(client_hash);
  const std::uint64_t uri_count = uri_rate_.Add(path_hash);
  fanout_.Add(client_hash, path_hash);
  const double fanout = fanout_.Estimate(client_hash);

  const double gap_us = InterArrivalUs(client_hash, now_us);
  if (gap_us >= 0) {
    interarrival_p5_.Observe(client_hash, gap_us / 1000.0);
  }

  if (observations_ != nullptr) observations_->Inc();

  double severity = 0.0;
  if (static_cast<double>(client_count) > options_.client_rate_threshold) {
    severity += options_.client_rate_weight;
  }
  if (static_cast<double>(uri_count) > options_.uri_rate_threshold) {
    severity += options_.uri_rate_weight;
  }
  if (fanout > options_.fanout_threshold) {
    severity += options_.fanout_weight;
  }
  if (gap_us >= 0 && gap_us / 1000.0 < options_.fast_interarrival_ms &&
      static_cast<double>(client_count) >
          options_.client_rate_threshold / 2.0) {
    severity += options_.interarrival_weight;
  }
  severity = std::min(severity, options_.severity_cap);
  if (severity >= options_.report_threshold && flagged_ != nullptr) {
    flagged_->Inc();
  }
  return severity;
}

void StreamingAnomalyProvider::MaintenanceTick(util::TimePoint now_us) {
  std::lock_guard<std::mutex> lock(age_mu_);
  if (last_age_us_ != 0 && now_us - last_age_us_ < options_.window_us) {
    return;
  }
  last_age_us_ = now_us;
  client_rate_.Halve();
  uri_rate_.Halve();
  fanout_.Rotate();
  if (agings_ != nullptr) agings_->Inc();
}

std::size_t StreamingAnomalyProvider::MemoryBytes() const {
  return client_rate_.MemoryBytes() + uri_rate_.MemoryBytes() +
         fanout_.MemoryBytes() + interarrival_p5_.MemoryBytes() +
         (slot_mask_ + 1) * sizeof(Slot);
}

void StreamingAnomalyProvider::AttachMetrics(
    telemetry::MetricRegistry* registry) {
  if (registry == nullptr) return;
  observations_ = registry->GetCounter("ids_stream_observations_total");
  flagged_ = registry->GetCounter("ids_stream_flagged_total");
  agings_ = registry->GetCounter("ids_sketch_agings_total");
  registry->GetGauge("ids_sketch_memory_bytes")
      ->Set(static_cast<std::int64_t>(MemoryBytes()));
}

std::uint64_t StreamingAnomalyProvider::ClientRate(
    std::string_view client) const {
  return client_rate_.Estimate(HashBytes(client));
}

std::uint64_t StreamingAnomalyProvider::UriRate(std::string_view path) const {
  return uri_rate_.Estimate(HashBytes(path));
}

double StreamingAnomalyProvider::ClientFanout(std::string_view client) const {
  return fanout_.Estimate(HashBytes(client));
}

double StreamingAnomalyProvider::InterArrivalP5Ms() const {
  return interarrival_p5_.Estimate();
}

}  // namespace gaa::ids::sketch
