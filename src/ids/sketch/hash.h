// Hashing helpers shared by the streaming-IDS sketches (DESIGN.md §12).
//
// Every sketch consumes one 64-bit item hash and derives its row/bucket
// indices from it, so a request's principal and path are hashed exactly
// once on the hot path no matter how many sketches observe them.
#pragma once

#include <cstdint>
#include <string_view>

namespace gaa::ids::sketch {

/// SplitMix64 finalizer: full-avalanche bit mixer, the standard way to
/// stretch one hash into an independent family (h_i = h1 + i*h2).
inline std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over the bytes, finished with Mix64 (FNV alone clusters short
/// ASCII keys in the low bits, which direct-mapped sketches care about).
inline std::uint64_t HashBytes(std::string_view bytes,
                               std::uint64_t seed = 0) {
  std::uint64_t h = 1469598103934665603ULL ^ seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return Mix64(h);
}

}  // namespace gaa::ids::sketch
