// StreamingAnomalyProvider: the sketch-backed anomaly detector that
// replaces the exact per-client profile map on the hot path (DESIGN.md
// §12).  Memory is fixed at construction no matter how many distinct
// clients or URIs the server sees; per-request cost is O(sketch depth),
// independent of cardinality.
//
// Feature pipeline per request:
//   * client request rate      — count-min sketch over client hashes
//   * URI request rate         — count-min sketch over path hashes
//   * client resource fan-out  — HllMatrix bucket (distinct paths/client)
//   * inter-arrival time       — fingerprint slot table → sharded P² p5
//
// Each feature that crosses its threshold contributes to a severity
// score; scores at or above `report_threshold` are returned to the
// caller (IntrusionDetectionSystem feeds them to
// ThreatService::ReportAlert, which moves the SystemState threat level
// and thereby the DecisionCache epoch fence).
//
// MaintenanceTick() ages the window: count-min counters halve and the
// HLL matrix rotates generations.  Called from the transport timer wheel
// via IntrusionDetectionSystem::PeriodicMaintenance.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>

#include "ids/sketch/count_min.h"
#include "ids/sketch/hyperloglog.h"
#include "ids/sketch/quantile.h"
#include "util/clock.h"

namespace gaa::telemetry {
class Counter;
class Gauge;
class MetricRegistry;
}  // namespace gaa::telemetry

namespace gaa::ids::sketch {

class StreamingAnomalyProvider {
 public:
  struct Options {
    CountMinSketch::Options client_rate;  ///< per-client request counts
    CountMinSketch::Options uri_rate;     ///< per-URI request counts
    std::size_t fanout_buckets = 1024;    ///< HllMatrix client buckets
    std::uint8_t fanout_precision = 6;    ///< registers/bucket = 2^p
    std::size_t interarrival_slots = 4096;  ///< last-seen fingerprint table
    std::size_t quantile_shards = 16;
    /// Aging period: counters halve / HLL generations rotate when a call
    /// to MaintenanceTick arrives at least this long after the last aging.
    util::DurationUs window_us = 60 * util::kMicrosPerSecond;
    /// Thresholds on the windowed estimates.  Each crossing contributes
    /// its weight to the severity score.
    double client_rate_threshold = 300.0;
    double uri_rate_threshold = 2000.0;
    double fanout_threshold = 40.0;
    /// Inter-arrivals faster than this (while the client is over half its
    /// rate threshold) look like scripted scanning.
    double fast_interarrival_ms = 5.0;
    double client_rate_weight = 4.0;
    double uri_rate_weight = 2.0;
    double fanout_weight = 3.0;
    double interarrival_weight = 2.0;
    double severity_cap = 10.0;
    /// Scores below this are noise: callers should not raise alerts.
    double report_threshold = 4.0;
  };

  explicit StreamingAnomalyProvider(Options options);

  /// Fold one request into the sketches and return its severity score
  /// (0 when nothing crossed a threshold).  Lock-free except for the
  /// per-shard quantile mutex (1/shards contention).
  double Observe(std::string_view client, std::string_view path,
                 util::TimePoint now_us);

  /// Age the window if `window_us` has elapsed since the last aging.
  /// Serialized internally; safe to call from any thread.
  void MaintenanceTick(util::TimePoint now_us);

  /// Resident sketch memory — constant for the provider's lifetime.
  std::size_t MemoryBytes() const;

  /// ids_stream_* counters and the ids_sketch_memory_bytes gauge.
  void AttachMetrics(telemetry::MetricRegistry* registry);

  // Feature probes for tests and benchmarks.
  std::uint64_t ClientRate(std::string_view client) const;
  std::uint64_t UriRate(std::string_view path) const;
  double ClientFanout(std::string_view client) const;
  double InterArrivalP5Ms() const;

  const Options& options() const { return options_; }

 private:
  /// Last-seen table slot for the client fingerprint; returns the
  /// inter-arrival gap in µs, or a negative value on first sight /
  /// fingerprint collision.
  double InterArrivalUs(std::uint64_t client_hash, util::TimePoint now_us);

  Options options_;
  CountMinSketch client_rate_;
  CountMinSketch uri_rate_;
  HllMatrix fanout_;
  ShardedQuantile interarrival_p5_;

  struct Slot {
    std::atomic<std::uint64_t> fingerprint{0};
    std::atomic<std::int64_t> last_seen_us{0};
  };
  std::size_t slot_mask_;
  std::unique_ptr<Slot[]> slots_;

  std::mutex age_mu_;
  util::TimePoint last_age_us_ = 0;

  telemetry::Counter* observations_ = nullptr;
  telemetry::Counter* flagged_ = nullptr;
  telemetry::Counter* agings_ = nullptr;
};

}  // namespace gaa::ids::sketch
