#include "ids/anomaly.h"

#include <cmath>

#include "telemetry/metrics.h"

namespace gaa::ids {

void RunningStat::Add(double x) {
  count += 1;
  double delta = x - mean;
  mean += delta / count;
  m2 += delta * (x - mean);
}

double RunningStat::Variance() const {
  return count > 1 ? m2 / (count - 1) : 0.0;
}

double RunningStat::StdDev() const { return std::sqrt(Variance()); }

double RunningStat::ZScore(double x, double floor) const {
  if (count < 2) return 0.0;
  double sd = StdDev();
  if (sd < floor) sd = floor;
  return std::fabs(x - mean) / sd;
}

AnomalyDetector::AnomalyDetector(util::Clock* clock, Options options)
    : clock_(clock), options_(options) {}

void AnomalyDetector::Train(const RequestFeatures& features) {
  util::TimePoint now = clock_ != nullptr ? clock_->Now() : 0;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = profiles_.find(features.principal);
  if (it == profiles_.end()) {
    lru_.push_front(features.principal);
    it = profiles_.emplace(features.principal, Profile{}).first;
    it->second.lru_pos = lru_.begin();
    // Bound the map: the exact detector survives as a reference mode only,
    // so it trades the coldest profile for O(1) memory past the cap.
    if (options_.max_profiles > 0 && profiles_.size() > options_.max_profiles) {
      profiles_.erase(lru_.back());
      lru_.pop_back();
    }
    PublishCountLocked();
  } else if (it->second.lru_pos != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  }
  Profile& p = it->second;
  p.query_length.Add(features.query_length);
  p.url_depth.Add(features.url_depth);
  if (p.last_seen_us != 0 && now > p.last_seen_us) {
    p.inter_arrival_ms.Add(static_cast<double>(now - p.last_seen_us) / 1000.0);
  }
  p.last_seen_us = now;
  p.paths.insert(features.path);
  ++p.observations;
}

double AnomalyDetector::ScoreLocked(const Profile& p,
                                    const RequestFeatures& f) const {
  if (p.observations < options_.min_training) return 0.0;
  double score = 0.0;
  score += p.query_length.ZScore(f.query_length, /*floor=*/4.0);
  score += p.url_depth.ZScore(f.url_depth, /*floor=*/0.5);
  if (p.paths.find(f.path) == p.paths.end()) {
    score += options_.novelty_weight;
  }
  return score;
}

double AnomalyDetector::Score(const RequestFeatures& features) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = profiles_.find(features.principal);
  if (it == profiles_.end()) return 0.0;
  return ScoreLocked(it->second, features);
}

bool AnomalyDetector::IsAnomalous(const RequestFeatures& features) const {
  return Score(features) >= options_.score_threshold;
}

double AnomalyDetector::Observe(const RequestFeatures& features) {
  double score = Score(features);
  if (score < options_.score_threshold) {
    Train(features);
  }
  return score;
}

std::size_t AnomalyDetector::profile_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return profiles_.size();
}

std::size_t AnomalyDetector::TrainingCount(const std::string& principal) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = profiles_.find(principal);
  return it == profiles_.end() ? 0 : it->second.observations;
}

void AnomalyDetector::PublishCountLocked() {
  if (profiles_gauge_ != nullptr) {
    profiles_gauge_->Set(static_cast<std::int64_t>(profiles_.size()));
  }
}

void AnomalyDetector::AttachMetrics(telemetry::MetricRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  profiles_gauge_ =
      registry != nullptr ? registry->GetGauge("ids_anomaly_profiles") : nullptr;
  PublishCountLocked();
}

}  // namespace gaa::ids
