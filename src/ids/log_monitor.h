// Offline log-based attack monitor — the comparator the paper cites as
// related work (Almgren, Debar, Dacier: "A lightweight tool for detecting
// web server attacks", NDSS 2000): it scans Common Log Format entries for
// attack signatures and reports intrusions, but "the monitor can not
// directly interact with a web server and, thus, can not stop the ongoing
// attacks" (paper §10).
//
// We implement it as a baseline so the benchmarks can quantify exactly
// that difference: the GAA-integrated server *prevents* (the attack
// request is denied before the operation runs), while the log monitor
// *detects after the fact* (the request was served; only the log entry
// betrays it).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "http/server.h"
#include "ids/signature_db.h"

namespace gaa::ids {

/// One Common Log Format line:
///   host ident authuser [date] "request" status bytes
std::string ToCommonLogFormat(const http::AccessLogEntry& entry);

/// Parse a CLF line back (fields the monitor needs).
struct ClfEntry {
  std::string host;
  std::string user;
  std::string method;
  std::string target;
  int status = 0;
  std::uint64_t bytes = 0;
};
std::optional<ClfEntry> ParseCommonLogFormat(std::string_view line);

/// A detection produced by the monitor.
struct LogFinding {
  ClfEntry entry;
  SignatureHit hit;
  /// True when the server actually served the request (2xx/3xx) — damage
  /// the log monitor could not have prevented.
  bool was_served = false;
};

class LogMonitor {
 public:
  explicit LogMonitor(SignatureDb signatures = SignatureDb::KnownWebAttacks())
      : signatures_(std::move(signatures)) {}

  /// Scan one CLF line; returns a finding if any signature matches.
  std::optional<LogFinding> ScanLine(std::string_view line) const;

  /// Scan a whole log (one entry per line).
  std::vector<LogFinding> ScanLog(std::string_view log_text) const;

  /// Convenience: scan a server's in-memory access log.
  std::vector<LogFinding> ScanServerLog(
      const std::vector<http::AccessLogEntry>& entries) const;

  const SignatureDb& signatures() const { return signatures_; }

 private:
  SignatureDb signatures_;
};

}  // namespace gaa::ids
