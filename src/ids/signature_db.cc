#include "ids/signature_db.h"

namespace gaa::ids {

void SignatureDb::Add(Signature signature) {
  util::CompiledGlob glob(signature.pattern);
  globs_.push_back(CompiledSignature{std::move(signature), std::move(glob)});
}

void SignatureDb::AddRule(MaxLengthRule rule) { rules_.push_back(std::move(rule)); }

std::vector<SignatureHit> SignatureDb::Match(std::string_view raw_url,
                                             std::string_view query) const {
  std::string subject(raw_url);
  if (!query.empty()) {
    subject += "?";
    subject += query;
  }
  std::vector<SignatureHit> hits;
  for (const auto& cs : globs_) {
    if (cs.glob.Matches(subject)) {
      hits.push_back(SignatureHit{cs.meta.name, cs.meta.attack_type,
                                  cs.meta.severity, cs.meta.description});
    }
  }
  for (const auto& rule : rules_) {
    std::size_t len = rule.field == MaxLengthRule::Field::kQuery
                          ? query.size()
                          : raw_url.size();
    if (len > rule.max_length) {
      hits.push_back(SignatureHit{rule.name, rule.attack_type, rule.severity,
                                  rule.description});
    }
  }
  return hits;
}

std::optional<SignatureHit> SignatureDb::FirstMatch(
    std::string_view raw_url, std::string_view query) const {
  auto hits = Match(raw_url, query);
  if (hits.empty()) return std::nullopt;
  return hits.front();
}

std::string SignatureDb::ToConditionValue() const {
  std::string out;
  for (const auto& cs : globs_) {
    if (!out.empty()) out += " ";
    out += cs.meta.pattern;
  }
  return out;
}

SignatureDb SignatureDb::KnownWebAttacks() {
  SignatureDb db;
  // The CGI probes named in §7.2.
  db.Add({"cgi_phf", "*phf*", "cgi_exploit", 8,
          "phf phonebook CGI remote command execution"});
  db.Add({"cgi_test_cgi", "*test-cgi*", "cgi_exploit", 6,
          "test-cgi information disclosure probe"});
  // The many-slashes Apache DoS of §7.2 ("slows down Apache and fills up
  // logs fast").
  db.Add({"dos_slashes", "*///////////////////*", "dos", 7,
          "pathological '/' run exploiting Apache path handling"});
  // NIMDA-style malformed GET with percent-encoded traversal (§7.2: "part
  // of the URL contains the percent character").
  db.Add({"worm_nimda_percent", "*%*", "worm", 7,
          "percent character in URL: NIMDA-style malformed request"});
  // Contemporaries of the paper, same detection machinery.
  db.Add({"worm_codered_ida", "*.ida?*", "worm", 9,
          "Code Red .ida buffer overflow probe"});
  db.Add({"traversal_dotdot", "*..*..*", "traversal", 7,
          "directory traversal attempt"});
  db.Add({"cgi_formmail", "*formmail*", "cgi_exploit", 5,
          "formmail spam relay probe"});
  db.Add({"iis_cmd_exe", "*cmd.exe*", "worm", 9,
          "IIS unicode traversal to cmd.exe"});
  // The >1000-character CGI input rule (§7.2 buffer-overflow condition).
  db.AddRule({"overflow_cgi_input", MaxLengthRule::Field::kQuery, 1000,
              "buffer_overflow", 9,
              "CGI input longer than 1000 characters"});
  return db;
}

}  // namespace gaa::ids
