// Signature database: the catalog of known web-server attack patterns the
// paper's §7.2 policies detect.  Each signature pairs a compiled glob with
// threat metadata; KnownWebAttacks() preloads the attacks named in the
// paper (phf / test-cgi CGI probes, the Apache many-slashes DoS, NIMDA
// malformed-percent URLs) plus a few classics from the same era.
//
// Numeric rules (e.g. "CGI input longer than 1000 bytes" — the Code Red
// style buffer overflow) are expressed as MaxLengthRule entries because a
// glob cannot count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/glob.h"

namespace gaa::ids {

struct Signature {
  std::string name;         ///< "cgi_phf", "dos_slashes", ...
  std::string pattern;      ///< glob over the raw URL (+ query)
  std::string attack_type;  ///< category: "cgi_exploit", "dos", "worm", ...
  int severity = 5;         ///< 0..10
  std::string description;
};

struct MaxLengthRule {
  std::string name;
  enum class Field { kQuery, kUrl } field = Field::kQuery;
  std::size_t max_length = 1000;
  std::string attack_type;
  int severity = 8;
  std::string description;
};

struct SignatureHit {
  std::string name;
  std::string attack_type;
  int severity = 0;
  std::string description;
};

class SignatureDb {
 public:
  void Add(Signature signature);
  void AddRule(MaxLengthRule rule);

  /// All signatures/rules matching the subject URL (+query).
  std::vector<SignatureHit> Match(std::string_view raw_url,
                                  std::string_view query) const;

  /// First hit only (cheap path for policy conditions).
  std::optional<SignatureHit> FirstMatch(std::string_view raw_url,
                                         std::string_view query) const;

  std::size_t size() const { return globs_.size() + rules_.size(); }

  /// Render the glob signatures as a `pre_cond_regex` value string
  /// ("*phf* *test-cgi* ..."), bridging the database into EACL policies.
  std::string ToConditionValue() const;

  /// The attacks discussed in the paper plus contemporaries.
  static SignatureDb KnownWebAttacks();

 private:
  struct CompiledSignature {
    Signature meta;
    util::CompiledGlob glob;
  };
  std::vector<CompiledSignature> globs_;
  std::vector<MaxLengthRule> rules_;
};

}  // namespace gaa::ids
