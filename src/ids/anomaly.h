// Anomaly detector (paper §9 future work: "a simple profile building module
// and anomaly detector ... to support anomaly-based intrusion detection in
// addition to the signature-based").
//
// Per-principal (client IP or user) profiles over simple request features:
// query length, URL depth, request inter-arrival rate and the set of paths
// visited (paper §3 item 7: "legitimate access request patterns ... used to
// derive profiles that describe typical behavior").  Detection combines
// z-scores of the numeric features with a novelty term for unseen paths.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "util/clock.h"

namespace gaa::telemetry {
class Gauge;
class MetricRegistry;
}  // namespace gaa::telemetry

namespace gaa::ids {

/// Feature vector extracted from one request.
struct RequestFeatures {
  std::string principal;  ///< client IP or authenticated user
  std::string path;       ///< URL path (no query)
  double query_length = 0;
  double url_depth = 0;  ///< number of '/' separated components
};

/// Online mean/variance (Welford).
struct RunningStat {
  double count = 0;
  double mean = 0;
  double m2 = 0;

  void Add(double x);
  double Variance() const;
  double StdDev() const;
  /// |x - mean| / max(stddev, floor); 0 while the sample is tiny.
  double ZScore(double x, double floor = 1.0) const;
};

class AnomalyDetector {
 public:
  struct Options {
    double score_threshold = 3.0;  ///< composite score that flags a request
    std::size_t min_training = 20; ///< observations before scoring kicks in
    double novelty_weight = 1.5;   ///< added when the path was never seen
    /// Hard cap on resident profiles; the least-recently-trained principal
    /// is evicted past it.  The exact detector is the streaming provider's
    /// differential *reference* (DESIGN.md §12) — it must be OOM-proof
    /// too, just not cardinality-proof.  0 means unbounded.
    std::size_t max_profiles = 10000;
  };

  explicit AnomalyDetector(util::Clock* clock)
      : AnomalyDetector(clock, Options{}) {}
  AnomalyDetector(util::Clock* clock, Options options);

  /// Learn from a request observed during normal operation.
  void Train(const RequestFeatures& features);

  /// Composite anomaly score; 0 while the principal's profile is immature.
  double Score(const RequestFeatures& features) const;

  /// Score and, if flagged, also learn nothing (attacks must not poison the
  /// profile).  Returns true if the request is anomalous.
  bool IsAnomalous(const RequestFeatures& features) const;

  /// Observe a request: score first, train only if it looks normal.
  /// Returns the score.
  double Observe(const RequestFeatures& features);

  std::size_t profile_count() const;
  std::size_t TrainingCount(const std::string& principal) const;
  const Options& options() const { return options_; }

  /// Export the resident-profile count as gauge `ids_anomaly_profiles`.
  /// Null detaches.
  void AttachMetrics(telemetry::MetricRegistry* registry);

 private:
  struct Profile {
    RunningStat query_length;
    RunningStat url_depth;
    RunningStat inter_arrival_ms;
    std::set<std::string> paths;
    util::TimePoint last_seen_us = 0;
    std::size_t observations = 0;
    /// Position in lru_ (most-recently-trained at the front).
    std::list<std::string>::iterator lru_pos;
  };

  double ScoreLocked(const Profile& profile,
                     const RequestFeatures& features) const;
  void PublishCountLocked();

  util::Clock* clock_;
  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, Profile> profiles_;
  std::list<std::string> lru_;
  telemetry::Gauge* profiles_gauge_ = nullptr;
};

}  // namespace gaa::ids
