#include "ids/ids.h"

#include <algorithm>

#include "telemetry/metrics.h"

namespace gaa::ids {

IntrusionDetectionSystem::IntrusionDetectionSystem(
    core::SystemState* state, util::Clock* clock,
    ThreatService::Options threat_options)
    : state_(state),
      clock_(clock),
      threat_(state, clock, threat_options),
      bus_(clock),
      anomaly_(clock),
      stream_(sketch::StreamingAnomalyProvider::Options{}),
      signatures_(SignatureDb::KnownWebAttacks()) {}

void IntrusionDetectionSystem::AttachMetrics(
    telemetry::MetricRegistry* registry) {
  metrics_ = registry;
  bus_.AttachMetrics(registry);
  threat_.AttachMetrics(registry);
  anomaly_.AttachMetrics(registry);
  stream_.AttachMetrics(registry);
}

void IntrusionDetectionSystem::AttachAudit(core::AuditSink* audit) {
  audit_ = audit;
}

void IntrusionDetectionSystem::Report(const core::IdsReport& report) {
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("ids_reports_total",
                     std::string("kind=\"") +
                         core::ReportKindName(report.kind) + "\"")
        ->Inc();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    reports_.push_back(report);
  }
  // Severity-weighted feed into the threat profile; benign pattern reports
  // (item 7) do not escalate.
  if (report.kind != core::ReportKind::kLegitimatePattern) {
    const core::ThreatLevel before = threat_.level();
    threat_.ReportAlert(static_cast<double>(report.severity) *
                        report.confidence);
    const core::ThreatLevel after = threat_.level();
    if (audit_ != nullptr && after != before) {
      core::AuditEvent event;
      event.category = "threat";
      event.message = std::string("threat level ") +
                      core::ThreatLevelName(before) + " -> " +
                      core::ThreatLevelName(after) + " (trigger: " +
                      core::ReportKindName(report.kind) + ")";
      event.client = report.source_ip;
      audit_->Record(event);
    }
  }
  Event event;
  event.topic = std::string("gaa.report.") + core::ReportKindName(report.kind);
  event.source = "gaa-api";
  event.severity = report.severity;
  event.payload = "ip=" + report.source_ip + " object=" + report.object +
                  " type=" + report.attack_type + " detail=" + report.detail;
  bus_.Publish(std::move(event));

  // Adaptive values track the (possibly just escalated) threat level.
  RecomputeAdaptiveValues();
}

void IntrusionDetectionSystem::ObserveRequest(const std::string& client_ip,
                                              const std::string& path,
                                              util::TimePoint now_us) {
  double severity;
  double threshold;
  if (anomaly_mode_ == AnomalyMode::kStreaming) {
    severity = stream_.Observe(client_ip, path, now_us);
    threshold = stream_.options().report_threshold;
  } else {
    // Differential reference: the exact detector scores the same stream so
    // tests can compare verdicts against the sketch path.
    RequestFeatures features;
    features.principal = client_ip;
    features.path = path;
    features.url_depth = static_cast<double>(
        std::count(path.begin(), path.end(), '/'));
    severity = anomaly_.Observe(features);
    threshold = anomaly_.options().score_threshold;
  }
  if (severity < threshold) return;
  core::IdsReport report;
  report.kind = core::ReportKind::kSuspiciousBehavior;
  report.source_ip = client_ip;
  report.object = path;
  report.attack_type = "stream_anomaly";
  report.severity = static_cast<int>(severity);
  report.confidence = 0.8;
  report.detail = anomaly_mode_ == AnomalyMode::kStreaming
                      ? "sketch features crossed thresholds"
                      : "exact profile z-score crossed threshold";
  Report(report);
}

void IntrusionDetectionSystem::PeriodicMaintenance() {
  threat_.Tick();
  if (clock_ != nullptr) stream_.MaintenanceTick(clock_->Now());
  // The tick may have decayed the level; adaptive thresholds must follow.
  RecomputeAdaptiveValues();
}

bool IntrusionDetectionSystem::SuspectedSpoofing(const std::string& source_ip) {
  std::lock_guard<std::mutex> lock(mu_);
  return spoofed_sources_.count(source_ip) > 0;
}

void IntrusionDetectionSystem::MarkSpoofedSource(const std::string& source_ip) {
  std::lock_guard<std::mutex> lock(mu_);
  spoofed_sources_.insert(source_ip);
}

void IntrusionDetectionSystem::ClearSpoofedSources() {
  std::lock_guard<std::mutex> lock(mu_);
  spoofed_sources_.clear();
}

void IntrusionDetectionSystem::PushAdaptiveValue(const std::string& var_name,
                                                 const std::string& value) {
  if (state_ != nullptr) state_->SetVariable(var_name, value);
}

void IntrusionDetectionSystem::RecomputeAdaptiveValues() {
  if (state_ == nullptr) return;
  switch (threat_.level()) {
    case core::ThreatLevel::kLow:
      state_->SetVariable("gaa.max_cgi_input", "1000");
      state_->SetVariable("gaa.rate_limit", "100");
      state_->SetVariable("gaa.lockdown_hours", "00:00-24:00");
      break;
    case core::ThreatLevel::kMedium:
      state_->SetVariable("gaa.max_cgi_input", "500");
      state_->SetVariable("gaa.rate_limit", "30");
      state_->SetVariable("gaa.lockdown_hours", "08:00-18:00");
      break;
    case core::ThreatLevel::kHigh:
      state_->SetVariable("gaa.max_cgi_input", "200");
      state_->SetVariable("gaa.rate_limit", "5");
      state_->SetVariable("gaa.lockdown_hours", "09:00-17:00");
      break;
  }
}

std::vector<core::IdsReport> IntrusionDetectionSystem::ReportsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_;
}

std::size_t IntrusionDetectionSystem::report_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_.size();
}

std::size_t IntrusionDetectionSystem::CountKind(core::ReportKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& r : reports_) {
    if (r.kind == kind) ++n;
  }
  return n;
}

}  // namespace gaa::ids
