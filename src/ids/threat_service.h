// Threat-level service: the IDS component that "supplies a system threat
// level" (paper §7.1: low = normal operation, medium = suspicious behaviour,
// high = under attack).
//
// The service aggregates severity-weighted alert scores over a sliding
// window and maps the score to a level via two thresholds; levels decay
// back down after a quiet period.  It writes the level into the shared
// SystemState, where `pre_cond_system_threat_level` reads it.
#pragma once

#include <deque>
#include <functional>
#include <mutex>

#include "gaa/system_state.h"
#include "util/clock.h"

namespace gaa::telemetry {
class Counter;
class Gauge;
class MetricRegistry;
}  // namespace gaa::telemetry

namespace gaa::ids {

class ThreatService {
 public:
  struct Options {
    util::DurationUs window_us = 60 * util::kMicrosPerSecond;
    double medium_score = 10.0;  ///< window score that raises level to medium
    double high_score = 30.0;    ///< window score that raises level to high
    /// Quiet time after which the level steps down one notch.
    util::DurationUs decay_us = 120 * util::kMicrosPerSecond;
  };

  ThreatService(core::SystemState* state, util::Clock* clock)
      : ThreatService(state, clock, Options{}) {}
  ThreatService(core::SystemState* state, util::Clock* clock,
                Options options);

  /// Feed one alert (severity 0..10).  Recomputes and publishes the level.
  void ReportAlert(double severity);

  /// Feed an alert that originated in *another* process (cluster bus
  /// delivery, DESIGN.md §15).  Identical window/score treatment to
  /// ReportAlert, but never re-invokes the bus hook — remote alerts must
  /// not echo back onto the bus.
  void ReportRemoteAlert(double severity);

  /// Cluster hook: invoked (outside the service lock) after every locally
  /// originated alert, with the alert's severity and the level it produced.
  /// The cluster glue publishes both onto the shared-memory bus.
  using BusHook = std::function<void(double severity, core::ThreatLevel now)>;
  void set_bus_hook(BusHook hook) { bus_hook_ = std::move(hook); }

  /// Re-evaluate decay; call periodically (or before reads in tests).
  void Tick();

  /// Administrator override (also what a remote IDS would push).
  void ForceLevel(core::ThreatLevel level);

  /// Export the level as gauge `ids_threat_level` (0=low 1=medium 2=high)
  /// and level changes as counter `ids_threat_transitions_total`.
  void AttachMetrics(telemetry::MetricRegistry* registry);

  core::ThreatLevel level() const;
  double WindowScore() const;

 private:
  void RecomputeLocked();
  void PublishLevelLocked(core::ThreatLevel previous);

  core::SystemState* state_;
  util::Clock* clock_;
  Options options_;
  BusHook bus_hook_;  // set before serving starts; never under mu_
  telemetry::Gauge* level_gauge_ = nullptr;
  telemetry::Counter* transitions_ = nullptr;
  mutable std::mutex mu_;
  std::deque<std::pair<util::TimePoint, double>> alerts_;
  core::ThreatLevel level_ = core::ThreatLevel::kLow;
  util::TimePoint last_escalation_us_ = 0;
};

}  // namespace gaa::ids
