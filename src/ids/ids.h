// The intrusion detection system: receives GAA-API reports (core::IdsChannel
// implementation), drives the threat-level service, publishes events on the
// bus, and plays the roles of the paper's external IDS components:
//
//   * network-based IDS: the spoofing oracle consulted before pro-active
//     countermeasures (§3);
//   * host-based IDS: the adaptive-threshold provider that pushes values
//     for thresholds / times / locations into SystemState variables, which
//     `var:`-valued conditions read (§3 last paragraph);
//   * anomaly-based detection on top of the signature-based machinery (§9).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "gaa/services.h"
#include "gaa/system_state.h"
#include "ids/anomaly.h"
#include "ids/event_bus.h"
#include "ids/signature_db.h"
#include "ids/sketch/stream_ids.h"
#include "ids/threat_service.h"
#include "util/clock.h"

namespace gaa::ids {

/// Which anomaly detector scores the live request stream (DESIGN.md §12).
/// Mirrors the compiled/interpreted engine split: the sketch provider is
/// the production path, the exact detector the differential reference.
enum class AnomalyMode {
  kStreaming,       ///< fixed-memory sketches (default)
  kExactReference,  ///< legacy per-principal profiles (O(clients) memory)
};

class IntrusionDetectionSystem final : public core::IdsChannel {
 public:
  IntrusionDetectionSystem(core::SystemState* state, util::Clock* clock)
      : IntrusionDetectionSystem(state, clock, ThreatService::Options{}) {}
  IntrusionDetectionSystem(core::SystemState* state, util::Clock* clock,
                           ThreatService::Options threat_options);

  // --- core::IdsChannel ----------------------------------------------------
  void Report(const core::IdsReport& report) override;
  bool SuspectedSpoofing(const std::string& source_ip) override;

  /// Export IDS activity into the registry: `ids_reports_total{kind=...}`
  /// per report kind, plus bus publish/delivery counters and the threat
  /// level gauge (forwards to EventBus / ThreatService).  Null detaches.
  void AttachMetrics(telemetry::MetricRegistry* registry);

  /// Record threat-level transitions into the audit trail as structured
  /// "threat" events (old level, new level, triggering report kind).  Null
  /// detaches.  The sink must outlive the IDS.
  void AttachAudit(core::AuditSink* audit);

  // --- live request stream (DESIGN.md §12) ---------------------------------
  /// Feed one served request into the anomaly pipeline.  In streaming mode
  /// this is O(sketch): a few atomic increments plus one sharded-mutex
  /// quantile update, safe to call from the transport's inline fast path.
  /// Severities at or above the provider's report threshold become
  /// kSuspiciousBehavior reports (escalating the threat level, which in
  /// turn fences threat-dependent memo entries).
  void ObserveRequest(const std::string& client_ip, const std::string& path,
                      util::TimePoint now_us);

  /// Periodic housekeeping, driven by the transport's shard timer wheel:
  /// threat decay (ThreatService::Tick), sketch window aging, and a
  /// refresh of the adaptive SystemState variables.
  void PeriodicMaintenance();

  void set_anomaly_mode(AnomalyMode mode) { anomaly_mode_ = mode; }
  AnomalyMode anomaly_mode() const { return anomaly_mode_; }

  // --- components ----------------------------------------------------------
  ThreatService& threat() { return threat_; }
  EventBus& bus() { return bus_; }
  AnomalyDetector& anomaly() { return anomaly_; }
  sketch::StreamingAnomalyProvider& stream() { return stream_; }
  SignatureDb& signatures() { return signatures_; }

  // --- network-IDS oracle configuration (tests / scenarios) ----------------
  void MarkSpoofedSource(const std::string& source_ip);
  void ClearSpoofedSources();

  // --- host-based adaptive thresholds (§3) ----------------------------------
  /// Push an adaptive value into SystemState under `var_name`; policies
  /// reference it as "var:<var_name>".
  void PushAdaptiveValue(const std::string& var_name, const std::string& value);

  /// Recompute built-in adaptive values from the current threat level:
  /// stricter CGI-input and rate limits as the level rises.  Writes
  /// gaa.max_cgi_input, gaa.rate_limit and gaa.lockdown_hours.
  void RecomputeAdaptiveValues();

  // --- stats ---------------------------------------------------------------
  std::vector<core::IdsReport> ReportsSnapshot() const;
  std::size_t report_count() const;
  std::size_t CountKind(core::ReportKind kind) const;

 private:
  core::SystemState* state_;
  util::Clock* clock_;
  telemetry::MetricRegistry* metrics_ = nullptr;
  core::AuditSink* audit_ = nullptr;
  ThreatService threat_;
  EventBus bus_;
  AnomalyDetector anomaly_;
  sketch::StreamingAnomalyProvider stream_;
  AnomalyMode anomaly_mode_ = AnomalyMode::kStreaming;
  SignatureDb signatures_;
  mutable std::mutex mu_;
  std::vector<core::IdsReport> reports_;
  std::set<std::string> spoofed_sources_;
};

}  // namespace gaa::ids
