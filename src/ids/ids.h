// The intrusion detection system: receives GAA-API reports (core::IdsChannel
// implementation), drives the threat-level service, publishes events on the
// bus, and plays the roles of the paper's external IDS components:
//
//   * network-based IDS: the spoofing oracle consulted before pro-active
//     countermeasures (§3);
//   * host-based IDS: the adaptive-threshold provider that pushes values
//     for thresholds / times / locations into SystemState variables, which
//     `var:`-valued conditions read (§3 last paragraph);
//   * anomaly-based detection on top of the signature-based machinery (§9).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "gaa/services.h"
#include "gaa/system_state.h"
#include "ids/anomaly.h"
#include "ids/event_bus.h"
#include "ids/signature_db.h"
#include "ids/threat_service.h"
#include "util/clock.h"

namespace gaa::ids {

class IntrusionDetectionSystem final : public core::IdsChannel {
 public:
  IntrusionDetectionSystem(core::SystemState* state, util::Clock* clock)
      : IntrusionDetectionSystem(state, clock, ThreatService::Options{}) {}
  IntrusionDetectionSystem(core::SystemState* state, util::Clock* clock,
                           ThreatService::Options threat_options);

  // --- core::IdsChannel ----------------------------------------------------
  void Report(const core::IdsReport& report) override;
  bool SuspectedSpoofing(const std::string& source_ip) override;

  /// Export IDS activity into the registry: `ids_reports_total{kind=...}`
  /// per report kind, plus bus publish/delivery counters and the threat
  /// level gauge (forwards to EventBus / ThreatService).  Null detaches.
  void AttachMetrics(telemetry::MetricRegistry* registry);

  /// Record threat-level transitions into the audit trail as structured
  /// "threat" events (old level, new level, triggering report kind).  Null
  /// detaches.  The sink must outlive the IDS.
  void AttachAudit(core::AuditSink* audit);

  // --- components ----------------------------------------------------------
  ThreatService& threat() { return threat_; }
  EventBus& bus() { return bus_; }
  AnomalyDetector& anomaly() { return anomaly_; }
  SignatureDb& signatures() { return signatures_; }

  // --- network-IDS oracle configuration (tests / scenarios) ----------------
  void MarkSpoofedSource(const std::string& source_ip);
  void ClearSpoofedSources();

  // --- host-based adaptive thresholds (§3) ----------------------------------
  /// Push an adaptive value into SystemState under `var_name`; policies
  /// reference it as "var:<var_name>".
  void PushAdaptiveValue(const std::string& var_name, const std::string& value);

  /// Recompute built-in adaptive values from the current threat level:
  /// stricter CGI-input and rate limits as the level rises.  Writes
  /// gaa.max_cgi_input, gaa.rate_limit and gaa.lockdown_hours.
  void RecomputeAdaptiveValues();

  // --- stats ---------------------------------------------------------------
  std::vector<core::IdsReport> ReportsSnapshot() const;
  std::size_t report_count() const;
  std::size_t CountKind(core::ReportKind kind) const;

 private:
  core::SystemState* state_;
  util::Clock* clock_;
  telemetry::MetricRegistry* metrics_ = nullptr;
  core::AuditSink* audit_ = nullptr;
  ThreatService threat_;
  EventBus bus_;
  AnomalyDetector anomaly_;
  SignatureDb signatures_;
  mutable std::mutex mu_;
  std::vector<core::IdsReport> reports_;
  std::set<std::string> spoofed_sources_;
};

}  // namespace gaa::ids
