#include "ids/event_bus.h"

#include "gaa/services.h"
#include "telemetry/metrics.h"

namespace gaa::ids {

EventBus::SubscriptionId ConnectAlertNotifications(
    EventBus& bus, core::NotificationService& notifier, int min_severity,
    const std::string& recipient) {
  SubscriptionPolicy policy;
  policy.topic_pattern = "*";
  policy.min_severity = min_severity;
  return bus.Subscribe(policy, [&notifier, recipient](const Event& event) {
    notifier.Notify(recipient, "[ids] " + event.topic,
                    "severity=" + std::to_string(event.severity) + " " +
                        event.payload);
  });
}

EventBus::SubscriptionId EventBus::Subscribe(SubscriptionPolicy policy,
                                             EventCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  SubscriptionId id = next_id_++;
  util::CompiledGlob glob(policy.topic_pattern);
  subs_.emplace(id, Subscription{std::move(policy), std::move(glob),
                                 std::move(callback)});
  return id;
}

bool EventBus::Unsubscribe(SubscriptionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  return subs_.erase(id) > 0;
}

void EventBus::Publish(Event event) {
  if (event.time_us == 0 && clock_ != nullptr) event.time_us = clock_->Now();
  std::vector<EventCallback> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++published_;
    for (auto& [id, sub] : subs_) {
      if (event.severity < sub.policy.min_severity) continue;
      if (!sub.topic_glob.Matches(event.topic)) continue;
      targets.push_back(sub.callback);
      ++delivered_;
    }
  }
  if (published_counter_ != nullptr) published_counter_->Inc();
  if (delivered_counter_ != nullptr && !targets.empty()) {
    delivered_counter_->Inc(targets.size());
  }
  // Deliver outside the lock: callbacks may publish or (un)subscribe.
  for (const auto& cb : targets) cb(event);
}

void EventBus::AttachMetrics(telemetry::MetricRegistry* registry) {
  if (registry == nullptr) {
    published_counter_ = nullptr;
    delivered_counter_ = nullptr;
    return;
  }
  published_counter_ = registry->GetCounter("ids_events_published_total");
  delivered_counter_ = registry->GetCounter("ids_events_delivered_total");
}

std::size_t EventBus::subscriber_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return subs_.size();
}

std::uint64_t EventBus::published_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

std::uint64_t EventBus::delivered_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

}  // namespace gaa::ids
