// Event bus + subscription channels.
//
// Paper §9 (future work): "We plan to design a policy-controlled interface
// for establishing a subscription-based communication channels to allow
// GAA-API and IDSs to communicate."  We implement it: publishers post typed
// events to topics; subscribers register callbacks with an optional
// per-subscription policy filter (minimum severity, topic glob), which is
// the "policy-controlled" part.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "gaa/services.h"
#include "util/clock.h"
#include "util/glob.h"

namespace gaa::telemetry {
class Counter;
class MetricRegistry;
}  // namespace gaa::telemetry

namespace gaa::ids {

struct Event {
  std::string topic;    ///< e.g. "gaa.report.detected_attack"
  std::string source;   ///< component name
  int severity = 0;     ///< 0..10
  std::string payload;  ///< free-form detail
  util::TimePoint time_us = 0;
};

using EventCallback = std::function<void(const Event&)>;

/// Per-subscription delivery policy.
struct SubscriptionPolicy {
  std::string topic_pattern = "*";  ///< glob over topics
  int min_severity = 0;             ///< drop events below this severity
};

class EventBus {
 public:
  using SubscriptionId = std::uint64_t;

  explicit EventBus(util::Clock* clock) : clock_(clock) {}

  SubscriptionId Subscribe(SubscriptionPolicy policy, EventCallback callback);
  bool Unsubscribe(SubscriptionId id);

  /// Deliver synchronously to every matching subscriber.
  void Publish(Event event);

  /// Export publish/delivery counts as `ids_events_published_total` /
  /// `ids_events_delivered_total`.  Call before concurrent Publish traffic;
  /// null detaches.
  void AttachMetrics(telemetry::MetricRegistry* registry);

  std::size_t subscriber_count() const;
  std::uint64_t published_count() const;
  std::uint64_t delivered_count() const;

 private:
  struct Subscription {
    SubscriptionPolicy policy;
    util::CompiledGlob topic_glob;
    EventCallback callback;
  };

  util::Clock* clock_;
  telemetry::Counter* published_counter_ = nullptr;
  telemetry::Counter* delivered_counter_ = nullptr;
  mutable std::mutex mu_;
  std::map<SubscriptionId, Subscription> subs_;
  SubscriptionId next_id_ = 1;
  std::uint64_t published_ = 0;
  std::uint64_t delivered_ = 0;
};

/// Wire high-severity bus events to administrator notification — a
/// consumer of the §9 policy-controlled subscription channel: the
/// severity floor IS the subscription policy.  Returns the subscription id
/// (Unsubscribe() to disconnect).
EventBus::SubscriptionId ConnectAlertNotifications(
    EventBus& bus, core::NotificationService& notifier,
    int min_severity = 8, const std::string& recipient = "sysadmin");

}  // namespace gaa::ids
