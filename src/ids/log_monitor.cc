#include "ids/log_monitor.h"

#include "util/strings.h"

namespace gaa::ids {

std::string ToCommonLogFormat(const http::AccessLogEntry& entry) {
  // host ident authuser [date] "request" status bytes
  return entry.client_ip + " - " + (entry.user.empty() ? "-" : entry.user) +
         " [" + util::FormatTimestamp(entry.time_us) + "] \"" +
         entry.request_line + "\" " + std::to_string(entry.status) + " " +
         std::to_string(entry.bytes);
}

std::optional<ClfEntry> ParseCommonLogFormat(std::string_view line) {
  line = util::Trim(line);
  if (line.empty()) return std::nullopt;

  ClfEntry out;
  // host
  auto sp = line.find(' ');
  if (sp == std::string_view::npos) return std::nullopt;
  out.host = std::string(line.substr(0, sp));

  // the quoted request
  auto q1 = line.find('"');
  auto q2 = line.rfind('"');
  if (q1 == std::string_view::npos || q2 <= q1) return std::nullopt;
  std::string_view request = line.substr(q1 + 1, q2 - q1 - 1);
  auto req_parts = util::SplitWhitespace(request);
  if (!req_parts.empty()) out.method = req_parts[0];
  if (req_parts.size() >= 2) out.target = req_parts[1];

  // authuser is the 3rd space-separated field before the bracketed date.
  auto head = util::SplitWhitespace(line.substr(0, line.find('[')));
  if (head.size() >= 3) out.user = head[2];

  // status and bytes trail the closing quote.
  auto tail = util::SplitWhitespace(line.substr(q2 + 1));
  if (tail.empty()) return std::nullopt;
  if (auto status = util::ParseInt(tail[0])) {
    out.status = static_cast<int>(*status);
  } else {
    return std::nullopt;
  }
  if (tail.size() >= 2) {
    if (auto bytes = util::ParseInt(tail[1]); bytes && *bytes >= 0) {
      out.bytes = static_cast<std::uint64_t>(*bytes);
    }
  }
  return out;
}

std::optional<LogFinding> LogMonitor::ScanLine(std::string_view line) const {
  auto entry = ParseCommonLogFormat(line);
  if (!entry.has_value()) return std::nullopt;
  // The monitor sees only the logged request line: the raw target.  Split
  // the query off the same way the live path does.
  std::string_view target = entry->target;
  auto qmark = target.find('?');
  std::string_view url = qmark == std::string_view::npos
                             ? target
                             : target.substr(0, qmark);
  std::string_view query =
      qmark == std::string_view::npos ? "" : target.substr(qmark + 1);
  auto hit = signatures_.FirstMatch(url, query);
  if (!hit.has_value()) {
    // The raw target carries the query too; try matching whole.
    hit = signatures_.FirstMatch(target, "");
    if (!hit.has_value()) return std::nullopt;
  }
  LogFinding finding;
  finding.entry = *entry;
  finding.hit = *hit;
  finding.was_served = entry->status >= 200 && entry->status < 400;
  return finding;
}

std::vector<LogFinding> LogMonitor::ScanLog(std::string_view log_text) const {
  std::vector<LogFinding> findings;
  std::size_t pos = 0;
  while (pos <= log_text.size()) {
    std::size_t eol = log_text.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? log_text.substr(pos)
                                : log_text.substr(pos, eol - pos);
    if (auto finding = ScanLine(line)) findings.push_back(std::move(*finding));
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return findings;
}

std::vector<LogFinding> LogMonitor::ScanServerLog(
    const std::vector<http::AccessLogEntry>& entries) const {
  std::vector<LogFinding> findings;
  for (const auto& entry : entries) {
    if (auto finding = ScanLine(ToCommonLogFormat(entry))) {
      findings.push_back(std::move(*finding));
    }
  }
  return findings;
}

}  // namespace gaa::ids
