#include "conditions/builtin.h"

namespace gaa::cond {

namespace {

/// Same purity for every def_auth (most builtins; accessid is the
/// exception — see AccessIdTraits).
core::RoutineCatalog::TraitsFn Fixed(core::CondPurity purity) {
  return [purity](const std::string& /*def_auth*/) {
    return core::CondTraits{purity};
  };
}

}  // namespace

void RegisterBuiltinRoutines(core::RoutineCatalog& catalog) {
  using core::CondPurity;
  // Purity (DESIGN.md §9.2) decides decision memoization: kPure routines
  // depend only on memo-key inputs; kVolatile read live state (clock,
  // SystemState, IDS, request shape); kEffect must fire on every request.
  // Specializers pre-parse literal values at policy-compile time; routines
  // without one are either value-free, trivially cheap, or mid/post-only
  // (mid and post blocks stay in source form — see eacl/compile.h).
  catalog.Add("builtin:accessid",
              {MakeAccessIdRoutine, AccessIdTraits, SpecializeAccessId});
  catalog.Add("builtin:time_window",
              {MakeTimeWindowRoutine, Fixed(CondPurity::kVolatile),
               SpecializeTimeWindow});
  catalog.Add("builtin:location",
              {MakeLocationRoutine, Fixed(CondPurity::kVolatile),
               SpecializeLocation});
  catalog.Add("builtin:threat_level",
              {MakeThreatLevelRoutine, Fixed(CondPurity::kVolatile),
               SpecializeThreatLevel});
  catalog.Add("builtin:glob_signature",
              {MakeGlobSignatureRoutine, Fixed(CondPurity::kEffect),
               SpecializeGlobSignature});
  catalog.Add("builtin:param_glob",
              {MakeParamGlobRoutine, Fixed(CondPurity::kEffect),
               SpecializeParamGlob});
  catalog.Add("builtin:expr",
              {MakeExprRoutine, Fixed(CondPurity::kVolatile), SpecializeExpr});
  catalog.Add("builtin:threshold",
              {MakeThresholdRoutine, Fixed(CondPurity::kEffect), nullptr});
  // Redirect is always left unevaluated => MAYBE, so although pure it can
  // never reach the memo cache (terminal YES/NO only).
  catalog.Add("builtin:redirect",
              {MakeRedirectRoutine, Fixed(CondPurity::kPure), nullptr});
  catalog.Add("builtin:spoofing",
              {MakeSpoofingRoutine, Fixed(CondPurity::kVolatile), nullptr});
  catalog.Add("builtin:firewall",
              {MakeFirewallRoutine, Fixed(CondPurity::kVolatile),
               SpecializeFirewall});
  catalog.Add("builtin:block_network",
              {MakeBlockNetworkRoutine, Fixed(CondPurity::kEffect), nullptr});
  catalog.Add("builtin:set_var",
              {MakeSetVarRoutine, Fixed(CondPurity::kEffect), nullptr});
  catalog.Add("builtin:var_equals",
              {MakeVarEqualsRoutine, Fixed(CondPurity::kVolatile), nullptr});
  catalog.Add("builtin:notify",
              {MakeNotifyRoutine, Fixed(CondPurity::kEffect), nullptr});
  catalog.Add("builtin:update_log",
              {MakeUpdateLogRoutine, Fixed(CondPurity::kEffect), nullptr});
  catalog.Add("builtin:audit",
              {MakeAuditRoutine, Fixed(CondPurity::kEffect), SpecializeAudit});
  catalog.Add("builtin:record_event",
              {MakeRecordEventRoutine, Fixed(CondPurity::kEffect),
               SpecializeRecordEvent});
  catalog.Add("builtin:cpu_limit",
              {MakeCpuLimitRoutine, Fixed(CondPurity::kVolatile), nullptr});
  catalog.Add("builtin:wallclock_limit",
              {MakeWallclockLimitRoutine, Fixed(CondPurity::kVolatile),
               nullptr});
  catalog.Add("builtin:memory_limit",
              {MakeMemoryLimitRoutine, Fixed(CondPurity::kVolatile), nullptr});
  catalog.Add("builtin:output_limit",
              {MakeOutputLimitRoutine, Fixed(CondPurity::kVolatile), nullptr});
  catalog.Add("builtin:post_log",
              {MakePostLogRoutine, Fixed(CondPurity::kEffect), nullptr});
  catalog.Add("builtin:integrity_check",
              {MakeIntegrityCheckRoutine, Fixed(CondPurity::kEffect),
               nullptr});
}

std::string DefaultConfigText() {
  return R"(# Default GAA configuration: bind the standard EACL condition types
# (paper sections 2 and 7) to the builtin evaluation routines.
condition pre_cond_accessid             USER   builtin:accessid
condition pre_cond_accessid             GROUP  builtin:accessid
condition pre_cond_accessid             HOST   builtin:accessid
condition pre_cond_time                 local  builtin:time_window
condition pre_cond_location             local  builtin:location
condition pre_cond_system_threat_level  local  builtin:threat_level
condition pre_cond_regex                gnu    builtin:glob_signature
condition pre_cond_expr                 local  builtin:expr
condition pre_cond_param                local  builtin:param_glob
condition pre_cond_threshold            local  builtin:threshold
condition pre_cond_redirect             local  builtin:redirect
condition pre_cond_spoofing             local  builtin:spoofing
condition pre_cond_firewall             local  builtin:firewall
condition pre_cond_var                  local  builtin:var_equals
condition rr_cond_notify                local  builtin:notify
condition rr_cond_block_network         local  builtin:block_network
condition rr_cond_set_var               local  builtin:set_var
condition rr_cond_update_log            local  builtin:update_log
condition rr_cond_audit                 local  builtin:audit
condition rr_cond_record_event          local  builtin:record_event
condition mid_cond_cpu                  local  builtin:cpu_limit
condition mid_cond_wallclock            local  builtin:wallclock_limit
condition mid_cond_memory               local  builtin:memory_limit
condition mid_cond_output               local  builtin:output_limit
condition post_cond_log                 local  builtin:post_log
condition post_cond_notify              local  builtin:notify
condition post_cond_check_integrity     local  builtin:integrity_check
)";
}

}  // namespace gaa::cond
