#include "conditions/builtin.h"

namespace gaa::cond {

void RegisterBuiltinRoutines(core::RoutineCatalog& catalog) {
  catalog.Add("builtin:accessid", MakeAccessIdRoutine);
  catalog.Add("builtin:time_window", MakeTimeWindowRoutine);
  catalog.Add("builtin:location", MakeLocationRoutine);
  catalog.Add("builtin:threat_level", MakeThreatLevelRoutine);
  catalog.Add("builtin:glob_signature", MakeGlobSignatureRoutine);
  catalog.Add("builtin:param_glob", MakeParamGlobRoutine);
  catalog.Add("builtin:expr", MakeExprRoutine);
  catalog.Add("builtin:threshold", MakeThresholdRoutine);
  catalog.Add("builtin:redirect", MakeRedirectRoutine);
  catalog.Add("builtin:spoofing", MakeSpoofingRoutine);
  catalog.Add("builtin:firewall", MakeFirewallRoutine);
  catalog.Add("builtin:block_network", MakeBlockNetworkRoutine);
  catalog.Add("builtin:set_var", MakeSetVarRoutine);
  catalog.Add("builtin:var_equals", MakeVarEqualsRoutine);
  catalog.Add("builtin:notify", MakeNotifyRoutine);
  catalog.Add("builtin:update_log", MakeUpdateLogRoutine);
  catalog.Add("builtin:audit", MakeAuditRoutine);
  catalog.Add("builtin:record_event", MakeRecordEventRoutine);
  catalog.Add("builtin:cpu_limit", MakeCpuLimitRoutine);
  catalog.Add("builtin:wallclock_limit", MakeWallclockLimitRoutine);
  catalog.Add("builtin:memory_limit", MakeMemoryLimitRoutine);
  catalog.Add("builtin:output_limit", MakeOutputLimitRoutine);
  catalog.Add("builtin:post_log", MakePostLogRoutine);
  catalog.Add("builtin:integrity_check", MakeIntegrityCheckRoutine);
}

std::string DefaultConfigText() {
  return R"(# Default GAA configuration: bind the standard EACL condition types
# (paper sections 2 and 7) to the builtin evaluation routines.
condition pre_cond_accessid             USER   builtin:accessid
condition pre_cond_accessid             GROUP  builtin:accessid
condition pre_cond_accessid             HOST   builtin:accessid
condition pre_cond_time                 local  builtin:time_window
condition pre_cond_location             local  builtin:location
condition pre_cond_system_threat_level  local  builtin:threat_level
condition pre_cond_regex                gnu    builtin:glob_signature
condition pre_cond_expr                 local  builtin:expr
condition pre_cond_param                local  builtin:param_glob
condition pre_cond_threshold            local  builtin:threshold
condition pre_cond_redirect             local  builtin:redirect
condition pre_cond_spoofing             local  builtin:spoofing
condition pre_cond_firewall             local  builtin:firewall
condition pre_cond_var                  local  builtin:var_equals
condition rr_cond_notify                local  builtin:notify
condition rr_cond_block_network         local  builtin:block_network
condition rr_cond_set_var               local  builtin:set_var
condition rr_cond_update_log            local  builtin:update_log
condition rr_cond_audit                 local  builtin:audit
condition rr_cond_record_event          local  builtin:record_event
condition mid_cond_cpu                  local  builtin:cpu_limit
condition mid_cond_wallclock            local  builtin:wallclock_limit
condition mid_cond_memory               local  builtin:memory_limit
condition mid_cond_output               local  builtin:output_limit
condition post_cond_log                 local  builtin:post_log
condition post_cond_notify              local  builtin:notify
condition post_cond_check_integrity     local  builtin:integrity_check
)";
}

}  // namespace gaa::cond
