// builtin:time_window and builtin:location pre-conditions.
#include "conditions/builtin.h"
#include "conditions/trigger.h"
#include "util/ip.h"
#include "util/strings.h"

namespace gaa::cond {

namespace {

using core::EvalOutcome;
using core::EvalServices;
using core::RequestContext;

/// Parse "HH:MM" into seconds-of-day.
std::optional<int> ParseHhMm(std::string_view s) {
  auto parts = util::Split(s, ':');
  if (parts.size() != 2) return std::nullopt;
  auto h = util::ParseInt(parts[0]);
  auto m = util::ParseInt(parts[1]);
  if (!h || !m || *h < 0 || *h > 23 || *m < 0 || *m > 59) return std::nullopt;
  return static_cast<int>(*h * 3600 + *m * 60);
}

}  // namespace

core::CondRoutine MakeTimeWindowRoutine(const FactoryParams& /*params*/) {
  return [](const eacl::Condition& cond, const RequestContext& /*ctx*/,
            EvalServices& services) -> EvalOutcome {
    auto resolved = ResolveValue(cond.value, services.state);
    if (!resolved.has_value()) {
      return EvalOutcome::Unevaluated("time window variable unset");
    }
    if (services.clock == nullptr) {
      return EvalOutcome::Unevaluated("no clock available");
    }
    int now = services.clock->SecondOfDay();
    bool any_window = false;
    for (const auto& window : util::SplitWhitespace(*resolved)) {
      auto dash = window.find('-');
      if (dash == std::string::npos) continue;
      auto lo = ParseHhMm(std::string_view(window).substr(0, dash));
      auto hi = ParseHhMm(std::string_view(window).substr(dash + 1));
      if (!lo || !hi) continue;
      any_window = true;
      bool inside = *lo <= *hi ? (now >= *lo && now < *hi)
                               : (now >= *lo || now < *hi);  // wraps midnight
      if (inside) {
        return EvalOutcome::Yes("time-of-day inside " + window);
      }
    }
    if (!any_window) {
      return EvalOutcome::No("time window: no valid HH:MM-HH:MM range");
    }
    return EvalOutcome::No("time-of-day outside all windows");
  };
}

core::CondRoutine MakeLocationRoutine(const FactoryParams& /*params*/) {
  return [](const eacl::Condition& cond, const RequestContext& ctx,
            EvalServices& services) -> EvalOutcome {
    auto resolved = ResolveValue(cond.value, services.state);
    if (!resolved.has_value()) {
      return EvalOutcome::Unevaluated("location variable unset");
    }
    bool any_block = false;
    for (const auto& token : util::SplitWhitespace(*resolved)) {
      auto block = util::CidrBlock::Parse(token);
      if (!block.has_value()) continue;
      any_block = true;
      if (block->Contains(ctx.client_ip)) {
        return EvalOutcome::Yes("client in " + block->ToString());
      }
    }
    if (!any_block) {
      return EvalOutcome::No("location: no valid CIDR in value");
    }
    return EvalOutcome::No("client " + ctx.client_ip.ToString() +
                           " outside allowed locations");
  };
}

core::SpecializedCond SpecializeTimeWindow(const eacl::Condition& cond,
                                           const FactoryParams& /*params*/) {
  std::string value(util::Trim(cond.value));
  if (util::StartsWith(value, "var:")) return {};  // runtime indirection
  struct Window {
    int lo;
    int hi;
    std::string text;
  };
  std::vector<Window> windows;
  for (const auto& window : util::SplitWhitespace(value)) {
    auto dash = window.find('-');
    if (dash == std::string::npos) continue;
    auto lo = ParseHhMm(std::string_view(window).substr(0, dash));
    auto hi = ParseHhMm(std::string_view(window).substr(dash + 1));
    if (!lo || !hi) continue;
    windows.push_back({*lo, *hi, window});
  }
  // The clock-availability check stays ahead of the no-valid-window answer,
  // mirroring the generic routine's evaluation order.  No purity refinement:
  // the outcome tracks the clock, which is outside the memo key.
  return {[windows](const eacl::Condition&, const RequestContext&,
                    EvalServices& services) {
            if (services.clock == nullptr) {
              return EvalOutcome::Unevaluated("no clock available");
            }
            if (windows.empty()) {
              return EvalOutcome::No("time window: no valid HH:MM-HH:MM range");
            }
            int now = services.clock->SecondOfDay();
            for (const auto& window : windows) {
              bool inside = window.lo <= window.hi
                                ? (now >= window.lo && now < window.hi)
                                : (now >= window.lo || now < window.hi);
              if (inside) {
                return EvalOutcome::Yes("time-of-day inside " + window.text);
              }
            }
            return EvalOutcome::No("time-of-day outside all windows");
          },
          std::nullopt};
}

core::SpecializedCond SpecializeLocation(const eacl::Condition& cond,
                                         const FactoryParams& /*params*/) {
  std::string value(util::Trim(cond.value));
  if (util::StartsWith(value, "var:")) return {};  // runtime indirection
  std::vector<util::CidrBlock> blocks;
  for (const auto& token : util::SplitWhitespace(value)) {
    auto block = util::CidrBlock::Parse(token);
    if (block.has_value()) blocks.push_back(*block);
  }
  // A literal CIDR list depends only on the client address — part of the
  // memo key — so the specialized form is pure (decisions may be cached).
  if (blocks.empty()) {
    return {[](const eacl::Condition&, const RequestContext&, EvalServices&) {
              return EvalOutcome::No("location: no valid CIDR in value");
            },
            core::CondPurity::kPure};
  }
  return {[blocks](const eacl::Condition&, const RequestContext& ctx,
                   EvalServices&) {
            for (const auto& block : blocks) {
              if (block.Contains(ctx.client_ip)) {
                return EvalOutcome::Yes("client in " + block.ToString());
              }
            }
            return EvalOutcome::No("client " + ctx.client_ip.ToString() +
                                   " outside allowed locations");
          },
          core::CondPurity::kPure};
}

}  // namespace gaa::cond
