// builtin:glob_signature, builtin:expr, builtin:threshold, builtin:redirect —
// the application-level intrusion-detection pre-conditions of §7.2.
#include "conditions/builtin.h"
#include "conditions/trigger.h"
#include "util/glob.h"
#include "util/strings.h"

namespace gaa::cond {

namespace {

using core::EvalOutcome;
using core::EvalServices;
using core::RequestContext;

void ReportAttack(EvalServices& services, const RequestContext& ctx,
                  const std::string& attack_type, int severity,
                  const std::string& detail) {
  if (services.ids == nullptr) return;
  core::IdsReport report;
  report.kind = core::ReportKind::kDetectedAttack;
  report.source_ip = ctx.client_ip.ToString();
  report.object = ctx.object;
  report.attack_type = attack_type;
  report.severity = severity;
  report.confidence = 0.9;  // signature hits are high confidence
  report.detail = detail;
  services.ids->Report(report);
}

/// The text signatures scan: the undecoded request target plus the query —
/// attacks like NIMDA hide in the raw (percent-encoded) form.
std::string SignatureSubject(const RequestContext& ctx) {
  std::string subject = ctx.raw_url.empty() ? ctx.object : ctx.raw_url;
  if (!ctx.query.empty() && subject.find('?') == std::string::npos) {
    subject += "?";
    subject += ctx.query;
  }
  return subject;
}

std::optional<std::int64_t> NumericField(const RequestContext& ctx,
                                         const std::string& field) {
  if (field == "cgi_input_length" || field == "query_length") {
    return static_cast<std::int64_t>(ctx.query.size());
  }
  if (field == "url_length") {
    return static_cast<std::int64_t>(
        (ctx.raw_url.empty() ? ctx.object : ctx.raw_url).size());
  }
  if (field == "slash_count") {
    return static_cast<std::int64_t>(util::CountChar(
        ctx.raw_url.empty() ? ctx.object : ctx.raw_url, '/'));
  }
  if (const core::Param* p = ctx.FindParam(field)) {
    return util::ParseInt(p->value);
  }
  return std::nullopt;
}

}  // namespace

core::CondRoutine MakeGlobSignatureRoutine(const FactoryParams& params) {
  std::string attack_type = "signature_match";
  int severity = 7;
  if (auto it = params.find("attack_type"); it != params.end()) {
    attack_type = it->second;
  }
  if (auto it = params.find("severity"); it != params.end()) {
    if (auto v = util::ParseInt(it->second)) severity = static_cast<int>(*v);
  }
  return [attack_type, severity](const eacl::Condition& cond,
                                 const RequestContext& ctx,
                                 EvalServices& services) -> EvalOutcome {
    std::string subject = SignatureSubject(ctx);
    for (const auto& pattern : util::SplitWhitespace(cond.value)) {
      if (util::GlobMatch(pattern, subject)) {
        ReportAttack(services, ctx, attack_type, severity,
                     "signature '" + pattern + "' matched " + subject);
        return EvalOutcome::Yes("matched signature " + pattern);
      }
    }
    return EvalOutcome::No("no signature matched");
  };
}

core::CondRoutine MakeExprRoutine(const FactoryParams& /*params*/) {
  return [](const eacl::Condition& cond, const RequestContext& ctx,
            EvalServices& services) -> EvalOutcome {
    // Value: "<field> <op><number|var:name>"; e.g. "cgi_input_length >1000".
    auto tokens = util::SplitWhitespace(cond.value);
    if (tokens.empty()) return EvalOutcome::No("expr: empty value");
    std::string field = tokens[0];
    std::vector<std::string> rest(tokens.begin() + 1, tokens.end());
    ParsedOp parsed = ParseCmpOp(util::Join(rest, " "));
    auto resolved = ResolveValue(parsed.rest, services.state);
    if (!resolved.has_value()) {
      return EvalOutcome::Unevaluated("expr threshold variable unset");
    }
    auto rhs = util::ParseInt(*resolved);
    if (!rhs.has_value()) {
      return EvalOutcome::No("expr: non-numeric threshold '" + *resolved + "'");
    }
    auto lhs = NumericField(ctx, field);
    if (!lhs.has_value()) {
      return EvalOutcome::Unevaluated("expr: field '" + field +
                                      "' not present on request");
    }
    bool holds = CompareInts(*lhs, parsed.op, *rhs);
    std::string detail = field + "=" + std::to_string(*lhs) + " vs " +
                         std::to_string(*rhs);
    return holds ? EvalOutcome::Yes(detail) : EvalOutcome::No(detail);
  };
}

core::CondRoutine MakeThresholdRoutine(const FactoryParams& /*params*/) {
  return [](const eacl::Condition& cond, const RequestContext& ctx,
            EvalServices& services) -> EvalOutcome {
    // Value: "<key> <limit> <window_seconds>".
    if (services.state == nullptr) {
      return EvalOutcome::Unevaluated("threshold: no system state");
    }
    auto tokens = util::SplitWhitespace(cond.value);
    if (tokens.size() != 3) {
      return EvalOutcome::No("threshold: want <key> <limit> <window_s>");
    }
    std::string key = ExpandPlaceholders(tokens[0], ctx);
    auto limit_s = ResolveValue(tokens[1], services.state);
    if (!limit_s) return EvalOutcome::Unevaluated("threshold limit unset");
    auto limit = util::ParseInt(*limit_s);
    auto window_s = util::ParseInt(tokens[2]);
    if (!limit || !window_s || *window_s <= 0) {
      return EvalOutcome::No("threshold: bad limit/window");
    }
    std::size_t count = services.state->CountEvents(
        key, *window_s * util::kMicrosPerSecond);
    if (static_cast<std::int64_t>(count) < *limit) {
      return EvalOutcome::Yes("count " + std::to_string(count) + " < " +
                              std::to_string(*limit));
    }
    if (services.ids != nullptr) {
      core::IdsReport report;
      report.kind = core::ReportKind::kThresholdViolation;
      report.source_ip = ctx.client_ip.ToString();
      report.object = ctx.object;
      report.attack_type = "threshold:" + key;
      report.severity = 5;
      report.confidence = 0.7;
      report.detail = std::to_string(count) + " events in " + tokens[2] + "s";
      services.ids->Report(report);
    }
    return EvalOutcome::No("count " + std::to_string(count) +
                           " reached limit " + std::to_string(*limit));
  };
}

core::CondRoutine MakeParamGlobRoutine(const FactoryParams& params) {
  std::string attack_type = "param_signature";
  int severity = 5;
  if (auto it = params.find("attack_type"); it != params.end()) {
    attack_type = it->second;
  }
  if (auto it = params.find("severity"); it != params.end()) {
    if (auto v = util::ParseInt(it->second)) severity = static_cast<int>(*v);
  }
  return [attack_type, severity](const eacl::Condition& cond,
                                 const RequestContext& ctx,
                                 EvalServices& services) -> EvalOutcome {
    auto tokens = util::SplitWhitespace(cond.value);
    if (tokens.size() < 2) {
      return EvalOutcome::No("param_glob: want <param_type> <glob>...");
    }
    const core::Param* param = ctx.FindParam(tokens[0]);
    if (param == nullptr) {
      return EvalOutcome::Unevaluated("param '" + tokens[0] +
                                      "' not present on request");
    }
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      if (util::GlobMatchIgnoreCase(tokens[i], param->value)) {
        ReportAttack(services, ctx, attack_type, severity,
                     "param " + tokens[0] + "='" + param->value +
                         "' matched '" + tokens[i] + "'");
        return EvalOutcome::Yes("param " + tokens[0] + " matched " +
                                tokens[i]);
      }
    }
    return EvalOutcome::No("param " + tokens[0] + " matched nothing");
  };
}

core::SpecializedCond SpecializeGlobSignature(const eacl::Condition& cond,
                                              const FactoryParams& params) {
  // Same param handling as the factory; the pattern list is pre-split once.
  // Stays kEffect: a match reports a detected attack to the IDS.
  std::string attack_type = "signature_match";
  int severity = 7;
  if (auto it = params.find("attack_type"); it != params.end()) {
    attack_type = it->second;
  }
  if (auto it = params.find("severity"); it != params.end()) {
    if (auto v = util::ParseInt(it->second)) severity = static_cast<int>(*v);
  }
  std::vector<std::string> patterns = util::SplitWhitespace(cond.value);
  return {[attack_type, severity, patterns](const eacl::Condition&,
                                            const RequestContext& ctx,
                                            EvalServices& services) {
            std::string subject = SignatureSubject(ctx);
            for (const auto& pattern : patterns) {
              if (util::GlobMatch(pattern, subject)) {
                ReportAttack(services, ctx, attack_type, severity,
                             "signature '" + pattern + "' matched " + subject);
                return EvalOutcome::Yes("matched signature " + pattern);
              }
            }
            return EvalOutcome::No("no signature matched");
          },
          std::nullopt};
}

core::SpecializedCond SpecializeExpr(const eacl::Condition& cond,
                                     const FactoryParams& /*params*/) {
  auto tokens = util::SplitWhitespace(cond.value);
  if (tokens.empty()) {
    return {[](const eacl::Condition&, const RequestContext&, EvalServices&) {
              return EvalOutcome::No("expr: empty value");
            },
            std::nullopt};
  }
  std::string field = tokens[0];
  std::vector<std::string> rest(tokens.begin() + 1, tokens.end());
  ParsedOp parsed = ParseCmpOp(util::Join(rest, " "));
  if (util::StartsWith(parsed.rest, "var:")) return {};  // runtime indirection
  auto rhs = util::ParseInt(parsed.rest);
  if (!rhs.has_value()) {
    std::string literal = parsed.rest;
    return {[literal](const eacl::Condition&, const RequestContext&,
                      EvalServices&) {
              return EvalOutcome::No("expr: non-numeric threshold '" +
                                     literal + "'");
            },
            std::nullopt};
  }
  // No purity refinement: the left-hand field reads request shape (query
  // length, parameters) that is not part of the decision-memo key.
  CmpOp op = parsed.op;
  std::int64_t threshold = *rhs;
  return {[field, op, threshold](const eacl::Condition&,
                                 const RequestContext& ctx, EvalServices&) {
            auto lhs = NumericField(ctx, field);
            if (!lhs.has_value()) {
              return EvalOutcome::Unevaluated("expr: field '" + field +
                                              "' not present on request");
            }
            bool holds = CompareInts(*lhs, op, threshold);
            std::string detail = field + "=" + std::to_string(*lhs) + " vs " +
                                 std::to_string(threshold);
            return holds ? EvalOutcome::Yes(detail) : EvalOutcome::No(detail);
          },
          std::nullopt};
}

core::SpecializedCond SpecializeParamGlob(const eacl::Condition& cond,
                                          const FactoryParams& params) {
  std::string attack_type = "param_signature";
  int severity = 5;
  if (auto it = params.find("attack_type"); it != params.end()) {
    attack_type = it->second;
  }
  if (auto it = params.find("severity"); it != params.end()) {
    if (auto v = util::ParseInt(it->second)) severity = static_cast<int>(*v);
  }
  auto tokens = util::SplitWhitespace(cond.value);
  if (tokens.size() < 2) {
    return {[](const eacl::Condition&, const RequestContext&, EvalServices&) {
              return EvalOutcome::No("param_glob: want <param_type> <glob>...");
            },
            std::nullopt};
  }
  return {[attack_type, severity, tokens](const eacl::Condition&,
                                          const RequestContext& ctx,
                                          EvalServices& services) {
            const core::Param* param = ctx.FindParam(tokens[0]);
            if (param == nullptr) {
              return EvalOutcome::Unevaluated("param '" + tokens[0] +
                                              "' not present on request");
            }
            for (std::size_t i = 1; i < tokens.size(); ++i) {
              if (util::GlobMatchIgnoreCase(tokens[i], param->value)) {
                ReportAttack(services, ctx, attack_type, severity,
                             "param " + tokens[0] + "='" + param->value +
                                 "' matched '" + tokens[i] + "'");
                return EvalOutcome::Yes("param " + tokens[0] + " matched " +
                                        tokens[i]);
              }
            }
            return EvalOutcome::No("param " + tokens[0] + " matched nothing");
          },
          std::nullopt};
}

core::CondRoutine MakeRedirectRoutine(const FactoryParams& /*params*/) {
  return [](const eacl::Condition& /*cond*/, const RequestContext& /*ctx*/,
            EvalServices& /*services*/) -> EvalOutcome {
    // Paper §6 step 2d: "The condition of type pre_cond_redirect encodes
    // the URL and is returned unevaluated."  The application (Apache glue)
    // recognizes the single unevaluated redirect condition in the MAYBE
    // answer and issues the redirected request.
    return EvalOutcome::Unevaluated("redirect URL is application-interpreted");
  };
}

}  // namespace gaa::cond
