#include "conditions/trigger.h"

#include "util/strings.h"

namespace gaa::cond {

ParsedTrigger ParseTrigger(std::string_view value) {
  ParsedTrigger out;
  value = util::Trim(value);
  if (util::StartsWith(value, "on:")) {
    std::string_view rest = value.substr(3);
    auto slash = rest.find('/');
    std::string_view when =
        slash == std::string_view::npos ? rest : rest.substr(0, slash);
    if (when == "success") {
      out.trigger = Trigger::kOnSuccess;
    } else if (when == "failure") {
      out.trigger = Trigger::kOnFailure;
    } else {
      out.trigger = Trigger::kOnAny;
    }
    out.rest = slash == std::string_view::npos
                   ? std::string()
                   : std::string(rest.substr(slash + 1));
  } else {
    out.rest = std::string(value);
  }
  return out;
}

bool TriggerFires(Trigger trigger, bool success_outcome) {
  switch (trigger) {
    case Trigger::kOnSuccess:
      return success_outcome;
    case Trigger::kOnFailure:
      return !success_outcome;
    case Trigger::kOnAny:
      return true;
  }
  return true;
}

std::optional<std::string> ResolveValue(std::string_view value,
                                        const core::SystemState* state) {
  value = util::Trim(value);
  if (util::StartsWith(value, "var:")) {
    if (state == nullptr) return std::nullopt;
    return state->GetVariable(std::string(value.substr(4)));
  }
  return std::string(value);
}

std::string ExpandPlaceholders(std::string_view text,
                               const core::RequestContext& ctx) {
  std::string out = util::ReplaceAll(text, "%ip", ctx.client_ip.ToString());
  out = util::ReplaceAll(out, "%user",
                         ctx.user.empty() ? "anonymous" : ctx.user);
  return out;
}

ParsedOp ParseCmpOp(std::string_view s) {
  ParsedOp out;
  s = util::Trim(s);
  if (util::StartsWith(s, ">=")) {
    out.op = CmpOp::kGe;
    s = s.substr(2);
  } else if (util::StartsWith(s, "<=")) {
    out.op = CmpOp::kLe;
    s = s.substr(2);
  } else if (util::StartsWith(s, "!=")) {
    out.op = CmpOp::kNe;
    s = s.substr(2);
  } else if (util::StartsWith(s, ">")) {
    out.op = CmpOp::kGt;
    s = s.substr(1);
  } else if (util::StartsWith(s, "<")) {
    out.op = CmpOp::kLt;
    s = s.substr(1);
  } else if (util::StartsWith(s, "=")) {
    out.op = CmpOp::kEq;
    s = s.substr(1);
  }
  out.rest = std::string(util::Trim(s));
  return out;
}

bool CompareInts(std::int64_t lhs, CmpOp op, std::int64_t rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

bool CompareDoubles(double lhs, CmpOp op, double rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

}  // namespace gaa::cond
