// Execution-control (mid) and post-execution conditions.
//
// Mid-conditions implement the paper's phase 3: "to detect malicious
// behavior in real-time (e.g., a user process consumes excessive system
// resources)".  Post-conditions implement phase 4 logging/notification and
// the §1 critical-file example (a modified /etc/passwd triggers a content
// check).
#include "conditions/builtin.h"
#include "conditions/trigger.h"
#include "telemetry/trace.h"
#include "util/glob.h"
#include "util/strings.h"

namespace gaa::cond {

namespace {

using core::EvalOutcome;
using core::EvalServices;
using core::RequestContext;

/// Shared shape of the resource-limit mid-conditions: compare a live
/// statistic against "<number|var:name>"; within limit => YES, exceeded =>
/// NO (abort), unresolvable limit => unevaluated.
template <typename Get>
core::CondRoutine MakeLimitRoutine(std::string what, Get get) {
  return [what = std::move(what), get](const eacl::Condition& cond,
                                       const RequestContext& ctx,
                                       EvalServices& services) -> EvalOutcome {
    auto resolved = ResolveValue(cond.value, services.state);
    if (!resolved.has_value()) {
      return EvalOutcome::Unevaluated(what + " limit variable unset");
    }
    auto limit = util::ParseDouble(*resolved);
    if (!limit.has_value()) {
      return EvalOutcome::No(what + ": non-numeric limit '" + *resolved + "'");
    }
    double current = get(ctx);
    if (current <= *limit) {
      return EvalOutcome::Yes(what + " " + std::to_string(current) +
                              " within " + *resolved);
    }
    if (services.ids != nullptr) {
      core::IdsReport report;
      report.kind = core::ReportKind::kSuspiciousBehavior;
      report.source_ip = ctx.client_ip.ToString();
      report.object = ctx.object;
      report.attack_type = "resource:" + what;
      report.severity = 6;
      report.confidence = 0.8;
      report.detail = what + "=" + std::to_string(current) + " limit=" +
                      *resolved;
      services.ids->Report(report);
    }
    return EvalOutcome::No(what + " " + std::to_string(current) +
                           " exceeds " + *resolved);
  };
}

}  // namespace

core::CondRoutine MakeCpuLimitRoutine(const FactoryParams& /*params*/) {
  return MakeLimitRoutine("cpu_seconds", [](const RequestContext& ctx) {
    return ctx.stats.cpu_seconds;
  });
}

core::CondRoutine MakeWallclockLimitRoutine(const FactoryParams& /*params*/) {
  return MakeLimitRoutine("wallclock_ms", [](const RequestContext& ctx) {
    return static_cast<double>(ctx.stats.wall_us) / 1000.0;
  });
}

core::CondRoutine MakeMemoryLimitRoutine(const FactoryParams& /*params*/) {
  return MakeLimitRoutine("memory_bytes", [](const RequestContext& ctx) {
    return static_cast<double>(ctx.stats.memory_bytes);
  });
}

core::CondRoutine MakeOutputLimitRoutine(const FactoryParams& /*params*/) {
  return MakeLimitRoutine("output_bytes", [](const RequestContext& ctx) {
    return static_cast<double>(ctx.stats.bytes_written);
  });
}

core::CondRoutine MakePostLogRoutine(const FactoryParams& /*params*/) {
  return [](const eacl::Condition& cond, const RequestContext& ctx,
            EvalServices& services) -> EvalOutcome {
    ParsedTrigger parsed = ParseTrigger(cond.value);
    if (!TriggerFires(parsed.trigger, ctx.stats.succeeded)) {
      return EvalOutcome::Yes("post_log not triggered");
    }
    if (services.audit == nullptr) {
      return EvalOutcome::No("post_log: no audit sink");
    }
    std::string category = parsed.rest.empty() ? "operation" : parsed.rest;
    services.audit->Record(
        category,
        std::string(ctx.stats.succeeded ? "OP_OK" : "OP_FAIL") + " ip=" +
            ctx.client_ip.ToString() + " op=" + ctx.operation + " object=" +
            ctx.object + " bytes=" + std::to_string(ctx.stats.bytes_written) +
            " wall_ms=" + std::to_string(ctx.stats.wall_us / 1000),
        telemetry::TraceId(ctx.trace));
    return EvalOutcome::Yes("post-logged " + category);
  };
}

core::CondRoutine MakeIntegrityCheckRoutine(const FactoryParams& /*params*/) {
  return [](const eacl::Condition& cond, const RequestContext& ctx,
            EvalServices& services) -> EvalOutcome {
    // Value: glob over watched paths, e.g. "/etc/passwd" or "/etc/*".
    // If the completed operation touched a watched file, raise an alert and
    // trigger the follow-up content check (simulated as an IDS report plus
    // notification).
    std::string watch = std::string(util::Trim(cond.value));
    if (watch.empty()) watch = "*";
    std::vector<std::string> hits;
    for (const auto& path : ctx.stats.files_created) {
      if (util::GlobMatch(watch, path)) hits.push_back(path);
    }
    if (hits.empty()) {
      return EvalOutcome::Yes("no watched files touched");
    }
    std::string joined = util::Join(hits, ",");
    if (services.ids != nullptr) {
      core::IdsReport report;
      report.kind = core::ReportKind::kSuspiciousBehavior;
      report.source_ip = ctx.client_ip.ToString();
      report.object = ctx.object;
      report.attack_type = "integrity:file_modified";
      report.severity = 8;
      report.confidence = 1.0;
      report.detail = "operation touched watched file(s): " + joined;
      services.ids->Report(report);
    }
    if (services.audit != nullptr) {
      services.audit->Record("integrity", "watched file(s) modified: " + joined,
                             telemetry::TraceId(ctx.trace));
    }
    if (services.notifier != nullptr) {
      services.notifier->Notify("sysadmin", "[gaa] integrity alert",
                                "files: " + joined + " by ip=" +
                                    ctx.client_ip.ToString());
    }
    // The condition itself *fails*: a watched critical file was modified.
    return EvalOutcome::No("watched file(s) modified: " + joined);
  };
}

}  // namespace gaa::cond
