// builtin:accessid — identity pre-conditions (USER / GROUP / HOST).
#include "conditions/builtin.h"
#include "conditions/trigger.h"
#include "util/ip.h"
#include "util/strings.h"

namespace gaa::cond {

namespace {

using core::EvalOutcome;
using core::EvalServices;
using core::RequestContext;

EvalOutcome EvalUser(const eacl::Condition& cond, const RequestContext& ctx) {
  // Value: "<authority> <name|*>", e.g. "apache *" (any authenticated user)
  // or "apache alice".
  auto tokens = util::SplitWhitespace(cond.value);
  if (tokens.empty()) {
    return EvalOutcome::No("accessid USER: empty value");
  }
  const std::string& name = tokens.size() >= 2 ? tokens[1] : tokens[0];

  if (!ctx.authenticated) {
    // No credentials yet: the condition cannot be decided.  MAYBE drives the
    // HTTP 401 translation, prompting the client for credentials.
    return EvalOutcome::Unevaluated("no authenticated identity");
  }
  if (name == "*" || name == ctx.user) {
    return EvalOutcome::Yes("user " + ctx.user);
  }
  return EvalOutcome::No("user " + ctx.user + " != " + name);
}

EvalOutcome EvalGroup(const eacl::Condition& cond, const RequestContext& ctx,
                      EvalServices& services) {
  // Value: "<authority> <group>", e.g. "local BadGuys".  Membership is true
  // if the client IP is in the SystemState group (the §7.2 blacklist holds
  // source addresses) or the authenticated identity carries the group.
  auto tokens = util::SplitWhitespace(cond.value);
  if (tokens.empty()) {
    return EvalOutcome::No("accessid GROUP: empty value");
  }
  const std::string& group = tokens.size() >= 2 ? tokens[1] : tokens[0];

  if (services.state != nullptr) {
    if (services.state->GroupContains(group, ctx.client_ip.ToString())) {
      return EvalOutcome::Yes("client " + ctx.client_ip.ToString() + " in " +
                              group);
    }
    if (ctx.authenticated &&
        services.state->GroupContains(group, ctx.user)) {
      return EvalOutcome::Yes("user " + ctx.user + " in " + group);
    }
  }
  if (ctx.InGroup(group)) {
    return EvalOutcome::Yes("identity asserts group " + group);
  }
  return EvalOutcome::No("not a member of " + group);
}

EvalOutcome EvalHost(const eacl::Condition& cond, const RequestContext& ctx) {
  // Value: "<authority> <cidr> [<cidr> ...]" or "<cidr> ...".
  auto tokens = util::SplitWhitespace(cond.value);
  bool any_block = false;
  for (const auto& token : tokens) {
    auto block = util::CidrBlock::Parse(token);
    if (!block.has_value()) continue;  // skip the authority token / garbage
    any_block = true;
    if (block->Contains(ctx.client_ip)) {
      return EvalOutcome::Yes("client in " + block->ToString());
    }
  }
  if (!any_block) {
    return EvalOutcome::No("accessid HOST: no valid CIDR in value");
  }
  return EvalOutcome::No("client " + ctx.client_ip.ToString() +
                         " outside allowed blocks");
}

}  // namespace

core::CondRoutine MakeSpoofingRoutine(const FactoryParams& /*params*/) {
  return [](const eacl::Condition& cond, const RequestContext& ctx,
            EvalServices& services) -> EvalOutcome {
    if (services.ids == nullptr) {
      return EvalOutcome::Unevaluated("no network IDS for spoofing check");
    }
    bool suspected = services.ids->SuspectedSpoofing(ctx.client_ip.ToString());
    bool want_suspected =
        util::Trim(cond.value) == std::string_view("suspected");
    bool holds = want_suspected ? suspected : !suspected;
    std::string detail = "source " + ctx.client_ip.ToString() +
                         (suspected ? " suspected of spoofing"
                                    : " shows no spoofing indication");
    return holds ? EvalOutcome::Yes(detail) : EvalOutcome::No(detail);
  };
}

core::CondRoutine MakeAccessIdRoutine(const FactoryParams& /*params*/) {
  return [](const eacl::Condition& cond, const RequestContext& ctx,
            EvalServices& services) -> EvalOutcome {
    if (cond.def_auth == "USER") return EvalUser(cond, ctx);
    if (cond.def_auth == "GROUP") return EvalGroup(cond, ctx, services);
    if (cond.def_auth == "HOST") return EvalHost(cond, ctx);
    // Unknown identity kind: treat as USER with the full value (covers
    // configs that bind accessid with authority "local").
    return EvalUser(cond, ctx);
  };
}

core::CondTraits AccessIdTraits(const std::string& def_auth) {
  // GROUP reads live SystemState membership (the §7.2 blacklist grows while
  // requests are in flight); USER and HOST depend only on memo-key inputs.
  if (def_auth == "GROUP") return {core::CondPurity::kVolatile};
  return {core::CondPurity::kPure};
}

core::SpecializedCond SpecializeAccessId(const eacl::Condition& cond,
                                         const FactoryParams& /*params*/) {
  if (cond.def_auth == "GROUP") return {};  // live membership: keep generic
  if (cond.def_auth == "HOST") {
    std::vector<util::CidrBlock> blocks;
    for (const auto& token : util::SplitWhitespace(cond.value)) {
      auto block = util::CidrBlock::Parse(token);
      if (block.has_value()) blocks.push_back(*block);
    }
    if (blocks.empty()) {
      return {[](const eacl::Condition&, const RequestContext&,
                 EvalServices&) {
                return EvalOutcome::No("accessid HOST: no valid CIDR in value");
              },
              std::nullopt};
    }
    return {[blocks](const eacl::Condition&, const RequestContext& ctx,
                     EvalServices&) {
              for (const auto& block : blocks) {
                if (block.Contains(ctx.client_ip)) {
                  return EvalOutcome::Yes("client in " + block.ToString());
                }
              }
              return EvalOutcome::No("client " + ctx.client_ip.ToString() +
                                     " outside allowed blocks");
            },
            std::nullopt};
  }
  // USER and unknown identity kinds share EvalUser's semantics.  The empty
  // value check precedes the authentication check, exactly as EvalUser does.
  auto tokens = util::SplitWhitespace(cond.value);
  if (tokens.empty()) {
    return {[](const eacl::Condition&, const RequestContext&, EvalServices&) {
              return EvalOutcome::No("accessid USER: empty value");
            },
            std::nullopt};
  }
  std::string name = tokens.size() >= 2 ? tokens[1] : tokens[0];
  return {[name](const eacl::Condition&, const RequestContext& ctx,
                 EvalServices&) {
            if (!ctx.authenticated) {
              return EvalOutcome::Unevaluated("no authenticated identity");
            }
            if (name == "*" || name == ctx.user) {
              return EvalOutcome::Yes("user " + ctx.user);
            }
            return EvalOutcome::No("user " + ctx.user + " != " + name);
          },
          std::nullopt};
}

}  // namespace gaa::cond
