// Built-in condition-evaluation routines (paper §2, §7 deployments).
//
// Each routine is exposed as a factory in the RoutineCatalog under a
// "builtin:<name>" key; configuration files bind EACL condition types to
// these names (gaa/config.h).  Web masters can add their own factories next
// to these — nothing in the GAA core knows any condition type.
//
// Value syntaxes are documented per factory below.  Numeric and time values
// accept the indirection `var:<name>`, which reads the value from
// SystemState variables at evaluation time — the paper's "adaptive
// constraint specification, since allowable times, locations and thresholds
// can change in the event of possible security attacks" (§2); the variable
// is typically maintained by a host-based IDS (§3).
#pragma once

#include <map>
#include <string>

#include "gaa/registry.h"

namespace gaa::cond {

using FactoryParams = std::map<std::string, std::string>;

/// Register every builtin factory with the catalog, including the compile
/// hooks consumed by the compiled policy engine (DESIGN.md §9): each entry
/// carries a purity classification (memoization gate) and, where the value
/// syntax allows it, a specializer that pre-parses the condition value once
/// at policy-compile time.
void RegisterBuiltinRoutines(core::RoutineCatalog& catalog);

// --- compile hooks (DESIGN.md §9) ------------------------------------------
// Specializers must reproduce the generic routines' outcomes *byte for
// byte* (the differential property test compares traces verbatim); they
// only move the value parsing from request time to compile time.  Each
// returns an empty SpecializedCond when the value needs runtime resolution
// (a "var:" indirection) — the generic routine then stays in place.

/// Purity of builtin:accessid by identity kind: USER and HOST read only
/// memo-key inputs (pure); GROUP reads live SystemState membership
/// (volatile).
core::CondTraits AccessIdTraits(const std::string& def_auth);

core::SpecializedCond SpecializeAccessId(const eacl::Condition& cond,
                                         const FactoryParams& params);
core::SpecializedCond SpecializeTimeWindow(const eacl::Condition& cond,
                                           const FactoryParams& params);
/// A literal CIDR list refines location to kPure (client address is part of
/// the memo key); a "var:" list stays volatile and unspecialized.
core::SpecializedCond SpecializeLocation(const eacl::Condition& cond,
                                         const FactoryParams& params);
core::SpecializedCond SpecializeThreatLevel(const eacl::Condition& cond,
                                            const FactoryParams& params);
core::SpecializedCond SpecializeGlobSignature(const eacl::Condition& cond,
                                              const FactoryParams& params);
core::SpecializedCond SpecializeExpr(const eacl::Condition& cond,
                                     const FactoryParams& params);
core::SpecializedCond SpecializeParamGlob(const eacl::Condition& cond,
                                          const FactoryParams& params);
core::SpecializedCond SpecializeFirewall(const eacl::Condition& cond,
                                         const FactoryParams& params);
core::SpecializedCond SpecializeAudit(const eacl::Condition& cond,
                                      const FactoryParams& params);
core::SpecializedCond SpecializeRecordEvent(const eacl::Condition& cond,
                                            const FactoryParams& params);

/// A ready-made configuration file binding the standard EACL condition
/// types used throughout the paper's examples to the builtins:
///
///   pre_cond_accessid, pre_cond_time, pre_cond_location,
///   pre_cond_system_threat_level, pre_cond_regex, pre_cond_expr,
///   pre_cond_threshold, pre_cond_redirect, rr_cond_notify,
///   rr_cond_update_log, rr_cond_audit, rr_cond_record_event,
///   mid_cond_cpu, mid_cond_wallclock, mid_cond_memory, mid_cond_output,
///   post_cond_log, post_cond_notify, post_cond_check_integrity
std::string DefaultConfigText();

// --- individual factories (exposed for direct registration in tests) ------

/// builtin:accessid — def_auth selects the identity kind:
///   `pre_cond_accessid USER  <authority> <name|*>`  authenticated user check;
///     unauthenticated requests leave the condition unevaluated (=> MAYBE =>
///     HTTP 401, the paper's auth-upgrade path).
///   `pre_cond_accessid GROUP <authority> <group>`   true if the client IP or
///     the authenticated user/groups appear in the SystemState group (the
///     BadGuys blacklist of §7.2 is such a group).
///   `pre_cond_accessid HOST  <authority> <cidr>`    client address check.
core::CondRoutine MakeAccessIdRoutine(const FactoryParams& params);

/// builtin:time_window — value "HH:MM-HH:MM [HH:MM-HH:MM ...]" or
/// "var:<name>"; true if the current time-of-day falls in any window.
core::CondRoutine MakeTimeWindowRoutine(const FactoryParams& params);

/// builtin:location — value "cidr [cidr ...]" or "var:<name>"; true if the
/// client address falls in any listed block.
core::CondRoutine MakeLocationRoutine(const FactoryParams& params);

/// builtin:threat_level — value "<op><level>" with op in {=,!=,<,<=,>,>=}
/// and level in {low,medium,high}; compares the IDS-supplied threat level.
core::CondRoutine MakeThreatLevelRoutine(const FactoryParams& params);

/// builtin:glob_signature — value is one or more whitespace-separated glob
/// signatures ("*phf* *test-cgi*"); true if ANY matches the undecoded
/// request URL (plus query).  On match, reports a detected attack to the
/// IDS channel.  Params: attack_type=<tag> severity=<0..10>.
core::CondRoutine MakeGlobSignatureRoutine(const FactoryParams& params);

/// builtin:expr — value "<field> <op> <number|var:name>"; fields:
/// cgi_input_length, url_length, query_length, slash_count, header_count,
/// or any request Param type carrying a numeric value.
core::CondRoutine MakeExprRoutine(const FactoryParams& params);

/// builtin:threshold — value "<key> <limit> <window_seconds>"; true while
/// the event count for `key` within the window stays BELOW limit.  `%ip`
/// and `%user` in the key expand from the request context.  Exceeding the
/// limit reports a threshold violation to the IDS (§3 item 4).
core::CondRoutine MakeThresholdRoutine(const FactoryParams& params);

/// builtin:redirect — always left unevaluated: the application interprets
/// the value (a URL) when translating GAA_MAYBE (paper §6 step 2d).
core::CondRoutine MakeRedirectRoutine(const FactoryParams& params);

/// builtin:spoofing — consult the network IDS's spoofing oracle (paper §3:
/// "the GAA-API can request a network-based IDS to report ... indications
/// of address spoofing" before applying pro-active countermeasures).
/// Value "clean" (default): true when the source is NOT suspected of
/// spoofing; value "suspected": true when it is.  Unevaluated when no
/// network IDS is wired up.
core::CondRoutine MakeSpoofingRoutine(const FactoryParams& params);

/// builtin:firewall — pre_cond_firewall: false when the client address
/// falls inside any CIDR in the SystemState group named by the value
/// (default "BlockedNets") — the enforcement half of §1's "blocking
/// connections from particular parts of the network".
core::CondRoutine MakeFirewallRoutine(const FactoryParams& params);

/// builtin:block_network — rr_cond_block_network, the response half:
/// "on:<when>/<prefix_len>[/<group>]" adds the client's enclosing /NN to
/// the blocked-networks group.
core::CondRoutine MakeBlockNetworkRoutine(const FactoryParams& params);

/// builtin:set_var — rr_cond_set_var "on:<when>/<name>/<value>"; writes a
/// SystemState variable (supports %ip/%user).  With builtin:var_equals
/// this implements §1's "stopping selected services" as pure policy.
core::CondRoutine MakeSetVarRoutine(const FactoryParams& params);

/// builtin:var_equals — pre_cond_var "<name> <expected>"; an unset
/// variable compares as the literal "unset".
core::CondRoutine MakeVarEqualsRoutine(const FactoryParams& params);

/// builtin:param_glob — pre_cond_param: value "<param_type> <glob>...";
/// true when the named request parameter (e.g. user_agent, url, method —
/// anything the glue classified in §6 step 2b) matches ANY glob.  A
/// missing parameter leaves the condition unevaluated.  Detects e.g.
/// scanner User-Agents ("pre_cond_param local user_agent *Nikto* *nmap*").
core::CondRoutine MakeParamGlobRoutine(const FactoryParams& params);

/// builtin:notify — value "on:<success|failure|any>/<recipient>/info:<tag>";
/// sends through the NotificationService when the trigger matches the
/// request decision (rr) or operation outcome (post).  Fails the condition
/// if delivery fails (an unreachable notifier is a policy failure).
core::CondRoutine MakeNotifyRoutine(const FactoryParams& params);

/// builtin:update_log — value "on:.../<group>/info:<what>"; adds the client
/// address (info:ip) or user (info:user) to a SystemState group — the §7.2
/// BadGuys blacklist update.
core::CondRoutine MakeUpdateLogRoutine(const FactoryParams& params);

/// builtin:audit — value "on:.../<category>"; writes an audit record.
core::CondRoutine MakeAuditRoutine(const FactoryParams& params);

/// builtin:record_event — value "on:.../<key>/<window_seconds>"; records an
/// event for the sliding-window counters (pairs with builtin:threshold).
core::CondRoutine MakeRecordEventRoutine(const FactoryParams& params);

/// builtin:cpu_limit / wallclock_limit / memory_limit / output_limit —
/// mid-conditions comparing OperationStats against "<number|var:name>"
/// (seconds / milliseconds / bytes / bytes).  False aborts the operation.
core::CondRoutine MakeCpuLimitRoutine(const FactoryParams& params);
core::CondRoutine MakeWallclockLimitRoutine(const FactoryParams& params);
core::CondRoutine MakeMemoryLimitRoutine(const FactoryParams& params);
core::CondRoutine MakeOutputLimitRoutine(const FactoryParams& params);

/// builtin:post_log — value "on:<success|failure|any>/<category>"; audit
/// record carrying the operation outcome.
core::CondRoutine MakePostLogRoutine(const FactoryParams& params);

/// builtin:integrity_check — post-condition; value is a glob over paths.
/// If the operation created/modified a matching file, reports suspicious
/// behaviour to the IDS and notifies (the paper's /etc/passwd example, §1).
core::CondRoutine MakeIntegrityCheckRoutine(const FactoryParams& params);

}  // namespace gaa::cond
