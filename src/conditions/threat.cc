// builtin:threat_level — compare the IDS-supplied system threat profile.
#include "conditions/builtin.h"
#include "conditions/trigger.h"
#include "util/strings.h"

namespace gaa::cond {

namespace {
using core::EvalOutcome;
using core::EvalServices;
using core::RequestContext;
using core::ThreatLevel;
}  // namespace

core::CondRoutine MakeThreatLevelRoutine(const FactoryParams& /*params*/) {
  return [](const eacl::Condition& cond, const RequestContext& ctx,
            EvalServices& services) -> EvalOutcome {
    if (services.state == nullptr) {
      // No IDS / state wired up: the threat profile is unknown.
      return EvalOutcome::Unevaluated("no system state; threat level unknown");
    }
    ParsedOp parsed = ParseCmpOp(cond.value);
    auto resolved = ResolveValue(parsed.rest, services.state);
    if (!resolved.has_value()) {
      return EvalOutcome::Unevaluated("threat level variable unset");
    }
    auto target = core::ParseThreatLevel(*resolved);
    if (!target.has_value()) {
      return EvalOutcome::No("bad threat level literal '" + *resolved + "'");
    }
    // The request's namespace governs which threat profile applies: a
    // per-tenant override scopes an escalation to that tenant alone
    // (EffectiveThreatLevel("") is exactly the global level).
    ThreatLevel current = services.state->EffectiveThreatLevel(ctx.tenant);
    bool holds = CompareInts(static_cast<int>(current), parsed.op,
                             static_cast<int>(*target));
    std::string detail = std::string("threat level ") +
                         core::ThreatLevelName(current) + " vs " +
                         core::ThreatLevelName(*target);
    return holds ? EvalOutcome::Yes(detail) : EvalOutcome::No(detail);
  };
}

core::SpecializedCond SpecializeThreatLevel(const eacl::Condition& cond,
                                            const FactoryParams& /*params*/) {
  // ParseCmpOp is pure, so hoisting it to compile time is unobservable; the
  // no-system-state check must stay first at runtime, as in the generic
  // routine.
  ParsedOp parsed = ParseCmpOp(cond.value);
  if (util::StartsWith(parsed.rest, "var:")) return {};  // runtime indirection
  auto target = core::ParseThreatLevel(parsed.rest);
  if (!target.has_value()) {
    std::string rest = parsed.rest;
    return {[rest](const eacl::Condition&, const RequestContext&,
                   EvalServices& services) {
              if (services.state == nullptr) {
                return EvalOutcome::Unevaluated(
                    "no system state; threat level unknown");
              }
              return EvalOutcome::No("bad threat level literal '" + rest +
                                     "'");
            },
            std::nullopt};
  }
  CmpOp op = parsed.op;
  ThreatLevel want = *target;
  // A literal comparison reads only the threat level beyond the memo key,
  // so it refines to kThreatFenced: memoizable behind the SystemState
  // threat-epoch fence (a level transition invalidates the entry; the
  // per-tenant fence is TenantThreatEpoch, matching the tenant-scoped read
  // here).  The "var:" form above stays at the registered volatile purity.
  return {[op, want](const eacl::Condition&, const RequestContext& ctx,
                     EvalServices& services) {
            if (services.state == nullptr) {
              return EvalOutcome::Unevaluated(
                  "no system state; threat level unknown");
            }
            ThreatLevel current =
                services.state->EffectiveThreatLevel(ctx.tenant);
            bool holds = CompareInts(static_cast<int>(current), op,
                                     static_cast<int>(want));
            std::string detail = std::string("threat level ") +
                                 core::ThreatLevelName(current) + " vs " +
                                 core::ThreatLevelName(want);
            return holds ? EvalOutcome::Yes(detail) : EvalOutcome::No(detail);
          },
          core::CondPurity::kThreatFenced};
}

}  // namespace gaa::cond
