// builtin:threat_level — compare the IDS-supplied system threat profile.
#include "conditions/builtin.h"
#include "conditions/trigger.h"
#include "util/strings.h"

namespace gaa::cond {

namespace {
using core::EvalOutcome;
using core::EvalServices;
using core::RequestContext;
using core::ThreatLevel;
}  // namespace

core::CondRoutine MakeThreatLevelRoutine(const FactoryParams& /*params*/) {
  return [](const eacl::Condition& cond, const RequestContext& /*ctx*/,
            EvalServices& services) -> EvalOutcome {
    if (services.state == nullptr) {
      // No IDS / state wired up: the threat profile is unknown.
      return EvalOutcome::Unevaluated("no system state; threat level unknown");
    }
    ParsedOp parsed = ParseCmpOp(cond.value);
    auto resolved = ResolveValue(parsed.rest, services.state);
    if (!resolved.has_value()) {
      return EvalOutcome::Unevaluated("threat level variable unset");
    }
    auto target = core::ParseThreatLevel(*resolved);
    if (!target.has_value()) {
      return EvalOutcome::No("bad threat level literal '" + *resolved + "'");
    }
    ThreatLevel current = services.state->threat_level();
    bool holds = CompareInts(static_cast<int>(current), parsed.op,
                             static_cast<int>(*target));
    std::string detail = std::string("threat level ") +
                         core::ThreatLevelName(current) + " vs " +
                         core::ThreatLevelName(*target);
    return holds ? EvalOutcome::Yes(detail) : EvalOutcome::No(detail);
  };
}

}  // namespace gaa::cond
