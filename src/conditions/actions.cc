// Action conditions: builtin:notify, builtin:update_log, builtin:audit,
// builtin:record_event.  These implement the paper's intrusion *response*
// capabilities (§1: generating audit records, notifying, tightening
// policies by blacklist update).
//
// Each action condition carries an "on:success / on:failure / on:any"
// trigger.  In a request-result block the outcome tested is whether the
// authorization request was granted; in a post block it is whether the
// operation succeeded.
#include "conditions/builtin.h"
#include "conditions/trigger.h"
#include "telemetry/trace.h"
#include "util/strings.h"

namespace gaa::cond {

namespace {

using core::EvalOutcome;
using core::EvalServices;
using core::RequestContext;

/// Outcome the trigger tests: request decision if set (rr block), else the
/// operation result (post block).
bool SuccessOutcome(const RequestContext& ctx) {
  if (ctx.request_granted.has_value()) return *ctx.request_granted;
  return ctx.stats.succeeded;
}

}  // namespace

core::CondRoutine MakeNotifyRoutine(const FactoryParams& params) {
  // Optional params: recipient.<name>=<address> aliases.
  std::map<std::string, std::string> aliases;
  for (const auto& [k, v] : params) {
    if (util::StartsWith(k, "recipient.")) {
      aliases[k.substr(std::string("recipient.").size())] = v;
    }
  }
  return [aliases](const eacl::Condition& cond, const RequestContext& ctx,
                   EvalServices& services) -> EvalOutcome {
    // Value: "on:<when>/<recipient>/info:<tag>".
    ParsedTrigger parsed = ParseTrigger(cond.value);
    if (!TriggerFires(parsed.trigger, SuccessOutcome(ctx))) {
      return EvalOutcome::Yes("notify not triggered");
    }
    auto segments = util::Split(parsed.rest, '/');
    std::string recipient = segments.empty() ? "sysadmin" : segments[0];
    if (auto it = aliases.find(recipient); it != aliases.end()) {
      recipient = it->second;
    }
    std::string tag = "event";
    for (const auto& segment : segments) {
      if (util::StartsWith(segment, "info:")) tag = segment.substr(5);
    }
    if (services.notifier == nullptr) {
      return EvalOutcome::No("notify: no notification service");
    }
    std::string subject = "[gaa] " + tag;
    std::string body = "time=" +
                       (services.clock != nullptr
                            ? util::FormatTimestamp(services.clock->Now())
                            : std::string("?")) +
                       " ip=" + ctx.client_ip.ToString() +
                       " url=" + (ctx.raw_url.empty() ? ctx.object : ctx.raw_url) +
                       " threat=" + tag;
    bool delivered = services.notifier->Notify(recipient, subject, body);
    return delivered ? EvalOutcome::Yes("notified " + recipient)
                     : EvalOutcome::No("notification to " + recipient +
                                       " failed");
  };
}

core::CondRoutine MakeUpdateLogRoutine(const FactoryParams& params) {
  // check_spoofing=true: consult the network IDS before the pro-active
  // countermeasure (paper §3) — an intruder impersonating a victim host
  // must not be able to get that host blacklisted (§1: "an automated
  // response to attacks can be used by an intruder in order to stage a
  // DoS").
  bool check_spoofing = false;
  if (auto it = params.find("check_spoofing"); it != params.end()) {
    check_spoofing = it->second == "true" || it->second == "1";
  }
  return [check_spoofing](const eacl::Condition& cond,
                          const RequestContext& ctx,
                          EvalServices& services) -> EvalOutcome {
    // Value: "on:<when>/<group>/info:<ip|user>".
    ParsedTrigger parsed = ParseTrigger(cond.value);
    if (!TriggerFires(parsed.trigger, SuccessOutcome(ctx))) {
      return EvalOutcome::Yes("update_log not triggered");
    }
    if (services.state == nullptr) {
      return EvalOutcome::No("update_log: no system state");
    }
    if (check_spoofing && services.ids != nullptr &&
        services.ids->SuspectedSpoofing(ctx.client_ip.ToString())) {
      if (services.audit != nullptr) {
        services.audit->Record(
            "blacklist",
            "SKIPPED " + ctx.client_ip.ToString() +
                ": network IDS suspects address spoofing",
            telemetry::TraceId(ctx.trace));
      }
      return EvalOutcome::Yes("spoofing suspected; no blacklist update");
    }
    auto segments = util::Split(parsed.rest, '/');
    if (segments.empty() || segments[0].empty()) {
      return EvalOutcome::No("update_log: missing group");
    }
    const std::string& group = segments[0];
    std::string what = "ip";
    for (const auto& segment : segments) {
      if (util::StartsWith(segment, "info:")) what = segment.substr(5);
    }
    std::string member = what == "user"
                             ? (ctx.user.empty() ? "anonymous" : ctx.user)
                             : ctx.client_ip.ToString();
    services.state->AddGroupMember(group, member);
    if (services.audit != nullptr) {
      services.audit->Record("blacklist",
                             "added " + member + " to group " + group,
                             telemetry::TraceId(ctx.trace));
    }
    return EvalOutcome::Yes("added " + member + " to " + group);
  };
}

core::CondRoutine MakeAuditRoutine(const FactoryParams& /*params*/) {
  return [](const eacl::Condition& cond, const RequestContext& ctx,
            EvalServices& services) -> EvalOutcome {
    // Value: "on:<when>/<category>".
    ParsedTrigger parsed = ParseTrigger(cond.value);
    if (!TriggerFires(parsed.trigger, SuccessOutcome(ctx))) {
      return EvalOutcome::Yes("audit not triggered");
    }
    if (services.audit == nullptr) {
      return EvalOutcome::No("audit: no audit sink");
    }
    std::string category = parsed.rest.empty() ? "access" : parsed.rest;
    bool granted = ctx.request_granted.value_or(ctx.stats.succeeded);
    services.audit->Record(
        category,
        std::string(granted ? "GRANT" : "DENY") + " ip=" +
            ctx.client_ip.ToString() + " user=" +
            (ctx.user.empty() ? "-" : ctx.user) + " op=" + ctx.operation +
            " object=" + ctx.object,
        telemetry::TraceId(ctx.trace));
    return EvalOutcome::Yes("audited " + category);
  };
}

core::CondRoutine MakeRecordEventRoutine(const FactoryParams& /*params*/) {
  return [](const eacl::Condition& cond, const RequestContext& ctx,
            EvalServices& services) -> EvalOutcome {
    // Value: "on:<when>/<key>/<window_seconds>".
    ParsedTrigger parsed = ParseTrigger(cond.value);
    if (!TriggerFires(parsed.trigger, SuccessOutcome(ctx))) {
      return EvalOutcome::Yes("record_event not triggered");
    }
    if (services.state == nullptr) {
      return EvalOutcome::No("record_event: no system state");
    }
    auto segments = util::Split(parsed.rest, '/');
    if (segments.empty() || segments[0].empty()) {
      return EvalOutcome::No("record_event: missing key");
    }
    std::string key = ExpandPlaceholders(segments[0], ctx);
    std::int64_t window_s = 60;
    if (segments.size() >= 2) {
      if (auto w = util::ParseInt(segments[1]); w && *w > 0) window_s = *w;
    }
    services.state->RecordEvent(key, window_s * util::kMicrosPerSecond);
    return EvalOutcome::Yes("recorded event " + key);
  };
}

core::SpecializedCond SpecializeAudit(const eacl::Condition& cond,
                                      const FactoryParams& /*params*/) {
  // Trigger and category parse once at compile time; the audit record (the
  // effect — hence kEffect, never memoized) is emitted on every request.
  ParsedTrigger parsed = ParseTrigger(cond.value);
  Trigger trigger = parsed.trigger;
  std::string category = parsed.rest.empty() ? "access" : parsed.rest;
  return {[trigger, category](const eacl::Condition&,
                              const RequestContext& ctx,
                              EvalServices& services) {
            if (!TriggerFires(trigger, SuccessOutcome(ctx))) {
              return EvalOutcome::Yes("audit not triggered");
            }
            if (services.audit == nullptr) {
              return EvalOutcome::No("audit: no audit sink");
            }
            bool granted = ctx.request_granted.value_or(ctx.stats.succeeded);
            services.audit->Record(
                category,
                std::string(granted ? "GRANT" : "DENY") + " ip=" +
                    ctx.client_ip.ToString() + " user=" +
                    (ctx.user.empty() ? "-" : ctx.user) + " op=" +
                    ctx.operation + " object=" + ctx.object,
                telemetry::TraceId(ctx.trace));
            return EvalOutcome::Yes("audited " + category);
          },
          std::nullopt};
}

core::SpecializedCond SpecializeRecordEvent(const eacl::Condition& cond,
                                            const FactoryParams& /*params*/) {
  ParsedTrigger parsed = ParseTrigger(cond.value);
  Trigger trigger = parsed.trigger;
  auto segments = util::Split(parsed.rest, '/');
  bool missing_key = segments.empty() || segments[0].empty();
  std::string key_template = missing_key ? std::string() : segments[0];
  std::int64_t window_s = 60;
  if (segments.size() >= 2) {
    if (auto w = util::ParseInt(segments[1]); w && *w > 0) window_s = *w;
  }
  // The trigger and state checks keep the generic routine's order; only the
  // %ip/%user expansion remains per-request.
  return {[trigger, missing_key, key_template, window_s](
              const eacl::Condition&, const RequestContext& ctx,
              EvalServices& services) {
            if (!TriggerFires(trigger, SuccessOutcome(ctx))) {
              return EvalOutcome::Yes("record_event not triggered");
            }
            if (services.state == nullptr) {
              return EvalOutcome::No("record_event: no system state");
            }
            if (missing_key) {
              return EvalOutcome::No("record_event: missing key");
            }
            std::string key = ExpandPlaceholders(key_template, ctx);
            services.state->RecordEvent(key,
                                        window_s * util::kMicrosPerSecond);
            return EvalOutcome::Yes("recorded event " + key);
          },
          std::nullopt};
}

}  // namespace gaa::cond
