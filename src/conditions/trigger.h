// Shared helpers for condition-value parsing: "on:<when>/..." triggers and
// the `var:<name>` SystemState indirection.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "gaa/context.h"
#include "gaa/system_state.h"

namespace gaa::cond {

/// When an action-condition fires.
enum class Trigger { kOnSuccess, kOnFailure, kOnAny };

/// Parse "on:success/rest", "on:failure/rest" or "on:any/rest".  A value
/// without an "on:" prefix means kOnAny with the whole value as rest.
struct ParsedTrigger {
  Trigger trigger = Trigger::kOnAny;
  std::string rest;  ///< the value after the trigger segment
};
ParsedTrigger ParseTrigger(std::string_view value);

/// Whether a trigger fires for an outcome (request granted / op succeeded).
bool TriggerFires(Trigger trigger, bool success_outcome);

/// Resolve "var:<name>" through SystemState; plain values pass through.
/// Returns nullopt when the variable is unset (condition left unevaluated).
std::optional<std::string> ResolveValue(std::string_view value,
                                        const core::SystemState* state);

/// Expand "%ip" and "%user" placeholders from the request context.
std::string ExpandPlaceholders(std::string_view text,
                               const core::RequestContext& ctx);

/// Comparison operators for numeric/level conditions.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Parse a leading comparison operator; defaults to kEq when absent.
/// Returns the operator and the remainder of the string.
struct ParsedOp {
  CmpOp op = CmpOp::kEq;
  std::string rest;
};
ParsedOp ParseCmpOp(std::string_view s);

bool CompareInts(std::int64_t lhs, CmpOp op, std::int64_t rhs);
bool CompareDoubles(double lhs, CmpOp op, double rhs);

}  // namespace gaa::cond
