// Network-level countermeasures (paper §1: "blocking connections from
// particular parts of the network or stopping selected services").
//
//   builtin:firewall      pre_cond_firewall — fails when the client falls
//                         in any CIDR recorded in the SystemState group
//                         named by the value (default "BlockedNets").
//   builtin:block_network rr_cond_block_network — response action: add the
//                         client's enclosing /NN to that group.
//                         Value "on:<when>/<prefix_len>[/<group>]".
//   builtin:set_var       rr_cond_set_var — response action: write a
//                         SystemState variable.  Value
//                         "on:<when>/<name>/<value>"; with var-gated
//                         pre-conditions this implements "stopping
//                         selected services" (e.g. service.sshd.disabled).
//   builtin:var_equals    pre_cond_var — value "<name> <expected>"; true
//                         when the variable holds the expected value (an
//                         unset variable compares as "unset").
#include "conditions/builtin.h"
#include "conditions/trigger.h"
#include "telemetry/trace.h"
#include "util/ip.h"
#include "util/strings.h"

namespace gaa::cond {

namespace {

using core::EvalOutcome;
using core::EvalServices;
using core::RequestContext;

bool SuccessOutcome(const RequestContext& ctx) {
  if (ctx.request_granted.has_value()) return *ctx.request_granted;
  return ctx.stats.succeeded;
}

}  // namespace

core::CondRoutine MakeFirewallRoutine(const FactoryParams& /*params*/) {
  return [](const eacl::Condition& cond, const RequestContext& ctx,
            EvalServices& services) -> EvalOutcome {
    if (services.state == nullptr) {
      return EvalOutcome::Unevaluated("firewall: no system state");
    }
    std::string group = std::string(util::Trim(cond.value));
    if (group.empty()) group = "BlockedNets";
    for (const auto& member : services.state->GroupMembers(group)) {
      auto block = util::CidrBlock::Parse(member);
      if (block.has_value() && block->Contains(ctx.client_ip)) {
        return EvalOutcome::No("client " + ctx.client_ip.ToString() +
                               " inside blocked network " + member);
      }
    }
    return EvalOutcome::Yes("client outside all blocked networks");
  };
}

core::SpecializedCond SpecializeFirewall(const eacl::Condition& cond,
                                         const FactoryParams& /*params*/) {
  // Only the group-name defaulting moves to compile time; membership is read
  // live on every request (no purity refinement — the blocked-networks group
  // grows while requests are in flight).
  std::string group(util::Trim(cond.value));
  if (group.empty()) group = "BlockedNets";
  return {[group](const eacl::Condition&, const RequestContext& ctx,
                  EvalServices& services) {
            if (services.state == nullptr) {
              return EvalOutcome::Unevaluated("firewall: no system state");
            }
            for (const auto& member : services.state->GroupMembers(group)) {
              auto block = util::CidrBlock::Parse(member);
              if (block.has_value() && block->Contains(ctx.client_ip)) {
                return EvalOutcome::No("client " + ctx.client_ip.ToString() +
                                       " inside blocked network " + member);
              }
            }
            return EvalOutcome::Yes("client outside all blocked networks");
          },
          std::nullopt};
}

core::CondRoutine MakeBlockNetworkRoutine(const FactoryParams& /*params*/) {
  return [](const eacl::Condition& cond, const RequestContext& ctx,
            EvalServices& services) -> EvalOutcome {
    // Value: "on:<when>/<prefix_len>[/<group>]".
    ParsedTrigger parsed = ParseTrigger(cond.value);
    if (!TriggerFires(parsed.trigger, SuccessOutcome(ctx))) {
      return EvalOutcome::Yes("block_network not triggered");
    }
    if (services.state == nullptr) {
      return EvalOutcome::No("block_network: no system state");
    }
    auto segments = util::Split(parsed.rest, '/');
    int prefix_len = 24;
    if (!segments.empty()) {
      if (auto p = util::ParseInt(segments[0]); p && *p >= 0 && *p <= 32) {
        prefix_len = static_cast<int>(*p);
      } else {
        return EvalOutcome::No("block_network: bad prefix length '" +
                               (segments.empty() ? "" : segments[0]) + "'");
      }
    }
    std::string group = segments.size() >= 2 && !segments[1].empty()
                            ? segments[1]
                            : "BlockedNets";
    util::CidrBlock block(ctx.client_ip, prefix_len);
    services.state->AddGroupMember(group, block.ToString());
    if (services.audit != nullptr) {
      services.audit->Record(
          "firewall", "blocked network " + block.ToString() + " in group " +
                          group,
          telemetry::TraceId(ctx.trace));
    }
    return EvalOutcome::Yes("blocked " + block.ToString());
  };
}

core::CondRoutine MakeSetVarRoutine(const FactoryParams& /*params*/) {
  return [](const eacl::Condition& cond, const RequestContext& ctx,
            EvalServices& services) -> EvalOutcome {
    // Value: "on:<when>/<name>/<value>".
    ParsedTrigger parsed = ParseTrigger(cond.value);
    if (!TriggerFires(parsed.trigger, SuccessOutcome(ctx))) {
      return EvalOutcome::Yes("set_var not triggered");
    }
    if (services.state == nullptr) {
      return EvalOutcome::No("set_var: no system state");
    }
    auto slash = parsed.rest.find('/');
    if (slash == std::string::npos || slash == 0) {
      return EvalOutcome::No("set_var: want <name>/<value>");
    }
    std::string name = parsed.rest.substr(0, slash);
    std::string value = ExpandPlaceholders(parsed.rest.substr(slash + 1), ctx);
    services.state->SetVariable(name, value);
    if (services.audit != nullptr) {
      services.audit->Record("policy_var", name + " = " + value,
                             telemetry::TraceId(ctx.trace));
    }
    return EvalOutcome::Yes("set " + name + " = " + value);
  };
}

core::CondRoutine MakeVarEqualsRoutine(const FactoryParams& /*params*/) {
  return [](const eacl::Condition& cond, const RequestContext& /*ctx*/,
            EvalServices& services) -> EvalOutcome {
    if (services.state == nullptr) {
      return EvalOutcome::Unevaluated("var: no system state");
    }
    auto tokens = util::SplitWhitespace(cond.value);
    if (tokens.empty()) return EvalOutcome::No("var: empty value");
    std::string expected = tokens.size() >= 2 ? tokens[1] : "unset";
    auto actual = services.state->GetVariable(tokens[0]);
    std::string actual_str = actual.value_or("unset");
    bool holds = actual_str == expected;
    std::string detail = tokens[0] + " = " + actual_str + " (want " +
                         expected + ")";
    return holds ? EvalOutcome::Yes(detail) : EvalOutcome::No(detail);
  };
}

}  // namespace gaa::cond
