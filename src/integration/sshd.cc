#include "integration/sshd.h"

namespace gaa::web {

SshDaemon::SshDaemon(core::GaaApi* api, http::HtpasswdRegistry* passwords,
                     Options options)
    : api_(api), passwords_(passwords), options_(std::move(options)) {}

void SshDaemon::AddUser(const std::string& user, const std::string& password) {
  passwords_->GetOrCreate(options_.auth_user_file).SetUser(user, password);
}

SshDaemon::LoginResult SshDaemon::Login(const std::string& user,
                                        const std::string& password,
                                        const std::string& client_ip) {
  auto addr = util::Ipv4Address::Parse(client_ip).value_or(util::Ipv4Address(0));

  core::RequestContext ctx;
  ctx.application = options_.application;
  ctx.operation = "login";
  ctx.object = options_.login_object;
  ctx.client_ip = addr;
  ctx.AddParam("client_ip", options_.application, addr.ToString());

  const http::HtpasswdStore* store = passwords_->Find(options_.auth_user_file);
  bool password_ok = store != nullptr && store->Check(user, password);
  if (password_ok) {
    ctx.authenticated = true;
    ctx.user = user;
  } else if (api_->services().state != nullptr) {
    // Failed login → sliding-window counter (password-guessing threshold
    // conditions, §3 item 4).
    api_->services().state->RecordEvent(
        "failed_auth:" + addr.ToString(),
        static_cast<util::DurationUs>(options_.failed_auth_window_s) *
            util::kMicrosPerSecond);
  }

  core::RequestedRight right{options_.application, "login"};
  core::AuthzResult authz = api_->Authorize(options_.login_object, right, ctx);

  if (authz.status == util::Tristate::kNo) {
    ++denied_;
    return LoginResult::kDenied;
  }
  if (authz.status == util::Tristate::kMaybe) {
    // Typically: identity condition unevaluated because the password check
    // failed — the daemon asks for credentials again.
    if (!password_ok) {
      ++bad_credentials_;
      return LoginResult::kBadCredentials;
    }
    return LoginResult::kMoreCredentials;
  }
  if (!password_ok) {
    ++bad_credentials_;
    return LoginResult::kBadCredentials;
  }
  ++accepted_;
  return LoginResult::kAccepted;
}

const char* LoginResultName(SshDaemon::LoginResult result) {
  switch (result) {
    case SshDaemon::LoginResult::kAccepted:
      return "accepted";
    case SshDaemon::LoginResult::kBadCredentials:
      return "bad_credentials";
    case SshDaemon::LoginResult::kDenied:
      return "denied";
    case SshDaemon::LoginResult::kMoreCredentials:
      return "more_credentials";
  }
  return "?";
}

}  // namespace gaa::web
