// Connection-layer telemetry for adaptive policies.
//
// The TcpServer exports its counters (accepted, reused, timed out, shed,
// rejected, active) through a stats hook; this adapter publishes them as
// SystemState variables and as the system load metric.  Policies then
// consult transport-level pressure exactly like any other adaptive input —
// `var:` indirection in pre-conditions (e.g. tightening thresholds while
// connections are being shed) and the load-sensitive conditions the paper
// motivates in §2 ("allowable ... thresholds can change in the event of
// possible security attacks").
//
// Published variables (prefix configurable, default "tcp."):
//   tcp.accepted  tcp.reused  tcp.timed_out  tcp.shed  tcp.rejected
//   tcp.requests  tcp.inline_served  tcp.active  tcp.shards
// plus SystemState::SetSystemLoad(active / max_connections).
//
// When a MetricRegistry is supplied, the same counters are mirrored as
// gauges `tcp_accepted` .. `tcp_active` so /__status exposes transport
// pressure alongside the request pipeline metrics.
#pragma once

#include <string>

#include "gaa/system_state.h"
#include "http/tcp_server.h"
#include "telemetry/metrics.h"

namespace gaa::web {

/// Build a stats hook that publishes counters into `state` and, when
/// `metrics` is non-null, into gauge metrics named after the variables
/// (prefix dots become underscores in metric names).
/// `load_capacity` scales the active-connection count into the [0,1]-ish
/// system-load metric; pass the server's max_connections (0 disables the
/// load export).
http::TcpServer::StatsHook MakeConnectionStatsHook(
    core::SystemState* state, std::string prefix = "tcp.",
    double load_capacity = 0.0,
    telemetry::MetricRegistry* metrics = nullptr);

/// Convenience: install the hook on `tcp`, deriving the load capacity from
/// its options.  Call before TcpServer::Start().  Metrics go into the
/// web server's registry when `metrics` is non-null.
void WireConnectionStats(http::TcpServer& tcp, core::SystemState* state,
                         std::string prefix = "tcp.",
                         telemetry::MetricRegistry* metrics = nullptr);

}  // namespace gaa::web
