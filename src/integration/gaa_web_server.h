// GaaWebServer: the one-stop facade wiring every subsystem together —
// clock, shared system state, IDS, audit log, notification service, policy
// store, GAA-API, document tree, credential stores and the web server with
// the GAA-backed access controller.  Examples, scenario tests and the
// benchmark harness all build on this.
//
//   GaaWebServer server(http::DocTree::DemoSite(), options);
//   server.AddUser("alice", "wonder");
//   server.AddSystemPolicy(...);            // eacl_mode narrow ...
//   server.SetLocalPolicy("/", ...);        // per-directory EACLs
//   auto response = server.Get("/index.html", "10.1.2.3");
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "audit/audit_log.h"
#include "audit/notification.h"
#include "gaa/api.h"
#include "gaa/policy_store.h"
#include "gaa/system_state.h"
#include "http/doc_tree.h"
#include "http/server.h"
#include "ids/ids.h"
#include "integration/gaa_controller.h"
#include "telemetry/telemetry.h"
#include "telemetry/watchdog.h"
#include "util/clock.h"

namespace gaa::http {
class TcpServer;
}  // namespace gaa::http

namespace gaa::web {

class GaaWebServer {
 public:
  struct Options {
    /// false: deterministic SimulatedClock (tests); true: wall clock
    /// (benchmarks measuring real latency).
    bool use_real_clock = false;
    /// Per-notification blocking latency of the simulated SMTP hand-off.
    util::DurationUs notification_latency_us = 47'000;
    /// Deliver notifications from a background thread instead of blocking
    /// the request path (ablation of the paper's synchronous-notification
    /// cost — the 80 % overhead of §8 is an artifact of blocking delivery).
    bool asynchronous_notification = false;
    /// Policy cache (paper §9 future work; ablation A1).  Only consulted by
    /// the *interpreted* pipeline — the compiled engine supersedes it.
    bool enable_policy_cache = false;
    std::size_t policy_cache_capacity = 256;
    /// Compiled policy engine (DESIGN.md §9): evaluate the immutable IR
    /// published by the policy store instead of interpreting the AST.
    /// Environment override: GAA_COMPILED_ENGINE (0/1).
    bool enable_compiled_engine = true;
    /// Decision memoization on top of the compiled engine.  Environment
    /// override: GAA_DECISION_CACHE (0/1).
    bool enable_decision_cache = true;
    /// Forwarded to the GAA access controller.
    GaaAccessController::Options controller;
    /// Escalation thresholds for the embedded IDS threat service.  Raise
    /// the scores to effectively pin the threat level (the paper's §8
    /// measurement ran against a static threat profile).
    ids::ThreatService::Options threat;
    /// Extra GAA configuration appended to the builtin default bindings.
    std::string extra_config;
    /// Wire the shared telemetry bundle through every component (metrics
    /// registry + request tracing + /__status).  Off = the bench baseline:
    /// the web server runs with telemetry detached entirely.
    bool enable_telemetry = true;

    /// Tracer sizing knobs.  Environment overrides (applied on top of
    /// whatever the config sets): GAA_TRACE_RING, GAA_TRACE_SAMPLE_PERIOD,
    /// GAA_TRACE_PINNED.
    struct TelemetryTuning {
      std::size_t trace_ring_capacity = telemetry::Tracer::kDefaultCapacity;
      std::uint64_t trace_sample_period = 1;  ///< trace 1-in-N (0 disables)
      std::size_t pinned_slow_traces =
          telemetry::Tracer::kDefaultPinnedCapacity;
    };
    TelemetryTuning tuning;

    /// Structured JSONL audit stream (async file mirror of the audit log).
    /// Environment overrides: GAA_AUDIT_STREAM (path; enables),
    /// GAA_AUDIT_ROTATE_BYTES, GAA_AUDIT_FSYNC (0/1).
    struct AuditStreamOptions {
      std::string path;  ///< "" = no stream
      std::size_t queue_capacity = 4096;
      std::size_t rotate_bytes = 8 * 1024 * 1024;
      int max_rotated_files = 3;
      bool fsync_each_write = false;
    };
    AuditStreamOptions audit_stream;

    /// Slow-request watchdog.  Environment override:
    /// GAA_WATCHDOG_DEADLINE_MS (> 0 enables, 0 disables).
    struct WatchdogOptions {
      bool enabled = false;
      std::int64_t deadline_ms = 1000;
      std::int64_t poll_interval_ms = 100;
      /// Also report flagged requests to the IDS as suspicious behaviour
      /// (§3 item 6: resource-exhaustion shows up as slow requests).
      bool report_to_ids = true;
    };
    WatchdogOptions watchdog;

    /// Forwarded verbatim to the embedded http::WebServer (parse limits,
    /// access-log ring size, static content plane on/off, ...).
    http::WebServer::Options http;
  };

  explicit GaaWebServer(http::DocTree tree) : GaaWebServer(std::move(tree), Options{}) {}
  GaaWebServer(http::DocTree tree, Options options);

  GaaWebServer(const GaaWebServer&) = delete;
  GaaWebServer& operator=(const GaaWebServer&) = delete;

  // --- policy management -----------------------------------------------------
  util::VoidResult AddSystemPolicy(const std::string& eacl_text);
  util::VoidResult SetLocalPolicy(const std::string& dir_prefix,
                                  const std::string& eacl_text);

  // --- tenants (DESIGN.md §14) -------------------------------------------------
  /// Create tenant `name`'s policy namespace (idempotent) and, when `host`
  /// is non-empty, route that Host header (normalized) to it.  `doc_root`
  /// places the tenant's documents under a subtree of the shared DocTree.
  /// Host routes must be registered before serving starts — the router is
  /// immutable once requests flow.
  util::VoidResult AddTenant(const std::string& name,
                             const std::string& host = {},
                             const std::string& doc_root = {});
  util::VoidResult AddTenantSystemPolicy(const std::string& tenant,
                                         const std::string& eacl_text);
  util::VoidResult SetTenantLocalPolicy(const std::string& tenant,
                                        const std::string& dir_prefix,
                                        const std::string& eacl_text);
  /// What to do with a Host no tenant claims (default: the "" namespace).
  void set_unknown_host_policy(http::TenantRouter::UnknownHostPolicy policy) {
    tenant_router_.set_unknown_host_policy(policy);
  }
  http::TenantRouter& tenant_router() { return tenant_router_; }

  /// The "<status_path>/tenants" JSON: per-tenant snapshot versions and
  /// policy counts plus the shared IR store's dedup statistics.
  std::string RenderTenantsJson() const;

  // --- credentials -------------------------------------------------------------
  void AddUser(const std::string& user, const std::string& password);

  // --- request entry points ----------------------------------------------------
  /// GET `target` from `client_ip`, optionally with Basic credentials.
  http::HttpResponse Get(
      const std::string& target, const std::string& client_ip,
      const std::optional<std::pair<std::string, std::string>>& credentials =
          std::nullopt);

  /// Raw request text (exercises the parser / ill-formed reporting path).
  http::HttpResponse HandleText(const std::string& raw,
                                const std::string& client_ip);

  /// Drive periodic IDS maintenance (threat decay under idle traffic,
  /// sketch window aging, adaptive-threshold refresh) from the transport's
  /// shard timer wheel.  Call before `transport->Start()`; the transport's
  /// Options::tick_interval_ms must be non-zero for ticks to fire.
  void WireIdsTick(http::TcpServer* transport);

  // --- component access ---------------------------------------------------------
  util::Clock& clock() { return *clock_; }
  util::SimulatedClock* sim_clock() { return sim_clock_.get(); }
  core::SystemState& state() { return *state_; }
  ids::IntrusionDetectionSystem& ids() { return *ids_; }
  audit::AuditLog& audit_log() { return *audit_; }
  audit::SimulatedSmtpNotifier& notifier() { return *notifier_; }
  /// Non-null only when Options::asynchronous_notification is set.
  audit::QueuedNotifier* queued_notifier() { return queued_notifier_.get(); }
  core::PolicyStore& policy_store() { return store_; }
  core::GaaApi& api() { return *api_; }
  http::WebServer& server() { return *server_; }
  http::DocTree& tree() { return tree_; }
  http::HtpasswdRegistry& passwords() { return passwords_; }
  GaaAccessController& controller() { return *controller_; }
  /// The shared telemetry bundle (all components report here); valid even
  /// when Options::enable_telemetry is false, just disconnected.
  telemetry::Telemetry& telemetry() { return telemetry_; }
  /// Non-null only when Options::watchdog.enabled (or the env override).
  telemetry::SlowRequestWatchdog* watchdog() { return watchdog_.get(); }

 private:
  /// Declared before every component so it outlives all metric handles.
  telemetry::Telemetry telemetry_;
  http::DocTree tree_;
  Options options_;
  std::unique_ptr<util::SimulatedClock> sim_clock_;  // null when real clock
  util::Clock* clock_;
  std::unique_ptr<core::SystemState> state_;
  std::unique_ptr<ids::IntrusionDetectionSystem> ids_;
  std::unique_ptr<audit::AuditLog> audit_;
  std::unique_ptr<audit::SimulatedSmtpNotifier> notifier_;
  std::unique_ptr<audit::QueuedNotifier> queued_notifier_;
  core::PolicyStore store_;
  std::unique_ptr<core::GaaApi> api_;
  http::HtpasswdRegistry passwords_;
  std::unique_ptr<GaaAccessController> controller_;
  /// Host → tenant routes; wired into server_ and shared with the
  /// transport's fast-path tiers.  Configure before serving starts.
  http::TenantRouter tenant_router_;
  std::unique_ptr<http::WebServer> server_;
  /// Last member: the watchdog thread dies before anything it observes.
  std::unique_ptr<telemetry::SlowRequestWatchdog> watchdog_;
};

}  // namespace gaa::web
