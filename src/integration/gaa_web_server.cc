#include "integration/gaa_web_server.h"

#include "conditions/builtin.h"
#include "util/log.h"
#include "util/strings.h"

namespace gaa::web {

GaaWebServer::GaaWebServer(http::DocTree tree, Options options)
    : tree_(std::move(tree)), options_(std::move(options)) {
  if (options_.use_real_clock) {
    clock_ = &util::RealClock::Instance();
  } else {
    // Start the simulated clock at a daytime instant so time-of-day
    // conditions behave predictably (2003-05-19 12:00:00 UTC — ICDCS'03).
    sim_clock_ = std::make_unique<util::SimulatedClock>(
        1053345600LL * util::kMicrosPerSecond);
    clock_ = sim_clock_.get();
  }

  state_ = std::make_unique<core::SystemState>(clock_);
  ids_ = std::make_unique<ids::IntrusionDetectionSystem>(state_.get(), clock_,
                                                         options_.threat);
  audit_ = std::make_unique<audit::AuditLog>(clock_);
  notifier_ = std::make_unique<audit::SimulatedSmtpNotifier>(
      clock_, options_.notification_latency_us);
  if (options_.asynchronous_notification) {
    queued_notifier_ = std::make_unique<audit::QueuedNotifier>(
        clock_, options_.notification_latency_us);
  }

  core::EvalServices services;
  services.state = state_.get();
  services.clock = clock_;
  services.notifier = options_.asynchronous_notification
                          ? static_cast<core::NotificationService*>(
                                queued_notifier_.get())
                          : notifier_.get();
  services.audit = audit_.get();
  services.ids = ids_.get();
  if (options_.enable_telemetry) {
    services.metrics = &telemetry_.registry();
    telemetry_.tracer().set_clock(clock_);
    ids_->AttachMetrics(&telemetry_.registry());
    audit_->AttachMetrics(&telemetry_.registry());
  }

  api_ = std::make_unique<core::GaaApi>(&store_, services);
  api_->set_cache_enabled(options_.enable_policy_cache);

  core::RoutineCatalog catalog;
  cond::RegisterBuiltinRoutines(catalog);
  auto init = api_->Initialize(catalog, cond::DefaultConfigText(),
                               options_.extra_config);
  if (!init.ok()) {
    GAA_LOG(kError) << "GAA initialization failed: " << init.error().ToString();
  }

  controller_ = std::make_unique<GaaAccessController>(api_.get(), &passwords_,
                                                      options_.controller);
  server_ = std::make_unique<http::WebServer>(&tree_, controller_.get(),
                                              clock_);
  // One shared registry/tracer across transport, server, GAA, IDS and
  // audit — or none at all (the telemetry-off baseline benches measure).
  server_->set_telemetry(options_.enable_telemetry ? &telemetry_ : nullptr);
  // Ill-formed requests feed the IDS (§3 item 1).
  server_->set_malformed_hook([this](http::RequestDefect defect,
                                     const std::string& detail,
                                     util::Ipv4Address client_ip) {
    core::IdsReport report;
    report.kind = core::ReportKind::kIllFormedRequest;
    report.source_ip = client_ip.ToString();
    report.attack_type = http::RequestDefectName(defect);
    report.severity = 3;
    report.confidence = 0.8;
    report.detail = detail;
    ids_->Report(report);
  });
}

util::VoidResult GaaWebServer::AddSystemPolicy(const std::string& eacl_text) {
  return store_.AddSystemPolicy(eacl_text);
}

util::VoidResult GaaWebServer::SetLocalPolicy(const std::string& dir_prefix,
                                              const std::string& eacl_text) {
  return store_.SetLocalPolicy(dir_prefix, eacl_text);
}

void GaaWebServer::AddUser(const std::string& user,
                           const std::string& password) {
  passwords_.GetOrCreate(options_.controller.auth_user_file)
      .SetUser(user, password);
}

http::HttpResponse GaaWebServer::Get(
    const std::string& target, const std::string& client_ip,
    const std::optional<std::pair<std::string, std::string>>& credentials) {
  std::map<std::string, std::string> headers;
  if (credentials.has_value()) {
    headers["Authorization"] =
        "Basic " +
        util::Base64Encode(credentials->first + ":" + credentials->second);
  }
  std::string raw = http::BuildGetRequest(target, headers);
  return HandleText(raw, client_ip);
}

http::HttpResponse GaaWebServer::HandleText(const std::string& raw,
                                            const std::string& client_ip) {
  auto addr = util::Ipv4Address::Parse(client_ip);
  return server_->HandleText(raw, addr.value_or(util::Ipv4Address(0)),
                             /*client_port=*/40000);
}

}  // namespace gaa::web
