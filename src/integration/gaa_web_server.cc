#include "integration/gaa_web_server.h"

#include <cstdlib>

#include "audit/audit_stream.h"
#include "conditions/builtin.h"
#include "http/tcp_server.h"
#include "util/log.h"
#include "util/strings.h"

namespace gaa::web {

namespace {

/// Env override helpers: unset / unparsable leaves `value` untouched.
template <typename T>
void EnvOverrideUnsigned(const char* name, T* value) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(text, &end, 10);
  if (end != nullptr && *end == '\0') *value = static_cast<T>(parsed);
}

void EnvOverride(const char* name, std::int64_t* value) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return;
  char* end = nullptr;
  long long parsed = std::strtoll(text, &end, 10);
  if (end != nullptr && *end == '\0') *value = parsed;
}

void EnvOverride(const char* name, std::string* value) {
  const char* text = std::getenv(name);
  if (text != nullptr) *value = text;
}

void EnvOverride(const char* name, bool* value) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return;
  *value = !(text[0] == '0' && text[1] == '\0');
}

}  // namespace

GaaWebServer::GaaWebServer(http::DocTree tree, Options options)
    : tree_(std::move(tree)), options_(std::move(options)) {
  // Deployment knobs (trace ring sizing, audit stream, watchdog deadline)
  // are overridable from the environment so ops can retune a packaged
  // binary without a rebuild.
  EnvOverrideUnsigned("GAA_TRACE_RING", &options_.tuning.trace_ring_capacity);
  EnvOverrideUnsigned("GAA_TRACE_SAMPLE_PERIOD",
                      &options_.tuning.trace_sample_period);
  EnvOverrideUnsigned("GAA_TRACE_PINNED", &options_.tuning.pinned_slow_traces);
  EnvOverride("GAA_AUDIT_STREAM", &options_.audit_stream.path);
  EnvOverrideUnsigned("GAA_AUDIT_ROTATE_BYTES",
                      &options_.audit_stream.rotate_bytes);
  EnvOverride("GAA_AUDIT_FSYNC", &options_.audit_stream.fsync_each_write);
  std::int64_t watchdog_deadline_ms =
      options_.watchdog.enabled ? options_.watchdog.deadline_ms : 0;
  EnvOverride("GAA_WATCHDOG_DEADLINE_MS", &watchdog_deadline_ms);
  options_.watchdog.enabled = watchdog_deadline_ms > 0;
  if (options_.watchdog.enabled) {
    options_.watchdog.deadline_ms = watchdog_deadline_ms;
  }

  if (options_.use_real_clock) {
    clock_ = &util::RealClock::Instance();
  } else {
    // Start the simulated clock at a daytime instant so time-of-day
    // conditions behave predictably (2003-05-19 12:00:00 UTC — ICDCS'03).
    sim_clock_ = std::make_unique<util::SimulatedClock>(
        1053345600LL * util::kMicrosPerSecond);
    clock_ = sim_clock_.get();
  }

  state_ = std::make_unique<core::SystemState>(clock_);
  ids_ = std::make_unique<ids::IntrusionDetectionSystem>(state_.get(), clock_,
                                                         options_.threat);
  audit_ = std::make_unique<audit::AuditLog>(clock_);
  // Threat-level transitions become structured "threat" audit events.
  ids_->AttachAudit(audit_.get());
  notifier_ = std::make_unique<audit::SimulatedSmtpNotifier>(
      clock_, options_.notification_latency_us);
  if (options_.asynchronous_notification) {
    queued_notifier_ = std::make_unique<audit::QueuedNotifier>(
        clock_, options_.notification_latency_us);
  }

  core::EvalServices services;
  services.state = state_.get();
  services.clock = clock_;
  services.notifier = options_.asynchronous_notification
                          ? static_cast<core::NotificationService*>(
                                queued_notifier_.get())
                          : notifier_.get();
  services.audit = audit_.get();
  services.ids = ids_.get();
  if (options_.enable_telemetry) {
    services.metrics = &telemetry_.registry();
    telemetry_.tracer().set_clock(clock_);
    telemetry_.tracer().set_capacity(options_.tuning.trace_ring_capacity);
    telemetry_.tracer().set_sample_period(options_.tuning.trace_sample_period);
    telemetry_.tracer().set_pinned_capacity(options_.tuning.pinned_slow_traces);
    ids_->AttachMetrics(&telemetry_.registry());
    audit_->AttachMetrics(&telemetry_.registry());
  }
  if (!options_.audit_stream.path.empty()) {
    audit::AuditLog::StreamOptions sopts;
    sopts.queue_capacity = options_.audit_stream.queue_capacity;
    sopts.rotate_bytes = options_.audit_stream.rotate_bytes;
    sopts.max_rotated_files = options_.audit_stream.max_rotated_files;
    sopts.fsync_each_write = options_.audit_stream.fsync_each_write;
    audit_->AttachFileStream(options_.audit_stream.path, sopts);
  }

  EnvOverride("GAA_COMPILED_ENGINE", &options_.enable_compiled_engine);
  EnvOverride("GAA_DECISION_CACHE", &options_.enable_decision_cache);
  api_ = std::make_unique<core::GaaApi>(&store_, services);
  api_->set_cache_enabled(options_.enable_policy_cache);
  api_->set_engine_mode(options_.enable_compiled_engine
                            ? core::EngineMode::kCompiled
                            : core::EngineMode::kInterpreted);
  api_->set_decision_cache_enabled(options_.enable_decision_cache);

  core::RoutineCatalog catalog;
  cond::RegisterBuiltinRoutines(catalog);
  auto init = api_->Initialize(catalog, cond::DefaultConfigText(),
                               options_.extra_config);
  if (!init.ok()) {
    GAA_LOG(kError) << "GAA initialization failed: " << init.error().ToString();
  }

  controller_ = std::make_unique<GaaAccessController>(api_.get(), &passwords_,
                                                      options_.controller);
  server_ = std::make_unique<http::WebServer>(&tree_, controller_.get(),
                                              clock_, options_.http);
  server_->set_tenant_router(&tenant_router_);
  server_->set_tenants_view([this] { return RenderTenantsJson(); });
  // One shared registry/tracer across transport, server, GAA, IDS and
  // audit — or none at all (the telemetry-off baseline benches measure).
  server_->set_telemetry(options_.enable_telemetry ? &telemetry_ : nullptr);
  // Ill-formed requests feed the IDS (§3 item 1).
  server_->set_malformed_hook([this](http::RequestDefect defect,
                                     const std::string& detail,
                                     util::Ipv4Address client_ip) {
    core::IdsReport report;
    report.kind = core::ReportKind::kIllFormedRequest;
    report.source_ip = client_ip.ToString();
    report.attack_type = http::RequestDefectName(defect);
    report.severity = 3;
    report.confidence = 0.8;
    report.detail = detail;
    ids_->Report(report);
  });
  // Every served request feeds the streaming anomaly sketches (DESIGN.md
  // §12) — worker path, inline pipeline and template fast path alike.
  server_->set_request_observer([this](std::string_view /*method*/,
                                       std::string_view target,
                                       util::Ipv4Address client_ip,
                                       int /*status*/) {
    ids_->ObserveRequest(client_ip.ToString(), std::string(target),
                         clock_->Now());
  });

  if (options_.watchdog.enabled && options_.enable_telemetry) {
    // Flag time (watchdog thread): the request is still running, so only
    // its id and age are safely known — audit that immediately.
    auto on_flag = [this](const telemetry::SlowRequestWatchdog::SlowEvent& ev) {
      core::AuditEvent event;
      event.category = "slow_request";
      event.message = "request exceeded deadline after " +
                      std::to_string(ev.elapsed_us) + "us (still running)";
      event.trace_id = ev.trace_id;
      audit_->Record(event);
      if (options_.watchdog.report_to_ids) {
        core::IdsReport report;
        report.kind = core::ReportKind::kSuspiciousBehavior;
        report.attack_type = "slow_request";
        report.severity = 2;
        report.confidence = 0.3;
        report.detail = "trace " + std::to_string(ev.trace_id) + " ran " +
                        std::to_string(ev.elapsed_us) + "us past deadline";
        ids_->Report(report);
      }
    };
    // Retirement (request thread): the span tree is complete — audit where
    // the time actually went.
    telemetry_.tracer().set_slow_retired_hook(
        [this](const telemetry::RequestTrace& trace) {
          const telemetry::Span* slowest = nullptr;
          for (const telemetry::Span& span : trace.spans()) {
            if (span.depth != 0 || span.end_us == 0) continue;
            if (slowest == nullptr ||
                span.DurationUs() > slowest->DurationUs()) {
              slowest = &span;
            }
          }
          core::AuditEvent event;
          event.category = "slow_request";
          event.message =
              trace.method + " " + trace.target + " took " +
              std::to_string(trace.DurationUs()) + "us (status " +
              std::to_string(trace.status) + ")";
          if (slowest != nullptr) {
            event.message += ", slowest phase " + std::string(slowest->name) +
                             " " + std::to_string(slowest->DurationUs()) + "us";
          }
          event.trace_id = trace.id();
          event.client = trace.client_ip;
          audit_->Record(event);
        });
    telemetry::SlowRequestWatchdog::Options wopts;
    wopts.deadline_us = options_.watchdog.deadline_ms * 1000;
    wopts.poll_interval_us = options_.watchdog.poll_interval_ms * 1000;
    watchdog_ = std::make_unique<telemetry::SlowRequestWatchdog>(
        &telemetry_.tracer(), &telemetry_.registry(), wopts,
        std::move(on_flag));
  }
}

util::VoidResult GaaWebServer::AddSystemPolicy(const std::string& eacl_text) {
  return store_.AddSystemPolicy(eacl_text);
}

util::VoidResult GaaWebServer::AddTenant(const std::string& name,
                                         const std::string& host,
                                         const std::string& doc_root) {
  util::VoidResult result = store_.AddTenant(name);
  if (!result.ok()) return result;
  if (!host.empty()) tenant_router_.AddHost(host, name, doc_root);
  return result;
}

util::VoidResult GaaWebServer::AddTenantSystemPolicy(
    const std::string& tenant, const std::string& eacl_text) {
  return store_.AddTenantSystemPolicy(tenant, eacl_text);
}

util::VoidResult GaaWebServer::SetTenantLocalPolicy(
    const std::string& tenant, const std::string& dir_prefix,
    const std::string& eacl_text) {
  return store_.SetTenantLocalPolicy(tenant, dir_prefix, eacl_text);
}

std::string GaaWebServer::RenderTenantsJson() const {
  // Tenant names come from configuration, but escape anyway — this string
  // goes on the wire as application/json.
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        out += "\\u0020";  // control bytes can't appear in valid names
      } else {
        out.push_back(c);
      }
    }
    return out;
  };
  const eacl::IrStore::Stats ir = store_.ir_store_stats();
  std::string out = "{\"tenants\":[";
  bool first = true;
  for (const core::PolicyStore::TenantInfo& info : store_.TenantInfos()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"" + escape(info.name) + "\"";
    out += ",\"snapshot_version\":" + std::to_string(info.snapshot_version);
    out += ",\"system_policies\":" + std::to_string(info.system_policies);
    out += ",\"local_policies\":" + std::to_string(info.local_policies);
    out.push_back('}');
  }
  out += "],\"routes\":" + std::to_string(tenant_router_.route_count());
  out += ",\"ir_store\":{";
  out += "\"hits\":" + std::to_string(ir.hits);
  out += ",\"misses\":" + std::to_string(ir.misses);
  out += ",\"entries\":" + std::to_string(ir.entries);
  out += ",\"bytes\":" + std::to_string(ir.bytes);
  out += ",\"sweeps\":" + std::to_string(ir.sweeps);
  out += "}}";
  return out;
}

util::VoidResult GaaWebServer::SetLocalPolicy(const std::string& dir_prefix,
                                              const std::string& eacl_text) {
  return store_.SetLocalPolicy(dir_prefix, eacl_text);
}

void GaaWebServer::AddUser(const std::string& user,
                           const std::string& password) {
  passwords_.GetOrCreate(options_.controller.auth_user_file)
      .SetUser(user, password);
}

http::HttpResponse GaaWebServer::Get(
    const std::string& target, const std::string& client_ip,
    const std::optional<std::pair<std::string, std::string>>& credentials) {
  std::map<std::string, std::string> headers;
  if (credentials.has_value()) {
    headers["Authorization"] =
        "Basic " +
        util::Base64Encode(credentials->first + ":" + credentials->second);
  }
  std::string raw = http::BuildGetRequest(target, headers);
  return HandleText(raw, client_ip);
}

http::HttpResponse GaaWebServer::HandleText(const std::string& raw,
                                            const std::string& client_ip) {
  auto addr = util::Ipv4Address::Parse(client_ip);
  return server_->HandleText(raw, addr.value_or(util::Ipv4Address(0)),
                             /*client_port=*/40000);
}

void GaaWebServer::WireIdsTick(http::TcpServer* transport) {
  if (transport == nullptr) return;
  // The wheel tick arrives on shard 0's event-loop thread; everything
  // PeriodicMaintenance touches (threat service, sketches, SystemState
  // variables) is thread-safe, so no cross-thread relay is needed.
  transport->set_tick_hook(
      [this](std::int64_t /*now_ms*/) { ids_->PeriodicMaintenance(); });
}

}  // namespace gaa::web
