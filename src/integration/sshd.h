// sshd-like login service driven through the same GAA-API (paper §1/§9:
// "We have integrated the GAA-API with Apache web server, sshd and
// FreeS/WAN IPsec for Linux" — the API is generic; only the glue differs).
//
// The simulated daemon authenticates password logins and consults the
// GAA-API with requested right (sshd, login).  System-wide policies
// (lockdown, blacklists) therefore apply to ssh exactly as they do to web
// requests — the cross-application sharing §7.2 highlights ("since this
// blacklist is specified in a system-wide policy, the list is shared by
// many of our hosts").
#pragma once

#include <string>

#include "gaa/api.h"
#include "http/htpasswd.h"
#include "util/ip.h"

namespace gaa::web {

class SshDaemon {
 public:
  struct Options {
    std::string application = "sshd";
    std::string auth_user_file = "sshd";
    /// Policy object consulted for logins (policies attach to this path).
    std::string login_object = "/sshd/login";
    int failed_auth_window_s = 60;
  };

  enum class LoginResult {
    kAccepted,
    kBadCredentials,   ///< password check failed
    kDenied,           ///< GAA policy denied (blacklist, lockdown, ...)
    kMoreCredentials,  ///< GAA answered MAYBE (e.g. needs stronger auth)
  };

  SshDaemon(core::GaaApi* api, http::HtpasswdRegistry* passwords)
      : SshDaemon(api, passwords, Options{}) {}
  SshDaemon(core::GaaApi* api, http::HtpasswdRegistry* passwords,
            Options options);

  /// One password-login attempt from `client_ip`.
  LoginResult Login(const std::string& user, const std::string& password,
                    const std::string& client_ip);

  void AddUser(const std::string& user, const std::string& password);

  std::size_t accepted_count() const { return accepted_; }
  std::size_t denied_count() const { return denied_; }
  std::size_t bad_credentials_count() const { return bad_credentials_; }

 private:
  core::GaaApi* api_;
  http::HtpasswdRegistry* passwords_;
  Options options_;
  std::size_t accepted_ = 0;
  std::size_t denied_ = 0;
  std::size_t bad_credentials_ = 0;
};

const char* LoginResultName(SshDaemon::LoginResult result);

}  // namespace gaa::web
