// FreeS/WAN-IPsec-like gateway driven through the same GAA-API (the paper
// names it as its third integration: "We have integrated the GAA-API with
// Apache web server, sshd and FreeS/WAN IPsec for Linux", §1).
//
// The simulated gateway authorizes security-association (SA) establishment
// per peer: the requested right is (ipsec, establish_sa) on a policy
// object, so EACL conditions — peer location, threat level, the shared
// BadGuys blacklist — govern tunnel setup exactly like web requests and
// ssh logins.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "gaa/api.h"
#include "util/ip.h"

namespace gaa::web {

class IpsecGateway {
 public:
  struct Options {
    std::string application = "ipsec";
    std::string sa_object = "/ipsec/sa";
  };

  enum class SaResult {
    kEstablished,
    kDenied,            ///< policy rejected the peer
    kMoreCredentials,   ///< GAA_MAYBE: stronger peer authentication needed
  };

  explicit IpsecGateway(core::GaaApi* api)
      : IpsecGateway(api, Options{}) {}
  IpsecGateway(core::GaaApi* api, Options options);

  /// One IKE-style SA proposal from `peer_ip`.  `peer_id` is the
  /// authenticated identity from the peer's certificate ("" = anonymous).
  SaResult EstablishSa(const std::string& peer_ip,
                       const std::string& peer_id = "");

  /// Drop an SA (admin action or rekey failure).
  bool TeardownSa(const std::string& peer_ip);

  /// Re-check every active SA against current policy and tear down those
  /// no longer authorized — the paper's "modifying overall system
  /// protection" countermeasure applied to tunnels (e.g. after lockdown).
  std::size_t RevalidateAll();

  bool HasSa(const std::string& peer_ip) const;
  std::size_t active_sa_count() const;
  std::size_t denied_count() const { return denied_; }

 private:
  SaResult Authorize(const std::string& peer_ip, const std::string& peer_id);

  core::GaaApi* api_;
  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> active_;  // peer_ip -> peer_id
  std::size_t denied_ = 0;
};

const char* SaResultName(IpsecGateway::SaResult result);

}  // namespace gaa::web
