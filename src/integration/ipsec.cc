#include "integration/ipsec.h"

namespace gaa::web {

IpsecGateway::IpsecGateway(core::GaaApi* api, Options options)
    : api_(api), options_(std::move(options)) {}

IpsecGateway::SaResult IpsecGateway::Authorize(const std::string& peer_ip,
                                               const std::string& peer_id) {
  core::RequestContext ctx;
  ctx.application = options_.application;
  ctx.operation = "establish_sa";
  ctx.object = options_.sa_object;
  ctx.client_ip =
      util::Ipv4Address::Parse(peer_ip).value_or(util::Ipv4Address(0));
  if (!peer_id.empty()) {
    ctx.authenticated = true;
    ctx.user = peer_id;
  }
  ctx.AddParam("peer_ip", options_.application, peer_ip);

  core::RequestedRight right{options_.application, "establish_sa"};
  core::AuthzResult authz = api_->Authorize(options_.sa_object, right, ctx);
  switch (authz.status) {
    case util::Tristate::kYes:
      return SaResult::kEstablished;
    case util::Tristate::kNo:
      return SaResult::kDenied;
    case util::Tristate::kMaybe:
      return SaResult::kMoreCredentials;
  }
  return SaResult::kDenied;
}

IpsecGateway::SaResult IpsecGateway::EstablishSa(const std::string& peer_ip,
                                                 const std::string& peer_id) {
  SaResult result = Authorize(peer_ip, peer_id);
  if (result == SaResult::kEstablished) {
    std::lock_guard<std::mutex> lock(mu_);
    active_[peer_ip] = peer_id;
  } else if (result == SaResult::kDenied) {
    ++denied_;
  }
  return result;
}

bool IpsecGateway::TeardownSa(const std::string& peer_ip) {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.erase(peer_ip) > 0;
}

std::size_t IpsecGateway::RevalidateAll() {
  std::map<std::string, std::string> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = active_;
  }
  std::size_t torn_down = 0;
  for (const auto& [peer_ip, peer_id] : snapshot) {
    if (Authorize(peer_ip, peer_id) != SaResult::kEstablished) {
      std::lock_guard<std::mutex> lock(mu_);
      active_.erase(peer_ip);
      ++torn_down;
    }
  }
  return torn_down;
}

bool IpsecGateway::HasSa(const std::string& peer_ip) const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.count(peer_ip) > 0;
}

std::size_t IpsecGateway::active_sa_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.size();
}

const char* SaResultName(IpsecGateway::SaResult result) {
  switch (result) {
    case IpsecGateway::SaResult::kEstablished:
      return "established";
    case IpsecGateway::SaResult::kDenied:
      return "denied";
    case IpsecGateway::SaResult::kMoreCredentials:
      return "more_credentials";
  }
  return "?";
}

}  // namespace gaa::web
