#include "integration/translate.h"

#include "util/strings.h"

namespace gaa::web {

std::optional<std::string> RedirectTarget(const core::AuthzResult& authz) {
  // Paper: "the server checks whether there is only one unevaluated
  // condition of the type pre_cond_redirect and creates a redirected
  // request using the URL from the condition value."
  if (authz.unevaluated.size() != 1) return std::nullopt;
  const eacl::Condition& cond = authz.unevaluated.front();
  if (cond.type != "pre_cond_redirect") return std::nullopt;
  return std::string(util::Trim(cond.value));
}

Translation TranslateAuthz(const core::AuthzResult& authz,
                           const std::string& realm) {
  Translation out;
  switch (authz.status) {
    case util::Tristate::kYes:
      return out;  // HTTP_OK: proceed
    case util::Tristate::kNo:
      out.response = http::HttpResponse::Make(http::StatusCode::kForbidden);
      return out;
    case util::Tristate::kMaybe:
      if (auto target = RedirectTarget(authz)) {
        out.response = http::HttpResponse::Redirect(*target);
      } else {
        out.response = http::HttpResponse::AuthRequired(realm);
      }
      return out;
  }
  out.response = http::HttpResponse::Make(http::StatusCode::kInternalError);
  return out;
}

}  // namespace gaa::web
