// The GAA-backed access controller: the paper's glue code (§6).
//
// Check() runs the per-request phases 2a-2d — extract context from the
// request record, build the requested right, compose and evaluate policies,
// translate the three-valued answer to an HTTP response.  OnExecution()
// drives phase 3 (mid-conditions over live operation statistics) and
// OnComplete() phase 4 (post-conditions with the operation outcome).
//
// The controller also emits the §3 GAA→IDS reports the policy conditions do
// not cover themselves: denials of sensitive objects (item 3) and
// legitimate-pattern observations for profile building (item 7).
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "gaa/api.h"
#include "http/htpasswd.h"
#include "http/server.h"
#include "util/glob.h"

namespace gaa::telemetry {
class Counter;
}  // namespace gaa::telemetry

namespace gaa::web {

class GaaAccessController final : public http::AccessController {
 public:
  struct Options {
    std::string application = "apache";  ///< def_auth of requested rights
    std::string realm = "restricted";
    /// htpasswd store (registry key) used to verify Basic credentials.
    std::string auth_user_file = "default";
    /// Globs naming sensitive objects; a denial on a match is reported to
    /// the IDS as kSensitiveDenial (§3 item 3).
    std::vector<std::string> sensitive_paths;
    /// Report granted requests as legitimate patterns (§3 item 7) so the
    /// IDS can build behaviour profiles.
    bool report_legitimate_patterns = false;
    /// Sliding window for the failed-authentication counter.
    int failed_auth_window_s = 60;
    /// Soft limits above which a request's parameters are reported to the
    /// IDS as abnormally large (§3 item 2).  Reporting only — whether such
    /// requests are *denied* is the policy's decision (pre_cond_expr).
    std::size_t abnormal_query_bytes = 2048;
    std::size_t abnormal_header_count = 50;
  };

  GaaAccessController(core::GaaApi* api,
                      const http::HtpasswdRegistry* passwords)
      : GaaAccessController(api, passwords, Options{}) {}
  GaaAccessController(core::GaaApi* api,
                      const http::HtpasswdRegistry* passwords,
                      Options options);

  Verdict Check(http::RequestRec& rec) override;
  bool OnExecution(http::RequestRec& rec,
                   const http::OperationObservation& obs) override;
  void OnComplete(http::RequestRec& rec,
                  const http::OperationObservation& obs,
                  bool success) override;
  /// Fast-path probe (transport inline serving): delegates to the decision
  /// memo — true only for pure terminal YES/NO answers already cached
  /// against the live snapshot, so volatile/adaptive policies and anything
  /// needing credentials always take the worker path.  Tenant-scoped: the
  /// memo is probed in `tenant`'s namespace against that tenant's
  /// snapshot version and threat epoch.
  bool DecisionIsMemoized(std::string_view path, std::string_view method,
                          util::Ipv4Address client_ip,
                          std::string_view tenant) const override;

  const Options& options() const { return options_; }

  /// Requests currently between Check() and OnComplete().  Zero when the
  /// server is idle — the leak check for the per-request state map.
  std::size_t inflight_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return inflight_.size();
  }

  /// Build the GAA request context from a request record (paper §6 step
  /// 2b); exposed for tests and the sshd integration.
  core::RequestContext BuildContext(const http::RequestRec& rec) const;

 private:
  struct PerRequest {
    core::RequestContext ctx;
    core::AuthzResult authz;
    bool aborted = false;
  };

  void ReportSensitiveDenial(const core::RequestContext& ctx);
  void ReportLegitimate(const core::RequestContext& ctx);
  void ReportAbnormalParameters(const http::RequestRec& rec);

  core::GaaApi* api_;
  const http::HtpasswdRegistry* passwords_;
  Options options_;
  std::vector<util::CompiledGlob> sensitive_globs_;
  /// Lazily resolved `gaa_decisions_total` handles for the common HTTP
  /// methods × {yes, no, maybe}; uncommon rights fall back to a registry
  /// lookup.  Valid for the API's lifetime (services.metrics is fixed at
  /// construction).
  static constexpr int kCachedMethods = 3;  // GET, HEAD, POST
  std::array<std::atomic<telemetry::Counter*>, kCachedMethods * 3>
      decision_counters_{};

  /// Per-tenant `tenant_requests_total` handles, cached so the per-request
  /// cost is one shared-lock map probe instead of a registry lookup.
  telemetry::Counter* TenantRequestCounter(const std::string& tenant);

  mutable std::mutex tenant_counter_mu_;
  std::map<std::string, telemetry::Counter*, std::less<>> tenant_counters_;

  mutable std::mutex mu_;
  std::map<const http::RequestRec*, PerRequest> inflight_;
};

}  // namespace gaa::web
