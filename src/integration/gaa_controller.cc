#include "integration/gaa_controller.h"

#include "integration/translate.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/strings.h"

namespace gaa::web {

GaaAccessController::GaaAccessController(
    core::GaaApi* api, const http::HtpasswdRegistry* passwords,
    Options options)
    : api_(api), passwords_(passwords), options_(std::move(options)) {
  for (const auto& pattern : options_.sensitive_paths) {
    sensitive_globs_.emplace_back(pattern);
  }
}

core::RequestContext GaaAccessController::BuildContext(
    const http::RequestRec& rec) const {
  core::RequestContext ctx;
  ctx.application = options_.application;
  ctx.operation = rec.method;
  ctx.object = rec.path;
  ctx.query = rec.query;
  ctx.raw_url = rec.raw_target;
  ctx.client_ip = rec.client_ip;
  ctx.client_port = rec.client_port;
  ctx.authenticated = rec.authenticated;
  ctx.user = rec.auth_user;
  ctx.tenant = rec.tenant;
  ctx.trace = rec.trace;

  // Classified parameters (paper §6 step 2b): "context information ... is
  // extracted from the request_rec structure and is added to [the]
  // requested right structure as a list of parameters."
  ctx.AddParam("client_ip", options_.application, rec.client_ip.ToString());
  ctx.AddParam("method", options_.application, rec.method);
  ctx.AddParam("url", options_.application, rec.raw_target);
  ctx.AddParam("cgi_input_length", options_.application,
               std::to_string(rec.query.size()));
  ctx.AddParam("header_count", options_.application,
               std::to_string(rec.headers.size()));
  if (const std::string* ua = rec.Header("user-agent")) {
    ctx.AddParam("user_agent", options_.application, *ua);
  }
  return ctx;
}

bool GaaAccessController::DecisionIsMemoized(
    std::string_view path, std::string_view method,
    util::Ipv4Address client_ip, std::string_view tenant) const {
  return api_->DecisionIsMemoized(
      std::string(path),
      core::RequestedRight{options_.application, std::string(method)},
      client_ip, tenant);
}

http::AccessController::Verdict GaaAccessController::Check(
    http::RequestRec& rec) {
  core::EvalServices& services = api_->services();

  // --- authentication: verify Basic credentials if presented --------------
  if (auto creds = rec.BasicCredentials()) {
    const http::HtpasswdStore* store =
        passwords_ != nullptr ? passwords_->Find(options_.auth_user_file)
                              : nullptr;
    if (store != nullptr && store->Check(creds->first, creds->second)) {
      rec.authenticated = true;
      rec.auth_user = creds->first;
    } else if (services.state != nullptr) {
      // Failed authentication attempt: feed the sliding-window counter the
      // §3-item-4 threshold conditions watch (password-guessing detection).
      services.state->RecordEvent(
          "failed_auth:" + rec.client_ip.ToString(),
          static_cast<util::DurationUs>(options_.failed_auth_window_s) *
              util::kMicrosPerSecond);
    }
  }

  ReportAbnormalParameters(rec);

  // --- phases 2a-2c ---------------------------------------------------------
  core::RequestContext ctx = BuildContext(rec);
  core::RequestedRight right{options_.application, rec.method};
  core::AuthzResult authz = api_->Authorize(rec.path, right, ctx);

  if (services.metrics != nullptr) {
    // Per-tenant request attribution ("" reports as "default" so the
    // single-tenant series exists from the first request).
    if (telemetry::Counter* tc = TenantRequestCounter(rec.tenant)) tc->Inc();
  }

  if (services.metrics != nullptr) {
    static constexpr const char* kMethods[kCachedMethods] = {"GET", "HEAD",
                                                             "POST"};
    const int outcome_idx = authz.status == util::Tristate::kYes  ? 0
                            : authz.status == util::Tristate::kNo ? 1
                                                                  : 2;
    int method_idx = -1;
    for (int i = 0; i < kCachedMethods; ++i) {
      if (right.value == kMethods[i]) {
        method_idx = i;
        break;
      }
    }
    telemetry::Counter* counter =
        method_idx >= 0
            ? decision_counters_[method_idx * 3 + outcome_idx].load(
                  std::memory_order_relaxed)
            : nullptr;
    if (counter == nullptr) {
      static constexpr const char* kOutcomes[] = {"yes", "no", "maybe"};
      counter = services.metrics->GetCounter(
          "gaa_decisions_total", "right=\"" + right.value + "\",outcome=\"" +
                                     kOutcomes[outcome_idx] + "\"");
      if (method_idx >= 0) {
        decision_counters_[method_idx * 3 + outcome_idx].store(
            counter, std::memory_order_relaxed);
      }
    }
    counter->Inc();
  }

  // --- §3 reporting ----------------------------------------------------------
  if (authz.status == util::Tristate::kNo) {
    ReportSensitiveDenial(ctx);
  } else if (authz.status == util::Tristate::kYes &&
             options_.report_legitimate_patterns) {
    ReportLegitimate(ctx);
  }

  // Non-grant decisions land in the audit stream with full attribution —
  // which policy, which entry, which condition — so "why was this denied"
  // is answerable from the JSONL alone.  Grants are not audited per-request
  // (volume); their per-entry counters are in /__status/policies.
  if (services.audit != nullptr && authz.status != util::Tristate::kYes) {
    core::AuditEvent event;
    event.category = "decision";
    event.message = authz.detail;
    event.trace_id = telemetry::TraceId(ctx.trace);
    event.client = ctx.client_ip.ToString();
    event.tenant = ctx.tenant;
    event.decision = authz.status == util::Tristate::kNo ? "no" : "maybe";
    if (authz.attribution.has_value()) {
      event.policy = authz.attribution->policy;
      event.entry = authz.attribution->entry;
      event.condition = authz.attribution->condition;
    }
    services.audit->Record(event);
  }

  // --- phase 2d: translate ----------------------------------------------------
  Translation translation = TranslateAuthz(authz, options_.realm);
  if (translation.response.has_value()) {
    return Verdict::Respond(*std::move(translation.response));
  }

  // Authorized: remember the context and the granted entry's mid/post
  // blocks for phases 3 and 4.
  PerRequest state;
  state.ctx = std::move(ctx);
  state.authz = std::move(authz);
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_[&rec] = std::move(state);
  }
  return Verdict::Allow();
}

bool GaaAccessController::OnExecution(http::RequestRec& rec,
                                      const http::OperationObservation& obs) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inflight_.find(&rec);
  if (it == inflight_.end()) return true;  // request was not GAA-granted
  PerRequest& state = it->second;

  state.ctx.stats.cpu_seconds = obs.cpu_seconds;
  state.ctx.stats.wall_us = static_cast<util::DurationUs>(obs.wall_us);
  state.ctx.stats.bytes_written = obs.bytes_written;
  state.ctx.stats.memory_bytes = obs.memory_bytes;
  state.ctx.stats.files_created = obs.files_touched;

  core::PhaseResult result = api_->ExecutionControl(state.authz, state.ctx);
  if (result.status == util::Tristate::kNo) {
    state.aborted = true;
    return false;  // abort the operation
  }
  return true;
}

void GaaAccessController::OnComplete(http::RequestRec& rec,
                                     const http::OperationObservation& obs,
                                     bool success) {
  PerRequest state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(&rec);
    if (it == inflight_.end()) return;
    state = std::move(it->second);
    inflight_.erase(it);
  }
  state.ctx.stats.cpu_seconds = obs.cpu_seconds;
  state.ctx.stats.wall_us = static_cast<util::DurationUs>(obs.wall_us);
  state.ctx.stats.bytes_written = obs.bytes_written;
  state.ctx.stats.memory_bytes = obs.memory_bytes;
  state.ctx.stats.files_created = obs.files_touched;
  api_->PostExecutionActions(state.authz, state.ctx, success);
}

telemetry::Counter* GaaAccessController::TenantRequestCounter(
    const std::string& tenant) {
  core::EvalServices& services = api_->services();
  if (services.metrics == nullptr) return nullptr;
  {
    std::lock_guard<std::mutex> lock(tenant_counter_mu_);
    auto it = tenant_counters_.find(tenant);
    if (it != tenant_counters_.end()) return it->second;
  }
  telemetry::Counter* counter = services.metrics->GetCounter(
      "tenant_requests_total",
      "tenant=\"" + (tenant.empty() ? std::string("default") : tenant) +
          "\"");
  std::lock_guard<std::mutex> lock(tenant_counter_mu_);
  tenant_counters_.emplace(tenant, counter);
  return counter;
}

void GaaAccessController::ReportAbnormalParameters(
    const http::RequestRec& rec) {
  core::EvalServices& services = api_->services();
  if (services.ids == nullptr) return;
  std::string what;
  if (rec.query.size() > options_.abnormal_query_bytes) {
    what = "query " + std::to_string(rec.query.size()) + " bytes";
  } else if (rec.headers.size() > options_.abnormal_header_count) {
    what = std::to_string(rec.headers.size()) + " headers";
  } else {
    return;
  }
  core::IdsReport report;
  report.kind = core::ReportKind::kAbnormalParameters;
  report.source_ip = rec.client_ip.ToString();
  report.object = rec.path;
  report.attack_type = "abnormal_parameters";
  report.severity = 3;
  report.confidence = 0.5;
  report.detail = what;
  services.ids->Report(report);
}

void GaaAccessController::ReportSensitiveDenial(
    const core::RequestContext& ctx) {
  core::EvalServices& services = api_->services();
  if (services.ids == nullptr) return;
  for (const auto& glob : sensitive_globs_) {
    if (glob.Matches(ctx.object)) {
      core::IdsReport report;
      report.kind = core::ReportKind::kSensitiveDenial;
      report.source_ip = ctx.client_ip.ToString();
      report.object = ctx.object;
      report.attack_type = "sensitive_object_denied";
      report.severity = 4;
      report.confidence = 0.6;
      report.detail = "access denied to sensitive object";
      services.ids->Report(report);
      return;
    }
  }
}

void GaaAccessController::ReportLegitimate(const core::RequestContext& ctx) {
  core::EvalServices& services = api_->services();
  if (services.ids == nullptr) return;
  core::IdsReport report;
  report.kind = core::ReportKind::kLegitimatePattern;
  report.source_ip = ctx.client_ip.ToString();
  report.object = ctx.object;
  report.attack_type = "";
  report.severity = 0;
  report.confidence = 1.0;
  report.detail = "granted " + ctx.operation + " q_len=" +
                  std::to_string(ctx.query.size());
  services.ids->Report(report);
}

}  // namespace gaa::web
