#include "integration/connection_stats.h"

#include <utility>

namespace gaa::web {

namespace {
/// Gauge handles resolved once at hook-creation time; the hook itself runs
/// on the event-loop thread for every iteration with changed counters, so
/// it must not do registry lookups.
struct TcpGauges {
  telemetry::Gauge* accepted;
  telemetry::Gauge* reused;
  telemetry::Gauge* timed_out;
  telemetry::Gauge* shed;
  telemetry::Gauge* rejected;
  telemetry::Gauge* requests;
  telemetry::Gauge* inline_served;
  telemetry::Gauge* active;
  telemetry::Gauge* shards;
};

std::string MetricName(const std::string& prefix, const char* name) {
  std::string out = prefix + name;
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}
}  // namespace

http::TcpServer::StatsHook MakeConnectionStatsHook(
    core::SystemState* state, std::string prefix, double load_capacity,
    telemetry::MetricRegistry* metrics) {
  TcpGauges gauges{};
  if (metrics != nullptr) {
    gauges.accepted = metrics->GetGauge(MetricName(prefix, "accepted"));
    gauges.reused = metrics->GetGauge(MetricName(prefix, "reused"));
    gauges.timed_out = metrics->GetGauge(MetricName(prefix, "timed_out"));
    gauges.shed = metrics->GetGauge(MetricName(prefix, "shed"));
    gauges.rejected = metrics->GetGauge(MetricName(prefix, "rejected"));
    gauges.requests = metrics->GetGauge(MetricName(prefix, "requests"));
    gauges.inline_served =
        metrics->GetGauge(MetricName(prefix, "inline_served"));
    gauges.active = metrics->GetGauge(MetricName(prefix, "active"));
    gauges.shards = metrics->GetGauge(MetricName(prefix, "shards"));
  }
  return [state, prefix = std::move(prefix), load_capacity,
          gauges](const http::TcpServer::Stats& stats) {
    state->SetVariable(prefix + "accepted", std::to_string(stats.accepted));
    state->SetVariable(prefix + "reused", std::to_string(stats.reused));
    state->SetVariable(prefix + "timed_out", std::to_string(stats.timed_out));
    state->SetVariable(prefix + "shed", std::to_string(stats.shed));
    state->SetVariable(prefix + "rejected", std::to_string(stats.rejected));
    state->SetVariable(prefix + "requests", std::to_string(stats.requests));
    state->SetVariable(prefix + "inline_served",
                       std::to_string(stats.inline_served));
    state->SetVariable(prefix + "active", std::to_string(stats.active));
    state->SetVariable(prefix + "shards", std::to_string(stats.shards));
    if (load_capacity > 0.0) {
      state->SetSystemLoad(static_cast<double>(stats.active) / load_capacity);
    }
    if (gauges.accepted != nullptr) {
      gauges.accepted->Set(static_cast<std::int64_t>(stats.accepted));
      gauges.reused->Set(static_cast<std::int64_t>(stats.reused));
      gauges.timed_out->Set(static_cast<std::int64_t>(stats.timed_out));
      gauges.shed->Set(static_cast<std::int64_t>(stats.shed));
      gauges.rejected->Set(static_cast<std::int64_t>(stats.rejected));
      gauges.requests->Set(static_cast<std::int64_t>(stats.requests));
      gauges.inline_served->Set(
          static_cast<std::int64_t>(stats.inline_served));
      gauges.active->Set(static_cast<std::int64_t>(stats.active));
      gauges.shards->Set(static_cast<std::int64_t>(stats.shards));
    }
  };
}

void WireConnectionStats(http::TcpServer& tcp, core::SystemState* state,
                         std::string prefix,
                         telemetry::MetricRegistry* metrics) {
  double capacity = static_cast<double>(tcp.options().max_connections);
  tcp.set_stats_hook(
      MakeConnectionStatsHook(state, std::move(prefix), capacity, metrics));
}

}  // namespace gaa::web
