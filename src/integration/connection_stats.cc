#include "integration/connection_stats.h"

#include <utility>

namespace gaa::web {

http::TcpServer::StatsHook MakeConnectionStatsHook(core::SystemState* state,
                                                   std::string prefix,
                                                   double load_capacity) {
  return [state, prefix = std::move(prefix),
          load_capacity](const http::TcpServer::Stats& stats) {
    state->SetVariable(prefix + "accepted", std::to_string(stats.accepted));
    state->SetVariable(prefix + "reused", std::to_string(stats.reused));
    state->SetVariable(prefix + "timed_out", std::to_string(stats.timed_out));
    state->SetVariable(prefix + "shed", std::to_string(stats.shed));
    state->SetVariable(prefix + "rejected", std::to_string(stats.rejected));
    state->SetVariable(prefix + "requests", std::to_string(stats.requests));
    state->SetVariable(prefix + "active", std::to_string(stats.active));
    if (load_capacity > 0.0) {
      state->SetSystemLoad(static_cast<double>(stats.active) / load_capacity);
    }
  };
}

void WireConnectionStats(http::TcpServer& tcp, core::SystemState* state,
                         std::string prefix) {
  double capacity = static_cast<double>(tcp.options().max_connections);
  tcp.set_stats_hook(
      MakeConnectionStatsHook(state, std::move(prefix), capacity));
}

}  // namespace gaa::web
