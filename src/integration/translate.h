// GAA → Apache status translation (paper §6, step 2d).
//
//   GAA_YES   → HTTP_OK           (continue the request pipeline)
//   GAA_NO    → HTTP_FORBIDDEN    (Apache should reject the request)
//   GAA_MAYBE → HTTP_REDIRECT     when exactly one unevaluated condition of
//                                 type pre_cond_redirect remains (adaptive
//                                 redirection: its value is the target URL)
//             → HTTP_UNAUTHORIZED otherwise (typically missing credentials;
//                                 the 401 challenge asks for them)
#pragma once

#include <optional>
#include <string>

#include "gaa/api.h"
#include "http/response.h"

namespace gaa::web {

struct Translation {
  /// Set when the GAA answer short-circuits the request (deny / challenge /
  /// redirect); empty means "authorized, continue".
  std::optional<http::HttpResponse> response;
};

Translation TranslateAuthz(const core::AuthzResult& authz,
                           const std::string& realm);

/// The redirect target if `authz` is the adaptive-redirection MAYBE shape
/// (exactly one unevaluated condition, of type pre_cond_redirect).
std::optional<std::string> RedirectTarget(const core::AuthzResult& authz);

}  // namespace gaa::web
