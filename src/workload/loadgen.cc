#include "workload/loadgen.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <thread>

#include "http/tcp_server.h"
#include "util/strings.h"

namespace gaa::workload {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t MicrosBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

int ParseStatus(const std::string& response) {
  std::size_t sp = response.find(' ');
  if (sp == std::string::npos || sp + 4 > response.size()) return 0;
  return std::atoi(response.c_str() + sp + 1);
}

/// Did the server announce it will close after this response?  (Protocol
/// failures do; the driver must reconnect before the next request.)
bool WantsClose(const std::string& response) {
  std::size_t head_end = response.find("\r\n\r\n");
  std::string head = util::ToLower(
      response.substr(0, head_end == std::string::npos ? response.size()
                                                       : head_end));
  return head.find("connection: close") != std::string::npos;
}

/// One request's raw outcome, produced by a connection thread.
struct RawOutcome {
  RequestKind kind = RequestKind::kStaticPage;
  std::int64_t intended_us = 0;
  std::int64_t latency_us = 0;  ///< completion - intended (open loop)
  std::int64_t service_us = 0;  ///< completion - actual send
  int status = 0;
  bool responded = false;
  bool transport_error = false;
};

void RunConnection(std::uint16_t port, int timeout_ms,
                   Clock::time_point epoch,
                   const std::vector<const ScheduledRequest*>& requests,
                   std::vector<RawOutcome>* out) {
  std::unique_ptr<http::TcpClient> client;
  out->reserve(requests.size());
  for (const ScheduledRequest* sr : requests) {
    const Clock::time_point intended =
        epoch + std::chrono::microseconds(sr->intended_us);
    std::this_thread::sleep_until(intended);

    RawOutcome o;
    o.kind = sr->request.kind;
    o.intended_us = sr->intended_us;
    const Clock::time_point send_tp = Clock::now();

    if (client == nullptr || !client->connected()) {
      client = std::make_unique<http::TcpClient>(port, timeout_ms);
    }
    if (!client->connected()) {
      o.transport_error = true;
    } else if (IsPartialRequestKind(sr->request.kind)) {
      // Slowloris: deliver the unfinished head and abandon the connection.
      // No response is expected — the server diagnoses a truncated request
      // and feeds the IDS; the next request here reconnects.
      if (!client->SendRaw(sr->request.raw)) o.transport_error = true;
      client->Close();
    } else {
      auto response = client->RoundTrip(sr->request.raw);
      if (response.ok()) {
        o.responded = true;
        o.status = ParseStatus(response.value());
        if (WantsClose(response.value())) client->Close();
      } else {
        o.transport_error = true;  // RoundTrip closed the socket already
      }
    }

    const Clock::time_point done_tp = Clock::now();
    o.latency_us = MicrosBetween(epoch, done_tp) - sr->intended_us;
    if (o.latency_us < 0) o.latency_us = 0;
    o.service_us = MicrosBetween(send_tp, done_tp);
    out->push_back(o);
  }
}

}  // namespace

LoadScenario BenignScenario() {
  return LoadScenario{"benign",
                      {{RequestKind::kStaticPage, 0.70},
                       {RequestKind::kSearchCgi, 0.20},
                       {RequestKind::kPrivatePage, 0.10}}};
}

LoadScenario MixedScenario() {
  LoadScenario out{"mixed",
                   {{RequestKind::kStaticPage, 0.63},
                    {RequestKind::kSearchCgi, 0.18},
                    {RequestKind::kPrivatePage, 0.09}}};
  // The remaining 10% spreads over the full attack corpus.
  const RequestKind attacks[] = {
      RequestKind::kCgiProbe,       RequestKind::kDosSlashes,
      RequestKind::kNimdaPercent,   RequestKind::kOverflowInput,
      RequestKind::kIllFormed,      RequestKind::kSlowHeaders,
      RequestKind::kSmugglingProbe, RequestKind::kPathTraversal,
      RequestKind::kHeaderFlood,    RequestKind::kCachePoison};
  for (RequestKind kind : attacks) out.mix.emplace_back(kind, 0.01);
  return out;
}

LoadScenario AdversarialScenario() {
  return LoadScenario{"adversarial",
                      {{RequestKind::kCgiProbe, 0.1},
                       {RequestKind::kDosSlashes, 0.1},
                       {RequestKind::kNimdaPercent, 0.1},
                       {RequestKind::kOverflowInput, 0.1},
                       {RequestKind::kIllFormed, 0.1},
                       {RequestKind::kSlowHeaders, 0.1},
                       {RequestKind::kSmugglingProbe, 0.1},
                       {RequestKind::kPathTraversal, 0.1},
                       {RequestKind::kHeaderFlood, 0.1},
                       {RequestKind::kCachePoison, 0.1}}};
}

LoadGenerator::LoadGenerator(LoadgenOptions options, LoadScenario scenario)
    : options_(std::move(options)), scenario_(std::move(scenario)) {}

std::vector<ScheduledRequest> LoadGenerator::BuildSchedule() {
  // Two independent streams: arrivals and request content.  Both are
  // seeded from options_.seed, so the schedule is a pure function of the
  // options — the determinism contract the loadgen test pins down.
  util::Rng arrival_rng(options_.seed ^ 0x9e3779b97f4a7c15ULL);
  TraceOptions trace = options_.trace;
  trace.seed = options_.seed;
  TraceGenerator generator(trace);
  util::Rng mix_rng(options_.seed + 1);

  double total_weight = 0;
  for (const auto& [kind, weight] : scenario_.mix) total_weight += weight;

  std::vector<ScheduledRequest> schedule;
  schedule.reserve(options_.total_requests);
  const double mean_gap_us =
      options_.rate_rps > 0 ? 1e6 / options_.rate_rps : 0;
  double cursor_us = 0;
  for (std::size_t i = 0; i < options_.total_requests; ++i) {
    if (i > 0) {
      if (options_.arrivals == ArrivalProcess::kPoisson) {
        // Exponential interarrival; clamp the uniform away from 0 so the
        // log is finite.
        double u = arrival_rng.NextDouble();
        if (u < 1e-12) u = 1e-12;
        cursor_us += -std::log(u) * mean_gap_us;
      } else {
        cursor_us += mean_gap_us;
      }
    }

    double pick = mix_rng.NextDouble() * total_weight;
    RequestKind kind = scenario_.mix.empty()
                           ? RequestKind::kStaticPage
                           : scenario_.mix.back().first;
    for (const auto& [candidate, weight] : scenario_.mix) {
      if (pick < weight) {
        kind = candidate;
        break;
      }
      pick -= weight;
    }

    ScheduledRequest sr;
    sr.intended_us = static_cast<std::int64_t>(cursor_us);
    sr.connection =
        options_.connections > 0 ? i % options_.connections : 0;
    sr.request = generator.Make(kind);
    schedule.push_back(std::move(sr));
  }
  return schedule;
}

LoadResult LoadGenerator::Run(std::uint16_t port) {
  const std::vector<ScheduledRequest> schedule = BuildSchedule();
  const std::size_t nconn = std::max<std::size_t>(1, options_.connections);

  std::vector<std::vector<const ScheduledRequest*>> per_conn(nconn);
  for (const ScheduledRequest& sr : schedule) {
    per_conn[sr.connection % nconn].push_back(&sr);
  }

  // A short runway so every connection thread exists before the first
  // arrival; intended times are offsets from this shared epoch.
  const Clock::time_point epoch =
      Clock::now() + std::chrono::milliseconds(50);
  std::vector<std::vector<RawOutcome>> outcomes(nconn);
  std::vector<std::thread> threads;
  threads.reserve(nconn);
  for (std::size_t c = 0; c < nconn; ++c) {
    threads.emplace_back(RunConnection, port, options_.timeout_ms, epoch,
                         std::cref(per_conn[c]), &outcomes[c]);
  }
  for (std::thread& t : threads) t.join();

  telemetry::Histogram latency(telemetry::Histogram::WideLatencyBoundsUs());
  telemetry::Histogram benign(telemetry::Histogram::WideLatencyBoundsUs());
  telemetry::Histogram service(telemetry::Histogram::WideLatencyBoundsUs());
  LoadResult result;
  std::int64_t last_completion_us = 0;
  for (const auto& conn_outcomes : outcomes) {
    for (const RawOutcome& o : conn_outcomes) {
      ++result.sent;
      const auto lat = static_cast<std::uint64_t>(o.latency_us);
      latency.Record(lat);
      service.Record(static_cast<std::uint64_t>(o.service_us));
      if (!IsAttackKind(o.kind)) benign.Record(lat);

      KindStats& ks = result.by_kind[RequestKindName(o.kind)];
      ++ks.sent;
      if (o.responded) {
        ++result.responded;
        if (o.status >= 200 && o.status < 300) ++ks.ok_2xx;
        if (o.status >= 400 && o.status < 500) ++ks.status_4xx;
        if (o.status >= 500) ++ks.status_5xx;
      } else {
        ++ks.no_response;
        if (o.transport_error && !IsPartialRequestKind(o.kind)) {
          ++result.transport_errors;
        }
      }
      last_completion_us =
          std::max(last_completion_us, o.intended_us + o.latency_us);
    }
  }
  result.latency = latency.TakeSnapshot();
  result.benign_latency = benign.TakeSnapshot();
  result.service = service.TakeSnapshot();
  result.duration_us = last_completion_us;
  result.achieved_rps =
      last_completion_us > 0
          ? static_cast<double>(result.sent) * 1e6 /
                static_cast<double>(last_completion_us)
          : 0.0;
  return result;
}

}  // namespace gaa::workload
