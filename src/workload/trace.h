// Workload / attack-trace generator.
//
// Stands in for the paper's live clients: seeded, fully reproducible
// request traces mixing benign traffic with the §1/§7.2 attack classes —
// vulnerable-CGI probes (phf, test-cgi), the many-slashes Apache DoS,
// NIMDA-style percent-encoded URLs, Code-Red-style oversized CGI input,
// password guessing, and ill-formed HTTP.  Also provides the §7.2
// "vulnerability-scan script": a known-signature probe followed by
// unknown-signature probes from the same host, which the blacklist response
// is supposed to block.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace gaa::workload {

enum class RequestKind {
  kStaticPage,     // benign: /index.html, /docs/*
  kSearchCgi,      // benign: /cgi-bin/search?q=...
  kPrivatePage,    // benign: authenticated /private/*
  kCgiProbe,       // attack: phf / test-cgi exploitation attempt
  kDosSlashes,     // attack: massive '/' run
  kNimdaPercent,   // attack: percent-encoded malformed URL
  kOverflowInput,  // attack: >1000-char CGI input
  kPasswordGuess,  // attack: wrong Basic credentials on /private
  kIllFormed,      // attack: unparsable HTTP
  kUnknownProbe,   // attack: probe with no known signature
  // Widened corpus beyond the paper's five (ROADMAP item 3):
  kSlowHeaders,     // attack: slowloris-style never-finished header block
  kSmugglingProbe,  // attack: conflicting Content-Length / TE framing
  kPathTraversal,   // attack: percent-encoded ../ escaping the root
  kHeaderFlood,     // attack: header count past the parse limit
  kCachePoison,     // attack: conflicting duplicate Host headers
};

const char* RequestKindName(RequestKind kind);
bool IsAttackKind(RequestKind kind);

/// Kinds whose raw text is deliberately a *partial* request (no terminating
/// blank line).  A load driver must send them and then close the
/// connection: the server sees a head that never completes — the slowloris
/// signature — and classifies it as truncated.
bool IsPartialRequestKind(RequestKind kind);

struct TraceRequest {
  RequestKind kind = RequestKind::kStaticPage;
  std::string raw;        ///< full HTTP request text
  std::string client_ip;
  std::string label;      ///< human-readable tag for reports
};

struct TraceOptions {
  std::uint64_t seed = 42;
  std::size_t count = 1000;
  double attack_fraction = 0.1;  ///< share of attack requests
  std::size_t benign_clients = 32;
  std::size_t attacker_clients = 4;
  /// Benign credentials embedded in kPrivatePage requests.
  std::string user = "alice";
  std::string password = "wonder";
};

class TraceGenerator {
 public:
  explicit TraceGenerator(TraceOptions options);

  /// A full shuffled trace per the options.
  std::vector<TraceRequest> Generate();

  /// One request of a specific kind (deterministic given the generator
  /// state) — scenario tests compose traces by hand with this.
  TraceRequest Make(RequestKind kind);

  /// The §7.2 scan script: from one attacker address, a known-signature
  /// probe (phf) followed by `unknown_probes` requests whose signatures the
  /// policy does NOT know.  With blacklisting active, everything after the
  /// first hit should be blocked.
  std::vector<TraceRequest> VulnerabilityScan(const std::string& attacker_ip,
                                              std::size_t unknown_probes);

 private:
  std::string BenignIp();
  std::string AttackerIp();

  TraceOptions options_;
  util::Rng rng_;
};

}  // namespace gaa::workload
