// Open-loop load generator (ROADMAP item 3; EXPERIMENTS.md E7).
//
// The E-series microbenches are closed-loop: each client thread waits for
// the previous response before sending the next request, so a stalled
// server silently *slows the offered load down* and the measured latency
// flatters the tail — coordinated omission.  This driver is open-loop: a
// deterministic (or seeded-Poisson) arrival schedule fixes each request's
// *intended* send time before the run starts, and every request's latency
// is measured from that intended time.  If the server stalls, requests
// queue up behind the stall and their wait is charged to latency — exactly
// what a real user arriving at a fixed rate would experience.
//
// Scenarios compose the workload::RequestKind corpus (benign mixes plus
// the widened adversarial set) with per-kind weights; the schedule —
// arrival times, kinds, raw request bytes, connection assignment — is a
// pure function of the seed, so two runs with the same options produce
// byte-identical schedules (the determinism the loadgen test pins down).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "workload/trace.h"

namespace gaa::workload {

/// Interarrival process for the open-loop schedule.
enum class ArrivalProcess {
  kDeterministic,  ///< fixed 1/rate gaps
  kPoisson,        ///< exponential gaps (memoryless arrivals), seeded
};

/// A weighted mix of request kinds.
struct LoadScenario {
  std::string name;
  std::vector<std::pair<RequestKind, double>> mix;  ///< kind -> weight
};

/// Canonical scenarios for the E7 sweep.
LoadScenario BenignScenario();       ///< static/search/private traffic only
LoadScenario MixedScenario();        ///< 90% benign, 10% across all attacks
LoadScenario AdversarialScenario();  ///< the full widened attack corpus

struct LoadgenOptions {
  std::uint64_t seed = 42;
  double rate_rps = 100.0;         ///< offered arrival rate
  std::size_t total_requests = 1000;
  std::size_t connections = 8;     ///< concurrent keep-alive connections
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  int timeout_ms = 10000;          ///< per-connection socket timeout
  TraceOptions trace;              ///< request-body generator knobs
};

/// One scheduled request: everything fixed before the run starts.
struct ScheduledRequest {
  std::int64_t intended_us = 0;  ///< offset from run start
  std::size_t connection = 0;    ///< owning connection (round-robin)
  TraceRequest request;
};

/// Per-kind outcome tally, keyed by RequestKindName.
struct KindStats {
  std::uint64_t sent = 0;
  std::uint64_t ok_2xx = 0;
  std::uint64_t status_4xx = 0;   ///< classified/denied by the pipeline
  std::uint64_t status_5xx = 0;
  std::uint64_t no_response = 0;  ///< transport error or deliberate close
};

struct LoadResult {
  /// Coordinated-omission-free latency (completion minus *intended* send
  /// time), wide log-bucketed range so multi-second stalls stay visible.
  telemetry::Histogram::Snapshot latency;
  /// Benign-kind requests only — the SLO population.
  telemetry::Histogram::Snapshot benign_latency;
  /// Closed-loop view (completion minus actual send) for comparison; the
  /// gap between this and `latency` is the coordinated omission a closed
  /// loop would have hidden.
  telemetry::Histogram::Snapshot service;

  std::uint64_t sent = 0;
  std::uint64_t responded = 0;
  std::uint64_t transport_errors = 0;
  std::int64_t duration_us = 0;   ///< first intended send to last completion
  double achieved_rps = 0.0;
  std::map<std::string, KindStats> by_kind;
};

class LoadGenerator {
 public:
  LoadGenerator(LoadgenOptions options, LoadScenario scenario);

  /// The full arrival schedule: a pure function of (options, scenario).
  /// Building it does not touch the network or the clock.
  std::vector<ScheduledRequest> BuildSchedule();

  /// Execute the schedule against 127.0.0.1:port with one thread per
  /// connection.  Requests that find their connection closed (the server
  /// closes after protocol-failure 4xxs) reconnect inline — the reconnect
  /// cost is charged to that request's latency, as open loop demands.
  LoadResult Run(std::uint16_t port);

 private:
  LoadgenOptions options_;
  LoadScenario scenario_;
};

}  // namespace gaa::workload
