#include "workload/trace.h"

#include <algorithm>

#include "http/request.h"
#include "util/strings.h"

namespace gaa::workload {

namespace {

const char* const kStaticPages[] = {"/index.html", "/docs/guide.html",
                                    "/docs/api.html"};
const char* const kSearchTerms[] = {"apache", "policy", "gaa", "intrusion",
                                    "acl", "report", "status"};
const char* const kUnknownProbes[] = {
    "/cgi-bin/count.cgi",   "/cgi-bin/websendmail", "/cgi-bin/handler",
    "/cgi-bin/campas",      "/cgi-bin/view-source", "/cgi-bin/aglimpse",
    "/cgi-bin/webdist.cgi", "/cgi-bin/faxsurvey"};

}  // namespace

const char* RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kStaticPage:
      return "static_page";
    case RequestKind::kSearchCgi:
      return "search_cgi";
    case RequestKind::kPrivatePage:
      return "private_page";
    case RequestKind::kCgiProbe:
      return "cgi_probe";
    case RequestKind::kDosSlashes:
      return "dos_slashes";
    case RequestKind::kNimdaPercent:
      return "nimda_percent";
    case RequestKind::kOverflowInput:
      return "overflow_input";
    case RequestKind::kPasswordGuess:
      return "password_guess";
    case RequestKind::kIllFormed:
      return "ill_formed";
    case RequestKind::kUnknownProbe:
      return "unknown_probe";
    case RequestKind::kSlowHeaders:
      return "slow_headers";
    case RequestKind::kSmugglingProbe:
      return "smuggling_probe";
    case RequestKind::kPathTraversal:
      return "path_traversal";
    case RequestKind::kHeaderFlood:
      return "header_flood";
    case RequestKind::kCachePoison:
      return "cache_poison";
  }
  return "?";
}

bool IsAttackKind(RequestKind kind) {
  switch (kind) {
    case RequestKind::kStaticPage:
    case RequestKind::kSearchCgi:
    case RequestKind::kPrivatePage:
      return false;
    default:
      return true;
  }
}

bool IsPartialRequestKind(RequestKind kind) {
  return kind == RequestKind::kSlowHeaders;
}

TraceGenerator::TraceGenerator(TraceOptions options)
    : options_(options), rng_(options.seed) {}

std::string TraceGenerator::BenignIp() {
  // 10.0.x.y pool.
  auto idx = rng_.NextBelow(options_.benign_clients);
  return "10.0." + std::to_string(idx / 250) + "." +
         std::to_string(1 + idx % 250);
}

std::string TraceGenerator::AttackerIp() {
  auto idx = rng_.NextBelow(options_.attacker_clients);
  return "203.0.113." + std::to_string(1 + idx % 250);
}

TraceRequest TraceGenerator::Make(RequestKind kind) {
  TraceRequest out;
  out.kind = kind;
  out.label = RequestKindName(kind);
  out.client_ip = IsAttackKind(kind) ? AttackerIp() : BenignIp();

  switch (kind) {
    case RequestKind::kStaticPage: {
      const char* page = kStaticPages[rng_.NextBelow(std::size(kStaticPages))];
      out.raw = http::BuildGetRequest(page);
      break;
    }
    case RequestKind::kSearchCgi: {
      const char* term = kSearchTerms[rng_.NextBelow(std::size(kSearchTerms))];
      out.raw = http::BuildGetRequest(std::string("/cgi-bin/search?q=") + term);
      break;
    }
    case RequestKind::kPrivatePage: {
      out.raw = http::BuildGetRequest(
          "/private/report.html",
          {{"Authorization",
            "Basic " + util::Base64Encode(options_.user + ":" +
                                          options_.password)}});
      break;
    }
    case RequestKind::kCgiProbe: {
      // Alternate between the two §7.2 probe targets; phf carries the
      // classic newline meta-character payload.
      if (rng_.NextBool(0.5)) {
        out.raw = http::BuildGetRequest(
            "/cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd");
        out.label = "cgi_probe:phf";
      } else {
        out.raw = http::BuildGetRequest("/cgi-bin/test-cgi?*");
        out.label = "cgi_probe:test-cgi";
      }
      break;
    }
    case RequestKind::kDosSlashes: {
      std::string target = "/";
      target.append(60 + rng_.NextBelow(60), '/');
      out.raw = http::BuildGetRequest(target);
      break;
    }
    case RequestKind::kNimdaPercent: {
      out.raw = http::BuildGetRequest(
          "/scripts/..%255c..%255cwinnt/system32/cmd.exe?/c+dir");
      break;
    }
    case RequestKind::kOverflowInput: {
      std::string query(1001 + rng_.NextBelow(2000), 'A');
      out.raw = http::BuildGetRequest("/cgi-bin/search?q=" + query);
      break;
    }
    case RequestKind::kPasswordGuess: {
      static const char* const kGuesses[] = {"123456", "password", "letmein",
                                             "admin", "root"};
      out.raw = http::BuildGetRequest(
          "/private/report.html",
          {{"Authorization",
            "Basic " + util::Base64Encode(
                           options_.user + ":" +
                           kGuesses[rng_.NextBelow(std::size(kGuesses))])}});
      break;
    }
    case RequestKind::kIllFormed: {
      switch (rng_.NextBelow(3)) {
        case 0:
          out.raw = "GEX /index.html HTTP/1.1\r\n\r\n";
          break;
        case 1:
          out.raw = "GET /index.html\r\n\r\n";  // missing version
          break;
        default:
          out.raw = std::string("GET /\x01index HTTP/1.1\r\n\r\n");
          break;
      }
      break;
    }
    case RequestKind::kUnknownProbe: {
      const char* probe =
          kUnknownProbes[rng_.NextBelow(std::size(kUnknownProbes))];
      out.raw = http::BuildGetRequest(probe);
      break;
    }
    case RequestKind::kSlowHeaders: {
      // Slowloris: a plausible head that never reaches the blank line.
      // IsPartialRequestKind() tells the driver to send this and close —
      // the server diagnoses a truncated request.
      out.raw = "GET /index.html HTTP/1.1\r\nHost: localhost\r\nX-Slow-" +
                std::to_string(rng_.NextBelow(1000)) + ": dribble\r\n";
      break;
    }
    case RequestKind::kSmugglingProbe: {
      // Conflicting framing headers: two Content-Lengths that disagree
      // (the classic CL.CL desync probe), or CL alongside a chunked TE.
      if (rng_.NextBool(0.5)) {
        out.raw =
            "POST /cgi-bin/search HTTP/1.1\r\nHost: localhost\r\n"
            "Content-Length: 4\r\nContent-Length: 11\r\n\r\nq=aa";
        out.label = "smuggling_probe:cl_cl";
      } else {
        out.raw =
            "POST /cgi-bin/search HTTP/1.1\r\nHost: localhost\r\n"
            "Content-Length: 4\r\nContent-Length: 0\r\n\r\nq=aa";
        out.label = "smuggling_probe:cl_zero";
      }
      break;
    }
    case RequestKind::kPathTraversal: {
      // Percent-encoded dot segments that decode to real ".." runs.
      static const char* const kTraversals[] = {
          "/docs/%2e%2e/%2e%2e/etc/passwd",
          "/%2e%2e/%2e%2e/%2e%2e/etc/shadow",
          "/docs/..%2f..%2fprivate/report.html"};
      out.raw = http::BuildGetRequest(
          kTraversals[rng_.NextBelow(std::size(kTraversals))]);
      break;
    }
    case RequestKind::kHeaderFlood: {
      // The §1 DoS generalized: blow past ParseLimits::max_headers.
      std::string raw = "GET /index.html HTTP/1.1\r\nHost: localhost\r\n";
      const std::size_t n = 120 + rng_.NextBelow(80);
      for (std::size_t i = 0; i < n; ++i) {
        raw += "X-Flood-" + std::to_string(i) + ": x\r\n";
      }
      raw += "\r\n";
      out.raw = std::move(raw);
      break;
    }
    case RequestKind::kCachePoison: {
      // Two conflicting Host headers: whichever one an upstream cache keys
      // on, the other poisons.  The parser rejects the conflict outright.
      out.raw =
          "GET /index.html HTTP/1.1\r\nHost: localhost\r\n"
          "Host: evil.example\r\n\r\n";
      break;
    }
  }
  return out;
}

std::vector<TraceRequest> TraceGenerator::Generate() {
  std::vector<TraceRequest> trace;
  trace.reserve(options_.count);
  const RequestKind benign[] = {RequestKind::kStaticPage,
                                RequestKind::kSearchCgi,
                                RequestKind::kPrivatePage};
  const RequestKind attacks[] = {
      RequestKind::kCgiProbe,      RequestKind::kDosSlashes,
      RequestKind::kNimdaPercent,  RequestKind::kOverflowInput,
      RequestKind::kPasswordGuess, RequestKind::kIllFormed};
  for (std::size_t i = 0; i < options_.count; ++i) {
    bool attack = rng_.NextBool(options_.attack_fraction);
    RequestKind kind =
        attack ? attacks[rng_.NextBelow(std::size(attacks))]
               : benign[rng_.NextBelow(std::size(benign))];
    trace.push_back(Make(kind));
  }
  return trace;
}

std::vector<TraceRequest> TraceGenerator::VulnerabilityScan(
    const std::string& attacker_ip, std::size_t unknown_probes) {
  std::vector<TraceRequest> scan;
  TraceRequest first = Make(RequestKind::kCgiProbe);
  first.client_ip = attacker_ip;
  scan.push_back(std::move(first));
  for (std::size_t i = 0; i < unknown_probes; ++i) {
    TraceRequest probe;
    probe.kind = RequestKind::kUnknownProbe;
    probe.label = "unknown_probe";
    probe.client_ip = attacker_ip;
    probe.raw = http::BuildGetRequest(
        kUnknownProbes[i % std::size(kUnknownProbes)]);
    scan.push_back(std::move(probe));
  }
  return scan;
}

}  // namespace gaa::workload
