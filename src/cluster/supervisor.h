// Cluster supervisor (DESIGN.md §15): owns the shared-memory bus, the
// SO_REUSEPORT listener sockets and the fleet of shared-nothing server
// processes.
//
// Process model — exec, never bare fork.  The supervisor may run inside a
// threaded host (a test binary, a bench harness), where forked children
// must not touch locks the snapshotting thread might have held.  So a
// child is fork + immediate execve of the *same executable*
// (/proc/self/exe by default); the re-exec'd binary detects cluster-child
// mode from the environment (MaybeRunChildFromEnv in cluster_server.h) and
// never reaches the host's normal main path.
//
// Listener lifetime is the crux of "no connection refused": the supervisor
// creates every shard listener itself (processes × shards_per_process
// sockets, one SO_REUSEPORT group) and KEEPS its own copy of each fd for
// the cluster's whole life.  A child gets the fds across exec and serves
// from them; when it dies — crash or rolling restart — the kernel keeps
// the socket's accept backlog alive through the supervisor's copy, and the
// replacement child resumes accepting from that same backlog.  Clients
// connecting during the gap wait in the backlog; nobody sees ECONNREFUSED.
//
// Supervision: a reaper thread waitpid-polls the fleet, respawning dead
// slots with exponential backoff (reset after a stable run).  Rolling
// restart drains one slot at a time: SIGTERM (the child drains in-flight
// requests under TcpServer's drain deadline, flushes audit, marks its bus
// slot exited), reap, re-exec onto the same fds, wait live, next slot —
// the fleet never has fewer than N-1 serving processes.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/bus.h"
#include "util/status.h"

namespace gaa::cluster {

struct SupervisorOptions {
  std::uint32_t processes = 2;
  /// Reactor shards per server process; the supervisor creates
  /// processes × shards_per_process listeners in one SO_REUSEPORT group.
  std::uint32_t shards_per_process = 1;
  std::uint16_t port = 0;  ///< 0 = pick an ephemeral port
  int backlog = 128;
  /// Forwarded to each child as its TcpServer drain deadline (SIGTERM →
  /// drain → exit).
  int drain_deadline_ms = 2000;

  bool respawn = true;
  int respawn_backoff_initial_ms = 100;
  int respawn_backoff_max_ms = 5000;
  /// A child that stayed up at least this long resets its slot's backoff.
  int respawn_backoff_reset_ms = 5000;
  int reap_poll_ms = 20;
  /// Start()/RollingRestart(): how long to wait for a child to mark its
  /// bus slot live.
  int child_ready_timeout_ms = 15000;
  /// Stop(): SIGTERM → this grace → SIGKILL.
  int stop_grace_ms = 4000;

  /// Executable to re-exec ("" = /proc/self/exe) and its argv[1..].
  std::string exec_path;
  std::vector<std::string> exec_args;
  /// Opaque configuration handed to the child via GAA_CLUSTER_PAYLOAD —
  /// the harness-specific part (doc tree choice, policies, audit paths).
  std::string child_payload;
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Create the bus + listeners, spawn every slot, wait for all live.
  util::VoidResult Start();

  /// SIGTERM the fleet (children drain), escalate to SIGKILL at the grace
  /// deadline, reap everything, stop supervision.  Idempotent.
  void Stop();

  /// Replace every process one slot at a time (drain + re-exec on the same
  /// inherited fds).  The listener backlog carries connections across each
  /// swap.
  util::VoidResult RollingRestart();

  std::uint16_t port() const { return port_; }
  std::uint64_t generation() const { return generation_; }
  ClusterBus* bus() { return &bus_; }

  pid_t pid_of(std::uint32_t slot) const;
  /// Total respawns performed by the reaper (not counting rolling
  /// restarts).
  std::uint64_t respawn_count() const { return respawns_.load(); }

  /// Block until `slot`'s bus state is live with a fresh heartbeat.
  util::VoidResult WaitSlotLive(std::uint32_t slot, int timeout_ms);

  /// Test hook: deliver `sig` to the slot's current process.
  void Kill(std::uint32_t slot, int sig);

 private:
  struct SlotProc {
    pid_t pid = -1;
    std::vector<int> listen_fds;     ///< supervisor-held copies
    int backoff_ms = 0;              ///< next respawn delay
    std::int64_t spawned_at_ms = 0;
    std::int64_t respawn_due_ms = 0;  ///< 0 = no respawn pending
  };

  util::VoidResult CreateListeners();
  util::VoidResult SpawnSlotLocked(std::uint32_t slot);
  /// SIGTERM (then SIGKILL once NowMs() passes the absolute `deadline_ms`)
  /// and reap one child.  Caller holds mu_.
  void TerminateLocked(std::uint32_t slot, std::int64_t deadline_ms);
  /// Terminate + reap every slot against one shared `grace_ms` window and
  /// close all listener fds.  Used by Stop() and by Start()'s failure
  /// paths so a partial Start never strands live children.  Caller holds
  /// mu_.
  void ShutdownFleetLocked(int grace_ms);
  void ReaperLoop();

  SupervisorOptions options_;
  std::uint64_t generation_ = 0;
  std::uint16_t port_ = 0;
  ClusterBus bus_;

  mutable std::mutex mu_;
  std::vector<SlotProc> slots_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> respawns_{0};
  std::thread reaper_;
};

}  // namespace gaa::cluster
