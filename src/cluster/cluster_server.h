// Cluster child entry points (DESIGN.md §15).
//
// A cluster child is the *same binary* as the harness that started the
// supervisor, re-exec'd.  Each binary that can act as a cluster child
// calls MaybeRunChildFromEnv() first thing in main(): when the
// GAA_CLUSTER_* environment (set by Supervisor::SpawnSlotLocked) is
// present, it attaches the shared segment (refusing a stale generation),
// adopts the inherited listener fds, runs the supplied child main, and
// _exits — the process never reaches the harness's normal main path.
//
// RunClusterChild() is the standard child main body: it wires a
// GaaWebServer + TcpServer to the cluster bus —
//
//   * ThreatService bus hook: every locally detected alert is pushed onto
//     the shared alert ring and the packed-atomic threat cell;
//   * transport tick: drain remote alerts into the local ThreatService
//     (same window, same scores → every process converges on the same
//     level, and SystemState::SetThreatLevel bumps the threat epoch that
//     fences the DecisionCache memos), run IDS periodic maintenance,
//     publish the telemetry slab, heartbeat;
//   * /__status: Prometheus gains a process label plus other live
//     processes' slab metrics; "<status_path>/cluster" serves the fleet
//     JSON view;
//   * SIGTERM: stop accepting, drain in-flight requests bounded by the
//     supervisor-supplied drain deadline, flush the audit stream, mark the
//     bus slot exited, exit 0.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/bus.h"
#include "http/doc_tree.h"
#include "http/tcp_server.h"
#include "integration/gaa_web_server.h"

namespace gaa::cluster {

/// Everything a re-exec'd child learns from the supervisor's environment.
struct ChildContext {
  std::uint32_t slot = 0;
  std::uint32_t nprocs = 0;
  std::uint64_t generation = 0;
  std::uint16_t port = 0;
  int drain_deadline_ms = 2000;
  std::vector<int> listen_fds;  ///< one per reactor shard, in shard order
  std::string payload;          ///< SupervisorOptions::child_payload
  ClusterBus bus;               ///< attached, generation-checked
};

using ChildMain = std::function<int(ChildContext&)>;

/// Call first thing in main().  No-op unless GAA_CLUSTER_SLOT is set; in a
/// cluster child it runs `child_main` and never returns (any setup failure
/// — including a stale-generation segment — exits nonzero).
void MaybeRunChildFromEnv(const ChildMain& child_main);

/// True once SIGTERM arrived (handler installed by RunClusterChild).
bool TermRequested();

struct ClusterChildOptions {
  /// Facade configuration; use_real_clock is forced on (a cluster serves
  /// wall-clock traffic).  Set per-process audit stream paths here — the
  /// kill test derives them from ChildContext::slot + getpid().
  web::GaaWebServer::Options web;
  /// Transport configuration; reactor_shards, inherited fds, and the drain
  /// deadline are overwritten from the ChildContext.
  http::TcpServer::Options tcp;
  /// Document tree factory (null = http::DocTree::DemoSite()).
  std::function<http::DocTree()> make_tree;
  /// Policies / users / tenants, applied before serving starts.
  std::function<void(web::GaaWebServer&)> configure;
  /// Transport tick driving alert drain + slab publish + IDS maintenance.
  int tick_interval_ms = 20;
};

/// Standard child main: serve until SIGTERM, then drain and exit.
/// Returns the process exit code.
int RunClusterChild(ChildContext& ctx, ClusterChildOptions options);

/// Fleet JSON for "<status_path>/cluster": generation, threat-cell
/// view, per-process slot states and name-merged counter totals across
/// every live slab.
std::string RenderClusterJson(const ClusterBus& bus, std::uint32_t self_slot);

/// Prometheus lines for the other live processes' slabs plus
/// gaa_cluster_* fleet meta series; appended to the local registry's
/// process-labelled rendering by the /__status override.
std::string RenderFleetPrometheus(const ClusterBus& bus,
                                  std::uint32_t self_slot);

}  // namespace gaa::cluster
