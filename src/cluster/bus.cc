#include "cluster/bus.h"

#include <time.h>

#include <cstring>

namespace gaa::cluster {
namespace {

using wire::AlertSlot;
using wire::ProcessSlot;
using wire::SegmentHeader;
using wire::SlotState;

constexpr std::uint64_t kRingMask = wire::kAlertRingCapacity - 1;
static_assert((wire::kAlertRingCapacity & kRingMask) == 0,
              "ring capacity must be a power of two");

std::uint64_t DoubleBits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsDouble(std::uint64_t bits) {
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::size_t SlotsOffset() {
  // ProcessSlot is 64-byte aligned; round the header up to match.
  return (sizeof(SegmentHeader) + 63) & ~std::size_t{63};
}

ProcessSlot* SlotArray(SegmentHeader* header) {
  auto* base = reinterpret_cast<char*>(header) + SlotsOffset();
  return reinterpret_cast<ProcessSlot*>(base);
}

}  // namespace

std::size_t ClusterBus::BytesFor(std::uint32_t nprocs) {
  return SlotsOffset() + static_cast<std::size_t>(nprocs) * sizeof(ProcessSlot);
}

util::Result<ClusterBus> ClusterBus::Create(util::ShmRegion region,
                                            std::uint32_t nprocs,
                                            std::uint64_t generation) {
  if (!region.valid()) {
    return util::Error(util::ErrorCode::kInvalidArgument, "invalid shm region");
  }
  if (nprocs == 0 || nprocs > wire::kMaxProcs) {
    return util::Error(util::ErrorCode::kInvalidArgument,
                       "cluster size out of range");
  }
  if (region.size() < BytesFor(nprocs)) {
    return util::Error(util::ErrorCode::kInvalidArgument,
                       "shm region smaller than cluster layout");
  }
  // The region is freshly zero-filled, which is a valid initial state for
  // every atomic in the layout; only the identity fields need values.
  auto* header = static_cast<SegmentHeader*>(region.data());
  header->layout_version = wire::kLayoutVersion;
  header->nprocs = nprocs;
  header->generation = generation;
  header->magic = wire::kMagic;
  return ClusterBus(std::move(region), header);
}

util::Result<ClusterBus> ClusterBus::Attach(util::ShmRegion region,
                                            std::uint64_t expected_generation) {
  if (!region.valid() || region.size() < sizeof(SegmentHeader)) {
    return util::Error(util::ErrorCode::kInvalidArgument,
                       "shm region too small for cluster header");
  }
  auto* header = static_cast<SegmentHeader*>(region.data());
  if (header->magic != wire::kMagic) {
    return util::Error(util::ErrorCode::kInvalidArgument,
                       "cluster segment magic mismatch");
  }
  if (header->layout_version != wire::kLayoutVersion) {
    return util::Error(util::ErrorCode::kInvalidArgument,
                       "cluster segment layout version mismatch");
  }
  if (header->generation != expected_generation) {
    return util::Error(
        util::ErrorCode::kInvalidArgument,
        "cluster segment generation mismatch (stale slab refused)");
  }
  if (header->nprocs == 0 || header->nprocs > wire::kMaxProcs ||
      region.size() < BytesFor(header->nprocs)) {
    return util::Error(util::ErrorCode::kInvalidArgument,
                       "cluster segment slot table out of range");
  }
  return ClusterBus(std::move(region), header);
}

// --- threat cell -------------------------------------------------------------

void ClusterBus::PublishThreat(int level, int origin_slot) {
  // The whole triple lives in one word (wire::ThreatCell), so a publish is
  // a lock-free CAS: the only cross-process contract is the single swap,
  // and a writer SIGKILLed at any point has either fully published or not
  // touched the cell at all.  The loop retries only while *other* writers
  // make progress, so it cannot be wedged by a dead one.
  std::atomic<std::uint64_t>& cell = header_->threat.packed;
  std::uint64_t old = cell.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t serial = (old >> 16) + 1;
    const std::uint64_t next =
        (serial << 16) |
        ((static_cast<std::uint64_t>(origin_slot) & 0xFF) << 8) |
        (static_cast<std::uint64_t>(level) & 0xFF);
    if (cell.compare_exchange_weak(old, next, std::memory_order_release,
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

ClusterBus::ThreatView ClusterBus::ReadThreat() const {
  const std::uint64_t bits =
      header_->threat.packed.load(std::memory_order_acquire);
  ThreatView view;
  view.level = static_cast<std::int8_t>(bits & 0xFF);
  view.origin = static_cast<std::int8_t>((bits >> 8) & 0xFF);
  view.serial = bits >> 16;
  return view;
}

// --- alert ring --------------------------------------------------------------

void ClusterBus::PushAlert(double severity, int origin_slot) {
  wire::AlertRing& ring = header_->alerts;
  const std::uint64_t pos = ring.tail.fetch_add(1, std::memory_order_acq_rel);
  AlertSlot& slot = ring.slots[pos & kRingMask];
  slot.severity_bits.store(DoubleBits(severity), std::memory_order_relaxed);
  slot.origin.store(origin_slot, std::memory_order_relaxed);
  slot.seq.store(pos + 1, std::memory_order_release);
}

std::uint64_t ClusterBus::AlertCursorNow() const {
  return header_->alerts.tail.load(std::memory_order_acquire);
}

std::uint64_t ClusterBus::AlertCursorReplay() const {
  const std::uint64_t tail =
      header_->alerts.tail.load(std::memory_order_acquire);
  return tail > wire::kAlertRingCapacity ? tail - wire::kAlertRingCapacity : 0;
}

bool ClusterBus::DrainAlerts(std::uint64_t* cursor,
                             const std::function<void(const Alert&)>& fn) {
  wire::AlertRing& ring = header_->alerts;
  bool overrun = false;
  // Bounded iteration: a full drain plus one resync's worth.
  for (std::uint32_t step = 0; step < 2 * wire::kAlertRingCapacity; ++step) {
    const std::uint64_t pos = *cursor;
    AlertSlot& slot = ring.slots[pos & kRingMask];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq == pos + 1) {
      Alert alert;
      alert.severity = BitsDouble(
          slot.severity_bits.load(std::memory_order_relaxed));
      alert.origin = slot.origin.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != pos + 1) {
        // Torn read: a producer lapped us mid-copy.  Resync to the present.
        overrun = true;
        *cursor = ring.tail.load(std::memory_order_acquire);
        continue;
      }
      fn(alert);
      *cursor = pos + 1;
    } else if (seq > pos + 1) {
      // Producers lapped this reader; the slot already carries a newer
      // record.  Jump past the loss and let the caller consult the threat
      // cell for the authoritative level.
      overrun = true;
      *cursor = ring.tail.load(std::memory_order_acquire);
    } else if (ring.tail.load(std::memory_order_acquire) > pos) {
      // The tail moved past this position, so some producer reserved it —
      // but the record is not published.  A live producer closes that
      // window within a few instructions; one SIGKILLed between its tail
      // fetch_add and the seq release-store never will, and without a
      // bound here its hole would park every reader's cursor forever,
      // silently cutting the whole fleet off from all later alerts.  Park
      // on first sight (the producer may merely be preempted); once the
      // hole outlives the grace window, declare the producer dead, skip
      // the slot and report the loss so the caller falls back to the
      // threat cell.
      const std::int64_t now = MonotonicMicros();
      if (stall_pos_ != pos) {
        stall_pos_ = pos;
        stall_since_us_ = now;
        break;
      }
      if (now - stall_since_us_ < wire::kStalledPublishGraceUs) {
        break;
      }
      overrun = true;
      *cursor = pos + 1;
      stall_pos_ = ~std::uint64_t{0};
    } else {
      break;  // caught up: nothing reserved at the cursor
    }
  }
  return overrun;
}

// --- process slots -----------------------------------------------------------

wire::ProcessSlot* ClusterBus::slot(std::uint32_t index) {
  return &SlotArray(header_)[index];
}

const wire::ProcessSlot* ClusterBus::slot(std::uint32_t index) const {
  return &SlotArray(header_)[index];
}

std::uint32_t ClusterBus::ClaimSlot(std::uint32_t slot_index, int pid) {
  ProcessSlot* s = slot(slot_index);
  // kInit parks concurrent readers while the slab is reset; they resume
  // after the kLive release-store below.
  s->state.store(static_cast<std::uint32_t>(SlotState::kInit),
                 std::memory_order_release);
  s->entry_count.store(0, std::memory_order_release);
  s->slab_dropped.store(0, std::memory_order_relaxed);
  for (auto& entry : s->entries) {
    entry.ready.store(0, std::memory_order_relaxed);
  }
  s->pid.store(pid, std::memory_order_relaxed);
  s->threat_level.store(0, std::memory_order_relaxed);
  s->heartbeat_us.store(MonotonicMicros(), std::memory_order_relaxed);
  const std::uint32_t incarnation =
      s->incarnation.load(std::memory_order_relaxed) + 1;
  s->incarnation.store(incarnation, std::memory_order_relaxed);
  s->state.store(static_cast<std::uint32_t>(SlotState::kLive),
                 std::memory_order_release);
  return incarnation;
}

void ClusterBus::MarkExited(std::uint32_t slot_index) {
  slot(slot_index)->state.store(
      static_cast<std::uint32_t>(SlotState::kExited),
      std::memory_order_release);
}

void ClusterBus::Heartbeat(std::uint32_t slot_index, std::int64_t now_us,
                           int threat_level) {
  ProcessSlot* s = slot(slot_index);
  s->heartbeat_us.store(now_us, std::memory_order_relaxed);
  s->threat_level.store(threat_level, std::memory_order_relaxed);
}

ClusterBus::ProcessView ClusterBus::ViewProcess(std::uint32_t index) const {
  const ProcessSlot* s = slot(index);
  ProcessView view;
  view.slot = index;
  view.live = s->state.load(std::memory_order_acquire) ==
              static_cast<std::uint32_t>(SlotState::kLive);
  view.pid = s->pid.load(std::memory_order_relaxed);
  view.incarnation = s->incarnation.load(std::memory_order_relaxed);
  view.heartbeat_us = s->heartbeat_us.load(std::memory_order_relaxed);
  view.threat_level = s->threat_level.load(std::memory_order_relaxed);
  return view;
}

std::vector<ClusterBus::ProcessView> ClusterBus::ViewProcesses() const {
  std::vector<ProcessView> views;
  views.reserve(nprocs());
  for (std::uint32_t i = 0; i < nprocs(); ++i) {
    views.push_back(ViewProcess(i));
  }
  return views;
}

// --- telemetry slab ----------------------------------------------------------

int ClusterBus::AddSlabEntry(std::uint32_t slot_index, std::string_view name,
                             std::string_view labels, SlabKind kind) {
  ProcessSlot* s = slot(slot_index);
  const std::uint32_t idx = s->entry_count.load(std::memory_order_relaxed);
  if (idx >= wire::kSlabEntries || name.size() >= wire::kSlabNameBytes ||
      labels.size() >= wire::kSlabLabelBytes) {
    s->slab_dropped.fetch_add(1, std::memory_order_relaxed);
    return -1;
  }
  wire::SlabEntry& entry = s->entries[idx];
  entry.kind = static_cast<std::uint8_t>(kind);
  std::memset(entry.name, 0, sizeof(entry.name));
  std::memcpy(entry.name, name.data(), name.size());
  std::memset(entry.labels, 0, sizeof(entry.labels));
  std::memcpy(entry.labels, labels.data(), labels.size());
  entry.value.store(0, std::memory_order_relaxed);
  entry.ready.store(1, std::memory_order_release);
  s->entry_count.store(idx + 1, std::memory_order_release);
  return static_cast<int>(idx);
}

void ClusterBus::SetSlabValue(std::uint32_t slot_index, int entry,
                              std::int64_t value) {
  if (entry < 0 || entry >= static_cast<int>(wire::kSlabEntries)) {
    return;
  }
  slot(slot_index)->entries[entry].value.store(value,
                                               std::memory_order_relaxed);
}

std::vector<ClusterBus::MetricSample> ClusterBus::ReadSlab(
    std::uint32_t slot_index) const {
  const ProcessSlot* s = slot(slot_index);
  std::uint32_t n = s->entry_count.load(std::memory_order_acquire);
  if (n > wire::kSlabEntries) {
    n = wire::kSlabEntries;
  }
  std::vector<MetricSample> samples;
  samples.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const wire::SlabEntry& entry = s->entries[i];
    if (entry.ready.load(std::memory_order_acquire) == 0) {
      continue;
    }
    MetricSample sample;
    sample.name.assign(entry.name,
                       ::strnlen(entry.name, sizeof(entry.name)));
    sample.labels.assign(entry.labels,
                         ::strnlen(entry.labels, sizeof(entry.labels)));
    if (sample.name.empty()) {
      continue;  // entry being reset concurrently with a slot claim
    }
    sample.kind = entry.kind == static_cast<std::uint8_t>(SlabKind::kGauge)
                      ? SlabKind::kGauge
                      : SlabKind::kCounter;
    sample.value = entry.value.load(std::memory_order_relaxed);
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::int64_t ClusterBus::MonotonicMicros() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 +
         ts.tv_nsec / 1'000;
}

}  // namespace gaa::cluster
