#include "cluster/supervisor.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

extern char** environ;

namespace gaa::cluster {
namespace {

std::int64_t NowMs() { return ClusterBus::MonotonicMicros() / 1000; }

void SleepMs(int ms) {
  timespec ts{};
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1'000'000;
  ::nanosleep(&ts, nullptr);
}

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// A generation no other supervisor incarnation on this machine can share:
/// wall-clock nanoseconds folded with the supervisor pid.
std::uint64_t FreshGeneration() {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  const std::uint64_t ns = static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
                           static_cast<std::uint64_t>(ts.tv_nsec);
  return ns ^ (static_cast<std::uint64_t>(::getpid()) << 48);
}

}  // namespace

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)) {}

Supervisor::~Supervisor() { Stop(); }

util::VoidResult Supervisor::CreateListeners() {
  for (std::uint32_t slot = 0; slot < options_.processes; ++slot) {
    slots_[slot].listen_fds.clear();
    for (std::uint32_t shard = 0; shard < options_.shards_per_process;
         ++shard) {
      int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
      if (fd < 0) {
        return util::VoidResult(util::ErrorCode::kUnavailable,
                                Errno("socket"));
      }
      int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
        ::close(fd);
        return util::VoidResult(util::ErrorCode::kUnavailable,
                                Errno("setsockopt(SO_REUSEPORT)"));
      }
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(port_);
      if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
        ::close(fd);
        return util::VoidResult(util::ErrorCode::kUnavailable, Errno("bind"));
      }
      if (port_ == 0) {
        socklen_t len = sizeof(addr);
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
        port_ = ntohs(addr.sin_port);  // every later socket joins this port
      }
      if (::listen(fd, options_.backlog) < 0) {
        ::close(fd);
        return util::VoidResult(util::ErrorCode::kUnavailable,
                                Errno("listen"));
      }
      slots_[slot].listen_fds.push_back(fd);
    }
  }
  return util::VoidResult::Ok();
}

util::VoidResult Supervisor::Start() {
  if (running_.load()) {
    return util::VoidResult(util::ErrorCode::kAlreadyExists,
                            "supervisor already running");
  }
  if (options_.processes == 0 || options_.processes > wire::kMaxProcs) {
    return util::VoidResult(util::ErrorCode::kInvalidArgument,
                            "cluster size out of range");
  }
  generation_ = FreshGeneration();
  port_ = options_.port;
  slots_.assign(options_.processes, SlotProc{});
  for (auto& slot : slots_) {
    slot.backoff_ms = options_.respawn_backoff_initial_ms;
  }

  auto region = util::ShmRegion::Create(
      "gaa-cluster", ClusterBus::BytesFor(options_.processes));
  if (!region.ok()) return region.error();
  auto bus = ClusterBus::Create(std::move(region).take(), options_.processes,
                                generation_);
  if (!bus.ok()) return bus.error();
  bus_ = std::move(bus).take();

  // Any failure below must leave nothing behind: kill + reap whatever was
  // already spawned and close every listener, or a failed Start strands
  // orphan children serving on the port with running_ still false (so
  // Stop() and the destructor would never touch them).
  if (auto r = CreateListeners(); !r.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ShutdownFleetLocked(0);
    return r;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::uint32_t slot = 0; slot < options_.processes; ++slot) {
      if (auto r = SpawnSlotLocked(slot); !r.ok()) {
        ShutdownFleetLocked(options_.stop_grace_ms);
        return r;
      }
    }
  }
  for (std::uint32_t slot = 0; slot < options_.processes; ++slot) {
    if (auto r = WaitSlotLive(slot, options_.child_ready_timeout_ms);
        !r.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ShutdownFleetLocked(options_.stop_grace_ms);
      return r;
    }
  }

  stopping_.store(false);
  running_.store(true);
  reaper_ = std::thread([this] { ReaperLoop(); });
  return util::VoidResult::Ok();
}

util::VoidResult Supervisor::SpawnSlotLocked(std::uint32_t slot) {
  SlotProc& proc = slots_[slot];

  // Everything the child needs crosses exec as environment + raw fd
  // numbers (fork preserves them; the child re-maps nothing).  Build every
  // string before fork: the child side runs only async-signal-safe calls.
  std::string fds_csv;
  for (int fd : proc.listen_fds) {
    if (!fds_csv.empty()) fds_csv.push_back(',');
    fds_csv += std::to_string(fd);
  }
  std::vector<std::string> extra = {
      "GAA_CLUSTER_SLOT=" + std::to_string(slot),
      "GAA_CLUSTER_NPROCS=" + std::to_string(options_.processes),
      "GAA_CLUSTER_GENERATION=" + std::to_string(generation_),
      "GAA_CLUSTER_SHM_FD=" + std::to_string(bus_.region().fd()),
      "GAA_CLUSTER_SHM_BYTES=" + std::to_string(bus_.region().size()),
      "GAA_CLUSTER_LISTEN_FDS=" + fds_csv,
      "GAA_CLUSTER_PORT=" + std::to_string(port_),
      "GAA_CLUSTER_DRAIN_MS=" + std::to_string(options_.drain_deadline_ms),
      "GAA_CLUSTER_PAYLOAD=" + options_.child_payload,
  };
  std::vector<char*> envp;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    if (std::strncmp(*e, "GAA_CLUSTER_", 12) == 0) continue;
    envp.push_back(*e);
  }
  for (auto& s : extra) envp.push_back(s.data());
  envp.push_back(nullptr);

  const std::string path =
      options_.exec_path.empty() ? "/proc/self/exe" : options_.exec_path;
  std::vector<std::string> args;
  args.push_back(path);
  for (const auto& a : options_.exec_args) args.push_back(a);
  std::vector<char*> argv;
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return util::VoidResult(util::ErrorCode::kResourceExhausted,
                            Errno("fork"));
  }
  if (pid == 0) {
    // Child (async-signal-safe section): let the bus fd and this slot's
    // listener fds survive the exec, then become the server binary.
    ::fcntl(bus_.region().fd(), F_SETFD, 0);
    for (int fd : proc.listen_fds) ::fcntl(fd, F_SETFD, 0);
    ::execve(path.c_str(), argv.data(), envp.data());
    _exit(127);
  }
  proc.pid = pid;
  proc.spawned_at_ms = NowMs();
  proc.respawn_due_ms = 0;
  return util::VoidResult::Ok();
}

void Supervisor::TerminateLocked(std::uint32_t slot, std::int64_t deadline_ms) {
  SlotProc& proc = slots_[slot];
  if (proc.pid <= 0) return;
  ::kill(proc.pid, SIGTERM);
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(proc.pid, &status, WNOHANG);
    if (r == proc.pid || (r < 0 && errno == ECHILD)) break;
    if (NowMs() >= deadline_ms) {
      ::kill(proc.pid, SIGKILL);
      ::waitpid(proc.pid, &status, 0);
      break;
    }
    SleepMs(5);
  }
  bus_.MarkExited(slot);
  proc.pid = -1;
  proc.respawn_due_ms = 0;
}

void Supervisor::ShutdownFleetLocked(int grace_ms) {
  // SIGTERM the whole fleet first so every child drains concurrently, then
  // reap each against ONE shared deadline — worst-case shutdown is
  // grace_ms, not processes × grace_ms.
  for (auto& proc : slots_) {
    if (proc.pid > 0) ::kill(proc.pid, SIGTERM);
  }
  const std::int64_t deadline = NowMs() + grace_ms;
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    TerminateLocked(slot, deadline);
  }
  for (auto& proc : slots_) {
    for (int fd : proc.listen_fds) ::close(fd);
    proc.listen_fds.clear();
  }
}

void Supervisor::ReaperLoop() {
  while (!stopping_.load()) {
    SleepMs(options_.reap_poll_ms);
    std::lock_guard<std::mutex> lock(mu_);
    const std::int64_t now = NowMs();
    for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
      SlotProc& proc = slots_[slot];
      if (proc.pid > 0) {
        int status = 0;
        const pid_t r = ::waitpid(proc.pid, &status, WNOHANG);
        if (r != proc.pid && !(r < 0 && errno == ECHILD)) continue;
        // Child is gone (crash or kill — clean shutdowns run through
        // TerminateLocked instead).  Its bus slot may still read "live"
        // after SIGKILL; correct that before anyone merges its slab.
        bus_.MarkExited(slot);
        proc.pid = -1;
        if (!options_.respawn) continue;
        // A stable run earns a fresh backoff; a crash loop doubles it.
        if (now - proc.spawned_at_ms >= options_.respawn_backoff_reset_ms) {
          proc.backoff_ms = options_.respawn_backoff_initial_ms;
        }
        proc.respawn_due_ms = now + proc.backoff_ms;
        proc.backoff_ms =
            std::min(proc.backoff_ms * 2, options_.respawn_backoff_max_ms);
      } else if (proc.respawn_due_ms != 0 && now >= proc.respawn_due_ms) {
        proc.respawn_due_ms = 0;
        if (SpawnSlotLocked(slot).ok()) {
          respawns_.fetch_add(1);
        }
      }
    }
  }
}

void Supervisor::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  if (reaper_.joinable()) reaper_.join();

  std::lock_guard<std::mutex> lock(mu_);
  ShutdownFleetLocked(options_.stop_grace_ms);
  // bus_ stays mapped: tests read final slot states after Stop().
}

util::VoidResult Supervisor::RollingRestart() {
  if (!running_.load()) {
    return util::VoidResult(util::ErrorCode::kUnavailable,
                            "supervisor not running");
  }
  for (std::uint32_t slot = 0; slot < options_.processes; ++slot) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Drain the old process first: its TcpServer stops accepting and
      // finishes in-flight requests, while the supervisor's listener copy
      // keeps the accept backlog queueing new connections for the
      // replacement.
      TerminateLocked(slot, NowMs() + options_.stop_grace_ms);
      if (auto r = SpawnSlotLocked(slot); !r.ok()) return r;
    }
    if (auto r = WaitSlotLive(slot, options_.child_ready_timeout_ms);
        !r.ok()) {
      return r;
    }
  }
  return util::VoidResult::Ok();
}

pid_t Supervisor::pid_of(std::uint32_t slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slot < slots_.size() ? slots_[slot].pid : -1;
}

util::VoidResult Supervisor::WaitSlotLive(std::uint32_t slot,
                                          int timeout_ms) {
  const std::int64_t deadline = NowMs() + timeout_ms;
  for (;;) {
    const ClusterBus::ProcessView view = bus_.ViewProcess(slot);
    if (view.live && view.pid == pid_of(slot)) {
      return util::VoidResult::Ok();
    }
    if (NowMs() >= deadline) {
      return util::VoidResult(
          util::ErrorCode::kUnavailable,
          "cluster slot " + std::to_string(slot) + " not live within " +
              std::to_string(timeout_ms) + "ms");
    }
    SleepMs(5);
  }
}

void Supervisor::Kill(std::uint32_t slot, int sig) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot < slots_.size() && slots_[slot].pid > 0) {
    ::kill(slots_[slot].pid, sig);
  }
}

}  // namespace gaa::cluster
