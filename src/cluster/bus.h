// ClusterBus: the shared-memory coordination plane between the cluster
// supervisor and its N shared-nothing server processes (DESIGN.md §15).
//
// One memfd-backed segment (util::ShmRegion) carries three planes:
//
//   1. Threat cell — a {level, origin, serial} triple packed into ONE
//      atomic 64-bit word.  Publishing is a CAS loop (bump the serial, swap
//      in the whole triple); reading is a single load.  Crash-safety is the
//      point of the packing: the cell is shared across processes, and a
//      child can be SIGKILLed at any instruction (the supervisor itself
//      escalates to SIGKILL at the drain deadline), so the protocol must
//      leave nothing — no lock, no odd sequence — that a dead writer could
//      leave behind to wedge or spin the survivors.  This is the fleet's
//      authoritative "system threat level" fallback when a process missed
//      individual alerts (ring overrun).
//
//   2. Alert ring — a fixed-size broadcast ring of {severity, origin}
//      records.  Multi-producer via an atomic tail fetch_add; every reader
//      keeps its *own* cursor (broadcast, not work-stealing), so each
//      process sees every fleet alert and feeds it into its local
//      ThreatService window.  All processes therefore run the *same* score
//      computation over the same alert stream and converge on the same
//      level — including a respawned process, which replays whatever
//      history is still in the ring.  A lapped reader detects the overrun
//      (slot sequence beyond its cursor) and falls back to the threat cell.
//      A producer SIGKILLed between its tail reservation and the slot
//      publish leaves a permanently unpublished hole; readers detect a hole
//      that outlives a grace window, skip it, and report it as loss so the
//      threat-cell fallback kicks in (see DrainAlerts).
//
//   3. Process slots — per-process lifecycle block (state / pid /
//      incarnation / heartbeat / published threat level) plus a telemetry
//      slab: a write-once name table with live atomic values, appended in
//      the owner's MetricRegistry creation order.  Any process renders a
//      fleet-wide /__status by walking other live slots' slabs; the slab is
//      a monitoring plane, so its read protocol is deliberately best-effort
//      (per-entry ready flags, no cross-entry snapshot).
//
// The segment header pins a magic, a layout version and a creation
// generation; Attach() refuses a mismatched generation so a re-exec'd
// process can never interpret a stale or foreign slab (the supervisor
// passes the expected generation through the environment).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/shm_region.h"
#include "util/status.h"

namespace gaa::cluster {

/// Metric kinds a slab entry can carry (histograms are flattened to
/// `_count` / `_sum` counter pairs by the publisher).
enum class SlabKind : std::uint8_t { kCounter = 1, kGauge = 2 };

namespace wire {

inline constexpr std::uint64_t kMagic = 0x47414143'4c555331ull;  // "GAACLUS1"
inline constexpr std::uint32_t kLayoutVersion = 2;
inline constexpr std::uint32_t kMaxProcs = 64;
inline constexpr std::uint32_t kAlertRingCapacity = 1024;  // power of two
inline constexpr std::uint32_t kSlabEntries = 384;
inline constexpr std::size_t kSlabNameBytes = 47;
inline constexpr std::size_t kSlabLabelBytes = 68;
/// How long an alert-ring slot may stay reserved-but-unpublished before a
/// reader declares its producer dead and skips it (see DrainAlerts).
inline constexpr std::int64_t kStalledPublishGraceUs = 50'000;

/// The fleet threat triple in one atomic word:
/// bits [63:16] publish serial, [15:8] origin slot (int8), [7:0] level
/// (int8).  A single-word CAS publish means a writer killed at any
/// instruction leaves the cell fully consistent — there is no lock or
/// sequence for the supervisor to repair, and readers never retry.
struct ThreatCell {
  std::atomic<std::uint64_t> packed;
};

struct AlertSlot {
  std::atomic<std::uint64_t> seq;  // position + 1 once published
  std::atomic<std::uint64_t> severity_bits;
  std::atomic<std::int32_t> origin;
  std::uint32_t pad;
};

struct AlertRing {
  std::atomic<std::uint64_t> tail;
  AlertSlot slots[kAlertRingCapacity];
};

/// One published metric.  Name/labels are written exactly once (before the
/// release-store of `ready`); only `value` changes afterwards.
struct SlabEntry {
  std::atomic<std::uint32_t> ready;
  std::uint8_t kind;
  char name[kSlabNameBytes];
  char labels[kSlabLabelBytes];
  std::atomic<std::int64_t> value;
};
static_assert(sizeof(SlabEntry) == 128, "slab entry should be 2 cache lines");

enum class SlotState : std::uint32_t {
  kEmpty = 0,
  kInit = 1,   // claimed, slab being reset — readers skip
  kLive = 2,
  kExited = 3,
};

struct alignas(64) ProcessSlot {
  std::atomic<std::uint32_t> state;  // SlotState
  std::atomic<std::uint32_t> incarnation;
  std::atomic<std::int32_t> pid;
  std::atomic<std::int64_t> heartbeat_us;   // CLOCK_MONOTONIC µs
  std::atomic<std::int32_t> threat_level;   // local ThreatService level
  std::atomic<std::uint32_t> entry_count;
  std::atomic<std::uint32_t> slab_dropped;  // entries that did not fit
  SlabEntry entries[kSlabEntries];
};

struct SegmentHeader {
  std::uint64_t magic;
  std::uint32_t layout_version;
  std::uint32_t nprocs;
  std::uint64_t generation;
  ThreatCell threat;
  AlertRing alerts;
  // ProcessSlot[nprocs] follows, 64-byte aligned.
};

}  // namespace wire

class ClusterBus {
 public:
  struct ThreatView {
    int level = 0;
    int origin = -1;
    std::uint64_t serial = 0;
  };

  struct Alert {
    double severity = 0.0;
    int origin = -1;
  };

  /// A point-in-time copy of one slab entry (reader side).
  struct MetricSample {
    std::string name;
    std::string labels;
    SlabKind kind = SlabKind::kCounter;
    std::int64_t value = 0;
  };

  struct ProcessView {
    std::uint32_t slot = 0;
    bool live = false;
    int pid = 0;
    std::uint32_t incarnation = 0;
    std::int64_t heartbeat_us = 0;
    int threat_level = 0;
  };

  ClusterBus() = default;
  ClusterBus(ClusterBus&&) = default;
  ClusterBus& operator=(ClusterBus&&) = default;

  /// Bytes the segment needs for `nprocs` process slots.
  static std::size_t BytesFor(std::uint32_t nprocs);

  /// Initialise a fresh region (supervisor side).  The region must be at
  /// least BytesFor(nprocs) bytes and zero-filled (ShmRegion::Create is).
  static util::Result<ClusterBus> Create(util::ShmRegion region,
                                         std::uint32_t nprocs,
                                         std::uint64_t generation);

  /// Attach to an inherited region (child side).  Rejects a bad magic,
  /// layout version mismatch, or — the stale-slab guard — a generation
  /// other than `expected_generation`.
  static util::Result<ClusterBus> Attach(util::ShmRegion region,
                                         std::uint64_t expected_generation);

  bool valid() const { return header_ != nullptr; }
  std::uint64_t generation() const { return header_->generation; }
  std::uint32_t nprocs() const { return header_->nprocs; }
  const util::ShmRegion& region() const { return region_; }

  // --- threat cell -----------------------------------------------------------
  void PublishThreat(int level, int origin_slot);
  ThreatView ReadThreat() const;

  // --- alert ring ------------------------------------------------------------
  void PushAlert(double severity, int origin_slot);
  /// Cursor for a reader that wants only future alerts (current tail).
  std::uint64_t AlertCursorNow() const;
  /// Cursor that replays whatever history is still in the ring.
  std::uint64_t AlertCursorReplay() const;
  /// Drain alerts at `*cursor`, invoking `fn` per alert, advancing the
  /// cursor.  Returns true if alerts were lost: the reader was lapped (the
  /// cursor was resynced to the present), or a slot whose producer died
  /// mid-publish was skipped — a position the tail moved past but that
  /// stayed unpublished for longer than kStalledPublishGraceUs, which a
  /// live producer's nanosecond publish window cannot.  Callers should
  /// then consult ReadThreat() for the authoritative level.
  bool DrainAlerts(std::uint64_t* cursor,
                   const std::function<void(const Alert&)>& fn);

  // --- process slots ---------------------------------------------------------
  /// Claim `slot` for this process: bump the incarnation, reset the slab,
  /// mark live.  Returns the new incarnation.
  std::uint32_t ClaimSlot(std::uint32_t slot, int pid);
  void MarkExited(std::uint32_t slot);
  void Heartbeat(std::uint32_t slot, std::int64_t now_us, int threat_level);
  wire::ProcessSlot* slot(std::uint32_t index);
  const wire::ProcessSlot* slot(std::uint32_t index) const;
  ProcessView ViewProcess(std::uint32_t index) const;
  std::vector<ProcessView> ViewProcesses() const;

  // --- telemetry slab (writer side) -----------------------------------------
  /// Append a new entry to `slot`'s slab; returns its index or -1 when the
  /// slab is full or the name/labels do not fit (counted in slab_dropped).
  int AddSlabEntry(std::uint32_t slot, std::string_view name,
                   std::string_view labels, SlabKind kind);
  void SetSlabValue(std::uint32_t slot, int entry, std::int64_t value);

  // --- telemetry slab (reader side) -----------------------------------------
  /// Copy out the published entries of `slot`'s slab.
  std::vector<MetricSample> ReadSlab(std::uint32_t slot) const;

  /// Monotonic clock in µs for heartbeats (shared so supervisor and child
  /// agree on the timebase).
  static std::int64_t MonotonicMicros();

 private:
  ClusterBus(util::ShmRegion region, wire::SegmentHeader* header)
      : region_(std::move(region)), header_(header) {}

  util::ShmRegion region_;
  wire::SegmentHeader* header_ = nullptr;

  // Dead-producer detection state for DrainAlerts: the ring position the
  // reader is currently parked at (reserved but unpublished) and when it
  // first saw it.  Local to this handle, not shared memory — each reader
  // times its own stall.
  std::uint64_t stall_pos_ = ~std::uint64_t{0};
  std::int64_t stall_since_us_ = 0;
};

}  // namespace gaa::cluster
