#include "cluster/cluster_server.h"

#include <csignal>
#include <cstdio>
#include <signal.h>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <utility>

#include "audit/audit_log.h"
#include "audit/audit_stream.h"
#include "gaa/services.h"
#include "gaa/system_state.h"
#include "ids/ids.h"
#include "telemetry/exposition.h"
#include "telemetry/metrics.h"
#include "util/shm_region.h"

namespace gaa::cluster {

namespace {

std::atomic<bool> g_term_requested{false};

void OnTerm(int /*sig*/) { g_term_requested.store(true); }

const char* Env(const char* key) { return ::getenv(key); }

bool EnvU64(const char* key, std::uint64_t* out) {
  const char* v = Env(key);
  if (v == nullptr || *v == '\0') return false;
  char* end = nullptr;
  *out = std::strtoull(v, &end, 10);
  return end != nullptr && *end == '\0';
}

[[noreturn]] void ChildDie(const char* what, const std::string& detail) {
  std::fprintf(stderr, "cluster child: %s: %s\n", what, detail.c_str());
  std::fflush(stderr);
  ::_exit(3);
}

/// Incrementally mirrors a MetricRegistry into this process's slab: new
/// registry entries get slab entries appended on first sight (the slab is
/// append-only per incarnation, so indices are stable), and every Publish
/// refreshes the live values.  Histograms flatten to `_count`/`_sum`
/// counter pairs — a fleet view needs totals, not bucket vectors.
class SlabPublisher {
 public:
  SlabPublisher(ClusterBus* bus, std::uint32_t slot,
                const telemetry::MetricRegistry* registry)
      : bus_(bus), slot_(slot), registry_(registry) {}

  void Publish() {
    const auto entries = registry_->List();
    for (std::size_t i = synced_; i < entries.size(); ++i) {
      Map(entries[i]);
    }
    synced_ = entries.size();
    for (const Mapped& m : mapped_) {
      switch (m.kind) {
        case telemetry::MetricKind::kCounter:
          bus_->SetSlabValue(slot_, m.entry,
                             static_cast<std::int64_t>(m.counter->Value()));
          break;
        case telemetry::MetricKind::kGauge:
          bus_->SetSlabValue(slot_, m.entry, m.gauge->Value());
          break;
        case telemetry::MetricKind::kHistogram: {
          const telemetry::Histogram::Snapshot s = m.histogram->TakeSnapshot();
          bus_->SetSlabValue(slot_, m.entry,
                             static_cast<std::int64_t>(s.count));
          if (m.sum_entry >= 0) {
            bus_->SetSlabValue(slot_, m.sum_entry,
                               static_cast<std::int64_t>(s.sum));
          }
          break;
        }
      }
    }
  }

 private:
  struct Mapped {
    telemetry::MetricKind kind = telemetry::MetricKind::kCounter;
    const telemetry::Counter* counter = nullptr;
    const telemetry::Gauge* gauge = nullptr;
    const telemetry::Histogram* histogram = nullptr;
    int entry = -1;
    int sum_entry = -1;  // histogram `_sum` companion
  };

  void Map(const telemetry::MetricRegistry::Entry& e) {
    Mapped m;
    m.kind = e.kind;
    switch (e.kind) {
      case telemetry::MetricKind::kCounter:
        m.counter = e.counter;
        m.entry = bus_->AddSlabEntry(slot_, e.name, e.labels,
                                     SlabKind::kCounter);
        break;
      case telemetry::MetricKind::kGauge:
        m.gauge = e.gauge;
        m.entry = bus_->AddSlabEntry(slot_, e.name, e.labels, SlabKind::kGauge);
        break;
      case telemetry::MetricKind::kHistogram:
        m.histogram = e.histogram;
        m.entry = bus_->AddSlabEntry(slot_, e.name + "_count", e.labels,
                                     SlabKind::kCounter);
        m.sum_entry = bus_->AddSlabEntry(slot_, e.name + "_sum", e.labels,
                                         SlabKind::kCounter);
        break;
    }
    if (m.entry >= 0) mapped_.push_back(m);
  }

  ClusterBus* bus_;
  std::uint32_t slot_;
  const telemetry::MetricRegistry* registry_;
  std::size_t synced_ = 0;
  std::vector<Mapped> mapped_;
};

// Slab name/label bytes come from another process's shared memory under a
// deliberately best-effort read protocol, so a torn or corrupted entry may
// carry arbitrary bytes.  Structured renderers must never splice them in
// raw: JSON gets the audit escaper, Prometheus rejects anything that could
// break line or brace structure.
std::string JsonEscaped(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  audit::AppendJsonEscaped(text, &out);
  return out;
}

bool SafePrometheusName(std::string_view name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) return false;
  }
  return true;
}

bool SafePrometheusLabels(std::string_view labels) {
  return labels.find_first_of("{}\n\r") == std::string_view::npos;
}

}  // namespace

bool TermRequested() { return g_term_requested.load(); }

void MaybeRunChildFromEnv(const ChildMain& child_main) {
  std::uint64_t slot = 0;
  if (!EnvU64("GAA_CLUSTER_SLOT", &slot)) return;  // not a cluster child

  ChildContext ctx;
  ctx.slot = static_cast<std::uint32_t>(slot);

  std::uint64_t nprocs = 0, generation = 0, shm_fd = 0, shm_bytes = 0;
  std::uint64_t port = 0, drain_ms = 0;
  if (!EnvU64("GAA_CLUSTER_NPROCS", &nprocs) ||
      !EnvU64("GAA_CLUSTER_GENERATION", &generation) ||
      !EnvU64("GAA_CLUSTER_SHM_FD", &shm_fd) ||
      !EnvU64("GAA_CLUSTER_SHM_BYTES", &shm_bytes) ||
      !EnvU64("GAA_CLUSTER_PORT", &port)) {
    ChildDie("incomplete environment", "missing GAA_CLUSTER_* variable");
  }
  ctx.nprocs = static_cast<std::uint32_t>(nprocs);
  ctx.generation = generation;
  ctx.port = static_cast<std::uint16_t>(port);
  if (EnvU64("GAA_CLUSTER_DRAIN_MS", &drain_ms)) {
    ctx.drain_deadline_ms = static_cast<int>(drain_ms);
  }
  if (const char* payload = Env("GAA_CLUSTER_PAYLOAD")) ctx.payload = payload;

  const char* fds = Env("GAA_CLUSTER_LISTEN_FDS");
  if (fds == nullptr || *fds == '\0') {
    ChildDie("incomplete environment", "GAA_CLUSTER_LISTEN_FDS unset");
  }
  for (const char* p = fds; *p != '\0';) {
    char* end = nullptr;
    const long fd = std::strtol(p, &end, 10);
    if (end == p || fd < 0) ChildDie("bad listener fd list", fds);
    ctx.listen_fds.push_back(static_cast<int>(fd));
    p = (*end == ',') ? end + 1 : end;
  }

  auto region = util::ShmRegion::AttachFd(static_cast<int>(shm_fd),
                                          static_cast<std::size_t>(shm_bytes));
  if (!region.ok()) ChildDie("shm attach failed", region.error().message);
  auto bus = ClusterBus::Attach(std::move(region).take(), ctx.generation);
  // The generation check is the stale-slab guard: a child re-exec'd into a
  // segment from a previous cluster run must refuse it, not serve from it.
  if (!bus.ok()) ChildDie("bus attach failed", bus.error().message);
  ctx.bus = std::move(bus).take();

  ::_exit(child_main(ctx));
}

std::string RenderClusterJson(const ClusterBus& bus, std::uint32_t self_slot) {
  const ClusterBus::ThreatView threat = bus.ReadThreat();
  std::string out = "{\"generation\":" + std::to_string(bus.generation());
  out += ",\"self\":" + std::to_string(self_slot);
  out += ",\"nprocs\":" + std::to_string(bus.nprocs());
  out += ",\"threat\":{\"level\":" + std::to_string(threat.level);
  out += ",\"origin\":" + std::to_string(threat.origin);
  out += ",\"serial\":" + std::to_string(threat.serial) + "}";

  // Fleet counters merged by metric name across every live slab.  Labels
  // are deliberately collapsed — this is the "how much work has the fleet
  // done" view; per-process detail lives in the Prometheus exposition.
  std::map<std::string, std::int64_t> fleet;
  out += ",\"processes\":[";
  bool first = true;
  for (const ClusterBus::ProcessView& p : bus.ViewProcesses()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"slot\":" + std::to_string(p.slot);
    out += std::string(",\"live\":") + (p.live ? "true" : "false");
    out += ",\"pid\":" + std::to_string(p.pid);
    out += ",\"incarnation\":" + std::to_string(p.incarnation);
    out += ",\"threat_level\":" + std::to_string(p.threat_level);
    out += ",\"heartbeat_us\":" + std::to_string(p.heartbeat_us) + "}";
    if (!p.live) continue;
    for (const ClusterBus::MetricSample& s : bus.ReadSlab(p.slot)) {
      if (s.kind == SlabKind::kCounter) fleet[s.name] += s.value;
    }
  }
  out += "],\"fleet\":{";
  first = true;
  for (const auto& [name, value] : fleet) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + JsonEscaped(name) + "\":" + std::to_string(value);
  }
  out += "}}";
  return out;
}

std::string RenderFleetPrometheus(const ClusterBus& bus,
                                  std::uint32_t self_slot) {
  std::string out;
  const auto procs = bus.ViewProcesses();
  out += "# TYPE gaa_cluster_process_up gauge\n";
  for (const ClusterBus::ProcessView& p : procs) {
    out += "gaa_cluster_process_up{process=\"" + std::to_string(p.slot) +
           "\"} " + (p.live ? "1" : "0") + "\n";
  }
  out += "# TYPE gaa_cluster_process_threat_level gauge\n";
  for (const ClusterBus::ProcessView& p : procs) {
    if (!p.live) continue;
    out += "gaa_cluster_process_threat_level{process=\"" +
           std::to_string(p.slot) + "\"} " + std::to_string(p.threat_level) +
           "\n";
  }
  const ClusterBus::ThreatView threat = bus.ReadThreat();
  out += "# TYPE gaa_cluster_threat_level gauge\n";
  out += "gaa_cluster_threat_level " + std::to_string(threat.level) + "\n";

  // Other live processes' slabs, each series tagged with its owner's slot.
  // Self is excluded: the local registry already rendered with this label,
  // at full fidelity (buckets, exact values) rather than slab granularity.
  for (const ClusterBus::ProcessView& p : procs) {
    if (!p.live || p.slot == self_slot) continue;
    const std::string tag = "process=\"" + std::to_string(p.slot) + "\"";
    for (const ClusterBus::MetricSample& s : bus.ReadSlab(p.slot)) {
      if (!SafePrometheusName(s.name) || !SafePrometheusLabels(s.labels)) {
        continue;  // corrupted slab bytes must not mangle the exposition
      }
      const std::string labels =
          s.labels.empty() ? tag : s.labels + "," + tag;
      out += s.name + "{" + labels + "} " + std::to_string(s.value) + "\n";
    }
  }
  return out;
}

int RunClusterChild(ChildContext& ctx, ClusterChildOptions options) {
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction sa = {};
  sa.sa_handler = OnTerm;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  const std::uint32_t slot = ctx.slot;
  ClusterBus& bus = ctx.bus;

  // A cluster serves wall-clock traffic; the simulated clock is for
  // deterministic in-process tests only.
  options.web.use_real_clock = true;
  http::DocTree tree =
      options.make_tree ? options.make_tree() : http::DocTree::DemoSite();
  web::GaaWebServer web(std::move(tree), options.web);
  if (options.configure) options.configure(web);

  // Local alerts fan out to the fleet: ring for alert-level replication
  // (every peer recomputes the same score), threat cell for the coarse
  // authoritative level a lapped reader falls back to.
  web.ids().threat().set_bus_hook(
      [&bus, slot](double severity, core::ThreatLevel now) {
        bus.PushAlert(severity, static_cast<int>(slot));
        bus.PublishThreat(static_cast<int>(now), static_cast<int>(slot));
      });

  options.tcp.reactor_shards = ctx.listen_fds.size();
  options.tcp.inherited_listen_fds = ctx.listen_fds;
  options.tcp.drain_deadline_ms = ctx.drain_deadline_ms;
  options.tcp.port = ctx.port;
  if (options.tcp.tick_interval_ms <= 0) {
    options.tcp.tick_interval_ms = options.tick_interval_ms;
  }
  http::TcpServer tcp(&web.server(), options.tcp);

  // Replay whatever alert history is still in the ring so a respawned
  // process rebuilds the same ThreatService window as its peers instead of
  // starting cold at kLow.  The replay is deliberately *unfiltered*: a
  // respawned process inherits its predecessor's slot number, and the
  // predecessor's own alerts are exactly the history it must recover (no
  // local alert can exist yet, so nothing double-counts).
  std::uint64_t cursor = bus.AlertCursorReplay();
  bus.DrainAlerts(&cursor, [&web](const ClusterBus::Alert& alert) {
    web.ids().threat().ReportRemoteAlert(alert.severity);
  });
  // Ring history may predate what the ring still holds; the threat cell
  // carries the fleet's authoritative level for exactly this case.
  const ClusterBus::ThreatView fleet = bus.ReadThreat();
  if (fleet.level > static_cast<int>(web.ids().threat().level())) {
    web.ids().threat().ForceLevel(static_cast<core::ThreatLevel>(fleet.level));
  }
  SlabPublisher slab(&bus, slot, &web.telemetry().registry());

  tcp.set_tick_hook([&web, &bus, &slab, &cursor, slot](std::int64_t) {
    ids::ThreatService& threat = web.ids().threat();
    const bool lapped = bus.DrainAlerts(
        &cursor, [&threat, slot](const ClusterBus::Alert& alert) {
          if (alert.origin != static_cast<int>(slot)) {
            threat.ReportRemoteAlert(alert.severity);
          }
        });
    if (lapped) {
      // Lost individual alerts; adopt the fleet's published level when it
      // is above ours (never below — local evidence still decays locally).
      const ClusterBus::ThreatView view = bus.ReadThreat();
      if (view.level > static_cast<int>(threat.level())) {
        threat.ForceLevel(static_cast<core::ThreatLevel>(view.level));
      }
    }
    web.ids().PeriodicMaintenance();
    slab.Publish();
    bus.Heartbeat(slot, ClusterBus::MonotonicMicros(),
                  static_cast<int>(threat.level()));
  });

  tcp.set_drain_hook([&web, slot](std::uint64_t force_closed) {
    core::AuditEvent event;
    event.category = "cluster";
    event.message = "drain deadline force-closed " +
                    std::to_string(force_closed) +
                    " connections (process " + std::to_string(slot) + ")";
    web.audit_log().Record(event);
  });

  web.server().set_status_process(static_cast<int>(slot));
  web.server().set_cluster_view(
      [&bus, slot] { return RenderClusterJson(bus, slot); });
  web.server().set_status_prometheus_view([&web, &bus, slot] {
    return telemetry::RenderPrometheus(
               web.telemetry().registry(),
               "process=\"" + std::to_string(slot) + "\"") +
           RenderFleetPrometheus(bus, slot);
  });

  // Claim the slot before any slab entries exist: ClaimSlot resets the
  // slab, so it must precede the first tick's Publish, and marking live is
  // the readiness signal the supervisor's WaitSlotLive polls.  Note
  // WireIdsTick is NOT used here — the combined tick above already drives
  // PeriodicMaintenance along with the bus work.
  bus.ClaimSlot(slot, static_cast<int>(::getpid()));

  auto started = tcp.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cluster child %u: transport start failed: %s\n",
                 slot, started.error().message.c_str());
    bus.MarkExited(slot);
    return 2;
  }
  bus.Heartbeat(slot, ClusterBus::MonotonicMicros(),
                static_cast<int>(web.ids().threat().level()));

  while (!TermRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  tcp.Stop();  // drain in-flight requests, bounded by drain_deadline_ms
  // The facade's AsyncAuditWriter flushes on destruction, but the slot
  // must read "exited" before this process can be reaped, so mark first.
  bus.MarkExited(slot);
  return 0;
}

}  // namespace gaa::cluster
