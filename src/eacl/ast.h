// Extended Access Control List (EACL) abstract syntax.
//
// Grammar (paper appendix, BNF):
//
//   eacl            ::= (composition_mode) { entry }
//   entry           ::= pright conds | nright pre_cond_block rr_cond_block
//   pright          ::= "pos_access_right" def_auth value
//   nright          ::= "neg_access_right" def_auth value
//   conds           ::= pre_cond_block rr_cond_block mid_cond_block
//                       post_cond_block
//   condition       ::= cond_type def_auth value
//   composition_mode::= "0" | "1" | "2"        (expand | narrow | stop)
//
// An EACL is an *ordered* set of disjunctive entries; each entry carries a
// positive or negative access right and four ordered condition blocks.
// Ordering is semantic: earlier entries take precedence, and conditions are
// evaluated in the order they appear within a block.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gaa::eacl {

/// How a system-wide policy composes with local policies (paper §2.1).
enum class CompositionMode {
  kExpand = 0,  ///< disjunction: either policy may grant
  kNarrow = 1,  ///< conjunction: mandatory ∧ discretionary
  kStop = 2,    ///< system-wide only; local policies ignored
};

const char* CompositionModeName(CompositionMode mode);
std::optional<CompositionMode> ParseCompositionMode(std::string_view token);

/// When a condition is evaluated relative to the requested operation
/// (paper §2: pre / request-result / mid / post).
enum class CondPhase {
  kPre,            ///< before the operation, gating authorization
  kRequestResult,  ///< fired on grant and/or denial of the request
  kMid,            ///< during operation execution
  kPost,           ///< after the operation completes
};

const char* CondPhaseName(CondPhase phase);

/// An access right: `pos_access_right apache GET` or `neg_access_right * *`.
/// `def_auth` is the defining authority (which application namespace the
/// right belongs to); `value` names the operation.  "*" is a wildcard.
struct Right {
  bool positive = true;
  std::string def_auth;
  std::string value;

  /// Whether this (policy-side) right covers a requested right.  The policy
  /// side may use "*" wildcards; the request side is always concrete.
  bool Covers(std::string_view req_def_auth, std::string_view req_value) const;

  friend bool operator==(const Right&, const Right&) = default;
};

/// A single condition: type + defining authority + value.  The value's
/// interpretation belongs entirely to the registered evaluation routine
/// (paper §5 advantage 2: web masters register their own routines).
struct Condition {
  std::string type;      ///< e.g. "pre_cond_regex", "rr_cond_notify"
  std::string def_auth;  ///< e.g. "local", "gnu", "USER"
  std::string value;     ///< e.g. "*phf* *test-cgi*", ">low", "on:failure/..."

  friend bool operator==(const Condition&, const Condition&) = default;
};

/// One EACL entry: a right plus four optional condition blocks.  Negative
/// rights carry only pre and request-result blocks (there is no operation to
/// monitor when the request is being denied).
struct Entry {
  Right right;
  std::vector<Condition> pre;
  std::vector<Condition> request_result;
  std::vector<Condition> mid;
  std::vector<Condition> post;

  const std::vector<Condition>& block(CondPhase phase) const;
  std::vector<Condition>& block(CondPhase phase);

  friend bool operator==(const Entry&, const Entry&) = default;
};

/// A parsed EACL: optional composition mode plus the ordered entries.
/// The mode is meaningful only on system-wide policies.
struct Eacl {
  std::optional<CompositionMode> mode;
  std::vector<Entry> entries;

  friend bool operator==(const Eacl&, const Eacl&) = default;
};

/// Classify a condition type token into its phase by prefix
/// ("pre_cond_*", "rr_cond_*", "mid_cond_*", "post_cond_*").
std::optional<CondPhase> PhaseFromConditionType(std::string_view cond_type);

}  // namespace gaa::eacl
