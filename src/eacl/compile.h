// Compiled policy IR (DESIGN.md §9).
//
// Lowers a parsed EACL into an immutable decision form evaluated on the
// request hot path with no parsing, no registry lookups and no locks:
//
//   * Condition evaluators are resolved from the ConditionRegistry ONCE at
//     compile time into directly callable routines.  A condition whose
//     type/authority has no registered routine compiles to a prebuilt MAYBE
//     thunk (the "unregistered ⇒ unevaluated ⇒ MAYBE" rule of the paper,
//     decided per compile instead of per request).
//   * Registered specializers pre-parse condition values (CIDR lists, HH:MM
//     windows, comparison operators, glob lists) so static conditions skip
//     re-dispatch and re-parsing entirely.
//   * Each condition carries its purity classification; the evaluator
//     accumulates them so terminal decisions reached through pure-only
//     conditions can be memoized (gaa::core::DecisionCache).
//   * Per-entry attribution metadata — the eacl_entry_decisions_total
//     counter handles for yes/no/maybe/miss — is baked into the IR, so the
//     hot path increments a pre-resolved counter instead of building label
//     strings.
//   * A per-right index maps each concrete right appearing in the policy to
//     the ordered list of entries covering it (wildcard entries merged in
//     entry order); rights absent from the index can only be covered by
//     wildcard entries, which are scanned as a fallback.
//
// This header lives with the EACL layer because the IR is a property of the
// policy language, but it is compiled into the repro_gaa library (it needs
// the registry/context/services types); see src/gaa/CMakeLists.txt.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "eacl/ast.h"
#include "gaa/registry.h"

namespace gaa::telemetry {
class Counter;
class Histogram;
class MetricRegistry;
}  // namespace gaa::telemetry

namespace gaa::eacl {

/// Shared bucket bounds for gaa_cond_eval_us: evaluations are mostly
/// sub-10µs, but actions can block for tens of ms, so 1µs .. 1s.
const std::vector<std::uint64_t>& CondLatencyBoundsUs();

/// Outcome label for eacl_entry_decisions_total: 0 yes, 1 no, 2 maybe,
/// 3 miss (pre-block failed; the entry did not apply).
const char* EntryOutcomeName(int outcome_idx);

/// One condition, lowered: the pre-resolved evaluator plus everything the
/// evaluator needs without going back to the registry.
struct CompiledCond {
  Condition source;
  CondPhase phase = CondPhase::kPre;
  core::CondPurity purity = core::CondPurity::kVolatile;
  bool resolved = false;     ///< false: `fn` is the MAYBE thunk
  bool specialized = false;  ///< value was pre-parsed at compile time
  core::CondRoutine fn;      ///< never null
  telemetry::Histogram* latency = nullptr;  ///< gaa_cond_eval_us{cond,auth}
  /// Canonical structural content hash of `source` (eacl::HashCondition):
  /// equal-structure conditions hash equal regardless of surrounding
  /// policy, which is what lets the IrStore share fragments across tenants.
  std::uint64_t content_hash = 0;
};

struct CompiledEntry {
  Right right;
  int index = 0;  ///< position in the source EACL (attribution)
  std::vector<CompiledCond> pre;
  std::vector<CompiledCond> request_result;
  /// Mid/post blocks run in phases 3/4 through the normal registry path —
  /// they are effects on live operation statistics, never on the 2c hot
  /// path — so they stay in source form.
  std::vector<Condition> mid;
  std::vector<Condition> post;
  /// eacl_entry_decisions_total{policy,entry,outcome} handles, indexed by
  /// EntryOutcomeName order.  Null when compiled without metrics.
  telemetry::Counter* outcomes[4] = {nullptr, nullptr, nullptr, nullptr};
  /// Canonical structural content hash of the source entry
  /// (eacl::HashEntry): right + all four phase blocks.
  std::uint64_t content_hash = 0;
};

class CompiledPolicy {
 public:
  const std::string& name() const { return name_; }
  std::optional<CompositionMode> mode() const { return mode_; }
  const std::vector<CompiledEntry>& entries() const { return entries_; }

  /// Canonical structural content hash of the whole source policy
  /// (eacl::HashPolicy) — the IrStore's content address.
  std::uint64_t content_hash() const { return content_hash_; }

  /// Approximate resident bytes of this compiled object (entries,
  /// conditions, index, strings) — the gaa_ir_store_bytes accounting unit.
  std::size_t ApproxIrBytes() const;

  /// Entries covering the concrete right (def_auth, value), in entry order,
  /// or null when the right never appears concretely in this policy — then
  /// only wildcard entries can cover it (scan unindexed_entries() with
  /// Right::Covers).
  const std::vector<std::uint32_t>* IndexedCover(
      std::string_view def_auth, std::string_view value) const;

  /// Entries whose right uses a "*" wildcard (either field).
  const std::vector<std::uint32_t>& unindexed_entries() const {
    return unindexed_;
  }

 private:
  friend std::shared_ptr<const CompiledPolicy> CompilePolicy(
      const Eacl&, const std::string&, const struct CompileEnv&,
      struct CompileStats*);

  static std::string IndexKey(std::string_view def_auth,
                              std::string_view value);

  std::string name_;
  std::optional<CompositionMode> mode_;
  std::uint64_t content_hash_ = 0;
  std::vector<CompiledEntry> entries_;
  /// def_auth + '\0' + value → ordered covering entry indices.
  std::map<std::string, std::vector<std::uint32_t>, std::less<>> index_;
  std::vector<std::uint32_t> unindexed_;
};

/// The per-path view assembled from a PolicySnapshot: raw pointers into
/// immutable compiled policies, safe to evaluate without any lock.
struct CompiledComposition {
  CompositionMode mode = CompositionMode::kNarrow;
  std::vector<const CompiledPolicy*> system;  ///< evaluated first
  std::vector<const CompiledPolicy*> local;   ///< empty under `stop`
};

struct CompileEnv {
  /// Null registry compiles every condition to the MAYBE thunk (tests).
  const core::ConditionRegistry* registry = nullptr;
  /// Null metrics skips baking counter/histogram handles.
  telemetry::MetricRegistry* metrics = nullptr;
};

struct CompileStats {
  std::size_t conditions = 0;   ///< pre + request-result conditions lowered
  std::size_t specialized = 0;  ///< replaced by a pre-parsed routine
  std::size_t unresolved = 0;   ///< compiled to the MAYBE thunk
};

/// Lower one policy.  The result is immutable and internally consistent —
/// publish it via shared_ptr/atomic pointer and evaluate lock-free.
std::shared_ptr<const CompiledPolicy> CompilePolicy(const Eacl& policy,
                                                    const std::string& name,
                                                    const CompileEnv& env,
                                                    CompileStats* stats =
                                                        nullptr);

}  // namespace gaa::eacl
