// Content-addressed compiled-IR store (DESIGN.md §14).
//
// Scaling the policy plane to thousands of tenant namespaces must not
// multiply compiled state: most tenants differ in a handful of entries and
// share the rest (the shared global policy set verbatim, boilerplate local
// policies byte-for-byte).  The IrStore makes that sharing structural, the
// way nix's store shares build outputs: every compiled policy is keyed by a
// canonical *content hash* of its structure, and compiling the same
// structure twice returns the same immutable `CompiledPolicy` object.
//
//   * Hashing is structural, not textual: two policy texts that parse to
//     the same AST (whitespace, ordering of fields inside a condition
//     token) intern to one object.  The hash covers everything evaluation
//     can observe — composition mode, entry order, rights, every condition
//     of every phase block — plus the provenance name (attribution counters
//     and audit records are keyed by name, so identically-structured
//     policies with different names stay distinct objects) and the
//     compile environment version (a registry change alters which routines
//     get baked in, so stale IR can never be served).
//   * Entries are held by weak_ptr: the store never keeps IR alive on its
//     own.  Snapshots hold the strong references; when the last tenant
//     referencing a fragment drops it, the next Sweep() (run on every
//     intern, amortized) erases the dead slot.  Dedup hits/misses and the
//     live entry/byte totals are counted into gaa_ir_store_* metrics.
//
// Thread-safety: Intern/Sweep are mutex-guarded (they run on the policy
// mutation path, never per request); the returned CompiledPolicy objects
// are immutable and lock-free to evaluate, exactly as before.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "eacl/ast.h"
#include "eacl/compile.h"

namespace gaa::telemetry {
class Counter;
class Gauge;
class MetricRegistry;
}  // namespace gaa::telemetry

namespace gaa::eacl {

/// Canonical structural content hashes (FNV-1a 64 over an unambiguous
/// field-tagged serialization).  Stable within a process run; used as
/// intern keys and exposed on the compiled IR for tooling and tests.
std::uint64_t HashCondition(const Condition& cond);
std::uint64_t HashEntry(const Entry& entry);
std::uint64_t HashPolicy(const Eacl& policy);

class IrStore {
 public:
  struct Stats {
    std::uint64_t hits = 0;      ///< interns served from an existing object
    std::uint64_t misses = 0;    ///< interns that had to compile
    std::uint64_t sweeps = 0;    ///< dead (expired) slots reclaimed
    std::size_t entries = 0;     ///< live interned objects
    std::size_t bytes = 0;       ///< ApproxIrBytes over live objects
  };

  /// Return the compiled form of `policy`, compiling at most once per
  /// distinct (structure, name, environment version).  `env_version` must
  /// change whenever `env` would compile differently (the registry's
  /// change_version); the metrics handle set is part of the environment,
  /// so pass a distinct version per registry binding if envs alternate.
  std::shared_ptr<const CompiledPolicy> Intern(const Eacl& policy,
                                               const std::string& name,
                                               const CompileEnv& env,
                                               std::uint64_t env_version);

  /// Mirror the counters into `gaa_ir_store_{hits,misses}_total` and the
  /// `gaa_ir_store_{entries,bytes}` gauges.
  void AttachMetrics(telemetry::MetricRegistry* registry);

  Stats stats() const;

 private:
  void SweepLocked();
  void PublishGaugesLocked();

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::weak_ptr<const CompiledPolicy>> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t sweeps_ = 0;
  std::size_t live_bytes_ = 0;  ///< refreshed by SweepLocked
  telemetry::Counter* hit_counter_ = nullptr;
  telemetry::Counter* miss_counter_ = nullptr;
  telemetry::Gauge* entries_gauge_ = nullptr;
  telemetry::Gauge* bytes_gauge_ = nullptr;
};

}  // namespace gaa::eacl
