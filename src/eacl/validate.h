// Structural validation and consistency analysis of EACL policies.
//
// The parser already rejects syntactic garbage; Validate() re-checks
// programmatically-built ASTs against the BNF invariants.  AnalyzePolicy()
// goes further: the paper (§2) notes that ordering of entries resolves
// conflicts and that "the function of defining the order ... can be best
// served by an automated tool to ensure policy correctness and consistency"
// — listed as future work.  We implement that tool: it reports shadowed
// (unreachable) entries, contradictory adjacent entries and suspicious
// unconditioned negative rights.
#pragma once

#include <string>
#include <vector>

#include "eacl/ast.h"
#include "util/status.h"

namespace gaa::eacl {

/// Check BNF-level invariants.  Returns the first violation found.
util::VoidResult Validate(const Eacl& eacl);

/// A non-fatal policy-consistency finding.
struct PolicyWarning {
  enum class Kind {
    kShadowedEntry,      ///< an earlier unconditioned entry makes this one unreachable
    kDuplicateEntry,     ///< identical right + identical pre-conditions repeated
    kContradiction,      ///< same right granted and denied under no conditions
    kUnconditionalDeny,  ///< `neg_access_right * *` with no pre-conditions
  };
  Kind kind;
  std::size_t entry_index = 0;  ///< 0-based index of the offending entry
  std::string message;
};

const char* PolicyWarningKindName(PolicyWarning::Kind kind);

/// Run the consistency analyzer over a single policy.
std::vector<PolicyWarning> AnalyzePolicy(const Eacl& eacl);

}  // namespace gaa::eacl
