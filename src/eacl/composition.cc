#include "eacl/composition.h"

namespace gaa::eacl {

using util::Tristate;

std::size_t ComposedPolicy::TotalEntries() const {
  std::size_t n = 0;
  for (const auto& p : system_policies) n += p.entries.size();
  for (const auto& p : local_policies) n += p.entries.size();
  return n;
}

namespace {
std::string NameOrPosition(const std::vector<std::string>& names,
                           std::size_t index, const char* side) {
  if (index < names.size() && !names[index].empty()) return names[index];
  return std::string(side) + "#" + std::to_string(index);
}
}  // namespace

std::string ComposedPolicy::SystemName(std::size_t index) const {
  return NameOrPosition(system_names, index, "system");
}

std::string ComposedPolicy::LocalName(std::size_t index) const {
  return NameOrPosition(local_names, index, "local");
}

ComposedPolicy Compose(std::vector<Eacl> system_policies,
                       std::vector<Eacl> local_policies,
                       std::vector<std::string> system_names,
                       std::vector<std::string> local_names) {
  ComposedPolicy out;
  out.mode = CompositionMode::kNarrow;
  for (const auto& p : system_policies) {
    if (p.mode.has_value()) {
      out.mode = *p.mode;
      break;
    }
  }
  out.system_policies = std::move(system_policies);
  out.system_names = std::move(system_names);
  if (out.mode != CompositionMode::kStop) {
    out.local_policies = std::move(local_policies);
    out.local_names = std::move(local_names);
  }
  return out;
}

Tristate CombineDecisions(CompositionMode mode, Tristate system,
                          bool have_system, Tristate local, bool have_local) {
  // An absent side defers entirely to the present side; with neither side
  // present the decision is NO (closed world: no policy grants nothing).
  if (!have_system && !have_local) return Tristate::kNo;
  if (!have_system) return local;
  if (!have_local) return system;

  switch (mode) {
    case CompositionMode::kExpand:
      return util::Or3(system, local);
    case CompositionMode::kNarrow:
      return util::And3(system, local);
    case CompositionMode::kStop:
      return system;
  }
  return Tristate::kNo;
}

}  // namespace gaa::eacl
