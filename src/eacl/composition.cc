#include "eacl/composition.h"

namespace gaa::eacl {

using util::Tristate;

std::size_t ComposedPolicy::TotalEntries() const {
  std::size_t n = 0;
  for (const auto& p : system_policies) n += p.entries.size();
  for (const auto& p : local_policies) n += p.entries.size();
  return n;
}

ComposedPolicy Compose(std::vector<Eacl> system_policies,
                       std::vector<Eacl> local_policies) {
  ComposedPolicy out;
  out.mode = CompositionMode::kNarrow;
  for (const auto& p : system_policies) {
    if (p.mode.has_value()) {
      out.mode = *p.mode;
      break;
    }
  }
  out.system_policies = std::move(system_policies);
  if (out.mode != CompositionMode::kStop) {
    out.local_policies = std::move(local_policies);
  }
  return out;
}

Tristate CombineDecisions(CompositionMode mode, Tristate system,
                          bool have_system, Tristate local, bool have_local) {
  // An absent side defers entirely to the present side; with neither side
  // present the decision is NO (closed world: no policy grants nothing).
  if (!have_system && !have_local) return Tristate::kNo;
  if (!have_system) return local;
  if (!have_local) return system;

  switch (mode) {
    case CompositionMode::kExpand:
      return util::Or3(system, local);
    case CompositionMode::kNarrow:
      return util::And3(system, local);
    case CompositionMode::kStop:
      return system;
  }
  return Tristate::kNo;
}

}  // namespace gaa::eacl
