#include "eacl/ast.h"

#include "util/strings.h"

namespace gaa::eacl {

const char* CompositionModeName(CompositionMode mode) {
  switch (mode) {
    case CompositionMode::kExpand:
      return "expand";
    case CompositionMode::kNarrow:
      return "narrow";
    case CompositionMode::kStop:
      return "stop";
  }
  return "?";
}

std::optional<CompositionMode> ParseCompositionMode(std::string_view token) {
  if (token == "0" || util::EqualsIgnoreCase(token, "expand"))
    return CompositionMode::kExpand;
  if (token == "1" || util::EqualsIgnoreCase(token, "narrow"))
    return CompositionMode::kNarrow;
  if (token == "2" || util::EqualsIgnoreCase(token, "stop"))
    return CompositionMode::kStop;
  return std::nullopt;
}

const char* CondPhaseName(CondPhase phase) {
  switch (phase) {
    case CondPhase::kPre:
      return "pre";
    case CondPhase::kRequestResult:
      return "request_result";
    case CondPhase::kMid:
      return "mid";
    case CondPhase::kPost:
      return "post";
  }
  return "?";
}

bool Right::Covers(std::string_view req_def_auth,
                   std::string_view req_value) const {
  bool auth_ok = def_auth == "*" || def_auth == req_def_auth;
  bool value_ok = value == "*" || value == req_value;
  return auth_ok && value_ok;
}

const std::vector<Condition>& Entry::block(CondPhase phase) const {
  switch (phase) {
    case CondPhase::kPre:
      return pre;
    case CondPhase::kRequestResult:
      return request_result;
    case CondPhase::kMid:
      return mid;
    case CondPhase::kPost:
      return post;
  }
  return pre;  // unreachable
}

std::vector<Condition>& Entry::block(CondPhase phase) {
  return const_cast<std::vector<Condition>&>(
      static_cast<const Entry*>(this)->block(phase));
}

std::optional<CondPhase> PhaseFromConditionType(std::string_view cond_type) {
  if (util::StartsWith(cond_type, "pre_cond_")) return CondPhase::kPre;
  if (util::StartsWith(cond_type, "rr_cond_")) return CondPhase::kRequestResult;
  if (util::StartsWith(cond_type, "mid_cond_")) return CondPhase::kMid;
  if (util::StartsWith(cond_type, "post_cond_")) return CondPhase::kPost;
  return std::nullopt;
}

}  // namespace gaa::eacl
