#include "eacl/ir_store.h"

#include <utility>

#include "telemetry/metrics.h"

namespace gaa::eacl {

namespace {

// FNV-1a 64.  Every variable-length field is prefixed by its length and
// every structural position by a distinct tag byte, so no two different
// structures serialize identically (e.g. ("ab","c") vs ("a","bc"), or a
// condition migrating between phase blocks).
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void MixByte(std::uint64_t& h, unsigned char b) {
  h ^= b;
  h *= kFnvPrime;
}

void MixU64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) MixByte(h, static_cast<unsigned char>(v >> (i * 8)));
}

void MixString(std::uint64_t& h, const std::string& s) {
  MixU64(h, s.size());
  for (char c : s) MixByte(h, static_cast<unsigned char>(c));
}

void MixCondition(std::uint64_t& h, const Condition& cond) {
  MixByte(h, 0xC1);
  MixString(h, cond.type);
  MixString(h, cond.def_auth);
  MixString(h, cond.value);
}

void MixBlock(std::uint64_t& h, unsigned char tag,
              const std::vector<Condition>& block) {
  MixByte(h, tag);
  MixU64(h, block.size());
  for (const Condition& cond : block) MixCondition(h, cond);
}

void MixEntry(std::uint64_t& h, const Entry& entry) {
  MixByte(h, 0xE1);
  MixByte(h, entry.right.positive ? 1 : 0);
  MixString(h, entry.right.def_auth);
  MixString(h, entry.right.value);
  MixBlock(h, 0xB0, entry.pre);
  MixBlock(h, 0xB1, entry.request_result);
  MixBlock(h, 0xB2, entry.mid);
  MixBlock(h, 0xB3, entry.post);
}

}  // namespace

std::uint64_t HashCondition(const Condition& cond) {
  std::uint64_t h = kFnvOffset;
  MixCondition(h, cond);
  return h;
}

std::uint64_t HashEntry(const Entry& entry) {
  std::uint64_t h = kFnvOffset;
  MixEntry(h, entry);
  return h;
}

std::uint64_t HashPolicy(const Eacl& policy) {
  std::uint64_t h = kFnvOffset;
  MixByte(h, 0xA1);
  MixByte(h, policy.mode.has_value()
                 ? static_cast<unsigned char>(1 + static_cast<int>(*policy.mode))
                 : 0);
  MixU64(h, policy.entries.size());
  for (const Entry& entry : policy.entries) MixEntry(h, entry);
  return h;
}

std::shared_ptr<const CompiledPolicy> IrStore::Intern(
    const Eacl& policy, const std::string& name, const CompileEnv& env,
    std::uint64_t env_version) {
  // Key = structure hash + provenance name + environment version.  The name
  // is part of the key because attribution counters and audit records are
  // keyed by it; the env version because a different registry binding bakes
  // different routines into the IR.
  std::string key;
  {
    char hex[17];
    std::uint64_t h = HashPolicy(policy);
    for (int i = 15; i >= 0; --i) {
      hex[i] = "0123456789abcdef"[h & 0xF];
      h >>= 4;
    }
    hex[16] = '\0';
    key.reserve(16 + 2 + name.size() + 20);
    key.append(hex, 16);
    key.push_back('\x1f');
    key.append(name);
    key.push_back('\x1f');
    key.append(std::to_string(env_version));
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    if (auto live = it->second.lock()) {
      ++hits_;
      if (hit_counter_ != nullptr) hit_counter_->Inc();
      return live;
    }
  }
  ++misses_;
  if (miss_counter_ != nullptr) miss_counter_->Inc();
  std::shared_ptr<const CompiledPolicy> compiled =
      CompilePolicy(policy, name, env);
  map_[key] = compiled;
  // Amortized reclamation: one sweep per compile keeps the table bounded by
  // the live set without a background thread (compiles are rare and already
  // off the request path).
  SweepLocked();
  PublishGaugesLocked();
  return compiled;
}

void IrStore::AttachMetrics(telemetry::MetricRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry == nullptr) return;
  // Attach handles only; no catch-up.  Callers attach before the first
  // Intern (BindEngine does so before its initial republish), and a
  // re-attach to the same registry must not double-count.
  hit_counter_ = registry->GetCounter("gaa_ir_store_hits_total");
  miss_counter_ = registry->GetCounter("gaa_ir_store_misses_total");
  entries_gauge_ = registry->GetGauge("gaa_ir_store_entries");
  bytes_gauge_ = registry->GetGauge("gaa_ir_store_bytes");
  PublishGaugesLocked();
}

IrStore::Stats IrStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.sweeps = sweeps_;
  std::size_t live = 0;
  std::size_t bytes = 0;
  for (const auto& [key, weak] : map_) {
    if (auto p = weak.lock()) {
      ++live;
      bytes += p->ApproxIrBytes();
    }
  }
  s.entries = live;
  s.bytes = bytes;
  return s;
}

void IrStore::SweepLocked() {
  live_bytes_ = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    if (auto p = it->second.lock()) {
      live_bytes_ += p->ApproxIrBytes();
      ++it;
    } else {
      it = map_.erase(it);
      ++sweeps_;
    }
  }
}

void IrStore::PublishGaugesLocked() {
  if (entries_gauge_ != nullptr) {
    entries_gauge_->Set(static_cast<std::int64_t>(map_.size()));
  }
  if (bytes_gauge_ != nullptr) {
    bytes_gauge_->Set(static_cast<std::int64_t>(live_bytes_));
  }
}

}  // namespace gaa::eacl
