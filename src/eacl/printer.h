// EACL serializer: renders an AST back to the concrete syntax accepted by
// the parser.  Print→Parse is an identity on valid policies (property-tested)
// which makes policies storable, diffable and transferable between the
// policy officer's tools and the server.
#pragma once

#include <string>

#include "eacl/ast.h"

namespace gaa::eacl {

/// Render a full policy.
std::string PrintEacl(const Eacl& eacl);

/// Render a single entry (used in audit records and error messages).
std::string PrintEntry(const Entry& entry);

/// Render one condition as "type def_auth value".
std::string PrintCondition(const Condition& cond);

}  // namespace gaa::eacl
