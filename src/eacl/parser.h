// EACL concrete-syntax parser.
//
// The concrete syntax is line-oriented, matching the paper's examples
// (section 7) with underscores joining multi-word keywords:
//
//     eacl_mode 1                      # composition mode: narrow
//     # EACL entry 1
//     neg_access_right * *
//     pre_cond_system_threat_level local =high
//
//     pos_access_right apache *
//     pre_cond_regex gnu *phf* *test-cgi*
//     rr_cond_notify local on:failure/sysadmin/info:cgiexploit
//     rr_cond_update_log local on:failure/BadGuys/info:ip
//
// Rules:
//   * '#' starts a comment; blank lines are ignored.
//   * `eacl_mode <0|1|2|expand|narrow|stop>` may appear once, before any
//     entry (it is meaningful on system-wide policies).
//   * `pos_access_right <def_auth> <value>` / `neg_access_right ...` start a
//     new entry.
//   * Any token with a `pre_cond_` / `rr_cond_` / `mid_cond_` / `post_cond_`
//     prefix starts a condition line: `<type> <def_auth> <value...>`; the
//     value is the remainder of the line (signatures may contain spaces).
//
// Parse errors carry the 1-based line number.
#pragma once

#include <string>
#include <string_view>

#include "eacl/ast.h"
#include "util/status.h"

namespace gaa::eacl {

/// Parse a full EACL policy from text.
util::Result<Eacl> ParseEacl(std::string_view text);

/// Parse a policy file from disk.
util::Result<Eacl> ParseEaclFile(const std::string& path);

}  // namespace gaa::eacl
