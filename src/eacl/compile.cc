#include "eacl/compile.h"

#include "eacl/ir_store.h"
#include "telemetry/metrics.h"

namespace gaa::eacl {

namespace {

constexpr const char* kEntryOutcomes[] = {"yes", "no", "maybe", "miss"};

/// Prebuilt "no routine registered" evaluator.  The detail string matches
/// the interpreter's wording exactly — the differential property test
/// compares traces verbatim.
core::CondRoutine MaybeThunk(const Condition& cond) {
  std::string detail =
      "no routine registered for " + cond.type + "/" + cond.def_auth;
  return [detail = std::move(detail)](const Condition&,
                                      const core::RequestContext&,
                                      core::EvalServices&) {
    return core::EvalOutcome::Unevaluated(detail);
  };
}

std::vector<CompiledCond> CompileBlock(const std::vector<Condition>& block,
                                       CondPhase phase, const CompileEnv& env,
                                       CompileStats* stats) {
  std::vector<CompiledCond> out;
  out.reserve(block.size());
  for (const Condition& cond : block) {
    CompiledCond cc;
    cc.source = cond;
    cc.phase = phase;
    cc.content_hash = HashCondition(cond);
    const core::CondRegistration* reg =
        env.registry == nullptr
            ? nullptr
            : env.registry->FindRegistration(cond.type, cond.def_auth);
    if (reg == nullptr) {
      // Unknown type/authority: resolved to the MAYBE thunk once, here, not
      // per request.  Marked volatile for form's sake — a MAYBE outcome is
      // never memoized anyway.
      cc.resolved = false;
      cc.purity = core::CondPurity::kVolatile;
      cc.fn = MaybeThunk(cond);
      if (stats != nullptr) ++stats->unresolved;
    } else {
      cc.resolved = true;
      cc.purity = reg->traits.purity;
      cc.fn = reg->routine;
      if (reg->specialize) {
        core::SpecializedCond spec = reg->specialize(cond);
        if (spec.routine) {
          cc.fn = std::move(spec.routine);
          cc.specialized = true;
          if (stats != nullptr) ++stats->specialized;
        }
        if (spec.purity.has_value()) cc.purity = *spec.purity;
      }
    }
    if (env.metrics != nullptr) {
      cc.latency = env.metrics->GetHistogram(
          "gaa_cond_eval_us",
          "cond=\"" + cond.type + "\",auth=\"" + cond.def_auth + "\"",
          CondLatencyBoundsUs());
    }
    if (stats != nullptr) ++stats->conditions;
    out.push_back(std::move(cc));
  }
  return out;
}

}  // namespace

const std::vector<std::uint64_t>& CondLatencyBoundsUs() {
  static const std::vector<std::uint64_t> bounds = {
      1, 2, 5, 10, 25, 50, 100, 250, 1000, 5000, 25000, 100000, 1000000};
  return bounds;
}

const char* EntryOutcomeName(int outcome_idx) {
  return kEntryOutcomes[outcome_idx & 3];
}

std::string CompiledPolicy::IndexKey(std::string_view def_auth,
                                     std::string_view value) {
  std::string key;
  key.reserve(def_auth.size() + 1 + value.size());
  key.append(def_auth);
  key.push_back('\0');
  key.append(value);
  return key;
}

std::size_t CompiledPolicy::ApproxIrBytes() const {
  // Deliberately approximate: counts the dominant owned allocations so the
  // gaa_ir_store_bytes gauge and the E8 sharing bench track real growth,
  // without chasing every small-string optimization.
  auto str_bytes = [](const std::string& s) { return s.capacity(); };
  auto cond_bytes = [&](const Condition& c) {
    return sizeof(Condition) + str_bytes(c.type) + str_bytes(c.def_auth) +
           str_bytes(c.value);
  };
  std::size_t total = sizeof(CompiledPolicy) + str_bytes(name_);
  for (const CompiledEntry& e : entries_) {
    total += sizeof(CompiledEntry);
    total += str_bytes(e.right.def_auth) + str_bytes(e.right.value);
    for (const CompiledCond& cc : e.pre) {
      total += sizeof(CompiledCond) + cond_bytes(cc.source);
    }
    for (const CompiledCond& cc : e.request_result) {
      total += sizeof(CompiledCond) + cond_bytes(cc.source);
    }
    for (const Condition& c : e.mid) total += cond_bytes(c);
    for (const Condition& c : e.post) total += cond_bytes(c);
  }
  for (const auto& [key, covering] : index_) {
    total += sizeof(void*) * 4 + key.capacity() +
             covering.capacity() * sizeof(std::uint32_t);
  }
  total += unindexed_.capacity() * sizeof(std::uint32_t);
  return total;
}

const std::vector<std::uint32_t>* CompiledPolicy::IndexedCover(
    std::string_view def_auth, std::string_view value) const {
  auto it = index_.find(IndexKey(def_auth, value));
  if (it == index_.end()) return nullptr;
  return &it->second;
}

std::shared_ptr<const CompiledPolicy> CompilePolicy(const Eacl& policy,
                                                    const std::string& name,
                                                    const CompileEnv& env,
                                                    CompileStats* stats) {
  auto compiled = std::make_shared<CompiledPolicy>();
  compiled->name_ = name;
  compiled->mode_ = policy.mode;
  compiled->content_hash_ = HashPolicy(policy);
  compiled->entries_.reserve(policy.entries.size());

  for (std::size_t i = 0; i < policy.entries.size(); ++i) {
    const Entry& entry = policy.entries[i];
    CompiledEntry ce;
    ce.right = entry.right;
    ce.index = static_cast<int>(i);
    ce.content_hash = HashEntry(entry);
    ce.pre = CompileBlock(entry.pre, CondPhase::kPre, env, stats);
    ce.request_result =
        CompileBlock(entry.request_result, CondPhase::kRequestResult, env,
                     stats);
    ce.mid = entry.mid;
    ce.post = entry.post;
    if (env.metrics != nullptr) {
      // Same family/labels the interpreter uses, so both engines share
      // counters and /__status/policies keeps one view.
      for (int o = 0; o < 4; ++o) {
        ce.outcomes[o] = env.metrics->GetCounter(
            "eacl_entry_decisions_total",
            "policy=\"" + name + "\",entry=\"" + std::to_string(i) +
                "\",outcome=\"" + kEntryOutcomes[o] + "\"");
      }
    }
    compiled->entries_.push_back(std::move(ce));
  }

  // Per-right index.  Concrete rights key the table; an entry with a "*"
  // in either field lands in the wildcard fallback list.  Each concrete
  // key's vector holds every entry covering it — wildcard entries merged
  // in entry order, preserving first-to-last scan semantics.
  for (std::uint32_t i = 0; i < compiled->entries_.size(); ++i) {
    const Right& r = compiled->entries_[i].right;
    if (r.def_auth == "*" || r.value == "*") {
      compiled->unindexed_.push_back(i);
    } else {
      compiled->index_[CompiledPolicy::IndexKey(r.def_auth, r.value)];
    }
  }
  for (auto& [key, covering] : compiled->index_) {
    auto sep = key.find('\0');
    std::string_view def_auth = std::string_view(key).substr(0, sep);
    std::string_view value = std::string_view(key).substr(sep + 1);
    for (std::uint32_t i = 0; i < compiled->entries_.size(); ++i) {
      if (compiled->entries_[i].right.Covers(def_auth, value)) {
        covering.push_back(i);
      }
    }
  }
  return compiled;
}

}  // namespace gaa::eacl
