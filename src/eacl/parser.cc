#include "eacl/parser.h"

#include "util/config.h"
#include "util/strings.h"

namespace gaa::eacl {

namespace {

using util::Error;
using util::ErrorCode;

Error ParseError(int line, const std::string& what) {
  return Error(ErrorCode::kParseError,
               "line " + std::to_string(line) + ": " + what);
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
              c == '*';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

util::Result<Eacl> ParseEacl(std::string_view text) {
  auto lines_or = util::ParseConfigText(text);
  if (!lines_or.ok()) return lines_or.error();
  const auto& lines = lines_or.value();

  Eacl eacl;
  Entry* current = nullptr;
  bool saw_entry = false;

  for (const auto& line : lines) {
    const auto& t = line.tokens;
    if (t.empty()) continue;
    const std::string& keyword = t[0];

    if (keyword == "eacl_mode") {
      if (saw_entry)
        return ParseError(line.line_number,
                          "eacl_mode must precede all entries");
      if (eacl.mode.has_value())
        return ParseError(line.line_number, "duplicate eacl_mode");
      if (t.size() != 2)
        return ParseError(line.line_number, "eacl_mode takes one argument");
      auto mode = ParseCompositionMode(t[1]);
      if (!mode)
        return ParseError(line.line_number,
                          "bad composition mode '" + t[1] + "'");
      eacl.mode = *mode;
      continue;
    }

    if (keyword == "pos_access_right" || keyword == "neg_access_right") {
      if (t.size() != 3)
        return ParseError(line.line_number,
                          keyword + " takes <def_auth> <value>");
      if (!IsIdentifier(t[1]) || !IsIdentifier(t[2]))
        return ParseError(line.line_number,
                          "malformed right '" + t[1] + " " + t[2] + "'");
      Entry entry;
      entry.right.positive = (keyword == "pos_access_right");
      entry.right.def_auth = t[1];
      entry.right.value = t[2];
      eacl.entries.push_back(std::move(entry));
      current = &eacl.entries.back();
      saw_entry = true;
      continue;
    }

    auto phase = PhaseFromConditionType(keyword);
    if (phase.has_value()) {
      if (current == nullptr)
        return ParseError(line.line_number,
                          "condition '" + keyword + "' before any entry");
      if (t.size() < 2)
        return ParseError(line.line_number,
                          "condition '" + keyword + "' missing def_auth");
      if (!current->right.positive && (*phase == CondPhase::kMid ||
                                       *phase == CondPhase::kPost)) {
        // BNF: negative rights carry only pre and request-result blocks.
        return ParseError(line.line_number,
                          "negative access right cannot carry " +
                              std::string(CondPhaseName(*phase)) +
                              "-conditions");
      }
      Condition cond;
      cond.type = keyword;
      cond.def_auth = t[1];
      // Value is the remainder of the line; signatures may contain spaces
      // ("*phf* *test-cgi*").  An absent value is allowed (some conditions
      // are parameterless markers).
      std::vector<std::string> rest(t.begin() + 2, t.end());
      cond.value = util::Join(rest, " ");
      current->block(*phase).push_back(std::move(cond));
      continue;
    }

    return ParseError(line.line_number, "unknown directive '" + keyword + "'");
  }

  return eacl;
}

util::Result<Eacl> ParseEaclFile(const std::string& path) {
  auto text = util::ReadFileToString(path);
  if (!text.ok()) return text.error();
  return ParseEacl(text.value());
}

}  // namespace gaa::eacl
