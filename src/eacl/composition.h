// Policy composition (paper §2.1).
//
// The framework supports system-wide and local policies.  The composed
// policy places system-wide policies ahead of local ones (system-wide
// implicitly has higher priority), and the system-wide policy's composition
// mode chooses how decisions combine:
//
//   expand  — disjunction of grants: a request allowed by either the
//             system-wide or the local policy is allowed.
//   narrow  — conjunction: the system-wide (mandatory) policy AND the local
//             (discretionary) policy must both allow.
//   stop    — the system-wide policy alone applies; local policies are
//             ignored (quick lockdown / administrator override).
//
// Multiple separately-specified system-wide policies (or local policies) are
// themselves combined by conjunction (paper §2.1, final sentence).
#pragma once

#include <vector>

#include "eacl/ast.h"
#include "util/tristate.h"

namespace gaa::eacl {

/// The retrieved-and-merged policy list for one protected object.  Decision
/// combination happens at evaluation time in the GAA core; this structure
/// preserves which side each policy came from plus the effective mode.
struct ComposedPolicy {
  CompositionMode mode = CompositionMode::kNarrow;
  std::vector<Eacl> system_policies;  ///< evaluated first (higher priority)
  std::vector<Eacl> local_policies;   ///< ignored entirely under `stop`

  /// Provenance names parallel to the policy vectors ("system#0",
  /// "local:/cgi-bin", a policy file path, ...).  May be shorter than the
  /// policy vectors (unnamed tail); use SystemName()/LocalName(), which
  /// fall back to a positional name, so decision attribution always has a
  /// stable identifier to report.
  std::vector<std::string> system_names;
  std::vector<std::string> local_names;

  std::string SystemName(std::size_t index) const;
  std::string LocalName(std::size_t index) const;

  std::size_t TotalEntries() const;
};

/// Build the composed policy.  The effective mode is taken from the first
/// system-wide policy that declares one; with no system-wide mode the
/// default is `narrow` (mandatory ∧ discretionary — the conservative
/// choice).  Under `stop`, local policies (and their names) are dropped at
/// composition time.
ComposedPolicy Compose(std::vector<Eacl> system_policies,
                       std::vector<Eacl> local_policies,
                       std::vector<std::string> system_names = {},
                       std::vector<std::string> local_names = {});

/// Combine the two sides' decisions under a composition mode using
/// three-valued logic.  `have_system` / `have_local` say whether that side
/// contributed any policy at all (an absent side defers to the other).
util::Tristate CombineDecisions(CompositionMode mode, util::Tristate system,
                                bool have_system, util::Tristate local,
                                bool have_local);

}  // namespace gaa::eacl
