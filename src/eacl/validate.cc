#include "eacl/validate.h"

#include "eacl/printer.h"

namespace gaa::eacl {

namespace {

using util::Error;
using util::ErrorCode;

bool IsIdentifier(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
              c == '*';
    if (!ok) return false;
  }
  return true;
}

// A policy-side right `a` covers everything a policy-side right `b` covers.
bool RightSubsumes(const Right& a, const Right& b) {
  bool auth = a.def_auth == "*" || a.def_auth == b.def_auth;
  bool value = a.value == "*" || a.value == b.value;
  return auth && value;
}

}  // namespace

util::VoidResult Validate(const Eacl& eacl) {
  for (std::size_t i = 0; i < eacl.entries.size(); ++i) {
    const Entry& entry = eacl.entries[i];
    auto where = [&](const std::string& what) {
      return Error(ErrorCode::kInvalidArgument,
                   "entry " + std::to_string(i + 1) + ": " + what);
    };
    if (!IsIdentifier(entry.right.def_auth) ||
        !IsIdentifier(entry.right.value)) {
      return where("malformed access right");
    }
    if (!entry.right.positive &&
        (!entry.mid.empty() || !entry.post.empty())) {
      return where("negative right cannot carry mid/post conditions");
    }
    for (CondPhase phase : {CondPhase::kPre, CondPhase::kRequestResult,
                            CondPhase::kMid, CondPhase::kPost}) {
      for (const Condition& cond : entry.block(phase)) {
        auto expected = PhaseFromConditionType(cond.type);
        if (!expected.has_value()) {
          return where("condition type '" + cond.type +
                       "' has no phase prefix");
        }
        if (*expected != phase) {
          return where("condition '" + cond.type + "' placed in " +
                       std::string(CondPhaseName(phase)) + " block");
        }
        if (cond.def_auth.empty()) {
          return where("condition '" + cond.type + "' missing def_auth");
        }
      }
    }
  }
  return util::VoidResult::Ok();
}

const char* PolicyWarningKindName(PolicyWarning::Kind kind) {
  switch (kind) {
    case PolicyWarning::Kind::kShadowedEntry:
      return "shadowed_entry";
    case PolicyWarning::Kind::kDuplicateEntry:
      return "duplicate_entry";
    case PolicyWarning::Kind::kContradiction:
      return "contradiction";
    case PolicyWarning::Kind::kUnconditionalDeny:
      return "unconditional_deny";
  }
  return "?";
}

std::vector<PolicyWarning> AnalyzePolicy(const Eacl& eacl) {
  std::vector<PolicyWarning> warnings;
  const auto& entries = eacl.entries;

  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];

    if (!e.right.positive && e.pre.empty() && e.right.def_auth == "*" &&
        e.right.value == "*") {
      warnings.push_back(
          {PolicyWarning::Kind::kUnconditionalDeny, i,
           "entry " + std::to_string(i + 1) +
               " unconditionally denies all rights; every later entry is dead"});
    }

    for (std::size_t j = 0; j < i; ++j) {
      const Entry& earlier = entries[j];
      if (!RightSubsumes(earlier.right, e.right)) continue;

      // Earlier unconditioned entry on a subsuming right decides every
      // request the later entry could see: the later entry is unreachable.
      if (earlier.pre.empty()) {
        warnings.push_back({PolicyWarning::Kind::kShadowedEntry, i,
                            "entry " + std::to_string(i + 1) +
                                " is shadowed by unconditioned entry " +
                                std::to_string(j + 1)});
        if (earlier.right.positive != e.right.positive && e.pre.empty()) {
          warnings.push_back(
              {PolicyWarning::Kind::kContradiction, i,
               "entries " + std::to_string(j + 1) + " and " +
                   std::to_string(i + 1) +
                   " grant and deny the same right unconditionally"});
        }
        break;
      }

      if (earlier.right == e.right && earlier.pre == e.pre &&
          earlier.right.positive == e.right.positive) {
        warnings.push_back({PolicyWarning::Kind::kDuplicateEntry, i,
                            "entry " + std::to_string(i + 1) +
                                " duplicates entry " + std::to_string(j + 1)});
        break;
      }
    }
  }
  return warnings;
}

}  // namespace gaa::eacl
