#include "eacl/printer.h"

namespace gaa::eacl {

std::string PrintCondition(const Condition& cond) {
  std::string out = cond.type + " " + cond.def_auth;
  if (!cond.value.empty()) {
    out += " ";
    out += cond.value;
  }
  return out;
}

std::string PrintEntry(const Entry& entry) {
  std::string out;
  out += entry.right.positive ? "pos_access_right" : "neg_access_right";
  out += " " + entry.right.def_auth + " " + entry.right.value + "\n";
  for (CondPhase phase : {CondPhase::kPre, CondPhase::kRequestResult,
                          CondPhase::kMid, CondPhase::kPost}) {
    for (const auto& cond : entry.block(phase)) {
      out += PrintCondition(cond);
      out += "\n";
    }
  }
  return out;
}

std::string PrintEacl(const Eacl& eacl) {
  std::string out;
  if (eacl.mode.has_value()) {
    out += "eacl_mode ";
    out += std::to_string(static_cast<int>(*eacl.mode));
    out += "\n";
  }
  for (std::size_t i = 0; i < eacl.entries.size(); ++i) {
    out += "# EACL entry " + std::to_string(i + 1) + "\n";
    out += PrintEntry(eacl.entries[i]);
  }
  return out;
}

}  // namespace gaa::eacl
