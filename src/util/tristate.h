// Three-valued (Kleene) logic.
//
// The GAA-API's status values are three-valued: GAA_YES (all conditions
// met), GAA_NO (at least one condition failed) and GAA_MAYBE (none failed but
// at least one was left unevaluated).  Condition blocks are conjunctions and
// policy composition uses conjunction (narrow) and disjunction (expand), so
// the combination laws live here, where both the eacl and gaa modules can
// reach them, and where property tests can check the algebra in isolation.
#pragma once

namespace gaa::util {

enum class Tristate {
  kYes,    ///< definitely true  (GAA_YES)
  kNo,     ///< definitely false (GAA_NO)
  kMaybe,  ///< undetermined     (GAA_MAYBE)
};

const char* TristateName(Tristate t);

/// Kleene conjunction: NO dominates, then MAYBE, then YES.
constexpr Tristate And3(Tristate a, Tristate b) {
  if (a == Tristate::kNo || b == Tristate::kNo) return Tristate::kNo;
  if (a == Tristate::kMaybe || b == Tristate::kMaybe) return Tristate::kMaybe;
  return Tristate::kYes;
}

/// Kleene disjunction: YES dominates, then MAYBE, then NO.
constexpr Tristate Or3(Tristate a, Tristate b) {
  if (a == Tristate::kYes || b == Tristate::kYes) return Tristate::kYes;
  if (a == Tristate::kMaybe || b == Tristate::kMaybe) return Tristate::kMaybe;
  return Tristate::kNo;
}

/// Kleene negation: swaps YES and NO, fixes MAYBE.
constexpr Tristate Not3(Tristate a) {
  switch (a) {
    case Tristate::kYes:
      return Tristate::kNo;
    case Tristate::kNo:
      return Tristate::kYes;
    case Tristate::kMaybe:
      return Tristate::kMaybe;
  }
  return Tristate::kMaybe;
}

}  // namespace gaa::util
