#include "util/log.h"

#include <cstdio>

namespace gaa::util {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger::Logger() : min_level_(LogLevel::kWarn) {
  sinks_.push_back(StderrSink());
}

Logger& Logger::Instance() {
  static Logger instance;
  return instance;
}

void Logger::SetMinLevel(LogLevel level) {
  min_level_.store(level, std::memory_order_relaxed);
}

void Logger::SetSinks(std::vector<LogSink> sinks) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_ = std::move(sinks);
}

void Logger::AddSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(std::move(sink));
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (!Enabled(level)) return;
  std::vector<LogSink> sinks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sinks = sinks_;
  }
  for (const auto& sink : sinks) sink(level, message);
}

LogSink Logger::StderrSink() {
  return [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "[%s] %s\n", LogLevelName(level), message.c_str());
  };
}

}  // namespace gaa::util
