// Bounded lock-free MPMC ring (Dmitry Vyukov's bounded queue).
//
// The transport's worker handoff runs on these rings: each reactor shard
// owns one job ring (shard event loop produces, that shard's workers
// consume), one completion ring (workers produce, the shard consumes) and —
// in the no-SO_REUSEPORT fallback — one fd-handoff ring (shard 0 produces,
// the owning shard consumes).  All three uses are covered by the general
// MPMC algorithm; the steady state is one CAS per push/pop with no mutex
// anywhere.
//
// Each cell carries a sequence number: `seq == pos` means "free for the
// producer claiming position pos"; `seq == pos + 1` means "holds the value
// for the consumer claiming position pos".  Producers and consumers claim
// positions with a CAS on tail_/head_ and then publish through the cell's
// sequence, so a slow producer never makes a consumer spin on a torn value.
//
// Capacity is rounded up to a power of two.  Push fails (returns false)
// when the ring is full, Pop when it is empty — callers size the ring so
// overflow is impossible by construction (the transport bounds in-flight
// jobs by the connection cap) or handle the failure explicitly.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace gaa::util {

template <typename T>
class MpmcRing {
 public:
  /// `min_capacity` is rounded up to a power of two (minimum 2).
  explicit MpmcRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  /// False when the ring is full; `value` is left untouched in that case.
  bool Push(T&& value) {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      std::size_t seq = cell->seq.load(std::memory_order_acquire);
      auto diff = static_cast<std::intptr_t>(seq) -
                  static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full: the cell still holds an unconsumed value
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// False when the ring is empty.
  bool Pop(T& out) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      std::size_t seq = cell->seq.load(std::memory_order_acquire);
      auto diff = static_cast<std::intptr_t>(seq) -
                  static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->value = T();  // release owned resources eagerly, not at overwrite
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Approximate under concurrency; exact when producers/consumers are
  /// quiescent (tests, shutdown drains).
  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Occupancy estimate: claimed-but-unconsumed positions.  Approximate
  /// under concurrency (the two loads are not a snapshot) but never
  /// negative — the observability layer samples this for the ring-depth
  /// gauges and high-watermark accounting.
  std::size_t ApproxSize() const {
    std::size_t tail = tail_.load(std::memory_order_acquire);
    std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::size_t mask_ = 0;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumers
  alignas(64) std::atomic<std::size_t> tail_{0};  // producers
};

}  // namespace gaa::util
