#include "util/config.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace gaa::util {

Result<std::vector<ConfigLine>> ParseConfigText(std::string_view text) {
  std::vector<ConfigLine> out;
  int line_number = 0;
  std::string pending;       // accumulated continuation text
  int pending_start = 0;     // line number where the continuation began

  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view raw =
        eol == std::string_view::npos ? text.substr(pos) : text.substr(pos, eol - pos);
    ++line_number;

    std::string_view line = raw;
    // Strip comments: '#' starts a comment unless escaped.
    std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    std::string_view trimmed = Trim(line);

    bool continued = !trimmed.empty() && trimmed.back() == '\\';
    if (continued) trimmed = Trim(trimmed.substr(0, trimmed.size() - 1));

    if (!trimmed.empty()) {
      if (pending.empty()) pending_start = line_number;
      if (!pending.empty()) pending.push_back(' ');
      pending.append(trimmed);
    }

    if (!continued && !pending.empty()) {
      ConfigLine cl;
      cl.line_number = pending_start;
      cl.tokens = SplitWhitespace(pending);
      out.push_back(std::move(cl));
      pending.clear();
    }

    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  if (!pending.empty()) {
    ConfigLine cl;
    cl.line_number = pending_start;
    cl.tokens = SplitWhitespace(pending);
    out.push_back(std::move(cl));
  }
  return out;
}

Result<std::vector<ConfigLine>> ParseConfigFile(const std::string& path) {
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.error();
  return ParseConfigText(text.value());
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error(ErrorCode::kNotFound, "cannot open file: " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

VoidResult WriteStringToFile(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Error(ErrorCode::kUnavailable, "cannot open file for write: " + path);
  }
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) {
    return Error(ErrorCode::kUnavailable, "short write: " + path);
  }
  return VoidResult::Ok();
}

}  // namespace gaa::util
