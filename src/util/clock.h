// Clock abstraction.
//
// All time-dependent behaviour in the reproduction (time-of-day policy
// conditions, threat-level decay, audit timestamps, notification latency,
// per-request timing) flows through the Clock interface so that tests can run
// against a deterministic SimulatedClock while benchmarks and examples use
// the real steady/system clocks.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace gaa::util {

/// Microseconds since an epoch.  For RealClock this is the Unix epoch; for
/// SimulatedClock it is whatever origin the test configures.
using TimePoint = std::int64_t;
using DurationUs = std::int64_t;

constexpr DurationUs kMicrosPerSecond = 1'000'000;
constexpr DurationUs kMicrosPerMinute = 60 * kMicrosPerSecond;
constexpr DurationUs kMicrosPerHour = 60 * kMicrosPerMinute;
constexpr DurationUs kMicrosPerDay = 24 * kMicrosPerHour;

/// Abstract time source.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since the clock's epoch.
  virtual TimePoint Now() const = 0;

  /// Advance or block for `us` microseconds.  RealClock sleeps; the
  /// simulated clock advances instantly.  Used by the notification latency
  /// model and workload pacing.
  virtual void Sleep(DurationUs us) = 0;

  /// Seconds-within-day for time-of-day policy conditions (0..86399).
  int SecondOfDay() const {
    auto t = Now() / kMicrosPerSecond;
    return static_cast<int>(((t % 86400) + 86400) % 86400);
  }
};

/// Wall-clock / sleeping clock backed by std::chrono.
class RealClock final : public Clock {
 public:
  TimePoint Now() const override;
  void Sleep(DurationUs us) override;

  /// Process-wide singleton; most call sites share this instance.
  static RealClock& Instance();
};

/// Deterministic, manually-advanced clock for tests and simulations.
/// Thread-safe: workers may read while a driver advances.
class SimulatedClock final : public Clock {
 public:
  explicit SimulatedClock(TimePoint start_us = 0) : now_(start_us) {}

  TimePoint Now() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
  }

  /// Sleep on a simulated clock simply advances time.
  void Sleep(DurationUs us) override { Advance(us); }

  void Advance(DurationUs us) {
    std::lock_guard<std::mutex> lock(mu_);
    now_ += us;
  }

  void SetTime(TimePoint t) {
    std::lock_guard<std::mutex> lock(mu_);
    now_ = t;
  }

 private:
  mutable std::mutex mu_;
  TimePoint now_;
};

/// Monotonic stopwatch for latency measurements (always real time).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }
  void Restart();
  /// Elapsed microseconds since construction / Restart().
  DurationUs ElapsedUs() const;
  /// Elapsed milliseconds at nanosecond resolution (micro-benchmarks).
  double ElapsedMs() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Render a TimePoint as "YYYY-MM-DD HH:MM:SS.mmm" (UTC) for logs/audit.
std::string FormatTimestamp(TimePoint us);

}  // namespace gaa::util
