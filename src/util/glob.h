// Wildcard pattern matching for EACL signature conditions.
//
// The paper's `pre_cond_regex gnu` conditions use shell-style wildcard
// signatures such as "*phf*", "*test-cgi*", "*%*" and
// "*///////////////////*".  We implement the classic glob dialect:
//
//   *   matches any run of characters (including empty)
//   ?   matches exactly one character
//   [a-z] / [!a-z]  character classes
//   \x  escapes the next character literally
//
// Matching is iterative (no recursion) and O(n*m) worst case, which keeps a
// hostile pattern from blowing the stack — signatures come from policy files,
// but the *subject* is attacker-controlled URL text.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gaa::util {

/// True if `text` matches glob `pattern` in full.
bool GlobMatch(std::string_view pattern, std::string_view text);

/// Case-insensitive variant (URLs and HTTP header names are case-insensitive
/// in the places signatures look).
bool GlobMatchIgnoreCase(std::string_view pattern, std::string_view text);

/// A compiled glob: pre-splits the pattern once so repeated matching against
/// many requests avoids re-scanning pattern syntax.  Used by the signature
/// database on the hot path.
class CompiledGlob {
 public:
  explicit CompiledGlob(std::string pattern, bool ignore_case = false);

  bool Matches(std::string_view text) const;
  const std::string& pattern() const { return pattern_; }
  bool ignore_case() const { return ignore_case_; }

  /// Quick rejection: the longest literal segment of the pattern.  If this
  /// is non-empty and absent from the subject, the glob cannot match.
  const std::string& longest_literal() const { return longest_literal_; }

 private:
  std::string pattern_;
  bool ignore_case_;
  std::string longest_literal_;
};

}  // namespace gaa::util
