// Leveled logger with pluggable sinks.
//
// The server, the GAA-API and the IDS all log through this.  Tests install a
// capturing sink; examples and benches use stderr (or silence it).
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace gaa::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

/// A sink consumes fully-formatted log records.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Process-wide logger.  Thread-safe.
class Logger {
 public:
  static Logger& Instance();

  void SetMinLevel(LogLevel level);
  LogLevel min_level() const { return min_level_.load(std::memory_order_relaxed); }

  /// Lock-free level check; GAA_LOG consults this before any formatting so
  /// disabled debug logging costs a relaxed load and a predicted branch.
  bool Enabled(LogLevel level) const { return level >= min_level(); }

  /// Replace all sinks (returns previous count).  Passing {} silences logs.
  void SetSinks(std::vector<LogSink> sinks);
  void AddSink(LogSink sink);

  void Log(LogLevel level, const std::string& message);

  /// Default sink writing "LEVEL message" to stderr.
  static LogSink StderrSink();

 private:
  Logger();
  mutable std::mutex mu_;  ///< guards sinks_ only; min_level_ is atomic
  std::atomic<LogLevel> min_level_;
  std::vector<LogSink> sinks_;
};

/// Stream-style logging helper:  LOG_STREAM(kInfo) << "x=" << x;
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { Logger::Instance().Log(level_, ss_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

}  // namespace gaa::util

// The level check happens BEFORE the LogStream exists, so `GAA_LOG(kDebug)
// << Expensive()` evaluates nothing when debug logging is disabled.
#define GAA_LOG(level)                                      \
  if (!::gaa::util::Logger::Instance().Enabled(            \
          ::gaa::util::LogLevel::level)) {                 \
  } else                                                   \
    ::gaa::util::LogStream(::gaa::util::LogLevel::level)
