// Leveled logger with pluggable sinks.
//
// The server, the GAA-API and the IDS all log through this.  Tests install a
// capturing sink; examples and benches use stderr (or silence it).
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace gaa::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

/// A sink consumes fully-formatted log records.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Process-wide logger.  Thread-safe.
class Logger {
 public:
  static Logger& Instance();

  void SetMinLevel(LogLevel level);
  LogLevel min_level() const;

  /// Replace all sinks (returns previous count).  Passing {} silences logs.
  void SetSinks(std::vector<LogSink> sinks);
  void AddSink(LogSink sink);

  void Log(LogLevel level, const std::string& message);

  /// Default sink writing "LEVEL message" to stderr.
  static LogSink StderrSink();

 private:
  Logger();
  mutable std::mutex mu_;
  LogLevel min_level_;
  std::vector<LogSink> sinks_;
};

/// Stream-style logging helper:  LOG_STREAM(kInfo) << "x=" << x;
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { Logger::Instance().Log(level_, ss_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

}  // namespace gaa::util

#define GAA_LOG(level) ::gaa::util::LogStream(::gaa::util::LogLevel::level)
