#include "util/glob.h"

#include <cctype>

namespace gaa::util {

namespace {

char Fold(char c, bool ignore_case) {
  return ignore_case
             ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
             : c;
}

// Matches a character class starting at pattern[*pi] == '['.  On success
// advances *pi past the closing ']' and reports whether `c` is in the class.
// A malformed class (no closing bracket) is treated as a literal '['.
bool MatchClass(std::string_view pattern, std::size_t* pi, char c,
                bool ignore_case, bool* ok) {
  std::size_t i = *pi + 1;  // past '['
  bool negate = false;
  if (i < pattern.size() && (pattern[i] == '!' || pattern[i] == '^')) {
    negate = true;
    ++i;
  }
  bool matched = false;
  bool first = true;
  std::size_t scan = i;
  // Find closing bracket first; ']' is literal if it is the first class char.
  std::size_t close = std::string_view::npos;
  for (std::size_t j = scan; j < pattern.size(); ++j) {
    if (pattern[j] == ']' && !(first && j == scan)) {
      close = j;
      break;
    }
    if (j == scan) first = false;
  }
  if (close == std::string_view::npos) {
    *ok = false;  // malformed; caller treats '[' literally
    return false;
  }
  char fc = Fold(c, ignore_case);
  for (std::size_t j = i; j < close; ++j) {
    if (j + 2 < close && pattern[j + 1] == '-') {
      char lo = Fold(pattern[j], ignore_case);
      char hi = Fold(pattern[j + 2], ignore_case);
      if (lo <= fc && fc <= hi) matched = true;
      j += 2;
    } else if (Fold(pattern[j], ignore_case) == fc) {
      matched = true;
    }
  }
  *pi = close;  // caller's loop ++ moves past ']'
  *ok = true;
  return negate ? !matched : matched;
}

bool GlobMatchImpl(std::string_view pattern, std::string_view text,
                   bool ignore_case) {
  // Iterative backtracking matcher (classic two-pointer algorithm).
  std::size_t p = 0, t = 0;
  std::size_t star_p = std::string_view::npos;  // position after last '*'
  std::size_t star_t = 0;                       // text position for that star

  while (t < text.size()) {
    bool advanced = false;
    if (p < pattern.size()) {
      char pc = pattern[p];
      if (pc == '*') {
        star_p = ++p;
        star_t = t;
        continue;
      }
      if (pc == '?') {
        ++p;
        ++t;
        continue;
      }
      if (pc == '[') {
        std::size_t pi = p;
        bool ok = false;
        bool in_class = MatchClass(pattern, &pi, text[t], ignore_case, &ok);
        if (ok) {
          if (in_class) {
            p = pi + 1;
            ++t;
            continue;
          }
          // fall through to backtrack
        } else if (Fold(text[t], ignore_case) == Fold('[', ignore_case)) {
          ++p;
          ++t;
          continue;
        }
      } else {
        if (pc == '\\' && p + 1 < pattern.size()) {
          pc = pattern[p + 1];
          if (Fold(pc, ignore_case) == Fold(text[t], ignore_case)) {
            p += 2;
            ++t;
            continue;
          }
        } else if (Fold(pc, ignore_case) == Fold(text[t], ignore_case)) {
          ++p;
          ++t;
          continue;
        }
      }
    }
    (void)advanced;
    // Mismatch: backtrack to the last '*' if any, consuming one more char.
    if (star_p != std::string_view::npos) {
      p = star_p;
      t = ++star_t;
    } else {
      return false;
    }
  }
  // Remaining pattern must be all '*'.
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace

bool GlobMatch(std::string_view pattern, std::string_view text) {
  return GlobMatchImpl(pattern, text, /*ignore_case=*/false);
}

bool GlobMatchIgnoreCase(std::string_view pattern, std::string_view text) {
  return GlobMatchImpl(pattern, text, /*ignore_case=*/true);
}

CompiledGlob::CompiledGlob(std::string pattern, bool ignore_case)
    : pattern_(std::move(pattern)), ignore_case_(ignore_case) {
  // Extract the longest metacharacter-free literal run for quick rejection.
  std::string current;
  std::string best;
  for (std::size_t i = 0; i < pattern_.size(); ++i) {
    char c = pattern_[i];
    if (c == '*' || c == '?' || c == '[') {
      if (current.size() > best.size()) best = current;
      current.clear();
    } else if (c == '\\' && i + 1 < pattern_.size()) {
      current.push_back(pattern_[++i]);
    } else {
      current.push_back(c);
    }
  }
  if (current.size() > best.size()) best = current;
  longest_literal_ = ignore_case_ ? std::string() : best;  // fold-safe only
  if (ignore_case_) longest_literal_.clear();
}

bool CompiledGlob::Matches(std::string_view text) const {
  if (!longest_literal_.empty() &&
      text.find(longest_literal_) == std::string_view::npos) {
    return false;
  }
  return GlobMatchImpl(pattern_, text, ignore_case_);
}

}  // namespace gaa::util
