// IPv4 addresses, CIDR prefixes and dotted ranges.
//
// The paper's policies restrict access by client address ("Allow from
// 128.9.0.0/16"-style directives and `pre_cond_location` EACL conditions) and
// the BadGuys blacklist is keyed by source IP.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace gaa::util {

/// An IPv4 address, stored host-order for arithmetic.
class Ipv4Address {
 public:
  Ipv4Address() = default;
  explicit Ipv4Address(std::uint32_t host_order) : bits_(host_order) {}

  /// Parse "a.b.c.d"; rejects malformed text.
  static std::optional<Ipv4Address> Parse(std::string_view text);

  std::uint32_t bits() const { return bits_; }
  std::string ToString() const;

  friend bool operator==(Ipv4Address a, Ipv4Address b) {
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(Ipv4Address a, Ipv4Address b) { return !(a == b); }
  friend bool operator<(Ipv4Address a, Ipv4Address b) {
    return a.bits_ < b.bits_;
  }

 private:
  std::uint32_t bits_ = 0;
};

/// A CIDR prefix such as "128.9.0.0/16".  "/32" (single host) is the default
/// when no prefix length is given.  Also accepts the Apache partial-octet
/// form "128.9" (== 128.9.0.0/16).
class CidrBlock {
 public:
  CidrBlock() = default;
  CidrBlock(Ipv4Address base, int prefix_len);

  static std::optional<CidrBlock> Parse(std::string_view text);

  bool Contains(Ipv4Address addr) const;
  std::string ToString() const;

  Ipv4Address base() const { return base_; }
  int prefix_len() const { return prefix_len_; }

 private:
  Ipv4Address base_;
  int prefix_len_ = 32;
  std::uint32_t mask_ = 0xffffffffu;
};

}  // namespace gaa::util
