#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace gaa::util {

namespace {
bool IsSpaceByte(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && IsSpaceByte(s[b])) ++b;
  while (e > b && IsSpaceByte(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsSpaceByte(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !IsSpaceByte(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::optional<std::int64_t> ParseInt(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::optional<std::string> UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '%') {
      if (i + 2 >= s.size()) return std::nullopt;
      int hi = HexDigit(s[i + 1]);
      int lo = HexDigit(s[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else if (c == '+') {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::size_t CountChar(std::string_view s, char ch) {
  std::size_t n = 0;
  for (char c : s)
    if (c == ch) ++n;
  return n;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

namespace {
constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int B64Value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}
}  // namespace

std::string Base64Encode(std::string_view data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    unsigned v = (static_cast<unsigned char>(data[i]) << 16) |
                 (static_cast<unsigned char>(data[i + 1]) << 8) |
                 static_cast<unsigned char>(data[i + 2]);
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.push_back(kB64Alphabet[(v >> 6) & 63]);
    out.push_back(kB64Alphabet[v & 63]);
    i += 3;
  }
  std::size_t rem = data.size() - i;
  if (rem == 1) {
    unsigned v = static_cast<unsigned char>(data[i]) << 16;
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.append("==");
  } else if (rem == 2) {
    unsigned v = (static_cast<unsigned char>(data[i]) << 16) |
                 (static_cast<unsigned char>(data[i + 1]) << 8);
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.push_back(kB64Alphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

std::optional<std::string> Base64Decode(std::string_view encoded) {
  if (encoded.size() % 4 != 0) return std::nullopt;
  std::string out;
  out.reserve(encoded.size() / 4 * 3);
  for (std::size_t i = 0; i < encoded.size(); i += 4) {
    int pad = 0;
    unsigned v = 0;
    for (int j = 0; j < 4; ++j) {
      char c = encoded[i + j];
      if (c == '=') {
        // Padding is only legal in the last two positions of the last group.
        if (i + 4 != encoded.size() || j < 2) return std::nullopt;
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) return std::nullopt;  // data after padding
      int d = B64Value(c);
      if (d < 0) return std::nullopt;
      v = (v << 6) | static_cast<unsigned>(d);
    }
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<char>((v >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<char>(v & 0xff));
  }
  return out;
}

bool IsPrintableAscii(std::string_view s) {
  for (char c : s) {
    auto u = static_cast<unsigned char>(c);
    if (u < 0x20 || u > 0x7e) return false;
  }
  return true;
}

}  // namespace gaa::util
