// Bump-pointer arena for per-request transient allocations.
//
// The static content plane (DESIGN.md §11) serves a memo-hit static GET
// with zero malloc/free: everything a request needs for a few microseconds
// — the cached `Date:` line, a conditional-GET scratch copy, the assembled
// response head — is carved off a per-connection Arena with one pointer
// bump, and the whole lot is returned with one cursor reset when the
// response has flushed.  (The webdsl exemplar in SNIPPETS.md builds its
// entire request lifecycle on this idiom.)
//
// Not thread-safe: an Arena belongs to one connection, which belongs to one
// shard loop thread by construction.  Memory handed out stays valid until
// Reset(); Reset keeps the largest block so a warmed arena never touches
// the heap again in the steady state.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace gaa::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 4096;

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Allocate `n` bytes aligned to `align` (a power of two).  Never fails
  /// short of std::bad_alloc; n == 0 returns a valid unique pointer.
  void* Alloc(std::size_t n, std::size_t align = alignof(std::max_align_t)) {
    std::size_t cursor = (cursor_ + (align - 1)) & ~(align - 1);
    if (current_ == nullptr || cursor + n > current_->size) {
      AddBlock(n + align);
      cursor = (cursor_ + (align - 1)) & ~(align - 1);
    }
    void* out = current_->data.get() + cursor;
    cursor_ = cursor + n;
    used_ = std::max(used_, settled_ + cursor_);
    return out;
  }

  /// Copy `s` into the arena; the returned view lives until Reset().
  std::string_view CopyString(std::string_view s) {
    if (s.empty()) return {};
    char* dst = static_cast<char*>(Alloc(s.size(), 1));
    std::memcpy(dst, s.data(), s.size());
    return {dst, s.size()};
  }

  /// Return every allocation at once.  The largest block is retained (and
  /// becomes the head block), so a warmed arena allocates nothing on the
  /// next request cycle; smaller overflow blocks are released.
  void Reset() {
    high_water_ = std::max(high_water_, used_);
    if (blocks_.size() > 1) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < blocks_.size(); ++i) {
        if (blocks_[i].size > blocks_[best].size) best = i;
      }
      Block keep = std::move(blocks_[best]);
      blocks_.clear();
      blocks_.push_back(std::move(keep));
    }
    current_ = blocks_.empty() ? nullptr : &blocks_.front();
    cursor_ = 0;
    settled_ = 0;
    used_ = 0;
  }

  /// Bytes handed out since the last Reset() (alignment padding included).
  std::size_t bytes_used() const { return used_; }
  /// Bytes of backing store currently owned.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  /// Largest bytes_used() observed over any request cycle (telemetry:
  /// transport_arena_bytes).
  std::size_t high_water() const { return std::max(high_water_, used_); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  void AddBlock(std::size_t at_least) {
    std::size_t size = block_bytes_;
    while (size < at_least) size *= 2;
    settled_ += cursor_;
    Block block;
    block.data = std::make_unique<char[]>(size);
    block.size = size;
    blocks_.push_back(std::move(block));
    current_ = &blocks_.back();
    cursor_ = 0;
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  Block* current_ = nullptr;   ///< always &blocks_.back() when non-null
  std::size_t cursor_ = 0;     ///< bump offset within current_
  std::size_t settled_ = 0;    ///< bytes consumed in earlier blocks
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace gaa::util
