#include "util/clock.h"

#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <thread>

namespace gaa::util {

TimePoint RealClock::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void RealClock::Sleep(DurationUs us) {
  if (us <= 0) return;
  // The OS sleep granularity (tens of microseconds of overshoot) would
  // distort sub-millisecond latency models (e.g. the scaled notification
  // delay in bench_performance), so short waits spin on the steady clock.
  if (us < 2000) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(us);
    while (std::chrono::steady_clock::now() < deadline) {
      // busy-wait
    }
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

RealClock& RealClock::Instance() {
  static RealClock instance;
  return instance;
}

void Stopwatch::Restart() { start_ = std::chrono::steady_clock::now(); }

DurationUs Stopwatch::ElapsedUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

double Stopwatch::ElapsedMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

std::string FormatTimestamp(TimePoint us) {
  std::time_t secs = static_cast<std::time_t>(us / kMicrosPerSecond);
  std::int64_t millis = (us % kMicrosPerSecond) / 1000;
  if (millis < 0) {
    millis += 1000;
    secs -= 1;
  }
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%03" PRId64,
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, millis);
  return buf;
}

}  // namespace gaa::util
