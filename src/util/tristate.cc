#include "util/tristate.h"

namespace gaa::util {

const char* TristateName(Tristate t) {
  switch (t) {
    case Tristate::kYes:
      return "YES";
    case Tristate::kNo:
      return "NO";
    case Tristate::kMaybe:
      return "MAYBE";
  }
  return "?";
}

}  // namespace gaa::util
