// Small string utilities shared by the policy parser, the HTTP substrate and
// the configuration readers.  All functions are pure and allocation-conscious.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gaa::util {

/// Strip ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Split on a single character; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Split on runs of ASCII whitespace; no empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// ASCII lower-case copy.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Join with separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Parse a decimal signed integer; rejects trailing garbage.
std::optional<std::int64_t> ParseInt(std::string_view s);

/// Parse a decimal double; rejects trailing garbage.
std::optional<double> ParseDouble(std::string_view s);

/// Percent-decode a URL component ("%2e" -> "."); returns nullopt on bad
/// escapes.  Used both by the HTTP parser and by attack-signature tests.
std::optional<std::string> UrlDecode(std::string_view s);

/// Count occurrences of `ch` in `s` (DoS signature: many '/' characters).
std::size_t CountChar(std::string_view s, char ch);

/// Replace all occurrences of `from` with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// True if every byte is printable ASCII (0x20..0x7e).  Ill-formed request
/// detection uses this.
bool IsPrintableAscii(std::string_view s);

/// Standard base64 (RFC 4648) — used by HTTP Basic authentication.
std::string Base64Encode(std::string_view data);
std::optional<std::string> Base64Decode(std::string_view encoded);

}  // namespace gaa::util
