// Deterministic pseudo-random source for workload generation.
//
// splitmix64 core: tiny, fast, and good enough for trace synthesis.  The
// workload generator must be reproducible across runs and platforms, so we
// do not use std::mt19937 seeded from random_device anywhere on the
// experiment path.
#pragma once

#include <cstdint>

namespace gaa::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ull) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(NextBelow(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw.
  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  std::uint64_t state_;
};

}  // namespace gaa::util
