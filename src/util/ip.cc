#include "util/ip.h"

#include <cstdio>

#include "util/strings.h"

namespace gaa::util {

std::optional<Ipv4Address> Ipv4Address::Parse(std::string_view text) {
  auto parts = Split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t bits = 0;
  for (const auto& part : parts) {
    auto v = ParseInt(part);
    if (!v || *v < 0 || *v > 255) return std::nullopt;
    bits = (bits << 8) | static_cast<std::uint32_t>(*v);
  }
  return Ipv4Address(bits);
}

std::string Ipv4Address::ToString() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (bits_ >> 24) & 0xff,
                (bits_ >> 16) & 0xff, (bits_ >> 8) & 0xff, bits_ & 0xff);
  return buf;
}

CidrBlock::CidrBlock(Ipv4Address base, int prefix_len)
    : base_(base), prefix_len_(prefix_len) {
  if (prefix_len_ < 0) prefix_len_ = 0;
  if (prefix_len_ > 32) prefix_len_ = 32;
  mask_ = prefix_len_ == 0 ? 0u : (0xffffffffu << (32 - prefix_len_));
  base_ = Ipv4Address(base.bits() & mask_);
}

std::optional<CidrBlock> CidrBlock::Parse(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  std::string_view addr_part = text;
  int prefix = 32;
  auto slash = text.find('/');
  if (slash != std::string_view::npos) {
    addr_part = text.substr(0, slash);
    auto p = ParseInt(text.substr(slash + 1));
    if (!p || *p < 0 || *p > 32) return std::nullopt;
    prefix = static_cast<int>(*p);
  }
  auto addr = Ipv4Address::Parse(addr_part);
  if (!addr) {
    // Apache-style partial address: "128.9" == 128.9.0.0/16.
    auto parts = Split(addr_part, '.');
    if (parts.empty() || parts.size() >= 4) return std::nullopt;
    std::uint32_t bits = 0;
    for (const auto& part : parts) {
      auto v = ParseInt(part);
      if (!v || *v < 0 || *v > 255) return std::nullopt;
      bits = (bits << 8) | static_cast<std::uint32_t>(*v);
    }
    bits <<= 8 * (4 - parts.size());
    if (slash == std::string_view::npos)
      prefix = static_cast<int>(8 * parts.size());
    return CidrBlock(Ipv4Address(bits), prefix);
  }
  return CidrBlock(*addr, prefix);
}

bool CidrBlock::Contains(Ipv4Address addr) const {
  return (addr.bits() & mask_) == base_.bits();
}

std::string CidrBlock::ToString() const {
  return base_.ToString() + "/" + std::to_string(prefix_len_);
}

}  // namespace gaa::util
