#include "util/shm_region.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace gaa::util {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

ShmRegion::~ShmRegion() { Reset(); }

ShmRegion::ShmRegion(ShmRegion&& other) noexcept
    : fd_(other.fd_), data_(other.data_), size_(other.size_) {
  other.fd_ = -1;
  other.data_ = nullptr;
  other.size_ = 0;
}

ShmRegion& ShmRegion::operator=(ShmRegion&& other) noexcept {
  if (this != &other) {
    Reset();
    fd_ = other.fd_;
    data_ = other.data_;
    size_ = other.size_;
    other.fd_ = -1;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void ShmRegion::Reset() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  size_ = 0;
}

Result<ShmRegion> ShmRegion::Create(const char* name, std::size_t bytes) {
  if (bytes == 0) {
    return Error(ErrorCode::kInvalidArgument, "shm region size must be > 0");
  }
  int fd = static_cast<int>(::memfd_create(name, MFD_CLOEXEC));
  if (fd < 0) {
    return Error(ErrorCode::kUnavailable, Errno("memfd_create"));
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    Error err(ErrorCode::kResourceExhausted, Errno("ftruncate"));
    ::close(fd);
    return err;
  }
  void* data =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (data == MAP_FAILED) {
    Error err(ErrorCode::kResourceExhausted, Errno("mmap"));
    ::close(fd);
    return err;
  }
  return ShmRegion(fd, data, bytes);
}

Result<ShmRegion> ShmRegion::AttachFd(int fd, std::size_t bytes) {
  if (fd < 0 || bytes == 0) {
    return Error(ErrorCode::kInvalidArgument, "bad shm fd or size");
  }
  off_t backing = ::lseek(fd, 0, SEEK_END);
  if (backing >= 0 && static_cast<std::size_t>(backing) < bytes) {
    return Error(ErrorCode::kInvalidArgument,
                 "shm backing object smaller than requested mapping");
  }
  void* data =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (data == MAP_FAILED) {
    return Error(ErrorCode::kResourceExhausted, Errno("mmap"));
  }
  return ShmRegion(fd, data, bytes);
}

VoidResult ShmRegion::PrepareInherit() const {
  if (fd_ < 0) {
    return VoidResult(ErrorCode::kInvalidArgument, "no fd to inherit");
  }
  int flags = ::fcntl(fd_, F_GETFD);
  if (flags < 0 || ::fcntl(fd_, F_SETFD, flags & ~FD_CLOEXEC) != 0) {
    return VoidResult(ErrorCode::kInternal, Errno("fcntl(FD_CLOEXEC)"));
  }
  return VoidResult::Ok();
}

}  // namespace gaa::util
