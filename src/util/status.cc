#include "util/status.h"

namespace gaa::util {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kParseError:
      return "parse_error";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kPermissionDenied:
      return "permission_denied";
    case ErrorCode::kAlreadyExists:
      return "already_exists";
    case ErrorCode::kResourceExhausted:
      return "resource_exhausted";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

}  // namespace gaa::util
