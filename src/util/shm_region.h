// Anonymous shared-memory region shared between the cluster supervisor and
// its server processes (DESIGN.md §15).
//
// The region is backed by a memfd (no filesystem name to leak or clean up)
// and mapped MAP_SHARED, so the same physical pages are visible to every
// process that inherits the fd across fork/exec.  Ownership is move-only:
// the mapping and the fd are released on destruction.  The fd itself is the
// capability — a child can only attach to a region whose fd the supervisor
// deliberately passed across exec (see PrepareInherit / AttachFd).
//
// Layout discipline lives one level up in cluster::ClusterBus; this class
// only manages bytes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace gaa::util {

class ShmRegion {
 public:
  ShmRegion() = default;
  ~ShmRegion();

  ShmRegion(ShmRegion&& other) noexcept;
  ShmRegion& operator=(ShmRegion&& other) noexcept;
  ShmRegion(const ShmRegion&) = delete;
  ShmRegion& operator=(const ShmRegion&) = delete;

  /// Create a new zero-filled region of `bytes` bytes.  `name` is a debug
  /// label (shows up in /proc/<pid>/fd); it is not a filesystem path.
  static Result<ShmRegion> Create(const char* name, std::size_t bytes);

  /// Map an existing region from an inherited fd (child side).  `bytes`
  /// must not exceed the backing object's size; the fd is owned afterwards.
  static Result<ShmRegion> AttachFd(int fd, std::size_t bytes);

  /// Clear FD_CLOEXEC so the fd survives execve.  Call in the child between
  /// fork and exec (async-signal-safe: one fcntl).
  VoidResult PrepareInherit() const;

  void* data() const { return data_; }
  std::size_t size() const { return size_; }
  int fd() const { return fd_; }
  bool valid() const { return data_ != nullptr; }

  /// Unmap and close.  Idempotent.
  void Reset();

 private:
  ShmRegion(int fd, void* data, std::size_t size)
      : fd_(fd), data_(data), size_(size) {}

  int fd_ = -1;
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace gaa::util
