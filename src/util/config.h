// Line-oriented configuration reader.
//
// GAA configuration files (system-wide and local) list condition-evaluation
// routines and their parameters, one directive per line:
//
//     # comment
//     condition pre_cond_time      local  builtin:time_window
//     condition pre_cond_regex     gnu    builtin:glob_signature
//     param     notify.sysadmin    sysadmin@example.org
//
// The reader supports '#' comments, blank lines, and continuation via a
// trailing backslash.  It can read either from a real file or from an
// in-memory string (tests and examples embed their configs).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gaa::util {

/// One parsed directive: the line's whitespace-separated tokens plus its
/// 1-based source line for error reporting.
struct ConfigLine {
  int line_number = 0;
  std::vector<std::string> tokens;
};

/// Parse configuration text into directives.
Result<std::vector<ConfigLine>> ParseConfigText(std::string_view text);

/// Read and parse a configuration file from disk.
Result<std::vector<ConfigLine>> ParseConfigFile(const std::string& path);

/// Read a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Write a string to a file (truncating).  Used by tests and the audit log.
VoidResult WriteStringToFile(const std::string& path, std::string_view data);

}  // namespace gaa::util
