// Lightweight error-handling vocabulary used across the GAA reproduction.
//
// Result<T> is a minimal expected-like type: either a value or an Error with
// a code and a human-readable message.  We avoid exceptions on policy /
// request processing paths because malformed input (bad policy files, bad
// HTTP requests, hostile URLs) is an expected, frequent event, not an
// exceptional one.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace gaa::util {

/// Error categories shared by all modules.
enum class ErrorCode {
  kInvalidArgument,   ///< caller passed something structurally wrong
  kParseError,        ///< malformed policy / config / request text
  kNotFound,          ///< object, file or registry entry missing
  kPermissionDenied,  ///< access control rejected the operation
  kAlreadyExists,     ///< duplicate registration or file
  kResourceExhausted, ///< limits exceeded (sizes, quotas)
  kUnavailable,       ///< dependent service down (e.g. notification sink)
  kInternal,          ///< invariant violation; indicates a bug
};

/// Human-readable name of an ErrorCode (stable, used in logs and tests).
const char* ErrorCodeName(ErrorCode code);

/// An error with a category and message.  Cheap to copy, comparable by code.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  Error() = default;
  Error(ErrorCode c, std::string msg) : code(c), message(std::move(msg)) {}

  std::string ToString() const {
    return std::string(ErrorCodeName(code)) + ": " + message;
  }
};

/// Minimal expected-like result.  Either holds a T or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(implicit)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(implicit)
  Result(ErrorCode code, std::string msg) : data_(Error(code, std::move(msg))) {}

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& take() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  /// Value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result specialization for operations without a payload.
class [[nodiscard]] VoidResult {
 public:
  VoidResult() = default;                                // success
  VoidResult(Error error) : error_(std::move(error)) {}  // NOLINT(implicit)
  VoidResult(ErrorCode code, std::string msg) : error_(Error(code, std::move(msg))) {}

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(!ok());
    return *error_;
  }

  static VoidResult Ok() { return VoidResult(); }

 private:
  std::optional<Error> error_;
};

}  // namespace gaa::util
