#include "http/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/log.h"
#include "util/strings.h"

namespace gaa::http {

namespace {

using util::Error;
using util::ErrorCode;

void SetReadTimeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void SendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; nothing useful to do
    sent += static_cast<std::size_t>(n);
  }
}

/// Read until the header/body split is seen and any Content-Length body is
/// complete (or limits/timeouts hit).  Returns false on overrun/timeout.
enum class ReadOutcome { kOk, kTooLarge, kTimeout, kClosed };

ReadOutcome ReadRequest(int fd, std::size_t max_bytes, std::string* out) {
  char buf[4096];
  std::size_t body_needed = 0;
  bool have_head = false;
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return out->empty() ? ReadOutcome::kClosed : ReadOutcome::kOk;
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadOutcome::kTimeout;
      return ReadOutcome::kClosed;
    }
    out->append(buf, static_cast<std::size_t>(n));
    if (out->size() > max_bytes) return ReadOutcome::kTooLarge;

    if (!have_head) {
      std::size_t head_end = out->find("\r\n\r\n");
      std::size_t sep = 4;
      if (head_end == std::string::npos) {
        head_end = out->find("\n\n");
        sep = 2;
      }
      if (head_end == std::string::npos) continue;
      have_head = true;
      // Content-Length, if any, tells how much body to await.
      std::string head_lower = util::ToLower(out->substr(0, head_end));
      std::size_t cl = head_lower.find("content-length:");
      if (cl != std::string::npos) {
        std::size_t eol = head_lower.find('\n', cl);
        auto value = util::Trim(std::string_view(head_lower)
                                    .substr(cl + 15, eol - cl - 15));
        if (auto len = util::ParseInt(value); len && *len >= 0) {
          std::size_t have = out->size() - head_end - sep;
          body_needed = static_cast<std::size_t>(*len) > have
                            ? static_cast<std::size_t>(*len) - have
                            : 0;
        }
      }
      if (body_needed == 0) return ReadOutcome::kOk;
      continue;
    }
    if (static_cast<std::size_t>(n) >= body_needed) return ReadOutcome::kOk;
    body_needed -= static_cast<std::size_t>(n);
  }
}

}  // namespace

TcpServer::TcpServer(WebServer* server, Options options)
    : server_(server), options_(options) {}

TcpServer::~TcpServer() { Stop(); }

util::VoidResult TcpServer::Start() {
  if (running_.load()) {
    return Error(ErrorCode::kAlreadyExists, "server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Error(ErrorCode::kUnavailable,
                 std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error(ErrorCode::kUnavailable,
                 std::string("bind: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::listen(listen_fd_, options_.backlog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error(ErrorCode::kUnavailable,
                 std::string("listen: ") + std::strerror(errno));
  }

  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return util::VoidResult::Ok();
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Shut the listening socket down; the accept loop unblocks with an error.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Close anything still queued.
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : pending_) ::close(fd);
  pending_.clear();
  listen_fd_ = -1;
}

void TcpServer::AcceptLoop() {
  while (running_.load()) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (!running_.load()) return;
      continue;
    }
    accepted_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.push_back(fd);
    }
    cv_.notify_one();
  }
}

void TcpServer::WorkerLoop() {
  for (;;) {
    int fd;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !running_.load() || !pending_.empty(); });
      if (pending_.empty()) {
        if (!running_.load()) return;
        continue;
      }
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
  }
}

void TcpServer::ServeConnection(int fd) {
  SetReadTimeout(fd, options_.read_timeout_ms);

  sockaddr_in peer{};
  socklen_t len = sizeof(peer);
  util::Ipv4Address client_ip;
  std::uint16_t client_port = 0;
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&peer), &len) == 0) {
    client_ip = util::Ipv4Address(ntohl(peer.sin_addr.s_addr));
    client_port = ntohs(peer.sin_port);
  }

  std::string raw;
  ReadOutcome outcome = ReadRequest(fd, options_.max_request_bytes, &raw);
  HttpResponse response;
  switch (outcome) {
    case ReadOutcome::kOk:
      response = server_->HandleText(raw, client_ip, client_port);
      break;
    case ReadOutcome::kTooLarge:
      rejected_.fetch_add(1);
      response = HttpResponse::Make(StatusCode::kPayloadTooLarge);
      break;
    case ReadOutcome::kTimeout:
      rejected_.fetch_add(1);
      response = HttpResponse::Make(StatusCode::kRequestTimeout);
      break;
    case ReadOutcome::kClosed:
      ::close(fd);
      return;
  }
  response.headers["Connection"] = "close";
  SendAll(fd, response.Serialize());
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

util::Result<std::string> TcpFetch(std::uint16_t port, const std::string& raw,
                                   int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Error(ErrorCode::kUnavailable,
                 std::string("socket: ") + std::strerror(errno));
  }
  SetReadTimeout(fd, timeout_ms);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Error(ErrorCode::kUnavailable,
                 std::string("connect: ") + std::strerror(errno));
  }
  SendAll(fd, raw);
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (response.empty()) {
    return Error(ErrorCode::kUnavailable, "empty response");
  }
  return response;
}

}  // namespace gaa::http
