#include "http/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>

#include "util/log.h"
#include "util/strings.h"

namespace gaa::http {

namespace {

using util::Error;
using util::ErrorCode;

// epoll_event.data.u64 tags for the two non-connection descriptors.
constexpr std::uint64_t kListenTag = 0;
constexpr std::uint64_t kWakeTag = 1;
constexpr std::uint64_t kFirstConnId = 2;

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SetReadTimeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Blocking send with EINTR retry (client helpers only; the event loop
/// writes non-blocking).  Returns false when the peer went away.
bool SendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// --- request framing ---------------------------------------------------------
//
// Decide where one request ends in a connection's byte stream, before any
// parsing.  Framing is attack surface: conflicting Content-Length headers
// and Transfer-Encoding are the raw material of request smuggling, so both
// are rejected here rather than papered over.

enum class FrameStatus { kNeedMore, kComplete, kTooLarge, kBad };

struct FrameResult {
  FrameStatus status = FrameStatus::kNeedMore;
  std::size_t total_bytes = 0;  ///< head + separator + body (kComplete)
  bool keep_alive = true;       ///< what the request asked for (kComplete)
  std::string detail;           ///< diagnosis (kBad)
};

FrameResult FrameRequest(const std::string& buf, std::size_t max_bytes) {
  FrameResult out;
  std::size_t head_end = buf.find("\r\n\r\n");
  std::size_t sep = 4;
  if (head_end == std::string::npos) {
    head_end = buf.find("\n\n");
    sep = 2;
  }
  if (head_end == std::string::npos) {
    out.status =
        buf.size() > max_bytes ? FrameStatus::kTooLarge : FrameStatus::kNeedMore;
    return out;
  }
  std::string head = util::ToLower(buf.substr(0, head_end));

  // Request-line version decides the keep-alive default.
  std::size_t line_end = head.find('\n');
  std::string_view request_line =
      line_end == std::string::npos ? std::string_view(head)
                                    : std::string_view(head).substr(0, line_end);
  out.keep_alive = request_line.find("http/1.1") != std::string_view::npos;

  std::optional<std::int64_t> content_length;
  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 1;
  while (pos < head.size()) {
    std::size_t eol = head.find('\n', pos);
    std::string_view line = eol == std::string::npos
                                ? std::string_view(head).substr(pos)
                                : std::string_view(head).substr(pos, eol - pos);
    pos = eol == std::string::npos ? head.size() : eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    auto colon = line.find(':');
    if (colon == std::string_view::npos) continue;  // parser's problem
    std::string_view name = util::Trim(line.substr(0, colon));
    std::string_view value = util::Trim(line.substr(colon + 1));
    if (name == "content-length") {
      auto parsed = util::ParseInt(value);
      if (!parsed.has_value() || *parsed < 0) {
        out.status = FrameStatus::kBad;
        out.detail = "unparsable content-length";
        return out;
      }
      if (content_length.has_value() && *content_length != *parsed) {
        out.status = FrameStatus::kBad;
        out.detail = "conflicting duplicate content-length";
        return out;
      }
      content_length = *parsed;
    } else if (name == "transfer-encoding") {
      out.status = FrameStatus::kBad;
      out.detail = "transfer-encoding not supported";
      return out;
    } else if (name == "connection") {
      if (value.find("close") != std::string_view::npos) {
        out.keep_alive = false;
      } else if (value.find("keep-alive") != std::string_view::npos) {
        out.keep_alive = true;
      }
    }
  }

  std::size_t body = content_length.has_value()
                         ? static_cast<std::size_t>(*content_length)
                         : 0;
  std::size_t total = head_end + sep + body;
  if (total > max_bytes) {
    out.status = FrameStatus::kTooLarge;
    return out;
  }
  if (buf.size() < total) {
    out.status = FrameStatus::kNeedMore;
    return out;
  }
  out.status = FrameStatus::kComplete;
  out.total_bytes = total;
  return out;
}

}  // namespace

// --- per-connection state machine -------------------------------------------

struct TcpServer::Connection {
  std::uint64_t id = 0;
  int fd = -1;
  util::Ipv4Address ip;
  std::uint16_t peer_port = 0;

  std::string in;        ///< bytes read, not yet framed into a request
  std::string out;       ///< response bytes awaiting the socket
  std::size_t out_off = 0;

  bool busy = false;              ///< request handed to a worker
  bool close_after_write = false;
  bool read_eof = false;          ///< peer half-closed its sending side
  bool shed = false;              ///< over-cap connection being 503'd
  std::uint64_t served = 0;       ///< requests dispatched on this connection
  std::int64_t last_active_ms = 0;
};

TcpServer::TcpServer(WebServer* server, Options options)
    : server_(server), options_(options) {}

TcpServer::~TcpServer() { Stop(); }

util::VoidResult TcpServer::Start() {
  if (running_.load()) {
    return Error(ErrorCode::kAlreadyExists, "server already running");
  }
  auto fail = [this](const std::string& what) -> util::VoidResult {
    std::string message = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return Error(ErrorCode::kUnavailable, message);
  };

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return fail("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return fail("eventfd");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail("bind");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::listen(listen_fd_, options_.backlog) < 0) return fail("listen");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return fail("epoll_ctl(listen)");
  }
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return fail("epoll_ctl(wake)");
  }

  next_conn_id_ = kFirstConnId;  // 0/1 tag the listen and wake descriptors
  stopping_.store(false);
  running_.store(true);
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    workers_run_ = true;
  }
  loop_thread_ = std::thread([this] { EventLoop(); });
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return util::VoidResult::Ok();
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    // Flip the predicate and notify while holding the mutex: a worker that
    // has evaluated the predicate but not yet blocked would otherwise miss
    // the notification and Stop() would hang in join() (lost wakeup).
    std::lock_guard<std::mutex> lock(jobs_mu_);
    workers_run_ = false;
    jobs_cv_.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // All threads joined; no locks needed for the queues.
  jobs_.clear();
  done_.clear();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  epoll_fd_ = wake_fd_ = -1;
  listen_fd_ = -1;  // closed by the event loop on its way out
}

TcpServer::Stats TcpServer::stats() const {
  Stats s;
  s.accepted = accepted_.load();
  s.reused = reused_.load();
  s.timed_out = timed_out_.load();
  s.shed = shed_.load();
  s.rejected = rejected_.load();
  s.requests = requests_.load();
  s.active = active_.load();
  return s;
}

void TcpServer::WakeLoop() {
  std::uint64_t one = 1;
  for (;;) {
    ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    if (n >= 0 || errno != EINTR) return;
  }
}

void TcpServer::PublishStats() {
  if (!stats_dirty_) return;
  stats_dirty_ = false;
  if (stats_hook_) stats_hook_(stats());
}

// --- event loop --------------------------------------------------------------

void TcpServer::EventLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  bool listen_open = true;
  std::int64_t drain_deadline_ms = -1;

  for (;;) {
    std::int64_t now = NowMs();
    if (stopping_.load()) {
      if (listen_open) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_open = false;
      }
      if (drain_deadline_ms < 0) {
        drain_deadline_ms = now + options_.drain_timeout_ms;
      }
      bool pending = false;
      for (const auto& [id, conn] : conns_) {
        if (conn->busy || conn->out_off < conn->out.size()) {
          pending = true;
          break;
        }
      }
      if (!pending || now >= drain_deadline_ms) break;
    }

    int timeout_ms = NextTimeoutMs(now);
    if (stopping_.load()) {
      timeout_ms = timeout_ms < 0 ? 20 : std::min(timeout_ms, 20);
    }
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — cannot continue
    }
    for (int i = 0; i < n; ++i) {
      std::uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        if (!stopping_.load()) AcceptNew();
        continue;
      }
      if (tag == kWakeTag) {
        std::uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;
      if (events[i].events & EPOLLIN) ReadConn(it->second.get());
      it = conns_.find(tag);
      if (it == conns_.end()) continue;
      if (events[i].events & EPOLLOUT) TryWrite(it->second.get());
      it = conns_.find(tag);
      if (it == conns_.end()) continue;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        // Full close / reset from the peer (a half-close arrives as a
        // plain EOF on read instead) — nothing more to deliver.
        CloseConn(tag);
      }
    }
    DrainCompletions();
    SweepTimeouts(NowMs());
    PublishStats();
  }

  for (auto& [id, conn] : conns_) {
    ::shutdown(conn->fd, SHUT_RDWR);
    ::close(conn->fd);
  }
  conns_.clear();
  active_.store(0);
  stats_dirty_ = true;
  if (listen_open) ::close(listen_fd_);
  PublishStats();
}

void TcpServer::AcceptNew() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    int fd = ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or a transient error: wait for the next event
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->ip = util::Ipv4Address(ntohl(peer.sin_addr.s_addr));
    conn->peer_port = ntohs(peer.sin_port);
    conn->last_active_ms = NowMs();

    bool over_cap = conns_.size() >= options_.max_connections;
    if (over_cap) {
      // Graceful shedding: queue a 503 and keep the connection around just
      // long enough for the peer to read it (closing immediately would
      // race the client's request and turn the 503 into a reset).
      shed_.fetch_add(1);
      conn->shed = true;
      HttpResponse resp = HttpResponse::Make(StatusCode::kServiceUnavailable);
      resp.headers["Connection"] = "close";
      resp.headers["Retry-After"] = "1";
      conn->out = resp.Serialize();
    } else {
      accepted_.fetch_add(1);
    }
    stats_dirty_ = true;

    epoll_event ev{};
    ev.data.u64 = conn->id;
    ev.events = EPOLLIN;
    if (!conn->out.empty()) ev.events |= EPOLLOUT;
    Connection* raw = conn.get();
    conns_.emplace(conn->id, std::move(conn));
    active_.store(conns_.size());
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      CloseConn(raw->id);
      continue;
    }
    if (raw->shed) TryWrite(raw);
  }
}

void TcpServer::ReadConn(Connection* conn) {
  char buf[16384];
  bool progress = false;
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      progress = true;
      if (conn->shed) continue;  // discard; the 503 is already queued
      conn->in.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      conn->read_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(conn->id);
    return;
  }
  if (progress || conn->read_eof) conn->last_active_ms = NowMs();
  TryDispatch(conn);
}

void TcpServer::TryDispatch(Connection* conn) {
  if (conn->shed) {
    if (conn->read_eof && conn->out_off >= conn->out.size()) {
      CloseConn(conn->id);
    } else {
      UpdateInterest(conn);
    }
    return;
  }
  if (conn->busy || conn->close_after_write || stopping_.load()) {
    UpdateInterest(conn);
    return;
  }

  FrameResult frame = FrameRequest(conn->in, options_.max_request_bytes);
  switch (frame.status) {
    case FrameStatus::kNeedMore:
      if (!conn->read_eof) {
        UpdateInterest(conn);
        return;
      }
      if (conn->in.empty()) {
        // Clean end of a keep-alive conversation.
        if (conn->out_off >= conn->out.size()) {
          CloseConn(conn->id);
        } else {
          conn->close_after_write = true;
          UpdateInterest(conn);
        }
        return;
      }
      // The peer closed mid-request: a truncated head or Content-Length
      // body.  The fragment must never reach the handler as well-formed.
      rejected_.fetch_add(1);
      stats_dirty_ = true;
      server_->ReportMalformed(
          RequestDefect::kTruncatedBody,
          "peer closed after " + std::to_string(conn->in.size()) +
              " bytes of an incomplete request",
          conn->ip);
      conn->in.clear();
      RespondAndClose(conn, StatusCode::kBadRequest);
      return;
    case FrameStatus::kTooLarge:
      rejected_.fetch_add(1);
      stats_dirty_ = true;
      conn->in.clear();
      RespondAndClose(conn, StatusCode::kPayloadTooLarge);
      return;
    case FrameStatus::kBad:
      rejected_.fetch_add(1);
      stats_dirty_ = true;
      server_->ReportMalformed(RequestDefect::kBadHeader, frame.detail,
                               conn->ip);
      conn->in.clear();
      RespondAndClose(conn, StatusCode::kBadRequest);
      return;
    case FrameStatus::kComplete:
      break;
  }

  Job job;
  job.conn_id = conn->id;
  job.raw = conn->in.substr(0, frame.total_bytes);
  conn->in.erase(0, frame.total_bytes);
  job.ip = conn->ip;
  job.port = conn->peer_port;
  // Begin the trace at framing so it covers time spent queued for a worker.
  telemetry::Telemetry* telemetry = server_->telemetry();
  if (telemetry != nullptr && telemetry->tracing_enabled()) {
    job.trace = telemetry->tracer().Begin();  // null when not sampled
    if (job.trace) {
      job.trace->client_ip = conn->ip.ToString();
      job.queue_span = job.trace->OpenSpan("queue");
    }
  }
  // No further request can arrive after EOF with an empty buffer; tell the
  // client we will close.
  bool more_possible = !conn->read_eof || !conn->in.empty();
  job.keep_alive = options_.keep_alive && frame.keep_alive && more_possible &&
                   conn->served + 1 < options_.max_keepalive_requests;
  conn->busy = true;
  if (conn->served > 0) reused_.fetch_add(1);
  ++conn->served;
  requests_.fetch_add(1);
  stats_dirty_ = true;
  conn->last_active_ms = NowMs();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_.push_back(std::move(job));
    jobs_cv_.notify_one();
  }
  UpdateInterest(conn);
}

void TcpServer::TryWrite(Connection* conn) {
  while (conn->out_off < conn->out.size()) {
    ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_off,
                       conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<std::size_t>(n);
      conn->last_active_ms = NowMs();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateInterest(conn);
      return;
    }
    CloseConn(conn->id);
    return;
  }
  conn->out.clear();
  conn->out_off = 0;
  if (conn->close_after_write) {
    CloseConn(conn->id);
    return;
  }
  if (conn->shed) {
    if (conn->read_eof) CloseConn(conn->id);
    else UpdateInterest(conn);
    return;
  }
  if (conn->read_eof && conn->in.empty() && !conn->busy) {
    CloseConn(conn->id);
    return;
  }
  UpdateInterest(conn);
  // A pipelined request may already be buffered; serve it next.
  if (!conn->busy && !conn->in.empty()) TryDispatch(conn);
}

void TcpServer::UpdateInterest(Connection* conn) {
  epoll_event ev{};
  ev.data.u64 = conn->id;
  ev.events = 0;
  // While a worker holds the connection's request we stop reading — the
  // kernel buffer back-pressures pipelining clients.
  if (!conn->read_eof && !conn->busy) ev.events |= EPOLLIN;
  if (conn->out_off < conn->out.size()) ev.events |= EPOLLOUT;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void TcpServer::RespondAndClose(Connection* conn, StatusCode status) {
  HttpResponse resp = HttpResponse::Make(status);
  resp.headers["Connection"] = "close";
  conn->out.append(resp.Serialize());
  conn->close_after_write = true;
  TryWrite(conn);  // may close the connection
}

void TcpServer::CloseConn(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns_.erase(it);
  active_.store(conns_.size());
  stats_dirty_ = true;
}

void TcpServer::DrainCompletions() {
  std::deque<Done> batch;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    batch.swap(done_);
  }
  for (auto& done : batch) {
    auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) continue;  // connection died while processing
    Connection* conn = it->second.get();
    conn->busy = false;
    conn->out.append(done.wire);
    if (done.close_after) conn->close_after_write = true;
    conn->last_active_ms = NowMs();
    TryWrite(conn);
  }
}

void TcpServer::SweepTimeouts(std::int64_t now_ms) {
  std::vector<std::uint64_t> stale_idle;
  std::vector<std::uint64_t> stale_partial;
  for (const auto& [id, conn] : conns_) {
    if (conn->busy) continue;  // worker latency is not the client's fault
    std::int64_t age = now_ms - conn->last_active_ms;
    bool mid_request = !conn->in.empty() || conn->out_off < conn->out.size();
    if (mid_request || conn->shed) {
      if (age > options_.read_timeout_ms) stale_partial.push_back(id);
    } else if (age > options_.idle_timeout_ms) {
      stale_idle.push_back(id);
    }
  }
  for (std::uint64_t id : stale_partial) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Connection* conn = it->second.get();
    if (conn->shed || conn->out_off < conn->out.size()) {
      // Peer is not draining our response (or a shed conn overstayed).
      CloseConn(id);
      continue;
    }
    // Slow-loris style partial request: answer 408 and drop.
    rejected_.fetch_add(1);
    stats_dirty_ = true;
    conn->in.clear();
    RespondAndClose(conn, StatusCode::kRequestTimeout);
  }
  for (std::uint64_t id : stale_idle) {
    timed_out_.fetch_add(1);
    stats_dirty_ = true;
    CloseConn(id);
  }
}

int TcpServer::NextTimeoutMs(std::int64_t now_ms) const {
  std::int64_t nearest = -1;
  for (const auto& [id, conn] : conns_) {
    if (conn->busy) continue;
    bool mid_request = !conn->in.empty() || conn->out_off < conn->out.size() ||
                       conn->shed;
    std::int64_t deadline =
        conn->last_active_ms +
        (mid_request ? options_.read_timeout_ms : options_.idle_timeout_ms);
    if (nearest < 0 || deadline < nearest) nearest = deadline;
  }
  if (nearest < 0) return -1;
  std::int64_t wait = nearest - now_ms + 1;
  if (wait < 1) wait = 1;
  if (wait > 60'000) wait = 60'000;
  return static_cast<int>(wait);
}

// --- workers -----------------------------------------------------------------

void TcpServer::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(jobs_mu_);
      jobs_cv_.wait(lock,
                    [this] { return !workers_run_ || !jobs_.empty(); });
      if (jobs_.empty()) {
        if (!workers_run_) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    if (job.trace) job.trace->CloseSpan(job.queue_span);
    HttpResponse response =
        server_->HandleText(job.raw, job.ip, job.port, std::move(job.trace));
    // Protocol-level failures poison the framing; close to resynchronize.
    bool close_after = !job.keep_alive ||
                       response.status == StatusCode::kBadRequest ||
                       response.status == StatusCode::kRequestTimeout ||
                       response.status == StatusCode::kPayloadTooLarge ||
                       response.status == StatusCode::kServiceUnavailable;
    response.headers["Connection"] = close_after ? "close" : "keep-alive";
    Done done;
    done.conn_id = job.conn_id;
    done.wire = response.Serialize();
    done.close_after = close_after;
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_.push_back(std::move(done));
    }
    WakeLoop();
  }
}

// --- blocking clients (tests / benchmarks) -----------------------------------

namespace {

int ConnectLoopback(std::uint16_t port, int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  SetReadTimeout(fd, timeout_ms);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINTR) {
      ::close(fd);
      return -1;
    }
    // Interrupted connect completes asynchronously: wait for writability
    // and check SO_ERROR.
    pollfd pfd{fd, POLLOUT, 0};
    for (;;) {
      int n = ::poll(&pfd, 1, timeout_ms);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ::close(fd);
        return -1;
      }
      break;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0 ||
        err != 0) {
      ::close(fd);
      return -1;
    }
  }
  return fd;
}

}  // namespace

util::Result<std::string> TcpFetch(std::uint16_t port, const std::string& raw,
                                   int timeout_ms) {
  int fd = ConnectLoopback(port, timeout_ms);
  if (fd < 0) {
    return Error(ErrorCode::kUnavailable,
                 std::string("connect: ") + std::strerror(errno));
  }
  if (!SendAll(fd, raw)) {
    ::close(fd);
    return Error(ErrorCode::kUnavailable, "send failed");
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  ::close(fd);
  if (response.empty()) {
    return Error(ErrorCode::kUnavailable, "empty response");
  }
  return response;
}

TcpClient::TcpClient(std::uint16_t port, int timeout_ms) {
  fd_ = ConnectLoopback(port, timeout_ms);
}

TcpClient::~TcpClient() { Close(); }

void TcpClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

util::Result<std::string> TcpClient::RoundTrip(const std::string& raw) {
  if (fd_ < 0) {
    return Error(ErrorCode::kUnavailable, "not connected");
  }
  if (!SendAll(fd_, raw)) {
    Close();
    return Error(ErrorCode::kUnavailable, "send failed (connection closed?)");
  }
  std::string data = std::move(pending_);
  pending_.clear();
  char buf[4096];
  std::size_t total = std::string::npos;
  for (;;) {
    if (total == std::string::npos) {
      std::size_t head_end = data.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        std::string head = util::ToLower(data.substr(0, head_end));
        std::size_t cl = head.find("content-length:");
        std::size_t body = 0;
        if (cl != std::string::npos) {
          std::size_t eol = head.find('\n', cl);
          auto value = util::Trim(
              std::string_view(head).substr(cl + 15, eol - cl - 15));
          if (auto parsed = util::ParseInt(value); parsed && *parsed >= 0) {
            body = static_cast<std::size_t>(*parsed);
          }
        }
        total = head_end + 4 + body;
      }
    }
    if (total != std::string::npos && data.size() >= total) break;
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      data.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    if (n == 0) {
      return Error(ErrorCode::kUnavailable,
                   data.empty() ? "connection closed"
                                : "truncated response at connection close");
    }
    return Error(ErrorCode::kUnavailable,
                 std::string("recv: ") + std::strerror(errno));
  }
  pending_.assign(data.begin() + static_cast<std::ptrdiff_t>(total),
                  data.end());
  data.resize(total);
  return data;
}

}  // namespace gaa::http
