#include "http/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <unordered_map>

#include "http/static_plane.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/arena.h"
#include "util/log.h"
#include "util/mpmc_ring.h"
#include "util/strings.h"

namespace gaa::http {

namespace {

using util::Error;
using util::ErrorCode;

// epoll_event.data.u64 tags for the two non-connection descriptors.
constexpr std::uint64_t kListenTag = 0;
constexpr std::uint64_t kWakeTag = 1;
constexpr std::uint64_t kFirstConnId = 2;
// Timer-wheel sentinel for the periodic maintenance tick (shard 0 only).
// Wheel ids are otherwise connection ids (>= kFirstConnId), so 0 and 1 are
// free in that namespace — kWakeTag lives in the separate epoll-tag
// namespace.
constexpr std::uint64_t kTickTimerId = 1;
// Per-shard loop-lag sentinel (Options::lag_probe_interval_ms): armed with
// a known deadline; the delta between that deadline and when the wheel
// actually fires it is the time this shard's event loop spent not looping.
constexpr std::uint64_t kLagProbeTimerId = 0;

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SetReadTimeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Blocking send with EINTR retry (client helpers only; the event loop
/// writes non-blocking).  Returns false when the peer went away.
bool SendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Protocol-level failures poison the framing; close to resynchronize.
bool ProtocolFailure(StatusCode status) {
  return status == StatusCode::kBadRequest ||
         status == StatusCode::kRequestTimeout ||
         status == StatusCode::kPayloadTooLarge ||
         status == StatusCode::kServiceUnavailable;
}

// --- connection read-buffer pool ---------------------------------------------
//
// Shard-local free lists of std::string backing stores: a connection's read
// buffer is recycled when it closes instead of re-growing from empty on the
// next accept.  Loop-thread only, so plain vectors suffice.

constexpr std::size_t kPoolMinCapacity = 512;
constexpr std::size_t kPoolMaxCapacity = 256 * 1024;
constexpr std::size_t kPoolMaxBuffers = 64;

std::string PoolAcquire(std::vector<std::string>& pool) {
  if (pool.empty()) return {};
  std::string buf = std::move(pool.back());
  pool.pop_back();
  buf.clear();
  return buf;
}

void PoolRelease(std::vector<std::string>& pool, std::string&& buf) {
  if (buf.capacity() >= kPoolMinCapacity && buf.capacity() <= kPoolMaxCapacity &&
      pool.size() < kPoolMaxBuffers) {
    pool.push_back(std::move(buf));
  }
}

// --- lazy timer wheel --------------------------------------------------------
//
// Per-shard connection timeouts without scanning the whole connection table
// every loop iteration (the old transport's SweepTimeouts was O(conns) per
// wakeup).  Entries are lazy: a connection arms at most one wheel entry at a
// time, and activity merely updates last_active_ms — when the entry pops,
// the true deadline is recomputed and the entry re-armed if it moved.

class TimerWheel {
 public:
  static constexpr std::int64_t kTickMs = 32;
  static constexpr std::size_t kSlots = 512;  // ~16s horizon per rotation

  void Reset(std::int64_t now_ms) {
    cursor_ = now_ms / kTickMs;
    armed_ = 0;
    for (auto& slot : slots_) slot.clear();
  }

  void Arm(std::uint64_t id, std::int64_t deadline_ms) {
    std::int64_t tick = deadline_ms / kTickMs + 1;  // round up: never early
    if (tick <= cursor_) tick = cursor_ + 1;
    std::int64_t horizon = cursor_ + static_cast<std::int64_t>(kSlots);
    if (tick > horizon) tick = horizon;  // clamp; revalidated when it pops
    slots_[static_cast<std::size_t>(tick) % kSlots].push_back(id);
    ++armed_;
  }

  template <typename DueFn>
  void Advance(std::int64_t now_ms, DueFn&& due) {
    std::int64_t now_tick = now_ms / kTickMs;
    if (armed_ == 0) {
      // Nothing armed: fast-forward so a long idle period costs nothing.
      if (now_tick > cursor_) cursor_ = now_tick;
      return;
    }
    while (cursor_ < now_tick) {
      ++cursor_;
      auto& bucket = slots_[static_cast<std::size_t>(cursor_) % kSlots];
      if (bucket.empty()) continue;
      std::vector<std::uint64_t> ids;
      ids.swap(bucket);
      armed_ -= ids.size();
      for (std::uint64_t id : ids) due(id);
    }
  }

  /// Milliseconds until the next non-empty bucket, clamped to [1, 60000];
  /// -1 when nothing is armed (block indefinitely).
  int NextDueMs(std::int64_t now_ms) const {
    if (armed_ == 0) return -1;
    for (std::size_t i = 1; i <= kSlots; ++i) {
      std::int64_t tick = cursor_ + static_cast<std::int64_t>(i);
      if (slots_[static_cast<std::size_t>(tick) % kSlots].empty()) continue;
      std::int64_t wait = tick * kTickMs - now_ms;
      if (wait < 1) wait = 1;
      if (wait > 60'000) wait = 60'000;
      return static_cast<int>(wait);
    }
    return 1;  // armed_ > 0 implies some bucket is non-empty
  }

 private:
  std::int64_t cursor_ = 0;  ///< last fully processed tick
  std::size_t armed_ = 0;
  std::array<std::vector<std::uint64_t>, kSlots> slots_{};
};

// --- request framing ---------------------------------------------------------
//
// Decide where one request ends in a connection's byte stream, before any
// parsing.  Framing is attack surface: conflicting Content-Length headers
// and Transfer-Encoding are the raw material of request smuggling, so both
// are rejected here rather than papered over.

enum class FrameStatus { kNeedMore, kComplete, kTooLarge, kBad };

struct FrameResult {
  FrameStatus status = FrameStatus::kNeedMore;
  std::size_t total_bytes = 0;  ///< head + separator + body (kComplete)
  bool keep_alive = true;       ///< what the request asked for (kComplete)
  std::string detail;           ///< diagnosis (kBad)
  /// Original-case request slices (views into the caller's buffer, valid
  /// only until it is mutated; kComplete only).
  std::string_view method;
  std::string_view target;
  std::string_view host;               ///< raw Host value ("" when absent)
  std::string_view if_none_match;      ///< conditional-GET validators,
  std::string_view if_modified_since;  ///< empty when absent
  /// Plain anonymous GET/HEAD with no body — the shape the inline fast
  /// paths may consider (the transport still applies the full admission
  /// check).
  bool inline_candidate = false;
};

char AsciiLower(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c + 32) : c;
}

/// Case-insensitive equality against an already-lower-case needle.
/// Framing runs on the event loop for every request, so it compares in
/// place rather than lowercasing a copy of the head — no allocation.
bool EqualsLower(std::string_view s, std::string_view lower) {
  if (s.size() != lower.size()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (AsciiLower(s[i]) != lower[i]) return false;
  }
  return true;
}

/// Case-insensitive containment of an already-lower-case needle.
bool ContainsLower(std::string_view hay, std::string_view lower) {
  if (hay.size() < lower.size()) return false;
  for (std::size_t i = 0; i + lower.size() <= hay.size(); ++i) {
    std::size_t j = 0;
    while (j < lower.size() && AsciiLower(hay[i + j]) == lower[j]) ++j;
    if (j == lower.size()) return true;
  }
  return false;
}

FrameResult FrameRequest(const std::string& buf, std::size_t max_bytes) {
  FrameResult out;
  std::size_t head_end = buf.find("\r\n\r\n");
  std::size_t sep = 4;
  if (head_end == std::string::npos) {
    head_end = buf.find("\n\n");
    sep = 2;
  }
  if (head_end == std::string::npos) {
    out.status =
        buf.size() > max_bytes ? FrameStatus::kTooLarge : FrameStatus::kNeedMore;
    return out;
  }
  std::string_view head(buf.data(), head_end);

  // Request-line version decides the keep-alive default.
  std::size_t line_end = head.find('\n');
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  out.keep_alive = ContainsLower(request_line, "http/1.1");

  std::optional<std::int64_t> content_length;
  bool has_authorization = false;
  std::size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 1;
  while (pos < head.size()) {
    std::size_t eol = head.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? head.substr(pos)
                                : head.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? head.size() : eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    auto colon = line.find(':');
    if (colon == std::string_view::npos) continue;  // parser's problem
    std::string_view name = util::Trim(line.substr(0, colon));
    std::string_view value = util::Trim(line.substr(colon + 1));
    if (EqualsLower(name, "content-length")) {
      auto parsed = util::ParseInt(value);
      if (!parsed.has_value() || *parsed < 0) {
        out.status = FrameStatus::kBad;
        out.detail = "unparsable content-length";
        return out;
      }
      if (content_length.has_value() && *content_length != *parsed) {
        out.status = FrameStatus::kBad;
        out.detail = "conflicting duplicate content-length";
        return out;
      }
      content_length = *parsed;
    } else if (EqualsLower(name, "transfer-encoding")) {
      out.status = FrameStatus::kBad;
      out.detail = "transfer-encoding not supported";
      return out;
    } else if (EqualsLower(name, "connection")) {
      if (ContainsLower(value, "close")) {
        out.keep_alive = false;
      } else if (ContainsLower(value, "keep-alive")) {
        out.keep_alive = true;
      }
    } else if (EqualsLower(name, "authorization")) {
      has_authorization = true;
    } else if (EqualsLower(name, "host")) {
      // First value wins for fast-path tenant routing; a conflicting
      // duplicate is the parser's reject (the probe can only ever send a
      // would-be fast-path request down the worker path).
      if (out.host.empty()) out.host = value;
    } else if (EqualsLower(name, "if-none-match")) {
      out.if_none_match = value;
    } else if (EqualsLower(name, "if-modified-since")) {
      out.if_modified_since = value;
    }
  }

  std::size_t body = content_length.has_value()
                         ? static_cast<std::size_t>(*content_length)
                         : 0;
  std::size_t total = head_end + sep + body;
  if (total > max_bytes) {
    out.status = FrameStatus::kTooLarge;
    return out;
  }
  if (buf.size() < total) {
    out.status = FrameStatus::kNeedMore;
    return out;
  }
  out.status = FrameStatus::kComplete;
  out.total_bytes = total;

  // Method/target from the original-case request line, for the fast-path
  // probes.
  std::size_t raw_line_end =
      line_end == std::string_view::npos ? head_end : line_end;
  std::string_view line0(buf.data(), raw_line_end);
  std::size_t sp1 = line0.find(' ');
  if (sp1 != std::string_view::npos) {
    std::size_t sp2 = line0.find(' ', sp1 + 1);
    if (sp2 != std::string_view::npos) {
      out.method = line0.substr(0, sp1);
      out.target = line0.substr(sp1 + 1, sp2 - sp1 - 1);
    }
  }
  out.inline_candidate =
      body == 0 && !has_authorization &&
      (out.method == "GET" || out.method == "HEAD");
  return out;
}

/// Raw accepted socket in flight from the accepting shard to its owner
/// (fallback mode when SO_REUSEPORT is unavailable).
struct Handoff {
  int fd = -1;
  std::uint32_t ip_host_order = 0;
  std::uint16_t peer_port = 0;
};

}  // namespace

// --- per-connection state machine -------------------------------------------

struct TcpServer::Connection {
  std::uint64_t id = 0;
  int fd = -1;
  util::Ipv4Address ip;
  std::uint16_t peer_port = 0;

  std::string in;  ///< bytes read, not yet framed into a request (pooled)

  /// One response chunk awaiting the socket.  Either `owned` holds the
  /// bytes (a serialized head, a moved response body — recycled through the
  /// shard buffer pool) or `view` aliases bytes that outlive the write:
  /// static-plane templates, DocTree documents, or this connection's arena.
  struct OutChunk {
    std::string owned;
    std::string_view view;
    std::string_view View() const {
      return owned.empty() ? view : std::string_view(owned);
    }
  };
  /// Response chunks, written with gathered sendmsg — head and body travel
  /// as separate chunks, never concatenated.  Consumed with a cursor
  /// (out_head) instead of pop_front so a drained queue keeps its capacity;
  /// on the template fast path a request costs zero queue allocations.
  std::vector<OutChunk> outq;
  std::size_t out_head = 0;   ///< first unsent chunk
  std::size_t out_off = 0;    ///< sent prefix of outq[out_head]
  std::size_t out_bytes = 0;  ///< unsent bytes across all chunks

  /// Per-request bump arena: holds the bytes a fast-path response needs to
  /// mutate per request (the Date line).  Reset — keeping its largest
  /// block — each time the output queue fully drains.
  util::Arena arena;
  std::size_t arena_noted = 0;  ///< arena bytes counted in the shard gauge

  void PushOwned(std::string bytes) {
    out_bytes += bytes.size();
    outq.push_back(OutChunk{std::move(bytes), {}});
  }
  void PushView(std::string_view bytes) {
    out_bytes += bytes.size();
    outq.push_back(OutChunk{{}, bytes});
  }

  bool busy = false;              ///< request handed to a worker
  bool close_after_write = false;
  bool read_eof = false;          ///< peer half-closed its sending side
  bool shed = false;              ///< over-cap connection being 503'd
  bool timer_armed = false;       ///< has a live timer-wheel entry
  std::uint64_t served = 0;       ///< requests dispatched on this connection
  std::int64_t last_active_ms = 0;

  bool HasOutput() const { return out_bytes > 0; }
};

/// A framed request on its way to a shard worker.
struct TcpServer::Job {
  std::uint64_t conn_id = 0;
  std::string raw;
  util::Ipv4Address ip;
  std::uint16_t port = 0;
  bool keep_alive = false;
  std::unique_ptr<telemetry::RequestTrace> trace;
  std::size_t queue_span = 0;
  /// Push timestamp: the worker that pops this job records now - enqueue_us
  /// into the wakeup-to-dispatch histogram (how long work sat in the ring
  /// plus how long the eventfd wakeup took to land).
  std::int64_t enqueue_us = 0;
};

/// A finished response on its way back to the owning shard's loop.
struct TcpServer::Done {
  std::uint64_t conn_id = 0;
  std::string head;  ///< status line + headers + blank line
  std::string body;  ///< owned body bytes (dynamic responses)
  /// Zero-copy body (static documents): a view into DocTree storage, which
  /// is stable for the server's lifetime, so it may cross threads.  Set
  /// only when `body` is empty.
  std::string_view body_view;
  bool close_after = false;
};

// --- shard -------------------------------------------------------------------

struct TcpServer::Shard {
  Shard(std::size_t index_arg, std::size_t ring_capacity)
      : index(index_arg),
        jobs(ring_capacity),
        done(ring_capacity),
        handoff(ring_capacity) {}

  const std::size_t index;
  int listen_fd = -1;  ///< own SO_REUSEPORT listener, or -1 (fallback mode)
  int epoll_fd = -1;
  int wake_fd = -1;  ///< nonblocking eventfd: wakes the shard loop
  int job_efd = -1;  ///< EFD_SEMAPHORE eventfd: parks idle workers

  // Loop-thread-only state.
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns;
  std::uint64_t next_conn_id = kFirstConnId;
  std::size_t accept_rr = 0;  ///< fallback round-robin cursor (shard 0)
  TimerWheel wheel;
  std::vector<std::string> buf_pool;
  bool stats_dirty = false;
  /// Arena bytes reserved across this shard's connections (loop-thread
  /// bookkeeping, exported through the transport_arena_bytes gauge).
  std::int64_t arena_bytes = 0;

  // Lock-free worker handoff: loop pushes jobs, workers push completions.
  util::MpmcRing<Job> jobs;
  util::MpmcRing<Done> done;
  util::MpmcRing<Handoff> handoff;

  // Counters: written by this shard's threads, read by any (stats()).
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> reused{0};
  std::atomic<std::uint64_t> timed_out{0};
  std::atomic<std::uint64_t> shed_count{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> inline_srv{0};
  std::atomic<std::uint64_t> active{0};

  // Reactor health (DESIGN.md §10 observability): job-ring occupancy
  // sampled at push/publish points, its all-time high watermark, and the
  // last loop-lag probe reading.  Written by the loop thread, read by any
  // (stats(), /__status).
  std::atomic<std::uint64_t> ring_depth{0};
  std::atomic<std::uint64_t> ring_hwm{0};
  std::atomic<std::uint64_t> loop_lag_ms{0};
  /// Connections this shard force-closed at the Stop() drain deadline.
  std::atomic<std::uint64_t> force_closed{0};
  /// Scheduled fire time of the in-flight lag probe (loop-thread only).
  std::int64_t lag_probe_deadline_ms = 0;

  // Per-shard gauges (resolved at Start(); null when telemetry is off).
  telemetry::Gauge* g_active = nullptr;
  telemetry::Gauge* g_requests = nullptr;
  telemetry::Gauge* g_inline = nullptr;
  telemetry::Gauge* g_accepted = nullptr;
  telemetry::Gauge* g_arena = nullptr;
  telemetry::Gauge* g_loop_lag = nullptr;
  telemetry::Gauge* g_ring_depth = nullptr;
  telemetry::Gauge* g_ring_hwm = nullptr;
  telemetry::Gauge* g_force_closed = nullptr;
  telemetry::Histogram* h_loop_lag = nullptr;   ///< lag probe, microseconds
  telemetry::Histogram* h_dispatch = nullptr;   ///< wakeup-to-dispatch, us

  /// Sample the job ring and fold the reading into the high watermark.
  void SampleRing() {
    std::size_t depth = jobs.ApproxSize();
    ring_depth.store(depth, std::memory_order_relaxed);
    if (depth > ring_hwm.load(std::memory_order_relaxed)) {
      ring_hwm.store(depth, std::memory_order_relaxed);
    }
  }

  std::thread thread;
};

TcpServer::TcpServer(WebServer* server, Options options)
    : server_(server), options_(options) {}

TcpServer::~TcpServer() { Stop(); }

std::size_t TcpServer::EffectiveShards(const Options& options) {
  if (options.reactor_shards != 0) return options.reactor_shards;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::min<std::size_t>(4, hw);
}

util::VoidResult TcpServer::Start() {
  if (running_.load()) {
    return Error(ErrorCode::kAlreadyExists, "server already running");
  }
  const std::size_t nshards = EffectiveShards(options_);
  // A connection has at most one job (and one completion) in flight, so
  // rings sized past max_connections cannot overflow by construction.
  const std::size_t ring_capacity = options_.max_connections + 16;

  shards_.clear();  // previous run's shards — counters reset here
  total_active_.store(0);
  port_ = options_.port;

  auto fail = [this](const std::string& what) -> util::VoidResult {
    std::string message = what + ": " + std::strerror(errno);
    for (auto& shard : shards_) {
      if (shard->listen_fd >= 0) ::close(shard->listen_fd);
      if (shard->epoll_fd >= 0) ::close(shard->epoll_fd);
      if (shard->wake_fd >= 0) ::close(shard->wake_fd);
      if (shard->job_efd >= 0) ::close(shard->job_efd);
    }
    shards_.clear();
    return Error(ErrorCode::kUnavailable, message);
  };

  // Inherited-listener mode (cluster re-exec, DESIGN.md §15): adopt one
  // pre-bound listening fd per shard instead of binding our own.
  const bool inherited = !options_.inherited_listen_fds.empty();
  if (inherited && options_.inherited_listen_fds.size() != nshards) {
    for (int fd : options_.inherited_listen_fds) ::close(fd);
    return Error(ErrorCode::kInvalidArgument,
                 "inherited_listen_fds must supply exactly one fd per shard");
  }

  // Probe SO_REUSEPORT support once up front so every shard takes the same
  // path; a refusing kernel demotes the whole server to fd-handoff mode.
  bool reuseport = options_.so_reuseport && nshards > 1 && !inherited;
  if (reuseport) {
    int probe = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    int one = 1;
    if (probe < 0 ||
        setsockopt(probe, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
      reuseport = false;
    }
    if (probe >= 0) ::close(probe);
  }

  for (std::size_t i = 0; i < nshards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, ring_capacity));
    Shard& shard = *shards_.back();
    shard.epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (shard.epoll_fd < 0) return fail("epoll_create1");
    shard.wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (shard.wake_fd < 0) return fail("eventfd(wake)");
    shard.job_efd = ::eventfd(0, EFD_CLOEXEC | EFD_SEMAPHORE);
    if (shard.job_efd < 0) return fail("eventfd(jobs)");

    const bool wants_listener = i == 0 || reuseport || inherited;
    if (inherited) {
      // The fd was created by the supervisor (bound, listening, sharing the
      // port via SO_REUSEPORT); we own it from here.  Status flags survive
      // exec, but re-assert nonblocking + cloexec rather than trusting the
      // parent's setup.
      shard.listen_fd = options_.inherited_listen_fds[i];
      int fl = ::fcntl(shard.listen_fd, F_GETFL);
      if (fl < 0 ||
          ::fcntl(shard.listen_fd, F_SETFL, fl | O_NONBLOCK) < 0) {
        return fail("fcntl(inherited listener, O_NONBLOCK)");
      }
      int fdfl = ::fcntl(shard.listen_fd, F_GETFD);
      if (fdfl >= 0) ::fcntl(shard.listen_fd, F_SETFD, fdfl | FD_CLOEXEC);
      if (i == 0) {
        sockaddr_in addr{};
        socklen_t len = sizeof(addr);
        if (::getsockname(shard.listen_fd,
                          reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
          return fail("getsockname(inherited listener)");
        }
        port_ = ntohs(addr.sin_port);
      }
      epoll_event lev{};
      lev.events = EPOLLIN;
      lev.data.u64 = kListenTag;
      if (::epoll_ctl(shard.epoll_fd, EPOLL_CTL_ADD, shard.listen_fd, &lev) <
          0) {
        return fail("epoll_ctl(inherited listener)");
      }
    } else if (wants_listener) {
      shard.listen_fd =
          ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
      if (shard.listen_fd < 0) return fail("socket");
      int one = 1;
      setsockopt(shard.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (reuseport) {
        if (setsockopt(shard.listen_fd, SOL_SOCKET, SO_REUSEPORT, &one,
                       sizeof(one)) < 0) {
          return fail("setsockopt(SO_REUSEPORT)");
        }
      }
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(port_);
      if (::bind(shard.listen_fd, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) < 0) {
        return fail("bind");
      }
      if (i == 0) {
        socklen_t len = sizeof(addr);
        ::getsockname(shard.listen_fd, reinterpret_cast<sockaddr*>(&addr),
                      &len);
        port_ = ntohs(addr.sin_port);  // shards 1..n join this port
      }
      if (::listen(shard.listen_fd, options_.backlog) < 0) {
        return fail("listen");
      }
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = kListenTag;
      if (::epoll_ctl(shard.epoll_fd, EPOLL_CTL_ADD, shard.listen_fd, &ev) <
          0) {
        return fail("epoll_ctl(listen)");
      }
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(shard.epoll_fd, EPOLL_CTL_ADD, shard.wake_fd, &ev) < 0) {
      return fail("epoll_ctl(wake)");
    }
  }

  telemetry::Telemetry* telemetry =
      server_ != nullptr ? server_->telemetry() : nullptr;
  if (telemetry != nullptr) {
    for (auto& shard : shards_) {
      const std::string label =
          "shard=\"" + std::to_string(shard->index) + "\"";
      auto& registry = telemetry->registry();
      shard->g_active = registry.GetGauge("transport_shard_active", label);
      shard->g_requests = registry.GetGauge("transport_shard_requests", label);
      shard->g_inline =
          registry.GetGauge("transport_shard_inline_served", label);
      shard->g_accepted = registry.GetGauge("transport_shard_accepted", label);
      shard->g_arena = registry.GetGauge("transport_arena_bytes", label);
      shard->g_loop_lag =
          registry.GetGauge("transport_shard_loop_lag_ms", label);
      shard->g_ring_depth =
          registry.GetGauge("transport_shard_ring_depth", label);
      shard->g_ring_hwm =
          registry.GetGauge("transport_shard_ring_high_watermark", label);
      shard->g_force_closed =
          registry.GetGauge("transport_drain_force_closed", label);
      shard->h_loop_lag =
          registry.GetHistogram("transport_loop_lag_us", label,
                                telemetry::Histogram::WideLatencyBoundsUs());
      shard->h_dispatch =
          registry.GetHistogram("transport_dispatch_delay_us", label,
                                telemetry::Histogram::WideLatencyBoundsUs());
    }
  }

  stopping_.store(false);
  workers_run_.store(true);
  running_.store(true);

  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->wheel.Reset(NowMs());
    // The maintenance tick is process-wide work (IDS decay, sketch aging),
    // so exactly one shard carries it.
    if (s->index == 0 && options_.tick_interval_ms > 0 && tick_hook_) {
      s->wheel.Arm(kTickTimerId, NowMs() + options_.tick_interval_ms);
    }
    // Every shard carries its own lag probe: lag is a property of one
    // event-loop thread, not of the process.
    if (options_.lag_probe_interval_ms > 0) {
      s->lag_probe_deadline_ms = NowMs() + options_.lag_probe_interval_ms;
      s->wheel.Arm(kLagProbeTimerId, s->lag_probe_deadline_ms);
    }
    s->thread = std::thread([this, s] { ShardLoop(*s); });
  }
  std::size_t nworkers = std::max(options_.worker_threads, nshards);
  for (std::size_t i = 0; i < nworkers; ++i) {
    Shard* s = shards_[i % nshards].get();
    workers_.emplace_back([this, s] { WorkerLoop(*s); });
  }
  return util::VoidResult::Ok();
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  for (auto& shard : shards_) WakeShard(*shard);
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  // Shard loops have exited; release the workers.  The flag flips before
  // the eventfd kick, so a worker that wakes either pops a remaining job or
  // sees the flag down and exits — no lost wakeup.
  workers_run_.store(false);
  const std::uint64_t kick = 1u << 20;  // far more tokens than workers
  for (auto& shard : shards_) {
    ssize_t n = ::write(shard->job_efd, &kick, sizeof(kick));
    (void)n;
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  // All threads joined: drain leftovers and close descriptors.  The shards
  // themselves stay alive so counters remain readable until the next
  // Start().
  for (auto& shard : shards_) {
    Job job;
    while (shard->jobs.Pop(job)) {
    }
    Done done;
    while (shard->done.Pop(done)) {
    }
    Handoff handoff;
    while (shard->handoff.Pop(handoff)) {
      ::close(handoff.fd);
      total_active_.fetch_sub(1);
    }
    if (shard->epoll_fd >= 0) ::close(shard->epoll_fd);
    if (shard->wake_fd >= 0) ::close(shard->wake_fd);
    if (shard->job_efd >= 0) ::close(shard->job_efd);
    shard->epoll_fd = shard->wake_fd = shard->job_efd = -1;
    shard->listen_fd = -1;  // closed by the shard loop on its way out
  }
  // Final aggregate publish after every shard settled, so post-Stop
  // observers (SystemState assertions, tests) see the closing values.
  if (stats_hook_) stats_hook_(stats());
  const std::uint64_t forced = stats().drain_force_closed;
  if (forced > 0 && drain_hook_) drain_hook_(forced);
}

TcpServer::Stats TcpServer::stats() const {
  Stats out;
  for (const auto& shard : shards_) {
    out.accepted += shard->accepted.load(std::memory_order_relaxed);
    out.reused += shard->reused.load(std::memory_order_relaxed);
    out.timed_out += shard->timed_out.load(std::memory_order_relaxed);
    out.shed += shard->shed_count.load(std::memory_order_relaxed);
    out.rejected += shard->rejected.load(std::memory_order_relaxed);
    out.requests += shard->requests.load(std::memory_order_relaxed);
    out.inline_served += shard->inline_srv.load(std::memory_order_relaxed);
    out.active += shard->active.load(std::memory_order_relaxed);
    out.ring_depth += shard->ring_depth.load(std::memory_order_relaxed);
    out.ring_high_watermark =
        std::max(out.ring_high_watermark,
                 shard->ring_hwm.load(std::memory_order_relaxed));
    out.loop_lag_ms = std::max(
        out.loop_lag_ms, shard->loop_lag_ms.load(std::memory_order_relaxed));
    out.drain_force_closed +=
        shard->force_closed.load(std::memory_order_relaxed);
  }
  out.shards = shards_.size();
  return out;
}

TcpServer::Stats TcpServer::shard_stats(std::size_t shard) const {
  Stats out;
  if (shard >= shards_.size()) return out;
  const Shard& s = *shards_[shard];
  out.accepted = s.accepted.load(std::memory_order_relaxed);
  out.reused = s.reused.load(std::memory_order_relaxed);
  out.timed_out = s.timed_out.load(std::memory_order_relaxed);
  out.shed = s.shed_count.load(std::memory_order_relaxed);
  out.rejected = s.rejected.load(std::memory_order_relaxed);
  out.requests = s.requests.load(std::memory_order_relaxed);
  out.inline_served = s.inline_srv.load(std::memory_order_relaxed);
  out.active = s.active.load(std::memory_order_relaxed);
  out.ring_depth = s.ring_depth.load(std::memory_order_relaxed);
  out.ring_high_watermark = s.ring_hwm.load(std::memory_order_relaxed);
  out.loop_lag_ms = s.loop_lag_ms.load(std::memory_order_relaxed);
  out.drain_force_closed = s.force_closed.load(std::memory_order_relaxed);
  return out;
}

void TcpServer::WakeShard(Shard& shard) {
  std::uint64_t one = 1;
  for (;;) {
    ssize_t n = ::write(shard.wake_fd, &one, sizeof(one));
    if (n >= 0 || errno != EINTR) return;
  }
}

void TcpServer::PublishStats(Shard& shard) {
  if (!shard.stats_dirty) return;
  shard.stats_dirty = false;
  shard.SampleRing();
  if (shard.g_active != nullptr) {
    shard.g_active->Set(static_cast<std::int64_t>(
        shard.active.load(std::memory_order_relaxed)));
    shard.g_requests->Set(static_cast<std::int64_t>(
        shard.requests.load(std::memory_order_relaxed)));
    shard.g_inline->Set(static_cast<std::int64_t>(
        shard.inline_srv.load(std::memory_order_relaxed)));
    shard.g_accepted->Set(static_cast<std::int64_t>(
        shard.accepted.load(std::memory_order_relaxed)));
    shard.g_arena->Set(shard.arena_bytes);
    shard.g_loop_lag->Set(static_cast<std::int64_t>(
        shard.loop_lag_ms.load(std::memory_order_relaxed)));
    shard.g_ring_depth->Set(static_cast<std::int64_t>(
        shard.ring_depth.load(std::memory_order_relaxed)));
    shard.g_ring_hwm->Set(static_cast<std::int64_t>(
        shard.ring_hwm.load(std::memory_order_relaxed)));
    shard.g_force_closed->Set(static_cast<std::int64_t>(
        shard.force_closed.load(std::memory_order_relaxed)));
  }
  if (stats_hook_) stats_hook_(stats());
}

// --- shard event loop --------------------------------------------------------

void TcpServer::ShardLoop(Shard& shard) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  bool listen_open = shard.listen_fd >= 0;
  std::int64_t drain_deadline_ms = -1;

  for (;;) {
    std::int64_t now = NowMs();
    if (stopping_.load()) {
      if (listen_open) {
        ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_DEL, shard.listen_fd, nullptr);
        ::close(shard.listen_fd);
        listen_open = false;
      }
      if (drain_deadline_ms < 0) {
        const int drain_ms = options_.drain_deadline_ms >= 0
                                 ? options_.drain_deadline_ms
                                 : options_.drain_timeout_ms;
        drain_deadline_ms = now + drain_ms;
      }
      bool pending = false;
      for (const auto& [id, conn] : shard.conns) {
        if (conn->busy || conn->HasOutput()) {
          pending = true;
          break;
        }
      }
      if (!pending || now >= drain_deadline_ms) break;
    }

    int timeout_ms = shard.wheel.NextDueMs(now);
    if (stopping_.load()) {
      timeout_ms = timeout_ms < 0 ? 20 : std::min(timeout_ms, 20);
    }
    int n = ::epoll_wait(shard.epoll_fd, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — cannot continue
    }
    for (int i = 0; i < n; ++i) {
      std::uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        if (!stopping_.load()) AcceptNew(shard);
        continue;
      }
      if (tag == kWakeTag) {
        std::uint64_t drained;
        while (::read(shard.wake_fd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = shard.conns.find(tag);
      if (it == shard.conns.end()) continue;
      if (events[i].events & EPOLLIN) ReadConn(shard, it->second.get());
      it = shard.conns.find(tag);
      if (it == shard.conns.end()) continue;
      if (events[i].events & EPOLLOUT) {
        TryWrite(shard, it->second.get());
        it = shard.conns.find(tag);
        if (it == shard.conns.end()) continue;
        // The flushed response may have unblocked a pipelined request.
        Connection* conn = it->second.get();
        if (!conn->busy && !conn->in.empty()) TryDispatch(shard, conn);
        it = shard.conns.find(tag);
        if (it == shard.conns.end()) continue;
      }
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        // Full close / reset from the peer (a half-close arrives as a
        // plain EOF on read instead) — nothing more to deliver.
        CloseConn(shard, tag);
      }
    }
    DrainHandoff(shard);
    DrainCompletions(shard);
    std::int64_t after = NowMs();
    shard.wheel.Advance(
        after, [this, &shard, after](std::uint64_t id) {
          OnTimerDue(shard, id, after);
        });
    PublishStats(shard);
  }

  // Anything still busy or holding unflushed output here was cut off by the
  // drain deadline — account for it instead of silently destroying it.
  std::uint64_t forced = 0;
  for (auto& [id, conn] : shard.conns) {
    if (conn->busy || conn->HasOutput()) ++forced;
    ::shutdown(conn->fd, SHUT_RDWR);
    ::close(conn->fd);
  }
  if (forced > 0) {
    shard.force_closed.fetch_add(forced, std::memory_order_relaxed);
  }
  total_active_.fetch_sub(shard.conns.size());
  shard.conns.clear();
  shard.active.store(0);
  shard.arena_bytes = 0;
  shard.stats_dirty = true;
  if (listen_open) ::close(shard.listen_fd);
  PublishStats(shard);
}

void TcpServer::AcceptNew(Shard& shard) {
  // In fd-handoff mode only shard 0 has a listener; every other shard's
  // listen_fd is -1 for the whole run, which is how we detect the mode.
  const bool handoff_mode =
      shards_.size() > 1 && shards_[1]->listen_fd < 0;
  for (;;) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    int fd = ::accept4(shard.listen_fd, reinterpret_cast<sockaddr*>(&peer),
                       &len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or a transient error: wait for the next event
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::uint32_t ip = ntohl(peer.sin_addr.s_addr);
    std::uint16_t peer_port = ntohs(peer.sin_port);

    // The accepting shard reserves the global slot before any handoff, so
    // the max_connections cap holds even with fds in flight between shards.
    bool over_cap = total_active_.fetch_add(1, std::memory_order_relaxed) >=
                    options_.max_connections;
    if (over_cap) {
      AdoptFd(shard, fd, ip, peer_port, /*shed=*/true);
      continue;
    }
    if (handoff_mode) {
      std::size_t target = shard.accept_rr++ % shards_.size();
      if (target != shard.index) {
        Shard& owner = *shards_[target];
        if (owner.handoff.Push(Handoff{fd, ip, peer_port})) {
          WakeShard(owner);
          continue;
        }
        // Handoff ring full (cannot happen by sizing): adopt locally.
      }
    }
    AdoptFd(shard, fd, ip, peer_port, /*shed=*/false);
  }
}

void TcpServer::AdoptFd(Shard& shard, int fd, std::uint32_t ip_host_order,
                        std::uint16_t peer_port, bool shed) {
  auto conn = std::make_unique<Connection>();
  conn->id = shard.next_conn_id++;
  conn->fd = fd;
  conn->ip = util::Ipv4Address(ip_host_order);
  conn->peer_port = peer_port;
  conn->last_active_ms = NowMs();
  conn->in = PoolAcquire(shard.buf_pool);

  if (shed) {
    // Graceful shedding: queue a 503 and keep the connection around just
    // long enough for the peer to read it (closing immediately would race
    // the client's request and turn the 503 into a reset).
    shard.shed_count.fetch_add(1, std::memory_order_relaxed);
    conn->shed = true;
    HttpResponse resp = HttpResponse::Make(StatusCode::kServiceUnavailable);
    resp.headers["Connection"] = "close";
    resp.headers["Retry-After"] = "1";
    EnqueueResponse(shard, conn.get(), resp, /*close_after=*/false);
  } else {
    shard.accepted.fetch_add(1, std::memory_order_relaxed);
  }
  shard.stats_dirty = true;

  epoll_event ev{};
  ev.data.u64 = conn->id;
  ev.events = EPOLLIN;
  if (conn->HasOutput()) ev.events |= EPOLLOUT;
  Connection* raw = conn.get();
  shard.conns.emplace(raw->id, std::move(conn));
  shard.active.store(shard.conns.size(), std::memory_order_relaxed);
  if (::epoll_ctl(shard.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
    CloseConn(shard, raw->id);
    return;
  }
  Touch(shard, raw);
  if (raw->shed) TryWrite(shard, raw);
}

void TcpServer::DrainHandoff(Shard& shard) {
  Handoff handoff;
  while (shard.handoff.Pop(handoff)) {
    // The global slot was reserved by the accepting shard; AdoptFd only
    // tracks the shard-local tables.
    AdoptFd(shard, handoff.fd, handoff.ip_host_order, handoff.peer_port,
            /*shed=*/false);
  }
}

void TcpServer::ReadConn(Shard& shard, Connection* conn) {
  char buf[16384];
  bool progress = false;
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      progress = true;
      if (conn->shed) continue;  // discard; the 503 is already queued
      conn->in.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      conn->read_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(shard, conn->id);
    return;
  }
  if (progress || conn->read_eof) Touch(shard, conn);
  TryDispatch(shard, conn);
}

void TcpServer::TryDispatch(Shard& shard, Connection* conn) {
  for (;;) {
    if (conn->shed) {
      if (conn->read_eof && !conn->HasOutput()) {
        CloseConn(shard, conn->id);
      } else {
        UpdateInterest(shard, conn);
      }
      return;
    }
    if (conn->busy || conn->close_after_write || stopping_.load()) {
      UpdateInterest(shard, conn);
      return;
    }

    FrameResult frame = FrameRequest(conn->in, options_.max_request_bytes);
    switch (frame.status) {
      case FrameStatus::kNeedMore:
        if (!conn->read_eof) {
          UpdateInterest(shard, conn);
          return;
        }
        if (conn->in.empty()) {
          // Clean end of a keep-alive conversation.
          if (!conn->HasOutput()) {
            CloseConn(shard, conn->id);
          } else {
            conn->close_after_write = true;
            UpdateInterest(shard, conn);
          }
          return;
        }
        // The peer closed mid-request: a truncated head or Content-Length
        // body.  The fragment must never reach the handler as well-formed.
        shard.rejected.fetch_add(1, std::memory_order_relaxed);
        shard.stats_dirty = true;
        server_->ReportMalformed(
            RequestDefect::kTruncatedBody,
            "peer closed after " + std::to_string(conn->in.size()) +
                " bytes of an incomplete request",
            conn->ip);
        conn->in.clear();
        RespondAndClose(shard, conn, StatusCode::kBadRequest);
        return;
      case FrameStatus::kTooLarge:
        shard.rejected.fetch_add(1, std::memory_order_relaxed);
        shard.stats_dirty = true;
        conn->in.clear();
        RespondAndClose(shard, conn, StatusCode::kPayloadTooLarge);
        return;
      case FrameStatus::kBad:
        shard.rejected.fetch_add(1, std::memory_order_relaxed);
        shard.stats_dirty = true;
        server_->ReportMalformed(RequestDefect::kBadHeader, frame.detail,
                                 conn->ip);
        conn->in.clear();
        RespondAndClose(shard, conn, StatusCode::kBadRequest);
        return;
      case FrameStatus::kComplete:
        break;
    }

    // No further request can arrive after EOF with nothing buffered past
    // this frame; tell the client we will close.
    bool more_possible =
        !conn->read_eof || conn->in.size() > frame.total_bytes;
    bool keep = options_.keep_alive && frame.keep_alive && more_possible &&
                conn->served + 1 < options_.max_keepalive_requests;

    // Template tier: anonymous GET/HEAD of a static document on a server
    // whose controller admits everything unchecked.  The response is
    // assembled from pre-serialized header templates and a DocTree body
    // view — zero body copies, and (past warm-up) zero allocations.
    if (options_.inline_fast_path && frame.inline_candidate) {
      WebServer::StaticFastResponse fast;
      if (server_->TryServeStaticFast(frame.method, frame.target, frame.host,
                                      frame.if_none_match,
                                      frame.if_modified_since, conn->ip, keep,
                                      options_.inline_max_response_bytes,
                                      &fast)) {
        if (conn->served > 0) {
          shard.reused.fetch_add(1, std::memory_order_relaxed);
        }
        ++conn->served;
        shard.requests.fetch_add(1, std::memory_order_relaxed);
        shard.inline_srv.fetch_add(1, std::memory_order_relaxed);
        shard.stats_dirty = true;
        conn->in.erase(0, frame.total_bytes);  // frame views dangle here
        // Only the Date line varies per request; it lives on the
        // connection's bump arena until the queue drains.
        char* date = static_cast<char*>(
            conn->arena.Alloc(HttpDateCache::kLineBytes, 1));
        std::memcpy(date, fast.date_line, HttpDateCache::kLineBytes);
        conn->PushView(fast.head_pre);
        conn->PushView(std::string_view(date, HttpDateCache::kLineBytes));
        conn->PushView(fast.head_post);
        if (!fast.body.empty()) conn->PushView(fast.body);
        if (!keep) conn->close_after_write = true;
        NoteArena(shard, conn);
        Touch(shard, conn);
        std::uint64_t id = conn->id;
        TryWrite(shard, conn);  // may close the connection
        auto it = shard.conns.find(id);
        if (it == shard.conns.end()) return;
        conn = it->second.get();
        continue;  // a pipelined request may already be buffered
      }
    }

    if (options_.inline_fast_path && frame.inline_candidate &&
        server_->InlineFastPathEligible(frame.method, frame.target, frame.host,
                                        options_.inline_max_response_bytes,
                                        conn->ip)) {
      std::uint64_t id = conn->id;
      ServeInline(shard, conn, frame.total_bytes, keep);
      TryWrite(shard, conn);  // may close the connection
      auto it = shard.conns.find(id);
      if (it == shard.conns.end()) return;
      conn = it->second.get();
      continue;  // a pipelined request may already be buffered
    }

    Job job;
    job.conn_id = conn->id;
    job.raw = conn->in.substr(0, frame.total_bytes);
    conn->in.erase(0, frame.total_bytes);
    job.ip = conn->ip;
    job.port = conn->peer_port;
    // Begin the trace at framing so it covers time queued for a worker.
    telemetry::Telemetry* telemetry = server_->telemetry();
    if (telemetry != nullptr && telemetry->tracing_enabled()) {
      job.trace = telemetry->tracer().Begin();  // null when not sampled
      if (job.trace) {
        job.trace->client_ip = conn->ip.ToString();
        job.queue_span = job.trace->OpenSpan("queue");
      }
    }
    job.keep_alive = keep;
    job.enqueue_us = NowUs();
    conn->busy = true;
    if (conn->served > 0) {
      shard.reused.fetch_add(1, std::memory_order_relaxed);
    }
    ++conn->served;
    shard.requests.fetch_add(1, std::memory_order_relaxed);
    shard.stats_dirty = true;
    Touch(shard, conn);
    if (!shard.jobs.Push(std::move(job))) {
      // Structurally unreachable (ring sized past max_connections); shed
      // defensively rather than wedge the connection.
      conn->busy = false;
      shard.rejected.fetch_add(1, std::memory_order_relaxed);
      RespondAndClose(shard, conn, StatusCode::kServiceUnavailable);
      return;
    }
    // Only this loop thread pushes, so sampling right after the push
    // catches the true per-shard high watermark, not a between-samples
    // approximation.
    shard.SampleRing();
    std::uint64_t one = 1;
    ssize_t n = ::write(shard.job_efd, &one, sizeof(one));
    (void)n;
    UpdateInterest(shard, conn);
    return;
  }
}

bool TcpServer::ServeInline(Shard& shard, Connection* conn,
                            std::size_t frame_bytes,
                            bool keep_alive_requested) {
  std::string_view raw(conn->in.data(), frame_bytes);
  std::unique_ptr<telemetry::RequestTrace> trace;
  telemetry::Telemetry* telemetry = server_->telemetry();
  if (telemetry != nullptr && telemetry->tracing_enabled()) {
    trace = telemetry->tracer().Begin();
    if (trace) {
      trace->client_ip = conn->ip.ToString();
      // Marker span — the analogue of the worker path's "queue" span,
      // recording that this request never left the event loop.
      std::size_t span = trace->OpenSpan("transport.inline_serve");
      trace->CloseSpan(span);
    }
  }
  if (conn->served > 0) {
    shard.reused.fetch_add(1, std::memory_order_relaxed);
  }
  ++conn->served;
  shard.requests.fetch_add(1, std::memory_order_relaxed);
  shard.inline_srv.fetch_add(1, std::memory_order_relaxed);
  shard.stats_dirty = true;

  HttpResponse response =
      server_->HandleText(raw, conn->ip, conn->peer_port, std::move(trace));
  conn->in.erase(0, frame_bytes);  // raw dangles from here on
  bool close_after = !keep_alive_requested || ProtocolFailure(response.status);
  response.headers["Connection"] = close_after ? "close" : "keep-alive";
  EnqueueResponse(shard, conn, response, close_after);
  Touch(shard, conn);
  return true;
}

void TcpServer::TryWrite(Shard& shard, Connection* conn) {
  while (conn->out_bytes > 0) {
    // Gathered write: up to 8 response chunks (heads and bodies) go out in
    // one syscall without ever being concatenated.
    constexpr int kMaxIov = 8;
    iovec iov[kMaxIov];
    int iovcnt = 0;
    std::size_t off = conn->out_off;
    for (std::size_t i = conn->out_head; i < conn->outq.size(); ++i) {
      if (iovcnt == kMaxIov) break;
      std::string_view chunk = conn->outq[i].View();
      iov[iovcnt].iov_base = const_cast<char*>(chunk.data()) + off;
      iov[iovcnt].iov_len = chunk.size() - off;
      ++iovcnt;
      off = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      std::size_t wrote = static_cast<std::size_t>(n);
      conn->out_bytes -= wrote;
      while (wrote > 0) {
        Connection::OutChunk& front = conn->outq[conn->out_head];
        std::size_t avail = front.View().size() - conn->out_off;
        if (wrote >= avail) {
          wrote -= avail;
          if (!front.owned.empty()) {
            PoolRelease(shard.buf_pool, std::move(front.owned));
            front.owned.clear();
          }
          front.view = {};
          ++conn->out_head;
          conn->out_off = 0;
        } else {
          conn->out_off += wrote;
          wrote = 0;
        }
      }
      conn->last_active_ms = NowMs();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateInterest(shard, conn);
      return;
    }
    CloseConn(shard, conn->id);
    return;
  }
  // Fully drained: clear() keeps the vector's capacity, and the arena
  // keeps its largest block — the next fast-path response on this
  // connection allocates nothing.
  conn->outq.clear();
  conn->out_head = 0;
  conn->out_off = 0;
  conn->arena.Reset();
  NoteArena(shard, conn);
  if (conn->close_after_write) {
    CloseConn(shard, conn->id);
    return;
  }
  if (conn->shed) {
    if (conn->read_eof) {
      CloseConn(shard, conn->id);
    } else {
      UpdateInterest(shard, conn);
    }
    return;
  }
  if (conn->read_eof && conn->in.empty() && !conn->busy) {
    CloseConn(shard, conn->id);
    return;
  }
  UpdateInterest(shard, conn);
}

void TcpServer::UpdateInterest(Shard& shard, Connection* conn) {
  epoll_event ev{};
  ev.data.u64 = conn->id;
  ev.events = 0;
  // While a worker holds the connection's request we stop reading — the
  // kernel buffer back-pressures pipelining clients.
  if (!conn->read_eof && !conn->busy) ev.events |= EPOLLIN;
  if (conn->HasOutput()) ev.events |= EPOLLOUT;
  ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
}

void TcpServer::EnqueueResponse(Shard& shard, Connection* conn,
                                HttpResponse& response, bool close_after) {
  (void)shard;
  conn->PushOwned(response.SerializeHead());
  if (!response.body.empty()) {
    conn->PushOwned(std::move(response.body));
  } else if (!response.body_view.empty()) {
    // Static-document body: a view into DocTree storage, stable for the
    // server's lifetime — queued without copying.
    conn->PushView(response.body_view);
  }
  if (close_after) conn->close_after_write = true;
}

void TcpServer::RespondAndClose(Shard& shard, Connection* conn,
                                StatusCode status) {
  HttpResponse resp = HttpResponse::Make(status);
  resp.headers["Connection"] = "close";
  EnqueueResponse(shard, conn, resp, /*close_after=*/true);
  std::uint64_t id = conn->id;
  TryWrite(shard, conn);  // may close the connection
  auto it = shard.conns.find(id);
  if (it != shard.conns.end()) Touch(shard, it->second.get());
}

void TcpServer::CloseConn(Shard& shard, std::uint64_t conn_id) {
  auto it = shard.conns.find(conn_id);
  if (it == shard.conns.end()) return;
  ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  PoolRelease(shard.buf_pool, std::move(it->second->in));
  shard.arena_bytes -= static_cast<std::int64_t>(it->second->arena_noted);
  shard.conns.erase(it);
  shard.active.store(shard.conns.size(), std::memory_order_relaxed);
  total_active_.fetch_sub(1, std::memory_order_relaxed);
  shard.stats_dirty = true;
}

void TcpServer::DrainCompletions(Shard& shard) {
  Done done;
  while (shard.done.Pop(done)) {
    auto it = shard.conns.find(done.conn_id);
    if (it == shard.conns.end()) continue;  // died while processing
    Connection* conn = it->second.get();
    conn->busy = false;
    conn->PushOwned(std::move(done.head));
    if (!done.body.empty()) {
      conn->PushOwned(std::move(done.body));
    } else if (!done.body_view.empty()) {
      conn->PushView(done.body_view);
    }
    if (done.close_after) conn->close_after_write = true;
    Touch(shard, conn);
    std::uint64_t id = conn->id;
    TryWrite(shard, conn);
    it = shard.conns.find(id);
    if (it == shard.conns.end()) continue;
    conn = it->second.get();
    // A pipelined request may already be buffered; serve it next.
    if (!conn->busy && !conn->in.empty()) TryDispatch(shard, conn);
  }
}

void TcpServer::Touch(Shard& shard, Connection* conn) {
  conn->last_active_ms = NowMs();
  if (conn->timer_armed) return;  // lazy: revalidated when the entry pops
  bool mid_request = !conn->in.empty() || conn->HasOutput() || conn->shed;
  std::int64_t deadline =
      conn->last_active_ms +
      (mid_request ? options_.read_timeout_ms : options_.idle_timeout_ms);
  shard.wheel.Arm(conn->id, deadline);
  conn->timer_armed = true;
}

void TcpServer::NoteArena(Shard& shard, Connection* conn) {
  std::size_t reserved = conn->arena.bytes_reserved();
  if (reserved != conn->arena_noted) {
    shard.arena_bytes += static_cast<std::int64_t>(reserved) -
                         static_cast<std::int64_t>(conn->arena_noted);
    conn->arena_noted = reserved;
    shard.stats_dirty = true;
  }
}

void TcpServer::OnTimerDue(Shard& shard, std::uint64_t conn_id,
                           std::int64_t now_ms) {
  if (conn_id == kTickTimerId) {
    if (tick_hook_) tick_hook_(now_ms);
    if (options_.tick_interval_ms > 0) {
      shard.wheel.Arm(kTickTimerId, now_ms + options_.tick_interval_ms);
    }
    return;
  }
  if (conn_id == kLagProbeTimerId) {
    // Scheduled-vs-actual delta: everything that kept this loop thread
    // from advancing the wheel — a stalled inline handler, a blocked
    // syscall, scheduler starvation — lands in this number.
    std::int64_t lag = now_ms - shard.lag_probe_deadline_ms;
    if (lag < 0) lag = 0;
    shard.loop_lag_ms.store(static_cast<std::uint64_t>(lag),
                            std::memory_order_relaxed);
    if (shard.h_loop_lag != nullptr) {
      shard.h_loop_lag->Record(static_cast<std::uint64_t>(lag) * 1000);
    }
    shard.stats_dirty = true;
    if (options_.lag_probe_interval_ms > 0) {
      shard.lag_probe_deadline_ms = now_ms + options_.lag_probe_interval_ms;
      shard.wheel.Arm(kLagProbeTimerId, shard.lag_probe_deadline_ms);
    }
    return;
  }
  auto it = shard.conns.find(conn_id);
  if (it == shard.conns.end()) return;  // closed while armed
  Connection* conn = it->second.get();
  conn->timer_armed = false;
  // Worker latency is not the client's fault; the completion re-arms via
  // Touch.
  if (conn->busy) return;
  bool mid_request = !conn->in.empty() || conn->HasOutput() || conn->shed;
  std::int64_t deadline =
      conn->last_active_ms +
      (mid_request ? options_.read_timeout_ms : options_.idle_timeout_ms);
  if (deadline > now_ms) {
    // Activity since arming (or the state changed): re-arm for the true
    // deadline — the lazy-revalidation half of the wheel's contract.
    shard.wheel.Arm(conn->id, deadline);
    conn->timer_armed = true;
    return;
  }
  if (mid_request) {
    if (conn->shed || conn->HasOutput()) {
      // Peer is not draining our response (or a shed conn overstayed).
      CloseConn(shard, conn->id);
      return;
    }
    // Slow-loris style partial request: answer 408 and drop.
    shard.rejected.fetch_add(1, std::memory_order_relaxed);
    shard.stats_dirty = true;
    conn->in.clear();
    RespondAndClose(shard, conn, StatusCode::kRequestTimeout);
    return;
  }
  shard.timed_out.fetch_add(1, std::memory_order_relaxed);
  shard.stats_dirty = true;
  CloseConn(shard, conn->id);
}

// --- workers -----------------------------------------------------------------

void TcpServer::WorkerLoop(Shard& shard) {
  for (;;) {
    Job job;
    if (!shard.jobs.Pop(job)) {
      if (!workers_run_.load(std::memory_order_acquire)) return;
      // Park on the semaphore eventfd: one token per queued job, so a
      // token's arrival means a job is (or was) there to pop.
      std::uint64_t token;
      ssize_t n = ::read(shard.job_efd, &token, sizeof(token));
      (void)n;
      continue;
    }
    if (job.trace) job.trace->CloseSpan(job.queue_span);
    if (shard.h_dispatch != nullptr && job.enqueue_us > 0) {
      std::int64_t delay = NowUs() - job.enqueue_us;
      shard.h_dispatch->Record(delay > 0 ? static_cast<std::uint64_t>(delay)
                                         : 0);
    }
    HttpResponse response =
        server_->HandleText(job.raw, job.ip, job.port, std::move(job.trace));
    bool close_after = !job.keep_alive || ProtocolFailure(response.status);
    response.headers["Connection"] = close_after ? "close" : "keep-alive";
    Done done;
    done.conn_id = job.conn_id;
    done.head = response.SerializeHead();
    done.body = std::move(response.body);
    if (done.body.empty()) done.body_view = response.body_view;
    done.close_after = close_after;
    while (!shard.done.Push(std::move(done))) {
      // Ring full means the loop is behind by a full ring of completions —
      // unreachable by sizing, but never drop a response.
      std::this_thread::yield();
    }
    WakeShard(shard);
  }
}

// --- blocking clients (tests / benchmarks) -----------------------------------

namespace {

int ConnectLoopback(std::uint16_t port, int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  SetReadTimeout(fd, timeout_ms);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINTR) {
      ::close(fd);
      return -1;
    }
    // Interrupted connect completes asynchronously: wait for writability
    // and check SO_ERROR.
    pollfd pfd{fd, POLLOUT, 0};
    for (;;) {
      int n = ::poll(&pfd, 1, timeout_ms);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ::close(fd);
        return -1;
      }
      break;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0 ||
        err != 0) {
      ::close(fd);
      return -1;
    }
  }
  return fd;
}

}  // namespace

util::Result<std::string> TcpFetch(std::uint16_t port, const std::string& raw,
                                   int timeout_ms) {
  int fd = ConnectLoopback(port, timeout_ms);
  if (fd < 0) {
    return Error(ErrorCode::kUnavailable,
                 std::string("connect: ") + std::strerror(errno));
  }
  if (!SendAll(fd, raw)) {
    ::close(fd);
    return Error(ErrorCode::kUnavailable, "send failed");
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  ::close(fd);
  if (response.empty()) {
    return Error(ErrorCode::kUnavailable, "empty response");
  }
  return response;
}

TcpClient::TcpClient(std::uint16_t port, int timeout_ms) {
  fd_ = ConnectLoopback(port, timeout_ms);
}

TcpClient::~TcpClient() { Close(); }

void TcpClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool TcpClient::SendRaw(const std::string& raw) {
  if (fd_ < 0) return false;
  if (!SendAll(fd_, raw)) {
    Close();
    return false;
  }
  return true;
}

util::Result<std::string> TcpClient::RoundTrip(const std::string& raw) {
  if (fd_ < 0) {
    return Error(ErrorCode::kUnavailable, "not connected");
  }
  if (!SendAll(fd_, raw)) {
    Close();
    return Error(ErrorCode::kUnavailable, "send failed (connection closed?)");
  }
  std::string data = std::move(pending_);
  pending_.clear();
  char buf[4096];
  std::size_t total = std::string::npos;
  for (;;) {
    if (total == std::string::npos) {
      std::size_t head_end = data.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        std::string head = util::ToLower(data.substr(0, head_end));
        std::size_t cl = head.find("content-length:");
        std::size_t body = 0;
        if (cl != std::string::npos) {
          std::size_t eol = head.find('\n', cl);
          auto value = util::Trim(
              std::string_view(head).substr(cl + 15, eol - cl - 15));
          if (auto parsed = util::ParseInt(value); parsed && *parsed >= 0) {
            body = static_cast<std::size_t>(*parsed);
          }
        }
        total = head_end + 4 + body;
      }
    }
    if (total != std::string::npos && data.size() >= total) break;
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      data.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    if (n == 0) {
      return Error(ErrorCode::kUnavailable,
                   data.empty() ? "connection closed"
                                : "truncated response at connection close");
    }
    return Error(ErrorCode::kUnavailable,
                 std::string("recv: ") + std::strerror(errno));
  }
  pending_.assign(data.begin() + static_cast<std::ptrdiff_t>(total),
                  data.end());
  data.resize(total);
  return data;
}

}  // namespace gaa::http
