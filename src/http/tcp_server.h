// TCP transport: serve the WebServer pipeline over real sockets.
//
// The deterministic in-process entry points (WebServer::HandleText) remain
// the substrate for tests and benchmarks; this transport adds the real
// accept-loop + worker-pool front end so the reproduction is a complete,
// connectable web server.  One request per connection (HTTP/1.0-style
// close-after-response), which matches the 2003-era Apache the paper
// measured and keeps connection state trivial.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "http/server.h"
#include "util/status.h"

namespace gaa::http {

class TcpServer {
 public:
  struct Options {
    std::uint16_t port = 0;  ///< 0: pick an ephemeral port (tests)
    int backlog = 64;
    std::size_t worker_threads = 4;
    /// Connections whose head exceeds this are answered 413 and closed —
    /// the transport-level guard against the §1 oversized-request DoS.
    std::size_t max_request_bytes = 64 * 1024;
    /// Per-read timeout; a silent client is answered 408 and dropped
    /// (slow-loris style connection hoarding).
    int read_timeout_ms = 5000;
  };

  TcpServer(WebServer* server, Options options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind, listen and start the accept loop + workers.
  util::VoidResult Start();

  /// Stop accepting, drain workers, close everything.  Idempotent.
  void Stop();

  bool running() const { return running_.load(); }
  /// The bound port (valid after Start(); useful with port 0).
  std::uint16_t port() const { return port_; }

  std::uint64_t connections_accepted() const { return accepted_.load(); }
  std::uint64_t connections_rejected() const { return rejected_.load(); }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  WebServer* server_;
  Options options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> pending_;  // accepted fds awaiting a worker
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

/// Minimal blocking client for tests: sends raw request text to
/// 127.0.0.1:port and returns the full response text.
util::Result<std::string> TcpFetch(std::uint16_t port, const std::string& raw,
                                   int timeout_ms = 5000);

}  // namespace gaa::http
