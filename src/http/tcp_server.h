// TCP transport: serve the WebServer pipeline over real sockets.
//
// The deterministic in-process entry points (WebServer::HandleText) remain
// the substrate for tests and benchmarks; this transport adds a real,
// connectable front end.  Unlike the 2003-era close-per-request Apache the
// paper measured, the transport is an epoll-based event-driven connection
// layer:
//
//   * one event-loop thread owns all sockets (non-blocking), frames
//     requests incrementally, and writes responses — no thread ever blocks
//     on a peer;
//   * a worker pool runs the CPU-bound GAA phase pipeline
//     (parse → access control → handler → post-execution); the event loop
//     hands it complete request texts and receives serialized responses
//     back through a completion queue + eventfd wakeup;
//   * HTTP/1.1 keep-alive with pipelined requests handled sequentially
//     per connection, idle-connection timeouts, and a max-connections cap
//     with graceful 503 shedding;
//   * Stop() drains in-flight requests before closing (bounded by
//     Options::drain_timeout_ms).
//
// Request framing (the split of the byte stream into request texts) happens
// here, before the parser: framing is attack surface (request smuggling,
// truncated bodies), so ambiguous framing — conflicting Content-Length
// headers, Transfer-Encoding, bodies cut short by EOF — is rejected at the
// transport with 400 and reported through the malformed-request hook.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "http/server.h"
#include "util/status.h"

namespace gaa::http {

class TcpServer {
 public:
  struct Options {
    std::uint16_t port = 0;  ///< 0: pick an ephemeral port (tests)
    int backlog = 128;
    std::size_t worker_threads = 4;
    /// Connections whose request exceeds this are answered 413 and closed —
    /// the transport-level guard against the §1 oversized-request DoS.
    std::size_t max_request_bytes = 64 * 1024;
    /// A connection with a *partial* request buffered longer than this is
    /// answered 408 and dropped (slow-loris style connection hoarding).
    int read_timeout_ms = 5000;
    /// Serve multiple requests per connection (HTTP/1.1 keep-alive).
    bool keep_alive = true;
    /// An idle keep-alive connection (no partial request pending) older
    /// than this is closed silently.
    int idle_timeout_ms = 15000;
    /// Hard cap on concurrently open connections; excess accepts are
    /// answered 503 and closed immediately (graceful shedding).
    std::size_t max_connections = 1024;
    /// Close a connection after it has served this many requests.
    std::size_t max_keepalive_requests = 1000;
    /// Stop(): how long to wait for in-flight requests to finish and
    /// responses to flush before force-closing.
    int drain_timeout_ms = 2000;
  };

  /// Connection-layer counters, exported through the stats hook so
  /// adaptive policies (SystemState variables consulted via `var:`
  /// indirection) can see transport-level load.
  struct Stats {
    std::uint64_t accepted = 0;   ///< connections accepted
    std::uint64_t reused = 0;     ///< requests served on an already-used conn
    std::uint64_t timed_out = 0;  ///< idle/slow connections dropped
    std::uint64_t shed = 0;       ///< accepts answered 503 (over cap)
    std::uint64_t rejected = 0;   ///< framing-level 4xx (413/408/400)
    std::uint64_t requests = 0;   ///< requests dispatched to workers
    std::uint64_t active = 0;     ///< connections open right now
  };

  /// Invoked from the event-loop thread whenever counters changed during an
  /// event-loop iteration.  Must be cheap and thread-safe.
  using StatsHook = std::function<void(const Stats&)>;

  TcpServer(WebServer* server, Options options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind, listen and start the event loop + workers.
  util::VoidResult Start();

  /// Stop accepting, drain in-flight work, close everything.  Idempotent.
  void Stop();

  /// Install the stats export hook (call before Start()).
  void set_stats_hook(StatsHook hook) { stats_hook_ = std::move(hook); }

  bool running() const { return running_.load(); }
  /// The bound port (valid after Start(); useful with port 0).
  std::uint16_t port() const { return port_; }
  const Options& options() const { return options_; }

  Stats stats() const;
  std::uint64_t connections_accepted() const { return accepted_.load(); }
  std::uint64_t connections_rejected() const { return rejected_.load(); }
  std::uint64_t connections_reused() const { return reused_.load(); }
  std::uint64_t connections_timed_out() const { return timed_out_.load(); }
  std::uint64_t connections_shed() const { return shed_.load(); }
  std::uint64_t active_connections() const { return active_.load(); }

 private:
  struct Connection;
  struct Job {
    std::uint64_t conn_id = 0;
    std::string raw;
    util::Ipv4Address ip;
    std::uint16_t port = 0;
    bool keep_alive = false;
    /// Trace begun at framing time; the "queue" span is open while the job
    /// waits for a worker.  Ownership crosses threads through jobs_mu_.
    std::unique_ptr<telemetry::RequestTrace> trace;
    std::size_t queue_span = 0;
  };
  struct Done {
    std::uint64_t conn_id = 0;
    std::string wire;
    bool close_after = false;
  };

  void EventLoop();
  void WorkerLoop();
  void WakeLoop();

  void AcceptNew();
  void ReadConn(Connection* conn);
  void TryDispatch(Connection* conn);
  void TryWrite(Connection* conn);
  void UpdateInterest(Connection* conn);
  void RespondAndClose(Connection* conn, StatusCode status);
  void CloseConn(std::uint64_t conn_id);
  void DrainCompletions();
  void SweepTimeouts(std::int64_t now_ms);
  int NextTimeoutMs(std::int64_t now_ms) const;
  void PublishStats();

  WebServer* server_;
  Options options_;
  StatsHook stats_hook_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  // Counters (atomics: read by any thread, written by the event loop and,
  // for requests/reused, only from the event loop as well).
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> reused_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> active_{0};
  bool stats_dirty_ = false;  // event-loop thread only

  // Connections are owned by the event-loop thread exclusively.
  std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::uint64_t next_conn_id_ = 1;

  // Event loop -> workers.
  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::deque<Job> jobs_;
  bool workers_run_ = false;  // guarded by jobs_mu_

  // Workers -> event loop.
  std::mutex done_mu_;
  std::deque<Done> done_;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;
};

/// Minimal blocking client for tests: sends raw request text to
/// 127.0.0.1:port and returns the full response text (reads to EOF; the
/// server closes after the response because the client half-closes).
util::Result<std::string> TcpFetch(std::uint16_t port, const std::string& raw,
                                   int timeout_ms = 5000);

/// Keep-alive client for tests and benchmarks: holds one TCP connection
/// open and performs framed request/response round trips on it.  Response
/// framing relies on the Content-Length header our server always emits
/// (do not use for HEAD requests, whose responses carry a length but no
/// body).
class TcpClient {
 public:
  explicit TcpClient(std::uint16_t port, int timeout_ms = 5000);
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  /// Send one raw request and read exactly one framed response.
  util::Result<std::string> RoundTrip(const std::string& raw);

  /// Close the client side of the connection.
  void Close();

 private:
  int fd_ = -1;
  std::string pending_;  // bytes read past the previous response
};

}  // namespace gaa::http
