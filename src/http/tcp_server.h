// TCP transport: serve the WebServer pipeline over real sockets.
//
// The deterministic in-process entry points (WebServer::HandleText) remain
// the substrate for tests and benchmarks; this transport adds a real,
// connectable front end.  Unlike the 2003-era close-per-request Apache the
// paper measured, the transport is a sharded multi-reactor (DESIGN.md §10):
//
//   * N event-loop shards (Options::reactor_shards, default
//     min(4, hw_concurrency)), each owning its own SO_REUSEPORT listener,
//     epoll fd, connection table, buffer pool and timeout wheel.  A
//     connection is owned by exactly one shard for its whole life — its
//     state is single-threaded by construction, no lock needed.  When
//     SO_REUSEPORT is unavailable (Options::so_reuseport = false, or the
//     kernel refuses), shard 0 accepts and round-robins raw fds to the
//     other shards through lock-free handoff rings.
//   * worker handoff is lock-free in the steady state: per-shard bounded
//     MPMC rings (util::MpmcRing) carry jobs to the shard's workers and
//     completions back, with an eventfd semaphore waking idle workers and
//     an eventfd waking the shard loop.  Rings are sized for
//     max_connections, and a connection has at most one job in flight, so
//     the job ring cannot overflow by construction.
//   * inline fast path: when the framed request is a plain anonymous GET
//     whose access decision is already memoized as a pure terminal YES/NO
//     and the target is a static document within a byte budget
//     (WebServer::InlineFastPathEligible), the shard runs the full
//     pipeline on the event-loop thread — same responses, same audit and
//     attribution side effects, no worker round trip.
//   * responses are written with gathered writes (sendmsg iovecs over
//     head + body chunks) instead of concatenating one wire string;
//     per-shard buffer pools recycle connection read buffers.
//   * HTTP/1.1 keep-alive with pipelined requests handled sequentially
//     per connection, idle-connection timeouts (per-shard lazy timer
//     wheel), and a global max-connections cap with graceful 503 shedding;
//   * Stop() drains in-flight requests before closing (bounded by
//     Options::drain_timeout_ms).
//
// Request framing (the split of the byte stream into request texts) happens
// here, before the parser: framing is attack surface (request smuggling,
// truncated bodies), so ambiguous framing — conflicting Content-Length
// headers, Transfer-Encoding, bodies cut short by EOF — is rejected at the
// transport with 400 and reported through the malformed-request hook.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "http/server.h"
#include "util/status.h"

namespace gaa::http {

class TcpServer {
 public:
  struct Options {
    std::uint16_t port = 0;  ///< 0: pick an ephemeral port (tests)
    int backlog = 128;
    /// Worker threads running the GAA pipeline, partitioned round-robin
    /// across shards; raised to the shard count if smaller so every shard
    /// has at least one worker.
    std::size_t worker_threads = 4;
    /// Event-loop shards; 0 = min(4, hardware_concurrency).
    std::size_t reactor_shards = 0;
    /// Use per-shard SO_REUSEPORT listeners (kernel-level accept
    /// balancing).  When false — or when the kernel refuses the option —
    /// shard 0 owns the only listener and hands accepted fds to the other
    /// shards round-robin.
    bool so_reuseport = true;
    /// Serve memoized-decision static-doc GETs directly on the event loop
    /// (see header comment); responses stay byte-identical either way.
    bool inline_fast_path = true;
    /// Documents larger than this always go to a worker, keeping the
    /// event loop's per-request work bounded.
    std::size_t inline_max_response_bytes = 64 * 1024;
    /// Connections whose request exceeds this are answered 413 and closed —
    /// the transport-level guard against the §1 oversized-request DoS.
    std::size_t max_request_bytes = 64 * 1024;
    /// A connection with a *partial* request buffered longer than this is
    /// answered 408 and dropped (slow-loris style connection hoarding).
    int read_timeout_ms = 5000;
    /// Serve multiple requests per connection (HTTP/1.1 keep-alive).
    bool keep_alive = true;
    /// An idle keep-alive connection (no partial request pending) older
    /// than this is closed silently.
    int idle_timeout_ms = 15000;
    /// Hard cap on concurrently open connections across all shards; excess
    /// accepts are answered 503 and closed immediately (graceful shedding).
    std::size_t max_connections = 1024;
    /// Close a connection after it has served this many requests.
    std::size_t max_keepalive_requests = 1000;
    /// Stop(): how long to wait for in-flight requests to finish and
    /// responses to flush before force-closing.
    int drain_timeout_ms = 2000;
    /// Explicit drain deadline for Stop(); when >= 0 it overrides
    /// drain_timeout_ms.  Connections still busy (or with unflushed output)
    /// at the deadline are force-closed and *reported* — counted in
    /// Stats::drain_force_closed, exported as the
    /// transport_drain_force_closed gauge, and surfaced through the drain
    /// hook so the integration layer can write an audit event — instead of
    /// being silently destroyed.
    int drain_deadline_ms = -1;
    /// Listener fds inherited from a cluster supervisor (DESIGN.md §15),
    /// one per reactor shard in shard order; each must already be bound +
    /// listening on the same SO_REUSEPORT port.  Ownership transfers to the
    /// transport (closed on Stop()).  When non-empty the transport adopts
    /// these instead of binding its own sockets, which is what lets a
    /// re-exec'd process resume accepting from the inherited backlog
    /// without a refused connection.
    std::vector<int> inherited_listen_fds;
    /// Fire the tick hook from shard 0's timer wheel every this many
    /// milliseconds (0 disables).  The integration layer drives periodic
    /// IDS maintenance — threat-level decay, sketch window aging — off
    /// this, so decay happens even when no requests arrive (DESIGN.md §12).
    int tick_interval_ms = 0;
    /// Arm a per-shard timer-wheel sentinel every this many milliseconds
    /// (0 disables) that measures event-loop lag: the delta between the
    /// sentinel's scheduled deadline and when the loop actually fired it.
    /// A stalled handler on the loop thread (an inline serve gone slow, a
    /// blocked syscall) shows up here even when no request is in flight —
    /// exported as transport_shard_loop_lag_ms gauges and a
    /// transport_loop_lag_us histogram.  Wheel granularity (32ms ticks)
    /// bounds the noise floor at ~64ms.
    int lag_probe_interval_ms = 0;
  };

  /// Connection-layer counters, exported through the stats hook so
  /// adaptive policies (SystemState variables consulted via `var:`
  /// indirection) can see transport-level load.  stats() returns the sum
  /// over shards; shard_stats(i) one shard's own counters.
  struct Stats {
    std::uint64_t accepted = 0;   ///< connections adopted by a shard
    std::uint64_t reused = 0;     ///< requests served on an already-used conn
    std::uint64_t timed_out = 0;  ///< idle/slow connections dropped
    std::uint64_t shed = 0;       ///< accepts answered 503 (over cap)
    std::uint64_t rejected = 0;   ///< framing-level 4xx (413/408/400)
    std::uint64_t requests = 0;   ///< requests handled (worker or inline)
    std::uint64_t inline_served = 0;  ///< requests served on the event loop
    std::uint64_t active = 0;     ///< connections open right now
    std::uint64_t shards = 0;     ///< shard count (aggregate view only)
    std::uint64_t ring_depth = 0;  ///< jobs queued to workers right now
    /// Deepest the job ring has ever been (aggregate view: max over
    /// shards) — the saturation indicator the ring-depth gauge alone
    /// misses between samples.
    std::uint64_t ring_high_watermark = 0;
    std::uint64_t loop_lag_ms = 0;  ///< last lag-probe reading (max over shards)
    /// Connections force-closed at the drain deadline during Stop() while
    /// still busy or holding unflushed output (0 after a clean drain).
    std::uint64_t drain_force_closed = 0;
  };

  /// Invoked from an event-loop thread whenever counters changed during an
  /// event-loop iteration, with the cross-shard aggregate.  Must be cheap
  /// and thread-safe (shards call it concurrently).
  using StatsHook = std::function<void(const Stats&)>;

  TcpServer(WebServer* server, Options options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind, listen and start the shard event loops + workers.
  util::VoidResult Start();

  /// Stop accepting, drain in-flight work, close everything.  Idempotent.
  void Stop();

  /// Install the stats export hook (call before Start()).
  void set_stats_hook(StatsHook hook) { stats_hook_ = std::move(hook); }

  /// Invoked from shard 0's event-loop thread every
  /// Options::tick_interval_ms with the current monotonic time.  Must be
  /// cheap and thread-safe.  Install before Start().
  using TickHook = std::function<void(std::int64_t now_ms)>;
  void set_tick_hook(TickHook hook) { tick_hook_ = std::move(hook); }

  /// Invoked once from Stop() — after every shard has exited — when the
  /// drain deadline force-closed connections, with the count.  The
  /// integration layer turns this into an audit event.  Install before
  /// Start().
  using DrainHook = std::function<void(std::uint64_t force_closed)>;
  void set_drain_hook(DrainHook hook) { drain_hook_ = std::move(hook); }

  bool running() const { return running_.load(); }
  /// The bound port (valid after Start(); useful with port 0).
  std::uint16_t port() const { return port_; }
  const Options& options() const { return options_; }

  /// Cross-shard aggregate (coherent per counter: each is the sum of
  /// monotonic per-shard atomics).
  Stats stats() const;
  /// Shards running (0 before the first Start()).
  std::size_t shard_count() const { return shards_.size(); }
  /// One shard's own counters (`shard` < shard_count()).
  Stats shard_stats(std::size_t shard) const;

  std::uint64_t connections_accepted() const { return stats().accepted; }
  std::uint64_t connections_rejected() const { return stats().rejected; }
  std::uint64_t connections_reused() const { return stats().reused; }
  std::uint64_t connections_timed_out() const { return stats().timed_out; }
  std::uint64_t connections_shed() const { return stats().shed; }
  std::uint64_t active_connections() const { return stats().active; }
  std::uint64_t inline_served() const { return stats().inline_served; }

 private:
  struct Connection;
  struct Shard;
  struct Job;
  struct Done;

  static std::size_t EffectiveShards(const Options& options);

  void ShardLoop(Shard& shard);
  void WorkerLoop(Shard& shard);
  static void WakeShard(Shard& shard);

  void AcceptNew(Shard& shard);
  void AdoptFd(Shard& shard, int fd, std::uint32_t ip_host_order,
               std::uint16_t peer_port, bool shed);
  void DrainHandoff(Shard& shard);
  void ReadConn(Shard& shard, Connection* conn);
  void TryDispatch(Shard& shard, Connection* conn);
  bool ServeInline(Shard& shard, Connection* conn, std::size_t frame_bytes,
                   bool keep_alive_requested);
  void TryWrite(Shard& shard, Connection* conn);
  void UpdateInterest(Shard& shard, Connection* conn);
  void EnqueueResponse(Shard& shard, Connection* conn, HttpResponse& response,
                       bool close_after);
  void RespondAndClose(Shard& shard, Connection* conn, StatusCode status);
  void CloseConn(Shard& shard, std::uint64_t conn_id);
  void DrainCompletions(Shard& shard);
  void Touch(Shard& shard, Connection* conn);
  void NoteArena(Shard& shard, Connection* conn);
  void OnTimerDue(Shard& shard, std::uint64_t conn_id, std::int64_t now_ms);
  void PublishStats(Shard& shard);

  WebServer* server_;
  Options options_;
  StatsHook stats_hook_;
  TickHook tick_hook_;
  DrainHook drain_hook_;
  std::uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  /// Workers run while true; flipped before the job-eventfd shutdown kick.
  std::atomic<bool> workers_run_{false};

  /// Open connections across all shards — the max_connections cap is
  /// global, so shards admit against this single counter.
  std::atomic<std::uint64_t> total_active_{0};

  /// Shards live from Start() until the *next* Start() (not Stop()), so
  /// counters remain readable after shutdown.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
};

/// Minimal blocking client for tests: sends raw request text to
/// 127.0.0.1:port and returns the full response text (reads to EOF; the
/// server closes after the response because the client half-closes).
util::Result<std::string> TcpFetch(std::uint16_t port, const std::string& raw,
                                   int timeout_ms = 5000);

/// Keep-alive client for tests and benchmarks: holds one TCP connection
/// open and performs framed request/response round trips on it.  Response
/// framing relies on the Content-Length header our server always emits
/// (do not use for HEAD requests, whose responses carry a length but no
/// body).
class TcpClient {
 public:
  explicit TcpClient(std::uint16_t port, int timeout_ms = 5000);
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  /// Send one raw request and read exactly one framed response.
  util::Result<std::string> RoundTrip(const std::string& raw);

  /// Send raw bytes without waiting for a response — the open-loop load
  /// driver uses this for deliberately unfinished requests (slowloris-style
  /// partial heads), typically followed by Close() so the server diagnoses
  /// a truncated request.  Returns false when the peer is gone.
  bool SendRaw(const std::string& raw);

  /// Close the client side of the connection.
  void Close();

 private:
  int fd_ = -1;
  std::string pending_;  // bytes read past the previous response
};

}  // namespace gaa::http
