// Virtual document tree: the web server's content store.
//
// Holds static documents and simulated CGI scripts keyed by URL path, plus
// optional per-directory .htaccess text for the baseline access-control
// engine.  CGI scripts are C++ callables with an explicit cost model
// (cpu-seconds and output size as functions of the input), which lets
// mid-conditions observe "a user process consumes excessive system
// resources" deterministically.  Vulnerable scripts (phf, test-cgi) are
// provided for the §7.2 scenario: they misbehave on meta-character input
// exactly the way the historical ones did.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gaa::http {

/// What a CGI execution did — consumed by the execution-control phase.
struct CgiResult {
  bool ok = true;
  std::string output;
  double cpu_seconds = 0.001;
  std::uint64_t memory_bytes = 1 << 16;
  std::vector<std::string> files_touched;  ///< paths the script wrote
};

/// A simulated CGI program: query string in, CgiResult out.
using CgiScript = std::function<CgiResult(const std::string& query)>;

/// A long-running CGI program that produces its output in steps, so the
/// execution-control phase can observe (and abort) it mid-flight — the
/// paper's phase 3 runs "during the execution of the authorized
/// operation".  Called with the step index; returns the chunk for that
/// step, or nullopt when the program is done.
struct CgiStep {
  std::string chunk;
  double cpu_seconds = 0.001;        ///< CPU consumed by this step
  std::uint64_t memory_bytes = 0;    ///< additional memory held after it
  std::vector<std::string> files_touched;
};
using StreamingCgiScript =
    std::function<std::optional<CgiStep>(std::size_t step,
                                         const std::string& query)>;

struct Document {
  std::string content;
  std::string content_type = "text/html";
  /// Modification time (microseconds since the Unix epoch) — the source of
  /// the `Last-Modified` validator and the `If-Modified-Since` comparison.
  /// 0 (the epoch) for documents that never state one.
  std::int64_t mtime_us = 0;
};

/// NOTE: not internally synchronized — populate the tree before serving;
/// concurrent reads are safe once mutation stops.
class DocTree {
 public:
  void AddDocument(const std::string& path, Document doc);
  void AddCgi(const std::string& path, CgiScript script);
  void AddStreamingCgi(const std::string& path, StreamingCgiScript script);
  /// Attach .htaccess text to a directory ("/", "/private", ...).
  void SetHtaccess(const std::string& dir, std::string htaccess_text);

  /// Lookups take views so hot paths (the transport's inline admission
  /// probe) never materialize a std::string key.
  const Document* FindDocument(std::string_view path) const;
  const CgiScript* FindCgi(std::string_view path) const;
  const StreamingCgiScript* FindStreamingCgi(std::string_view path) const;
  bool Exists(std::string_view path) const;

  /// Concatenated .htaccess texts along the directory chain of `path`
  /// (root first) — Apache consults every directory on the way down.
  std::vector<std::string> HtaccessChain(const std::string& path) const;

  std::size_t document_count() const;
  std::size_t cgi_count() const;

  /// All static documents, path-ordered — the static content plane builds
  /// its response-template cache from this (DESIGN.md §11).
  const std::map<std::string, Document, std::less<>>& documents() const {
    return documents_;
  }

  /// A ready-made site: /index.html, /docs/*, /private/* (auth-protected
  /// area), /cgi-bin/{phf,test-cgi,search,status} — the section-7 scenarios
  /// and benchmarks all run against this tree.
  static DocTree DemoSite();

 private:
  std::map<std::string, Document, std::less<>> documents_;
  std::map<std::string, CgiScript, std::less<>> cgis_;
  std::map<std::string, StreamingCgiScript, std::less<>> streaming_cgis_;
  std::map<std::string, std::string, std::less<>> htaccess_;
};

}  // namespace gaa::http
