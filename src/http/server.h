// The web server core ("apache-sim").
//
// A deliberately Apache-shaped request pipeline:
//
//   parse  →  access check (pluggable AccessController)  →  handler
//   (static file or CGI)  →  execution control callback  →  completion
//   callback  →  access/error logging
//
// The paper integrates the GAA-API "by modifying the check_access function";
// here the same seam is the AccessController interface.  The baseline
// HtaccessController reproduces stock Apache behaviour (§4); the
// integration module provides the GAA-backed controller (§5-6).
//
// The server is transport-agnostic: HandleText()/Handle() process one
// request synchronously and deterministically, which is what the tests and
// benchmarks need.  Concurrency is the caller's choice (the workload driver
// runs several threads over one server).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "http/doc_tree.h"
#include "http/htaccess.h"
#include "http/htpasswd.h"
#include "http/request.h"
#include "http/response.h"
#include "http/static_plane.h"
#include "http/tenant_router.h"
#include "telemetry/telemetry.h"
#include "util/clock.h"

namespace gaa::http {

/// What the operation did — handed to the execution-control and completion
/// callbacks (http-local mirror of the GAA OperationStats; the integration
/// layer adapts).
struct OperationObservation {
  double cpu_seconds = 0.0;
  std::uint64_t wall_us = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t memory_bytes = 0;
  std::vector<std::string> files_touched;
};

/// The pluggable access-control seam.
class AccessController {
 public:
  virtual ~AccessController() = default;

  struct Verdict {
    bool respond = false;   ///< true: short-circuit with `response`
    HttpResponse response;  ///< used when respond is true

    static Verdict Allow() { return Verdict{}; }
    static Verdict Respond(HttpResponse r) {
      Verdict v;
      v.respond = true;
      v.response = std::move(r);
      return v;
    }
  };

  /// Phase 2: decide the request.  May mutate rec (sets auth_user).
  virtual Verdict Check(RequestRec& rec) = 0;

  /// Phase 3 (execution control): return false to abort the operation.
  virtual bool OnExecution(RequestRec& rec, const OperationObservation& obs) {
    (void)rec;
    (void)obs;
    return true;
  }

  /// Phase 4 (post-execution).
  virtual void OnComplete(RequestRec& rec, const OperationObservation& obs,
                          bool success) {
    (void)rec;
    (void)obs;
    (void)success;
  }

  /// Transport fast-path admission probe: would an *anonymous* `method`
  /// request for `path` from `client_ip` in `tenant`'s namespace ("" = the
  /// default) be decided from an existing memoized pure terminal YES/NO —
  /// no fresh condition evaluation, no side effects?  Must be cheap,
  /// thread-safe and free of side effects (it runs on the transport's
  /// event-loop thread, possibly for requests that are then served on the
  /// ordinary worker path anyway).  Takes views so the event loop never
  /// materializes key strings.  The default says no, which disables the
  /// fast path for controllers that cannot prove it safe.
  virtual bool DecisionIsMemoized(std::string_view path,
                                  std::string_view method,
                                  util::Ipv4Address client_ip,
                                  std::string_view tenant) const {
    (void)path;
    (void)method;
    (void)client_ip;
    (void)tenant;
    return false;
  }

  /// Stronger than DecisionIsMemoized: true only when every request this
  /// controller could ever see is allowed unconditionally AND skipping
  /// Check()/OnExecution()/OnComplete() entirely is unobservable — no
  /// attribution counters, no audit records, no in-flight tracking.  Only
  /// then may the transport answer from the static content plane's
  /// pre-serialized templates without running the pipeline at all
  /// (DESIGN.md §11).  A memoized GAA YES does NOT qualify: its Check()
  /// still bumps per-entry attribution, so it takes the inline-pipeline
  /// tier instead.
  virtual bool AllowsUnchecked() const { return false; }
};

/// Baseline controller: stock Apache .htaccess semantics over the DocTree's
/// per-directory configs.
class HtaccessController final : public AccessController {
 public:
  HtaccessController(const DocTree* tree, const HtpasswdRegistry* passwords)
      : tree_(tree), passwords_(passwords) {}

  Verdict Check(RequestRec& rec) override;

 private:
  const DocTree* tree_;
  const HtpasswdRegistry* passwords_;
};

/// Controller that allows everything (raw-server baseline).
class AllowAllController final : public AccessController {
 public:
  Verdict Check(RequestRec&) override { return Verdict::Allow(); }

  /// Allow-all is trivially memoized: the answer is a constant YES with no
  /// conditions, so the transport may always take the inline fast path.
  bool DecisionIsMemoized(std::string_view, std::string_view,
                          util::Ipv4Address,
                          std::string_view) const override {
    return true;
  }

  /// Check() is a constant YES and the phase callbacks are no-ops, so
  /// skipping them is unobservable — the template fast path is safe.
  bool AllowsUnchecked() const override { return true; }
};

struct AccessLogEntry {
  util::TimePoint time_us = 0;
  std::string client_ip;
  std::string user;
  std::string request_line;
  int status = 0;
  std::uint64_t bytes = 0;
  std::uint64_t trace_id = 0;  ///< joins this entry to its request trace
};

class WebServer {
 public:
  struct Options {
    std::string server_name = "apache-sim/1.0";
    ParseLimits parse_limits;
    std::size_t access_log_limit = 65536;
    /// Admin endpoint path serving Prometheus text metrics, plus JSON
    /// views: "<status_path>/traces" (recent request traces),
    /// "<status_path>/slow" (watchdog-pinned slow traces),
    /// "<status_path>/metrics.json" (all metrics with p50/p95/p99 summaries)
    /// and "<status_path>/policies" (per-EACL-entry decision counts and
    /// per-condition latency percentiles).  It is dispatched AFTER the
    /// access-control phase, so any policy that can protect a document can
    /// protect it.  Empty disables the endpoint.
    std::string status_path = "/__status";
    /// Build the static content plane (DESIGN.md §11): per-document
    /// pre-serialized 200/304 header templates, ETag and Last-Modified
    /// validators, and conditional-GET handling.  Off restores the PR-5
    /// wire behaviour (no validators, never 304) — the benchmark baseline.
    bool enable_static_plane = true;
  };

  WebServer(const DocTree* tree, AccessController* controller,
            util::Clock* clock)
      : WebServer(tree, controller, clock, Options{}) {}
  WebServer(const DocTree* tree, AccessController* controller,
            util::Clock* clock, Options options);

  /// Full pipeline from raw request text.
  HttpResponse HandleText(std::string_view raw, util::Ipv4Address client_ip,
                          std::uint16_t client_port = 0);

  /// Same, with a trace begun by the transport layer (so the trace covers
  /// queueing ahead of parsing).  Null trace = tracing disabled.
  HttpResponse HandleText(std::string_view raw, util::Ipv4Address client_ip,
                          std::uint16_t client_port,
                          std::unique_ptr<telemetry::RequestTrace> trace);

  /// Pipeline from an already-parsed record.
  HttpResponse Handle(RequestRec rec);

  /// Transport fast-path admission (DESIGN.md §10): true when a framed
  /// request with this method/target can safely be handled on the
  /// transport's event-loop thread — a GET for an existing static document
  /// no larger than `max_response_bytes`, with a plain target (no
  /// percent-escapes, query, fragment or dot-dot, so the probe path equals
  /// the parsed path exactly), not the status endpoint, whose access
  /// decision the controller already holds memoized.  The caller still
  /// runs the full HandleText pipeline — admission only chooses *where*
  /// it runs, never what it answers.  `host` is the raw Host header value
  /// ("" when absent): admission resolves the tenant exactly like the
  /// pipeline will, so the probe and the answer can never disagree.
  bool InlineFastPathEligible(std::string_view method, std::string_view target,
                              std::string_view host,
                              std::size_t max_response_bytes,
                              util::Ipv4Address client_ip) const;

  /// One template-served static response: three stable views (the
  /// pre-serialized head split around the Date line, and the document body
  /// straight out of the DocTree) plus the per-request Date line rendered
  /// into a caller-owned buffer.  The wire bytes are
  /// head_pre + date_line + head_post + body.
  struct StaticFastResponse {
    std::string_view head_pre;   ///< status line + headers before Date
    std::string_view head_post;  ///< headers after Date + blank line
    std::string_view body;       ///< empty for HEAD and 304
    char date_line[HttpDateCache::kLineBytes];
    int status = 200;
  };

  /// The transport's zero-allocation tier (DESIGN.md §11): serve `method`
  /// (GET or HEAD) for `target` straight from the static content plane's
  /// templates, skipping the pipeline.  Admitted only when the controller
  /// AllowsUnchecked() (so skipping Check/OnExecution/OnComplete is
  /// unobservable), the target is plain and maps to a templated document
  /// within `max_response_bytes`, and tracing is off (a traced request
  /// must travel the pipeline so its spans exist).  Evaluates
  /// If-None-Match / If-Modified-Since against the entry's validators and
  /// answers 304 when they match.  Performs all request accounting
  /// (requests_served, counters, latency, access log) itself; the caller
  /// only writes the views.  Returns false to fall back; allocation-free
  /// either way once caches are warm.
  /// `host` is the raw Host header value; tenant resolution (and the
  /// per-tenant doc-root remap) happens in a stack buffer, so the tier
  /// stays allocation-free.  A host the router rejects falls back to the
  /// pipeline, which answers the 421.
  bool TryServeStaticFast(std::string_view method, std::string_view target,
                          std::string_view host,
                          std::string_view if_none_match,
                          std::string_view if_modified_since,
                          util::Ipv4Address client_ip, bool keep_alive,
                          std::size_t max_response_bytes,
                          StaticFastResponse* out);

  /// The response-template cache (null when Options::enable_static_plane
  /// is false or the server has no document tree).
  const StaticContentPlane* static_plane() const { return plane_.get(); }

  /// Tenant resolution (DESIGN.md §14).  The router must outlive the
  /// server and be fully configured before serving starts — Resolve() is
  /// read-only and lock-free, so the pipeline and both fast-path tiers
  /// consult it on every request without synchronization.  Null (the
  /// default) or an empty router keeps the single-tenant behaviour: every
  /// request runs in the default ("") namespace.
  void set_tenant_router(const TenantRouter* router) {
    tenant_router_ = router;
  }
  const TenantRouter* tenant_router() const { return tenant_router_; }

  /// Renders "<status_path>/tenants".  The policy plane owns the tenant
  /// table and the IR store, so the integration layer injects the JSON
  /// renderer rather than the http layer reaching down a level.
  using StatusView = std::function<std::string()>;
  void set_tenants_view(StatusView view) { tenants_view_ = std::move(view); }

  /// Cluster mode (DESIGN.md §15): overrides the Prometheus body served at
  /// "<status_path>" — the cluster glue renders this process's registry
  /// with a `process` label and appends the other live processes' slab
  /// metrics from the shared segment.  Unset = single-process rendering,
  /// byte-compatible with previous releases.
  void set_status_prometheus_view(StatusView view) {
    prometheus_view_ = std::move(view);
  }

  /// Cluster mode: enables and renders "<status_path>/cluster" — the
  /// fleet JSON view (generation, per-process liveness/heartbeat/threat,
  /// merged counters).  Unset: the path falls through to document lookup
  /// exactly as before.
  void set_cluster_view(StatusView view) { cluster_view_ = std::move(view); }

  /// Cluster mode: tag "<status_path>/metrics.json" with this process slot
  /// (adds a leading `"process":N` field).  -1 (default) = untagged,
  /// byte-compatible single-process output.
  void set_status_process(int process) { status_process_ = process; }

  /// Invoked when parsing diagnoses a hostile/malformed request — the
  /// integration layer forwards this to the IDS (§3 item 1).
  using MalformedHook =
      std::function<void(RequestDefect, const std::string& detail,
                         util::Ipv4Address client_ip)>;
  void set_malformed_hook(MalformedHook hook) { malformed_hook_ = std::move(hook); }

  /// Report a defect diagnosed below the parser (the transport's framing
  /// layer: truncated bodies, conflicting Content-Length) into the same
  /// IDS-facing hook.
  void ReportMalformed(RequestDefect defect, const std::string& detail,
                       util::Ipv4Address client_ip) {
    if (malformed_hook_) malformed_hook_(defect, detail, client_ip);
  }

  /// Invoked once per served request — worker path, inline pipeline and the
  /// template fast path alike — with the request's transport-level features.
  /// The integration layer feeds this to the streaming IDS (DESIGN.md §12).
  /// Must be cheap and thread-safe: it runs on the event loop for
  /// fast-path serves.
  using RequestObserver =
      std::function<void(std::string_view method, std::string_view target,
                         util::Ipv4Address client_ip, int status)>;
  void set_request_observer(RequestObserver observer) {
    request_observer_ = std::move(observer);
  }

  // --- telemetry ------------------------------------------------------------
  /// Every server owns a default Telemetry instance; the integration layer
  /// swaps in a shared one so GAA/IDS/audit metrics land in the same
  /// registry.  Passing null disables all instrumentation (bench baseline).
  void set_telemetry(telemetry::Telemetry* telemetry);
  telemetry::Telemetry* telemetry() const { return telemetry_; }

  // --- stats / logs ---------------------------------------------------------
  std::uint64_t requests_served() const { return requests_served_.load(); }
  /// Status-code counts, read back from the registry's
  /// `http_responses_total{code="..."}` counters (zero-valued families are
  /// omitted).  Empty when telemetry is detached.
  std::map<int, std::uint64_t> StatusCounts() const;
  std::vector<AccessLogEntry> AccessLog() const;
  void ClearLogs();

 private:
  /// The pipeline proper: access check → /__status or handler → execution
  /// control → completion → access log.  Does not count the request; the
  /// public entry points do (so the latency histogram matches
  /// requests_served exactly, parse failures included).
  HttpResponse DoHandle(RequestRec& rec);
  HttpResponse ServeStatus(RequestRec& rec);
  /// One-stop accounting for every exit path: requests_served_,
  /// `http_requests_total`, the `http_request_latency_us` histogram, and
  /// trace completion.
  void FinishRequest(const util::Stopwatch& sw, int status,
                     std::unique_ptr<telemetry::RequestTrace> trace);
  /// Common response tail for every pipeline exit: bump the 304 counter,
  /// stamp Server and the cached Date header, strip the body of EVERY
  /// HEAD response (any status) while preserving its Content-Length, and
  /// write the access-log entry with the *represented* entity length (what
  /// Content-Length promises, not the bytes placed on the wire).
  HttpResponse FinalizeResponse(RequestRec& rec, HttpResponse response);
  void SetDateHeader(HttpResponse* response);
  void LogAccess(const RequestRec& rec, StatusCode status, std::uint64_t bytes);
  /// RequestRec-free access logging (shared with the template fast path);
  /// reuses ring-slot string capacity, so steady-state appends never touch
  /// the heap.
  void AppendAccessLog(std::string_view method, std::string_view target,
                       std::string_view user, util::Ipv4Address ip, int status,
                       std::uint64_t bytes, std::uint64_t trace_id);
  /// Cached `http_responses_total{code=...}` handle (null when telemetry
  /// is detached).
  telemetry::Counter* StatusCounterFor(int code);

  /// Resolve rec's Host header against the tenant router, stamping
  /// rec.tenant and returning the tenant's doc-root prefix ("" = shared
  /// tree).  Sets *reject when the unknown-host policy says 421.
  std::string_view ResolveTenant(RequestRec& rec, bool* reject) const;

  const DocTree* tree_;
  AccessController* controller_;
  util::Clock* clock_;
  Options options_;
  MalformedHook malformed_hook_;
  RequestObserver request_observer_;
  const TenantRouter* tenant_router_ = nullptr;  ///< null = single-tenant
  StatusView tenants_view_;
  StatusView prometheus_view_;  ///< cluster override for "<status_path>"
  StatusView cluster_view_;     ///< "<status_path>/cluster" (cluster only)
  int status_process_ = -1;     ///< cluster slot tag for metrics.json
  /// Response-template cache over tree_ (DESIGN.md §11); null when
  /// disabled.  Immutable after construction, safe from every thread.
  std::unique_ptr<StaticContentPlane> plane_;
  /// Once-per-second Date line shared by the worker path and every shard's
  /// fast path.
  HttpDateCache date_cache_;

  std::unique_ptr<telemetry::Telemetry> owned_telemetry_;
  telemetry::Telemetry* telemetry_;  ///< null = instrumentation disabled
  telemetry::Counter* requests_total_ = nullptr;   ///< cached handle
  telemetry::Histogram* latency_hist_ = nullptr;   ///< cached handle
  telemetry::Counter* not_modified_total_ = nullptr;  ///< cached handle
  /// Lazily resolved `http_responses_total{code=...}` handles indexed by
  /// status code, so LogAccess does not rebuild the label string and
  /// re-hash the registry key on every request.
  static constexpr int kMaxStatusCode = 600;
  std::array<std::atomic<telemetry::Counter*>, kMaxStatusCode>
      status_counters_{};

  std::atomic<std::uint64_t> requests_served_{0};
  mutable std::mutex log_mu_;
  /// Bounded access log as a slot ring: slots grow lazily up to
  /// access_log_limit and are then overwritten in place, reusing each
  /// entry's string capacity — the append path stops allocating once the
  /// ring has seen a request shaped like the current one.
  std::vector<AccessLogEntry> log_ring_;
  std::size_t log_next_ = 0;   ///< next slot to (over)write
  std::size_t log_count_ = 0;  ///< live entries (<= access_log_limit)
};

}  // namespace gaa::http
