// Tenant resolution: normalized Host header → tenant namespace (DESIGN.md
// §14).  The router is the one step between framing and dispatch that
// answers "which policy namespace and which document subtree govern this
// request", so every downstream layer — access control, the inline fast
// path, the zero-copy template tier — agrees on the tenant by construction.
//
// Routes are registered at setup (before serving) and immutable afterwards,
// like the StaticContentPlane: Resolve() is lock-free, allocation-free and
// safe from every shard thread.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

namespace gaa::http {

class TenantRouter {
 public:
  /// What to do with a Host no route matches (or a missing Host header).
  enum class UnknownHostPolicy {
    kDefaultTenant,  ///< serve from the default ("") namespace
    kReject,         ///< answer 421 Misdirected Request
  };

  struct Route {
    std::string tenant;
    /// Document-subtree prefix for this tenant ("" = the shared tree).
    /// When set, "/index.html" is looked up as "<doc_root>/index.html" —
    /// the tenant's documents live under a prefix of the one DocTree, so
    /// the static plane's pre-serialized templates keep working per-tenant.
    std::string doc_root;
  };

  /// Where a request landed.  `tenant` / `doc_root` view the router's own
  /// storage (stable once serving starts).
  struct Resolution {
    bool reject = false;
    std::string_view tenant;
    std::string_view doc_root;
  };

  /// Map `host` (normalized on insertion, so callers may pass the raw
  /// header value) to `tenant`.  Last registration wins.
  void AddHost(std::string_view host, std::string_view tenant,
               std::string_view doc_root = {});

  void set_unknown_host_policy(UnknownHostPolicy policy) {
    unknown_host_policy_ = policy;
  }
  UnknownHostPolicy unknown_host_policy() const {
    return unknown_host_policy_;
  }

  /// Resolve an already-normalized host (see NormalizeHostInto).  With no
  /// routes registered everything lands in the default namespace — the
  /// single-tenant behaviour.
  Resolution Resolve(std::string_view normalized_host) const;

  bool empty() const { return routes_.empty(); }
  std::size_t route_count() const { return routes_.size(); }

  /// Join `doc_root` and `target` into `buf` without allocating (the
  /// template tier's remap).  Returns `target` unchanged when `doc_root`
  /// is empty; an over-long join returns an empty view, which can only
  /// miss the document lookup and fall back to the full pipeline.
  static std::string_view RemapTarget(std::string_view doc_root,
                                      std::string_view target, char* buf,
                                      std::size_t cap);

 private:
  /// Heterogeneous comparator: Resolve probes with a string_view into a
  /// stack buffer, never materializing a key string.
  std::map<std::string, Route, std::less<>> routes_;
  UnknownHostPolicy unknown_host_policy_ = UnknownHostPolicy::kDefaultTenant;
};

}  // namespace gaa::http
