#include "http/response.h"

#include "util/strings.h"

namespace gaa::http {

const char* StatusReason(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kFound:
      return "Found";
    case StatusCode::kNotModified:
      return "Not Modified";
    case StatusCode::kBadRequest:
      return "Bad Request";
    case StatusCode::kUnauthorized:
      return "Unauthorized";
    case StatusCode::kForbidden:
      return "Forbidden";
    case StatusCode::kNotFound:
      return "Not Found";
    case StatusCode::kRequestTimeout:
      return "Request Timeout";
    case StatusCode::kPayloadTooLarge:
      return "Payload Too Large";
    case StatusCode::kUriTooLong:
      return "URI Too Long";
    case StatusCode::kMisdirectedRequest:
      return "Misdirected Request";
    case StatusCode::kInternalError:
      return "Internal Server Error";
    case StatusCode::kServiceUnavailable:
      return "Service Unavailable";
  }
  return "Unknown";
}

std::string HttpResponse::SerializeHead() const {
  std::string out = "HTTP/1.1 " + std::to_string(static_cast<int>(status)) +
                    " " + StatusReason(status) + "\r\n";
  // Case-insensitive: a handler setting "content-length" must not make
  // us emit a second, conflicting length header (request-smuggling-
  // adjacent framing ambiguity — the class the transport rejects inbound).
  bool has_length = false;
  for (const auto& [k, v] : headers) {
    if (util::EqualsIgnoreCase(k, "Content-Length")) has_length = true;
  }
  // The auto length is emitted exactly where an explicit Content-Length map
  // entry would sort, so a response that states its length (HEAD, 304) and
  // one that lets us compute it serialize byte-identically.
  constexpr std::string_view kLengthKey = "Content-Length";
  bool emitted_length = has_length;
  for (const auto& [k, v] : headers) {
    if (!emitted_length && kLengthKey < k) {
      out += "Content-Length: " + std::to_string(BodySize()) + "\r\n";
      emitted_length = true;
    }
    out += k + ": " + v + "\r\n";
  }
  if (!emitted_length) {
    out += "Content-Length: " + std::to_string(BodySize()) + "\r\n";
  }
  out += "\r\n";
  return out;
}

std::string HttpResponse::Serialize() const {
  std::string out = SerializeHead();
  out += BodyView();
  return out;
}

HttpResponse HttpResponse::Make(StatusCode status, std::string body) {
  HttpResponse r;
  r.status = status;
  if (body.empty()) {
    body = std::to_string(static_cast<int>(status)) + " " +
           StatusReason(status) + "\n";
  }
  r.body = std::move(body);
  r.headers["Content-Type"] = "text/plain";
  return r;
}

HttpResponse HttpResponse::AuthRequired(const std::string& realm) {
  HttpResponse r = Make(StatusCode::kUnauthorized);
  r.headers["WWW-Authenticate"] = "Basic realm=\"" + realm + "\"";
  return r;
}

HttpResponse HttpResponse::Redirect(const std::string& location) {
  HttpResponse r = Make(StatusCode::kFound);
  r.headers["Location"] = location;
  return r;
}

}  // namespace gaa::http
