#include "http/response.h"

namespace gaa::http {

const char* StatusReason(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kFound:
      return "Found";
    case StatusCode::kBadRequest:
      return "Bad Request";
    case StatusCode::kUnauthorized:
      return "Unauthorized";
    case StatusCode::kForbidden:
      return "Forbidden";
    case StatusCode::kNotFound:
      return "Not Found";
    case StatusCode::kRequestTimeout:
      return "Request Timeout";
    case StatusCode::kPayloadTooLarge:
      return "Payload Too Large";
    case StatusCode::kUriTooLong:
      return "URI Too Long";
    case StatusCode::kInternalError:
      return "Internal Server Error";
    case StatusCode::kServiceUnavailable:
      return "Service Unavailable";
  }
  return "Unknown";
}

std::string HttpResponse::SerializeHead() const {
  std::string out = "HTTP/1.1 " + std::to_string(static_cast<int>(status)) +
                    " " + StatusReason(status) + "\r\n";
  bool has_length = false;
  for (const auto& [k, v] : headers) {
    out += k + ": " + v + "\r\n";
    if (k == "Content-Length") has_length = true;
  }
  if (!has_length) {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  return out;
}

std::string HttpResponse::Serialize() const {
  std::string out = SerializeHead();
  out += body;
  return out;
}

HttpResponse HttpResponse::Make(StatusCode status, std::string body) {
  HttpResponse r;
  r.status = status;
  if (body.empty()) {
    body = std::to_string(static_cast<int>(status)) + " " +
           StatusReason(status) + "\n";
  }
  r.body = std::move(body);
  r.headers["Content-Type"] = "text/plain";
  return r;
}

HttpResponse HttpResponse::AuthRequired(const std::string& realm) {
  HttpResponse r = Make(StatusCode::kUnauthorized);
  r.headers["WWW-Authenticate"] = "Basic realm=\"" + realm + "\"";
  return r;
}

HttpResponse HttpResponse::Redirect(const std::string& location) {
  HttpResponse r = Make(StatusCode::kFound);
  r.headers["Location"] = location;
  return r;
}

}  // namespace gaa::http
