#include "http/request.h"

#include "util/strings.h"

namespace gaa::http {

namespace {

bool IsTokenChar(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '_';
}

bool IsKnownMethod(std::string_view method) {
  return method == "GET" || method == "POST" || method == "HEAD" ||
         method == "PUT" || method == "DELETE" || method == "OPTIONS" ||
         method == "TRACE";
}

ParseResult Fail(RequestDefect defect, std::string detail) {
  ParseResult out;
  out.defect = defect;
  out.detail = std::move(detail);
  return out;
}

}  // namespace

const char* RequestDefectName(RequestDefect defect) {
  switch (defect) {
    case RequestDefect::kNone:
      return "none";
    case RequestDefect::kBadRequestLine:
      return "bad_request_line";
    case RequestDefect::kBadMethod:
      return "bad_method";
    case RequestDefect::kBadVersion:
      return "bad_version";
    case RequestDefect::kBadEscape:
      return "bad_escape";
    case RequestDefect::kControlBytes:
      return "control_bytes";
    case RequestDefect::kOversizedHeader:
      return "oversized_header";
    case RequestDefect::kTooManyHeaders:
      return "too_many_headers";
    case RequestDefect::kBadHeader:
      return "bad_header";
    case RequestDefect::kOversizedTarget:
      return "oversized_target";
    case RequestDefect::kTruncatedBody:
      return "truncated_body";
    case RequestDefect::kPathTraversal:
      return "path_traversal";
  }
  return "?";
}

std::optional<std::pair<std::string, std::string>>
RequestRec::BasicCredentials() const {
  const std::string* auth = Header("authorization");
  if (auth == nullptr) return std::nullopt;
  std::string_view value = util::Trim(*auth);
  if (!util::StartsWith(value, "Basic ") &&
      !util::StartsWith(value, "basic ")) {
    return std::nullopt;
  }
  auto decoded = util::Base64Decode(util::Trim(value.substr(6)));
  if (!decoded.has_value()) return std::nullopt;
  auto colon = decoded->find(':');
  if (colon == std::string::npos) return std::nullopt;
  return std::make_pair(decoded->substr(0, colon), decoded->substr(colon + 1));
}

const std::string* RequestRec::Header(const std::string& lower_name) const {
  auto it = headers.find(lower_name);
  return it == headers.end() ? nullptr : &it->second;
}

ParseResult ParseRequest(std::string_view text, const ParseLimits& limits) {
  // Split head and body at the first blank line.
  std::size_t head_end = text.find("\r\n\r\n");
  std::size_t body_start;
  if (head_end != std::string_view::npos) {
    body_start = head_end + 4;
  } else {
    head_end = text.find("\n\n");
    if (head_end != std::string_view::npos) {
      body_start = head_end + 2;
    } else {
      head_end = text.size();
      body_start = text.size();
    }
  }
  std::string_view head = text.substr(0, head_end);
  for (char c : head) {
    auto u = static_cast<unsigned char>(c);
    if (u != '\r' && u != '\n' && u != '\t' && (u < 0x20 || u > 0x7e)) {
      return Fail(RequestDefect::kControlBytes,
                  "control byte in request head");
    }
  }

  // Request line.
  std::size_t line_end = head.find('\n');
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.remove_suffix(1);
  }
  auto parts = util::SplitWhitespace(request_line);
  if (parts.size() != 3) {
    return Fail(RequestDefect::kBadRequestLine,
                "request line has " + std::to_string(parts.size()) +
                    " fields");
  }
  RequestRec rec;
  rec.method = parts[0];
  rec.raw_target = parts[1];
  rec.http_version = parts[2];

  for (char c : rec.method) {
    if (!IsTokenChar(c)) {
      return Fail(RequestDefect::kBadMethod, "method contains '" +
                                                 std::string(1, c) + "'");
    }
  }
  if (!IsKnownMethod(rec.method)) {
    return Fail(RequestDefect::kBadMethod, "unknown method " + rec.method);
  }
  if (rec.http_version != "HTTP/1.0" && rec.http_version != "HTTP/1.1") {
    return Fail(RequestDefect::kBadVersion, rec.http_version);
  }
  if (rec.raw_target.size() > limits.max_target_bytes) {
    return Fail(RequestDefect::kOversizedTarget,
                std::to_string(rec.raw_target.size()) + " bytes");
  }

  // Split path / query, decode the path.
  std::string_view target = rec.raw_target;
  auto qmark = target.find('?');
  std::string_view path_part =
      qmark == std::string_view::npos ? target : target.substr(0, qmark);
  rec.query = qmark == std::string_view::npos
                  ? std::string()
                  : std::string(target.substr(qmark + 1));
  auto decoded = util::UrlDecode(path_part);
  if (!decoded.has_value()) {
    return Fail(RequestDefect::kBadEscape, std::string(path_part));
  }
  rec.path = *decoded;

  // A ".." segment that survives decoding is never a navigable path in the
  // virtual tree — it is a traversal probe (often percent-encoded to slip
  // past naive filters), so classify rather than 404.
  for (std::size_t seg = 0; seg < rec.path.size();) {
    std::size_t end = rec.path.find('/', seg);
    if (end == std::string::npos) end = rec.path.size();
    if (end - seg == 2 && rec.path[seg] == '.' && rec.path[seg + 1] == '.') {
      return Fail(RequestDefect::kPathTraversal, rec.path);
    }
    seg = end + 1;
  }

  // Headers.
  std::size_t header_count = 0;
  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 1;
  while (pos < head.size()) {
    std::size_t eol = head.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? head.substr(pos)
                                : head.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? head.size() : eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    if (line.size() > limits.max_header_bytes) {
      return Fail(RequestDefect::kOversizedHeader,
                  std::to_string(line.size()) + " bytes");
    }
    if (++header_count > limits.max_headers) {
      return Fail(RequestDefect::kTooManyHeaders,
                  "more than " + std::to_string(limits.max_headers));
    }
    auto colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Fail(RequestDefect::kBadHeader, std::string(line));
    }
    std::string name = util::ToLower(util::Trim(line.substr(0, colon)));
    std::string value(util::Trim(line.substr(colon + 1)));
    auto [it, inserted] = rec.headers.emplace(name, value);
    if (!inserted) {
      if (name == "content-length" || name == "host") {
        // Folding framing/routing headers ("10, 10" or two Hosts) silently
        // destroys the very field caches and routers key on — the raw
        // material of request smuggling and cache poisoning.  Identical
        // repeats collapse; conflicting ones are rejected outright.  Host
        // repeats are compared canonically ("Host: a.com" then
        // "Host: A.COM:80" names the same authority, not a conflict) —
        // exactly the form the tenant router matches on, so the reject
        // path and the routing path can never disagree.
        const bool conflicting = name == "host"
                                     ? NormalizeHost(it->second) !=
                                           NormalizeHost(value)
                                     : it->second != value;
        if (conflicting) {
          return Fail(RequestDefect::kBadHeader,
                      "conflicting duplicate " + name);
        }
      } else {
        it->second += ", ";
        it->second += value;  // Apache-style duplicate folding
      }
    }
  }

  rec.body = std::string(text.substr(body_start));
  ParseResult out;
  out.request = std::move(rec);
  return out;
}

namespace {

/// The authority minus any port: everything through the closing ']' for a
/// bracketed IPv6 literal, otherwise everything before the first ':'.
std::string_view HostWithoutPort(std::string_view host) {
  if (!host.empty() && host.front() == '[') {
    std::size_t close = host.find(']');
    if (close != std::string_view::npos) return host.substr(0, close + 1);
    return host;  // unterminated bracket: leave it alone
  }
  std::size_t colon = host.find(':');
  return colon == std::string_view::npos ? host : host.substr(0, colon);
}

}  // namespace

std::string_view NormalizeHostInto(std::string_view host, char* buf,
                                   std::size_t cap) {
  std::string_view bare = HostWithoutPort(host);
  // One trailing dot is the DNS root label ("example.com." == "example.com").
  if (!bare.empty() && bare.back() == '.') bare.remove_suffix(1);
  std::size_t n = bare.size() < cap ? bare.size() : cap;
  for (std::size_t i = 0; i < n; ++i) {
    char c = bare[i];
    buf[i] = c >= 'A' && c <= 'Z' ? static_cast<char>(c + 32) : c;
  }
  return std::string_view(buf, n);
}

std::string NormalizeHost(std::string_view host) {
  std::string_view bare = HostWithoutPort(host);
  if (!bare.empty() && bare.back() == '.') bare.remove_suffix(1);
  std::string out(bare);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c + 32);
  }
  return out;
}

std::string BuildGetRequest(const std::string& target,
                            const std::map<std::string, std::string>& headers) {
  std::string out = "GET " + target + " HTTP/1.1\r\n";
  if (headers.find("Host") == headers.end() &&
      headers.find("host") == headers.end()) {
    out += "Host: localhost\r\n";
  }
  for (const auto& [k, v] : headers) {
    out += k + ": " + v + "\r\n";
  }
  out += "\r\n";
  return out;
}

}  // namespace gaa::http
