// Baseline Apache access control: the .htaccess subset the paper describes
// (§4) — Order/Deny/Allow host rules, Basic authentication against an
// AuthUserFile, and the Satisfy All/Any combination.  This is the system
// the GAA integration replaces; bench/bench_baseline compares the two.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "http/htpasswd.h"
#include "http/request.h"
#include "util/ip.h"
#include "util/status.h"

namespace gaa::http {

enum class AccessOrder {
  kDenyAllow,  ///< "Order Deny,Allow": deny rules first, default allow
  kAllowDeny,  ///< "Order Allow,Deny": allow rules first, default deny
};

enum class SatisfyMode {
  kAll,  ///< host restriction AND user authentication
  kAny,  ///< host restriction OR user authentication
};

/// Parsed .htaccess contents.
struct HtaccessConfig {
  AccessOrder order = AccessOrder::kDenyAllow;
  bool deny_all = false;
  bool allow_all = false;
  std::vector<util::CidrBlock> deny_from;
  std::vector<util::CidrBlock> allow_from;

  bool auth_basic = false;           ///< "AuthType Basic" seen
  std::string auth_user_file;        ///< AuthUserFile name (registry key)
  std::string auth_name = "restricted";  ///< realm
  bool require_valid_user = false;
  std::vector<std::string> require_users;  ///< "Require user a b"

  SatisfyMode satisfy = SatisfyMode::kAll;

  /// Whether any host rule / any auth rule is present.
  bool HasHostRules() const;
  bool HasAuthRules() const;
};

util::Result<HtaccessConfig> ParseHtaccess(std::string_view text);

enum class HtaccessDecision {
  kAllow,
  kDeny,          ///< 403
  kAuthRequired,  ///< 401 challenge
};

/// Evaluate the baseline policy for a request.  On success with Basic
/// credentials present, sets rec.auth_user / rec.authenticated.
HtaccessDecision EvaluateHtaccess(const HtaccessConfig& config,
                                  RequestRec& rec,
                                  const HtpasswdRegistry& passwords);

}  // namespace gaa::http
