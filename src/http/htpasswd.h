// htpasswd-style credential store (paper §4: "username/password pairs are
// stored in a separate file specified by the AuthUserFile directive").
//
// Passwords are stored salted-and-hashed (FNV-based toy KDF — adequate for
// a simulator; the interface is what matters).  Files use the classic
// "user:hash" line format and can be loaded/saved.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gaa::http {

class HtpasswdStore {
 public:
  HtpasswdStore() = default;
  // Movable (the mutex is not moved) so stores can travel through Result<>.
  HtpasswdStore(HtpasswdStore&& other) noexcept;
  HtpasswdStore& operator=(HtpasswdStore&& other) noexcept;

  /// Add or replace a user with a plaintext password (hashed on store).
  void SetUser(const std::string& user, const std::string& password);
  bool RemoveUser(const std::string& user);

  /// Verify credentials.
  bool Check(const std::string& user, const std::string& password) const;
  bool HasUser(const std::string& user) const;
  std::size_t size() const;

  /// Serialize to the "user:salt$hash" line format / parse it back.
  std::string Serialize() const;
  static util::Result<HtpasswdStore> Parse(std::string_view text);

 private:
  static std::string HashPassword(const std::string& password,
                                  std::uint64_t salt);

  mutable std::mutex mu_;
  // user -> "salt$hash"
  std::map<std::string, std::string> entries_;
};

/// Registry of named htpasswd stores, standing in for the filesystem paths
/// an AuthUserFile directive names.
class HtpasswdRegistry {
 public:
  HtpasswdStore& GetOrCreate(const std::string& name);
  const HtpasswdStore* Find(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, HtpasswdStore> stores_;
};

}  // namespace gaa::http
