#include "http/tenant_router.h"

#include <cstring>

#include "http/request.h"

namespace gaa::http {

void TenantRouter::AddHost(std::string_view host, std::string_view tenant,
                           std::string_view doc_root) {
  Route route;
  route.tenant.assign(tenant);
  route.doc_root.assign(doc_root);
  // Normalize on insertion so "WWW.Example.COM:8080" and "www.example.com"
  // are the same route — the lookup side normalizes the header once.
  routes_.insert_or_assign(NormalizeHost(host), std::move(route));
}

TenantRouter::Resolution TenantRouter::Resolve(
    std::string_view normalized_host) const {
  Resolution out;
  if (routes_.empty()) return out;  // single-tenant: default namespace
  auto it = routes_.find(normalized_host);
  if (it == routes_.end()) {
    out.reject = unknown_host_policy_ == UnknownHostPolicy::kReject;
    return out;
  }
  out.tenant = it->second.tenant;
  out.doc_root = it->second.doc_root;
  return out;
}

std::string_view TenantRouter::RemapTarget(std::string_view doc_root,
                                           std::string_view target, char* buf,
                                           std::size_t cap) {
  if (doc_root.empty()) return target;
  if (doc_root.size() + target.size() > cap) return {};
  std::memcpy(buf, doc_root.data(), doc_root.size());
  std::memcpy(buf + doc_root.size(), target.data(), target.size());
  return std::string_view(buf, doc_root.size() + target.size());
}

}  // namespace gaa::http
