// The static content plane (DESIGN.md §11): pre-serialized response
// templates layered over the DocTree, plus the HTTP date machinery that
// feeds every response's `Date:` header.
//
// The decision path became lock-free and memoized (DESIGN.md §9-10); this
// layer makes the *bytes-out* path equally cheap.  For every static
// document the plane precomputes, once, at server construction:
//
//   * strong validators — an FNV-1a `ETag` over the content and the
//     `Last-Modified` IMF-fixdate rendered from the document's mtime;
//   * the complete 200 and 304 header blocks, byte-identical to what the
//     dynamic path's HttpResponse::SerializeHead() would produce, split
//     around the `Date:` line (the only per-request-varying bytes) into a
//     `pre`/`post` pair.  Variants for `Connection: keep-alive` / `close`.
//
// A response is then three stable iovecs (head_pre, head_post, body — the
// body a view into the DocTree, never copied) plus one 37-byte Date line
// bumped off the connection's arena.  The Date line itself comes from a
// process-wide once-per-second cache (HttpDateCache) shared by all shards:
// readers are lock-free seqlock copies, and at most one thread per second
// pays the render.
//
// Templates are immutable after construction, so lookups are safe from any
// thread (the DocTree is already "populate before serving").
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "http/doc_tree.h"
#include "util/clock.h"

namespace gaa::http {

/// Render `epoch_seconds` as an RFC 7231 IMF-fixdate
/// ("Sun, 06 Nov 1994 08:49:37 GMT") into `out`, which must hold at least
/// kHttpDateBytes.  Returns the length written (always kHttpDateBytes).
inline constexpr std::size_t kHttpDateBytes = 29;
std::size_t FormatHttpDate(std::int64_t epoch_seconds, char* out);
std::string FormatHttpDate(std::int64_t epoch_seconds);

/// Parse an IMF-fixdate back to epoch seconds.  Returns nullopt for the
/// obsolete RFC 850 / asctime formats and anything malformed — callers
/// treat an unparsable If-Modified-Since as "absent" (RFC 7232 §3.3).
/// Allocation-free.
std::optional<std::int64_t> ParseHttpDate(std::string_view text);

/// Once-per-second cached "Date: <IMF-fixdate>\r\n" line, shared by every
/// shard.  Readers take one atomic shared_ptr load and a memcpy (no lock
/// in the steady state, no allocation — the same RCU idiom as the policy
/// store's snapshots); the first reader of a new second re-renders under a
/// mutex, so at most one render per second process-wide.
class HttpDateCache {
 public:
  /// "Date: " + fixdate + CRLF.
  static constexpr std::size_t kLineBytes = 6 + kHttpDateBytes + 2;

  /// Copy the Date line for `now_us` into `out` (>= kLineBytes bytes).
  /// Returns kLineBytes.  Thread-safe; allocation-free on the cached path.
  std::size_t Line(util::TimePoint now_us, char* out);

 private:
  struct Rendered {
    std::int64_t sec = -1;
    char text[kLineBytes] = {};
  };
  std::atomic<std::shared_ptr<const Rendered>> current_{};
  std::mutex write_mu_;
};

/// Strong entity tag for a document: FNV-1a 64 over the content plus the
/// length, rendered as a quoted string ("\"9e107d9d372bb682-2c\"").
std::string ComputeEtag(std::string_view content);

class StaticContentPlane {
 public:
  struct Entry {
    std::string_view body;      ///< view into the DocTree's document
    std::string content_type;
    std::string etag;           ///< quoted strong validator
    std::string last_modified;  ///< IMF-fixdate of mtime
    std::int64_t mtime_s = 0;   ///< epoch seconds (If-Modified-Since compare)

    /// Pre-serialized header blocks: full head == pre + Date-line + post.
    /// Indexed by [keep_alive]; the transport picks per request.
    struct Head {
      std::string pre;
      std::string post;
    };
    Head head200[2];  ///< [0] = Connection: close, [1] = keep-alive
    Head head304[2];
  };

  /// Build templates for every document in `tree` (which must outlive the
  /// plane and stay unmodified, as DocTree already requires for serving).
  /// `server_name` is baked into the Server header.
  StaticContentPlane(const DocTree* tree, const std::string& server_name);

  const Entry* Find(std::string_view path) const {
    auto it = entries_.find(path);
    return it == entries_.end() ? nullptr : &it->second;
  }

  std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, Entry, std::less<>> entries_;
};

/// RFC 7232 conditional-GET evaluation against an entry's validators:
/// If-None-Match (comma-separated entity tags, `*`, weak-prefix tolerated)
/// takes precedence; otherwise If-Modified-Since applies when parseable.
/// Empty views mean "header absent".  Allocation-free.
bool NotModified(std::string_view if_none_match,
                 std::string_view if_modified_since,
                 const StaticContentPlane::Entry& entry);

}  // namespace gaa::http
