#include "http/server.h"

namespace gaa::http {

AccessController::Verdict HtaccessController::Check(RequestRec& rec) {
  // Apache consults the .htaccess of every directory on the path; the most
  // specific (deepest) decision wins, but any deny along the chain denies.
  HtaccessDecision decision = HtaccessDecision::kAllow;
  std::string realm = "restricted";
  for (const auto& text : tree_->HtaccessChain(rec.path)) {
    auto config = ParseHtaccess(text);
    if (!config.ok()) {
      // A broken .htaccess is a server-side error, and Apache fails closed.
      return Verdict::Respond(HttpResponse::Make(StatusCode::kInternalError));
    }
    HtaccessDecision d = EvaluateHtaccess(config.value(), rec, *passwords_);
    if (d == HtaccessDecision::kDeny) return Verdict::Respond(
        HttpResponse::Make(StatusCode::kForbidden));
    if (d == HtaccessDecision::kAuthRequired) {
      decision = HtaccessDecision::kAuthRequired;
      realm = config.value().auth_name;
    }
  }
  if (decision == HtaccessDecision::kAuthRequired) {
    return Verdict::Respond(HttpResponse::AuthRequired(realm));
  }
  return Verdict::Allow();
}

WebServer::WebServer(const DocTree* tree, AccessController* controller,
                     util::Clock* clock, Options options)
    : tree_(tree),
      controller_(controller),
      clock_(clock),
      options_(std::move(options)) {}

HttpResponse WebServer::HandleText(std::string_view raw,
                                   util::Ipv4Address client_ip,
                                   std::uint16_t client_port) {
  ParseResult parsed = ParseRequest(raw, options_.parse_limits);
  if (!parsed.ok()) {
    if (malformed_hook_) {
      malformed_hook_(parsed.defect, parsed.detail, client_ip);
    }
    requests_served_.fetch_add(1);
    StatusCode code = StatusCode::kBadRequest;
    if (parsed.defect == RequestDefect::kOversizedTarget) {
      code = StatusCode::kUriTooLong;
    } else if (parsed.defect == RequestDefect::kTooManyHeaders ||
               parsed.defect == RequestDefect::kOversizedHeader) {
      code = StatusCode::kPayloadTooLarge;
    }
    HttpResponse response = HttpResponse::Make(code);
    RequestRec pseudo;
    pseudo.client_ip = client_ip;
    pseudo.method = "?";
    pseudo.raw_target = std::string(parsed.detail);
    LogAccess(pseudo, code, response.body.size());
    return response;
  }
  RequestRec rec = std::move(*parsed.request);
  rec.client_ip = client_ip;
  rec.client_port = client_port;
  return Handle(std::move(rec));
}

HttpResponse WebServer::Handle(RequestRec rec) {
  requests_served_.fetch_add(1);

  // --- access-control phase -------------------------------------------------
  AccessController::Verdict verdict = controller_->Check(rec);
  if (verdict.respond) {
    LogAccess(rec, verdict.response.status, verdict.response.body.size());
    return verdict.response;
  }

  // --- handler + execution-control phase -------------------------------------
  OperationObservation obs;
  HttpResponse response;
  bool success = true;

  if (const Document* doc = tree_->FindDocument(rec.path)) {
    response.status = StatusCode::kOk;
    response.body = doc->content;
    response.headers["Content-Type"] = doc->content_type;
    obs.bytes_written = doc->content.size();
    obs.cpu_seconds = 1e-5;
    obs.wall_us = 10;
    if (!controller_->OnExecution(rec, obs)) {
      response = HttpResponse::Make(StatusCode::kForbidden,
                                    "operation aborted by policy\n");
      success = false;
    }
  } else if (const CgiScript* cgi = tree_->FindCgi(rec.path)) {
    CgiResult result = (*cgi)(rec.query);
    obs.cpu_seconds = result.cpu_seconds;
    obs.wall_us = static_cast<std::uint64_t>(result.cpu_seconds * 1e6);
    obs.memory_bytes = result.memory_bytes;
    obs.bytes_written = result.output.size();
    obs.files_touched = result.files_touched;
    if (!controller_->OnExecution(rec, obs)) {
      // Execution-control phase pulled the plug mid-operation.
      response = HttpResponse::Make(StatusCode::kForbidden,
                                    "operation aborted by policy\n");
      success = false;
    } else if (!result.ok) {
      response = HttpResponse::Make(StatusCode::kInternalError);
      success = false;
    } else {
      response.status = StatusCode::kOk;
      response.body = result.output;
      response.headers["Content-Type"] = "text/plain";
    }
  } else if (const StreamingCgiScript* streaming =
                 tree_->FindStreamingCgi(rec.path)) {
    // Long-running operation: the execution-control phase runs BETWEEN
    // steps, so a violated mid-condition aborts the operation while it is
    // still producing output (paper phase 3).
    std::string body;
    bool aborted = false;
    for (std::size_t step = 0;; ++step) {
      std::optional<CgiStep> next = (*streaming)(step, rec.query);
      if (!next.has_value()) break;
      body += next->chunk;
      obs.cpu_seconds += next->cpu_seconds;
      obs.memory_bytes += next->memory_bytes;
      obs.bytes_written = body.size();
      obs.wall_us = static_cast<std::uint64_t>(obs.cpu_seconds * 1e6);
      obs.files_touched.insert(obs.files_touched.end(),
                               next->files_touched.begin(),
                               next->files_touched.end());
      if (!controller_->OnExecution(rec, obs)) {
        aborted = true;
        break;
      }
    }
    if (aborted) {
      response = HttpResponse::Make(StatusCode::kForbidden,
                                    "operation aborted by policy\n");
      success = false;
    } else {
      response.status = StatusCode::kOk;
      response.body = std::move(body);
      response.headers["Content-Type"] = "text/plain";
    }
  } else {
    response = HttpResponse::Make(StatusCode::kNotFound);
    success = false;
  }

  // --- post-execution phase ---------------------------------------------------
  controller_->OnComplete(rec, obs, success);

  if (rec.method == "HEAD" && response.status == StatusCode::kOk) {
    response.headers["Content-Length"] = std::to_string(response.body.size());
    response.body.clear();
  }
  response.headers["Server"] = options_.server_name;
  LogAccess(rec, response.status, response.body.size());
  return response;
}

void WebServer::LogAccess(const RequestRec& rec, StatusCode status,
                          std::uint64_t bytes) {
  AccessLogEntry entry;
  entry.time_us = clock_ != nullptr ? clock_->Now() : 0;
  entry.client_ip = rec.client_ip.ToString();
  entry.user = rec.auth_user.empty() ? "-" : rec.auth_user;
  entry.request_line = rec.method + " " + rec.raw_target;
  entry.status = static_cast<int>(status);
  entry.bytes = bytes;
  std::lock_guard<std::mutex> lock(log_mu_);
  access_log_.push_back(std::move(entry));
  while (access_log_.size() > options_.access_log_limit) {
    access_log_.pop_front();
  }
  ++status_counts_[static_cast<int>(status)];
}

std::map<int, std::uint64_t> WebServer::StatusCounts() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return status_counts_;
}

std::vector<AccessLogEntry> WebServer::AccessLog() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return std::vector<AccessLogEntry>(access_log_.begin(), access_log_.end());
}

void WebServer::ClearLogs() {
  std::lock_guard<std::mutex> lock(log_mu_);
  access_log_.clear();
  status_counts_.clear();
}

}  // namespace gaa::http
