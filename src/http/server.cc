#include "http/server.h"

#include <cstring>

#include "telemetry/exposition.h"
#include "util/strings.h"

namespace gaa::http {

AccessController::Verdict HtaccessController::Check(RequestRec& rec) {
  // Apache consults the .htaccess of every directory on the path; the most
  // specific (deepest) decision wins, but any deny along the chain denies.
  HtaccessDecision decision = HtaccessDecision::kAllow;
  std::string realm = "restricted";
  for (const auto& text : tree_->HtaccessChain(rec.path)) {
    auto config = ParseHtaccess(text);
    if (!config.ok()) {
      // A broken .htaccess is a server-side error, and Apache fails closed.
      return Verdict::Respond(HttpResponse::Make(StatusCode::kInternalError));
    }
    HtaccessDecision d = EvaluateHtaccess(config.value(), rec, *passwords_);
    if (d == HtaccessDecision::kDeny) return Verdict::Respond(
        HttpResponse::Make(StatusCode::kForbidden));
    if (d == HtaccessDecision::kAuthRequired) {
      decision = HtaccessDecision::kAuthRequired;
      realm = config.value().auth_name;
    }
  }
  if (decision == HtaccessDecision::kAuthRequired) {
    return Verdict::Respond(HttpResponse::AuthRequired(realm));
  }
  return Verdict::Allow();
}

WebServer::WebServer(const DocTree* tree, AccessController* controller,
                     util::Clock* clock, Options options)
    : tree_(tree),
      controller_(controller),
      clock_(clock),
      options_(std::move(options)),
      owned_telemetry_(std::make_unique<telemetry::Telemetry>()),
      telemetry_(nullptr) {
  if (options_.enable_static_plane && tree_ != nullptr) {
    plane_ =
        std::make_unique<StaticContentPlane>(tree_, options_.server_name);
  }
  set_telemetry(owned_telemetry_.get());
}

void WebServer::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  // Cached handles point into the previous registry; re-resolve lazily.
  for (auto& slot : status_counters_) {
    slot.store(nullptr, std::memory_order_relaxed);
  }
  if (telemetry_ != nullptr) {
    requests_total_ = telemetry_->registry().GetCounter("http_requests_total");
    latency_hist_ =
        telemetry_->registry().GetHistogram("http_request_latency_us");
    not_modified_total_ =
        telemetry_->registry().GetCounter("http_not_modified_total");
  } else {
    requests_total_ = nullptr;
    latency_hist_ = nullptr;
    not_modified_total_ = nullptr;
  }
}

HttpResponse WebServer::HandleText(std::string_view raw,
                                   util::Ipv4Address client_ip,
                                   std::uint16_t client_port) {
  std::unique_ptr<telemetry::RequestTrace> trace;
  if (telemetry_ != nullptr && telemetry_->tracing_enabled()) {
    trace = telemetry_->tracer().Begin();
  }
  return HandleText(raw, client_ip, client_port, std::move(trace));
}

HttpResponse WebServer::HandleText(
    std::string_view raw, util::Ipv4Address client_ip,
    std::uint16_t client_port,
    std::unique_ptr<telemetry::RequestTrace> trace) {
  util::Stopwatch sw;
  telemetry::RequestTrace* t = trace.get();
  if (t != nullptr && t->client_ip.empty()) {
    t->client_ip = client_ip.ToString();
  }

  telemetry::ScopedSpan parse_span(t, "parse");
  ParseResult parsed = ParseRequest(raw, options_.parse_limits);
  parse_span.End();

  if (!parsed.ok()) {
    if (malformed_hook_) {
      malformed_hook_(parsed.defect, parsed.detail, client_ip);
    }
    StatusCode code = StatusCode::kBadRequest;
    if (parsed.defect == RequestDefect::kOversizedTarget) {
      code = StatusCode::kUriTooLong;
    } else if (parsed.defect == RequestDefect::kTooManyHeaders ||
               parsed.defect == RequestDefect::kOversizedHeader) {
      code = StatusCode::kPayloadTooLarge;
    }
    HttpResponse response = HttpResponse::Make(code);
    RequestRec pseudo;
    pseudo.client_ip = client_ip;
    pseudo.method = "?";
    pseudo.raw_target = std::string(parsed.detail);
    pseudo.trace = t;
    if (t != nullptr) {
      t->method = "?";
      t->target = parsed.detail;
    }
    response = FinalizeResponse(pseudo, std::move(response));
    FinishRequest(sw, static_cast<int>(code), std::move(trace));
    return response;
  }

  RequestRec rec = std::move(*parsed.request);
  rec.client_ip = client_ip;
  rec.client_port = client_port;
  rec.trace = t;
  if (t != nullptr) {
    t->method = rec.method;
    t->target = rec.raw_target;
  }
  HttpResponse response = DoHandle(rec);
  FinishRequest(sw, static_cast<int>(response.status), std::move(trace));
  return response;
}

HttpResponse WebServer::Handle(RequestRec rec) {
  util::Stopwatch sw;
  std::unique_ptr<telemetry::RequestTrace> trace;
  if (rec.trace == nullptr && telemetry_ != nullptr &&
      telemetry_->tracing_enabled()) {
    trace = telemetry_->tracer().Begin();
    rec.trace = trace.get();
  }
  if (rec.trace != nullptr) {
    if (rec.trace->client_ip.empty()) {
      rec.trace->client_ip = rec.client_ip.ToString();
    }
    if (rec.trace->method.empty()) rec.trace->method = rec.method;
    if (rec.trace->target.empty()) rec.trace->target = rec.raw_target;
  }
  HttpResponse response = DoHandle(rec);
  FinishRequest(sw, static_cast<int>(response.status), std::move(trace));
  return response;
}

namespace {

/// Plain static-document targets only: any character the URL decoder or
/// query splitter would transform makes the probe path diverge from the
/// parsed path, and declining admission is always safe.
/// Host values are capped at 255 octets by DNS; a longer one can only be
/// a non-matching host, which normalized truncation preserves.
constexpr std::size_t kHostBufBytes = 256;
/// Stack room for "<doc_root><target>" joins (doc roots are short path
/// prefixes; targets are bounded by the parse limit, 8 KiB by default).
constexpr std::size_t kRemapBufBytes = 9216;

bool PlainStaticTarget(std::string_view target, std::size_t max_bytes) {
  if (target.empty() || target[0] != '/') return false;
  if (target.size() > max_bytes) return false;
  for (char c : target) {
    if (c == '%' || c == '?' || c == '#' || c <= ' ' ||
        static_cast<unsigned char>(c) >= 0x7f) {
      return false;
    }
  }
  return target.find("..") == std::string_view::npos;
}

}  // namespace

bool WebServer::InlineFastPathEligible(std::string_view method,
                                       std::string_view target,
                                       std::string_view host,
                                       std::size_t max_response_bytes,
                                       util::Ipv4Address client_ip) const {
  if (tree_ == nullptr || controller_ == nullptr) return false;
  if (method != "GET" && method != "HEAD") return false;
  if (!PlainStaticTarget(target, options_.parse_limits.max_target_bytes)) {
    return false;
  }
  if (!options_.status_path.empty() &&
      util::StartsWith(target, options_.status_path)) {
    return false;  // admin endpoint renders dynamic content
  }
  // Resolve the tenant exactly as the pipeline will — admission and answer
  // must agree on namespace and document subtree.  A rejected host takes
  // the worker path, which owns the 421.
  std::string_view tenant;
  std::string_view doc_root;
  if (tenant_router_ != nullptr && !tenant_router_->empty()) {
    char hbuf[kHostBufBytes];
    TenantRouter::Resolution res =
        tenant_router_->Resolve(NormalizeHostInto(host, hbuf, sizeof hbuf));
    if (res.reject) return false;
    tenant = res.tenant;
    doc_root = res.doc_root;
  }
  char jbuf[kRemapBufBytes];
  std::string_view lookup =
      TenantRouter::RemapTarget(doc_root, target, jbuf, sizeof jbuf);
  if (lookup.empty()) return false;
  const Document* doc = tree_->FindDocument(lookup);
  if (doc == nullptr || doc->content.size() > max_response_bytes) {
    return false;  // missing or over the inline byte budget
  }
  // The memo is probed with the *logical* path — the object policies (and
  // the worker path's Check) govern — in the resolved tenant's namespace.
  return controller_->DecisionIsMemoized(target, method, client_ip, tenant);
}

bool WebServer::TryServeStaticFast(std::string_view method,
                                   std::string_view target,
                                   std::string_view host,
                                   std::string_view if_none_match,
                                   std::string_view if_modified_since,
                                   util::Ipv4Address client_ip,
                                   bool keep_alive,
                                   std::size_t max_response_bytes,
                                   StaticFastResponse* out) {
  if (plane_ == nullptr || controller_ == nullptr) return false;
  if (method != "GET" && method != "HEAD") return false;
  if (!controller_->AllowsUnchecked()) return false;
  // A traced request must travel the pipeline so its spans exist; the
  // inline-pipeline tier still keeps it off the worker queue.
  if (telemetry_ != nullptr && telemetry_->tracing_enabled()) return false;
  if (!PlainStaticTarget(target, options_.parse_limits.max_target_bytes)) {
    return false;
  }
  if (!options_.status_path.empty() &&
      util::StartsWith(target, options_.status_path)) {
    return false;
  }
  // Per-tenant serving, still allocation-free: host normalization and the
  // doc-root join both land in stack buffers.  Rejected hosts fall back to
  // the pipeline for the 421.
  std::string_view doc_root;
  if (tenant_router_ != nullptr && !tenant_router_->empty()) {
    char hbuf[kHostBufBytes];
    TenantRouter::Resolution res =
        tenant_router_->Resolve(NormalizeHostInto(host, hbuf, sizeof hbuf));
    if (res.reject) return false;
    doc_root = res.doc_root;
  }
  char jbuf[kRemapBufBytes];
  std::string_view lookup =
      TenantRouter::RemapTarget(doc_root, target, jbuf, sizeof jbuf);
  if (lookup.empty()) return false;
  const StaticContentPlane::Entry* entry = plane_->Find(lookup);
  if (entry == nullptr || entry->body.size() > max_response_bytes) {
    return false;
  }

  util::Stopwatch sw;
  const bool not_modified =
      NotModified(if_none_match, if_modified_since, *entry);
  const StaticContentPlane::Entry::Head& head =
      not_modified ? entry->head304[keep_alive ? 1 : 0]
                   : entry->head200[keep_alive ? 1 : 0];
  out->head_pre = head.pre;
  out->head_post = head.post;
  out->body = (not_modified || method == "HEAD") ? std::string_view()
                                                 : entry->body;
  out->status = not_modified
                    ? static_cast<int>(StatusCode::kNotModified)
                    : static_cast<int>(StatusCode::kOk);
  date_cache_.Line(clock_ != nullptr ? clock_->Now() : 0, out->date_line);

  // Accounting identical to the pipeline's: served count, request/304
  // counters, latency histogram, represented-length access log entry.
  requests_served_.fetch_add(1);
  if (requests_total_ != nullptr) requests_total_->Inc();
  if (not_modified && not_modified_total_ != nullptr) {
    not_modified_total_->Inc();
  }
  if (telemetry::Counter* counter = StatusCounterFor(out->status)) {
    counter->Inc();
  }
  const std::uint64_t represented = not_modified ? 0 : entry->body.size();
  AppendAccessLog(method, target, /*user=*/{}, client_ip, out->status,
                  represented, /*trace_id=*/0);
  if (latency_hist_ != nullptr) {
    latency_hist_->Record(static_cast<std::uint64_t>(sw.ElapsedUs()));
  }
  if (request_observer_) {
    request_observer_(method, target, client_ip, out->status);
  }
  return true;
}

HttpResponse WebServer::DoHandle(RequestRec& rec) {
  // --- tenant resolution ----------------------------------------------------
  // Before any dispatch: every later phase — access check, handler lookup,
  // logging — sees the request already placed in its namespace.
  bool reject_host = false;
  std::string_view doc_root = ResolveTenant(rec, &reject_host);
  if (reject_host) {
    return FinalizeResponse(
        rec, HttpResponse::Make(StatusCode::kMisdirectedRequest,
                                "no tenant configured for this host\n"));
  }
  // Per-tenant doc root: documents and CGI resolve under the tenant's
  // subtree, while policies, memos and logs keep the logical path.
  std::string remapped;
  std::string_view lookup = rec.path;
  if (!doc_root.empty()) {
    remapped.reserve(doc_root.size() + rec.path.size());
    remapped.append(doc_root);
    remapped.append(rec.path);
    lookup = remapped;
  }

  // --- access-control phase -------------------------------------------------
  telemetry::ScopedSpan check_span(rec.trace, "access.check");
  AccessController::Verdict verdict = controller_->Check(rec);
  check_span.End();
  if (verdict.respond) {
    return FinalizeResponse(rec, std::move(verdict.response));
  }

  // --- admin/status endpoint ------------------------------------------------
  // Dispatched after the access check, so /__status is protected by exactly
  // the same policy machinery as any document.
  if (!options_.status_path.empty() &&
      (rec.path == options_.status_path ||
       rec.path == options_.status_path + "/traces" ||
       rec.path == options_.status_path + "/slow" ||
       rec.path == options_.status_path + "/metrics.json" ||
       rec.path == options_.status_path + "/policies" ||
       rec.path == options_.status_path + "/tenants" ||
       (cluster_view_ && rec.path == options_.status_path + "/cluster"))) {
    return ServeStatus(rec);
  }

  // --- handler + execution-control phase -------------------------------------
  OperationObservation obs;
  HttpResponse response;
  bool success = true;
  telemetry::ScopedSpan handler_span(rec.trace, "handler");

  if (const Document* doc = tree_->FindDocument(lookup)) {
    const StaticContentPlane::Entry* entry =
        plane_ != nullptr ? plane_->Find(lookup) : nullptr;
    bool not_modified = false;
    if (entry != nullptr) {
      response.headers["ETag"] = entry->etag;
      response.headers["Last-Modified"] = entry->last_modified;
      const std::string* inm = rec.Header("if-none-match");
      const std::string* ims = rec.Header("if-modified-since");
      not_modified = (inm != nullptr || ims != nullptr) &&
                     NotModified(inm != nullptr ? *inm : std::string_view(),
                                 ims != nullptr ? *ims : std::string_view(),
                                 *entry);
    }
    if (not_modified) {
      // Validators matched: header-only 304, explicitly zero-length so
      // keep-alive framing stays unambiguous.  No Content-Type — the
      // response carries no representation.
      response.status = StatusCode::kNotModified;
      response.headers["Content-Length"] = "0";
      obs.bytes_written = 0;
    } else {
      response.status = StatusCode::kOk;
      // Zero-copy: the body is a view into the DocTree's stable storage
      // (templated documents) — only untemplated trees still copy.
      if (entry != nullptr) {
        response.body_view = entry->body;
      } else {
        response.body = doc->content;
      }
      response.headers["Content-Type"] = doc->content_type;
      obs.bytes_written = doc->content.size();
    }
    obs.cpu_seconds = 1e-5;
    obs.wall_us = 10;
    if (!controller_->OnExecution(rec, obs)) {
      response = HttpResponse::Make(StatusCode::kForbidden,
                                    "operation aborted by policy\n");
      success = false;
    }
  } else if (const CgiScript* cgi = tree_->FindCgi(lookup)) {
    CgiResult result = (*cgi)(rec.query);
    obs.cpu_seconds = result.cpu_seconds;
    obs.wall_us = static_cast<std::uint64_t>(result.cpu_seconds * 1e6);
    obs.memory_bytes = result.memory_bytes;
    obs.bytes_written = result.output.size();
    obs.files_touched = result.files_touched;
    if (!controller_->OnExecution(rec, obs)) {
      // Execution-control phase pulled the plug mid-operation.
      response = HttpResponse::Make(StatusCode::kForbidden,
                                    "operation aborted by policy\n");
      success = false;
    } else if (!result.ok) {
      response = HttpResponse::Make(StatusCode::kInternalError);
      success = false;
    } else {
      response.status = StatusCode::kOk;
      response.body = result.output;
      response.headers["Content-Type"] = "text/plain";
    }
  } else if (const StreamingCgiScript* streaming =
                 tree_->FindStreamingCgi(lookup)) {
    // Long-running operation: the execution-control phase runs BETWEEN
    // steps, so a violated mid-condition aborts the operation while it is
    // still producing output (paper phase 3).
    std::string body;
    bool aborted = false;
    for (std::size_t step = 0;; ++step) {
      std::optional<CgiStep> next = (*streaming)(step, rec.query);
      if (!next.has_value()) break;
      body += next->chunk;
      obs.cpu_seconds += next->cpu_seconds;
      obs.memory_bytes += next->memory_bytes;
      obs.bytes_written = body.size();
      obs.wall_us = static_cast<std::uint64_t>(obs.cpu_seconds * 1e6);
      obs.files_touched.insert(obs.files_touched.end(),
                               next->files_touched.begin(),
                               next->files_touched.end());
      if (!controller_->OnExecution(rec, obs)) {
        aborted = true;
        break;
      }
    }
    if (aborted) {
      response = HttpResponse::Make(StatusCode::kForbidden,
                                    "operation aborted by policy\n");
      success = false;
    } else {
      response.status = StatusCode::kOk;
      response.body = std::move(body);
      response.headers["Content-Type"] = "text/plain";
    }
  } else {
    response = HttpResponse::Make(StatusCode::kNotFound);
    success = false;
  }
  handler_span.End();

  // --- post-execution phase ---------------------------------------------------
  controller_->OnComplete(rec, obs, success);

  telemetry::ScopedSpan respond_span(rec.trace, "respond");
  return FinalizeResponse(rec, std::move(response));
}

HttpResponse WebServer::ServeStatus(RequestRec& rec) {
  telemetry::ScopedSpan handler_span(rec.trace, "handler");
  OperationObservation obs;
  HttpResponse response;
  bool success = true;

  if (telemetry_ == nullptr) {
    response = HttpResponse::Make(StatusCode::kNotFound);
    success = false;
  } else if (rec.path == options_.status_path) {
    response.status = StatusCode::kOk;
    // Cluster mode swaps in a fleet-aware renderer (process labels + other
    // processes' shm slabs); otherwise: this process's registry, verbatim.
    response.body = prometheus_view_
                        ? prometheus_view_()
                        : telemetry::RenderPrometheus(telemetry_->registry());
    response.headers["Content-Type"] =
        "text/plain; version=0.0.4; charset=utf-8";
  } else {
    response.status = StatusCode::kOk;
    if (rec.path == options_.status_path + "/slow") {
      response.body = telemetry::RenderSlowTracesJson(telemetry_->tracer());
    } else if (rec.path == options_.status_path + "/metrics.json") {
      response.body =
          status_process_ >= 0
              ? telemetry::RenderMetricsJson(telemetry_->registry(),
                                             status_process_)
              : telemetry::RenderMetricsJson(telemetry_->registry());
    } else if (rec.path == options_.status_path + "/policies") {
      response.body = telemetry::RenderPoliciesJson(telemetry_->registry());
    } else if (rec.path == options_.status_path + "/tenants") {
      // The tenant table and the IR store live in the policy plane; the
      // integration layer supplies the renderer.
      response.body = tenants_view_ ? tenants_view_() : "{}";
    } else if (cluster_view_ && rec.path == options_.status_path + "/cluster") {
      response.body = cluster_view_();
    } else {
      response.body = telemetry::RenderTracesJson(telemetry_->tracer());
    }
    response.headers["Content-Type"] = "application/json";
  }
  obs.bytes_written = response.body.size();
  obs.cpu_seconds = 1e-5;
  obs.wall_us = 10;
  if (success && !controller_->OnExecution(rec, obs)) {
    response = HttpResponse::Make(StatusCode::kForbidden,
                                  "operation aborted by policy\n");
    success = false;
  }
  handler_span.End();

  controller_->OnComplete(rec, obs, success);

  telemetry::ScopedSpan respond_span(rec.trace, "respond");
  return FinalizeResponse(rec, std::move(response));
}

std::string_view WebServer::ResolveTenant(RequestRec& rec,
                                          bool* reject) const {
  *reject = false;
  if (tenant_router_ == nullptr || tenant_router_->empty()) return {};
  const std::string* host = rec.Header("host");
  char buf[kHostBufBytes];
  TenantRouter::Resolution res = tenant_router_->Resolve(NormalizeHostInto(
      host != nullptr ? std::string_view(*host) : std::string_view(), buf,
      sizeof buf));
  if (res.reject) {
    *reject = true;
    return {};
  }
  rec.tenant.assign(res.tenant);
  return res.doc_root;
}

HttpResponse WebServer::FinalizeResponse(RequestRec& rec,
                                         HttpResponse response) {
  if (response.status == StatusCode::kNotModified &&
      not_modified_total_ != nullptr) {
    not_modified_total_->Inc();
  }
  response.headers["Server"] = options_.server_name;
  SetDateHeader(&response);
  // The represented length is what Content-Length promises — for HEAD the
  // body is stripped (every status, not just 200) but the length, and the
  // access-log byte count, still describe the entity.
  const std::uint64_t represented = response.BodySize();
  if (rec.method == "HEAD") {
    response.headers["Content-Length"] = std::to_string(represented);
    response.ClearBody();
  }
  LogAccess(rec, response.status, represented);
  if (request_observer_) {
    request_observer_(rec.method, rec.path, rec.client_ip,
                      static_cast<int>(response.status));
  }
  return response;
}

void WebServer::SetDateHeader(HttpResponse* response) {
  char line[HttpDateCache::kLineBytes];
  date_cache_.Line(clock_ != nullptr ? clock_->Now() : 0, line);
  // Value only — SerializeHead adds the "Date: " name and CRLF back, so
  // the wire bytes equal the template path's cached line.
  response->headers["Date"].assign(line + 6, kHttpDateBytes);
}

void WebServer::FinishRequest(const util::Stopwatch& sw, int status,
                              std::unique_ptr<telemetry::RequestTrace> trace) {
  requests_served_.fetch_add(1);
  if (requests_total_ != nullptr) requests_total_->Inc();
  if (latency_hist_ != nullptr) {
    latency_hist_->Record(static_cast<std::uint64_t>(sw.ElapsedUs()));
  }
  if (trace != nullptr && telemetry_ != nullptr) {
    trace->status = status;
    telemetry_->tracer().Finish(std::move(trace));
  }
}

telemetry::Counter* WebServer::StatusCounterFor(int code) {
  if (telemetry_ == nullptr) return nullptr;
  telemetry::Counter* counter =
      code >= 0 && code < kMaxStatusCode
          ? status_counters_[code].load(std::memory_order_relaxed)
          : nullptr;
  if (counter == nullptr) {
    counter = telemetry_->registry().GetCounter(
        "http_responses_total", "code=\"" + std::to_string(code) + "\"");
    if (code >= 0 && code < kMaxStatusCode) {
      status_counters_[code].store(counter, std::memory_order_relaxed);
    }
  }
  return counter;
}

void WebServer::LogAccess(const RequestRec& rec, StatusCode status,
                          std::uint64_t bytes) {
  if (telemetry::Counter* counter =
          StatusCounterFor(static_cast<int>(status))) {
    counter->Inc();
  }
  AppendAccessLog(rec.method, rec.raw_target, rec.auth_user, rec.client_ip,
                  static_cast<int>(status), bytes,
                  rec.trace != nullptr ? rec.trace->id() : 0);
}

void WebServer::AppendAccessLog(std::string_view method,
                                std::string_view target,
                                std::string_view user, util::Ipv4Address ip,
                                int status, std::uint64_t bytes,
                                std::uint64_t trace_id) {
  const std::size_t limit = options_.access_log_limit;
  if (limit == 0) return;
  std::lock_guard<std::mutex> lock(log_mu_);
  if (log_count_ < limit && log_next_ == log_ring_.size()) {
    log_ring_.emplace_back();  // still growing toward the limit
  }
  AccessLogEntry& entry = log_ring_[log_next_];
  log_next_ = (log_next_ + 1) % limit;
  if (log_count_ < limit) ++log_count_;
  entry.time_us = clock_ != nullptr ? clock_->Now() : 0;
  entry.client_ip = ip.ToString();  // <= 15 chars: always in-situ
  entry.user.assign(user.empty() ? std::string_view("-") : user);
  entry.request_line.clear();  // keeps capacity: steady state reuses it
  entry.request_line.append(method);
  entry.request_line.push_back(' ');
  entry.request_line.append(target);
  entry.status = status;
  entry.bytes = bytes;
  entry.trace_id = trace_id;
}

std::map<int, std::uint64_t> WebServer::StatusCounts() const {
  std::map<int, std::uint64_t> out;
  if (telemetry_ == nullptr) return out;
  for (const auto& e : telemetry_->registry().List()) {
    if (e.kind != telemetry::MetricKind::kCounter ||
        e.name != "http_responses_total") {
      continue;
    }
    const auto q1 = e.labels.find('"');
    const auto q2 = e.labels.rfind('"');
    if (q1 == std::string::npos || q2 <= q1) continue;
    const std::uint64_t value = e.counter->Value();
    if (value == 0) continue;  // reset counters are invisible, like before
    out[std::stoi(e.labels.substr(q1 + 1, q2 - q1 - 1))] = value;
  }
  return out;
}

std::vector<AccessLogEntry> WebServer::AccessLog() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  std::vector<AccessLogEntry> out;
  out.reserve(log_count_);
  const std::size_t limit = options_.access_log_limit;
  const std::size_t start =
      limit == 0 ? 0 : (log_next_ + limit - log_count_) % limit;
  for (std::size_t i = 0; i < log_count_; ++i) {
    out.push_back(log_ring_[(start + i) % limit]);
  }
  return out;
}

void WebServer::ClearLogs() {
  {
    // Reset the indices but keep the slots — their string capacities are
    // the reason steady-state appends stay off the heap.
    std::lock_guard<std::mutex> lock(log_mu_);
    log_next_ = 0;
    log_count_ = 0;
  }
  if (telemetry_ != nullptr) {
    for (const auto& e : telemetry_->registry().List()) {
      if (e.kind == telemetry::MetricKind::kCounter &&
          e.name == "http_responses_total") {
        e.counter->Reset();
      }
    }
  }
}

}  // namespace gaa::http
