#include "http/doc_tree.h"

#include "util/strings.h"

namespace gaa::http {

namespace {

/// Directory chain of "/a/b/c": "/", "/a", "/a/b".  Duplicate slashes are
/// collapsed first: "/a//b" walks the same chain as "/a/b", so a doubled
/// slash can never skip an htaccess entry on the way down (the
/// normalization gap the self-adaptive web IDS literature treats as
/// attack surface).  A trailing slash names a directory, which is itself
/// part of its own chain: "/docs/" walks "/", "/docs".
std::vector<std::string> DirectoryChain(const std::string& path) {
  std::vector<std::string> chain;
  chain.push_back("/");
  if (path.empty() || path[0] != '/') return chain;
  std::string normalized;
  normalized.reserve(path.size());
  for (char c : path) {
    if (c == '/' && !normalized.empty() && normalized.back() == '/') continue;
    normalized.push_back(c);
  }
  std::size_t pos = 1;
  while (pos < normalized.size()) {
    std::size_t slash = normalized.find('/', pos);
    if (slash == std::string::npos) break;
    chain.push_back(normalized.substr(0, slash));
    pos = slash + 1;
  }
  return chain;
}

}  // namespace

void DocTree::AddDocument(const std::string& path, Document doc) {
  documents_[path] = std::move(doc);
}

void DocTree::AddCgi(const std::string& path, CgiScript script) {
  cgis_[path] = std::move(script);
}

void DocTree::AddStreamingCgi(const std::string& path,
                              StreamingCgiScript script) {
  streaming_cgis_[path] = std::move(script);
}

void DocTree::SetHtaccess(const std::string& dir, std::string htaccess_text) {
  htaccess_[dir.empty() ? "/" : dir] = std::move(htaccess_text);
}

const Document* DocTree::FindDocument(std::string_view path) const {
  auto it = documents_.find(path);
  return it == documents_.end() ? nullptr : &it->second;
}

const CgiScript* DocTree::FindCgi(std::string_view path) const {
  auto it = cgis_.find(path);
  return it == cgis_.end() ? nullptr : &it->second;
}

const StreamingCgiScript* DocTree::FindStreamingCgi(
    std::string_view path) const {
  auto it = streaming_cgis_.find(path);
  return it == streaming_cgis_.end() ? nullptr : &it->second;
}

bool DocTree::Exists(std::string_view path) const {
  return documents_.count(path) > 0 || cgis_.count(path) > 0 ||
         streaming_cgis_.count(path) > 0;
}

std::vector<std::string> DocTree::HtaccessChain(const std::string& path) const {
  std::vector<std::string> out;
  for (const auto& dir : DirectoryChain(path)) {
    auto it = htaccess_.find(dir);
    if (it != htaccess_.end()) out.push_back(it->second);
  }
  return out;
}

std::size_t DocTree::document_count() const {
  return documents_.size();
}

std::size_t DocTree::cgi_count() const {
  return cgis_.size();
}

DocTree DocTree::DemoSite() {
  DocTree tree;
  tree.AddDocument("/index.html",
                   {"<html><body>Welcome to the demo site</body></html>"});
  tree.AddDocument("/docs/guide.html",
                   {"<html><body>User guide</body></html>"});
  tree.AddDocument("/docs/api.html", {"<html><body>API docs</body></html>"});
  tree.AddDocument("/private/report.html",
                   {"<html><body>Quarterly numbers</body></html>"});
  tree.AddDocument("/private/logs/system.log", {"system log contents",
                                                "text/plain"});

  // The historical phf phonebook CGI: on a benign query it echoes matches;
  // a newline meta-character smuggled through (%0a) makes it "run" the
  // appended command — the §7.2 penetration vector.
  tree.AddCgi("/cgi-bin/phf", [](const std::string& query) {
    CgiResult r;
    r.cpu_seconds = 0.002;
    if (query.find('\n') != std::string::npos ||
        query.find("%0a") != std::string::npos ||
        query.find("%0A") != std::string::npos) {
      r.output = "phf: executing appended command (vulnerability triggered)";
      r.files_touched.push_back("/etc/passwd");
      r.cpu_seconds = 0.05;
    } else {
      r.output = "phf: no matches for '" + query + "'";
    }
    return r;
  });

  // test-cgi: discloses its environment — an information-leak probe target.
  tree.AddCgi("/cgi-bin/test-cgi", [](const std::string& query) {
    CgiResult r;
    r.output = "CGI test environment:\nQUERY_STRING=" + query + "\n";
    r.cpu_seconds = 0.001;
    return r;
  });

  // A normal search CGI whose cost scales with input size (gives the
  // mid-condition resource monitor something real to watch).
  tree.AddCgi("/cgi-bin/search", [](const std::string& query) {
    CgiResult r;
    r.cpu_seconds = 0.0005 + 0.00001 * static_cast<double>(query.size());
    r.memory_bytes = (1 << 16) + query.size() * 64;
    r.output = "search results for '" + query + "'";
    return r;
  });

  // A long-running report generator: 20 steps of 25 ms CPU each — the
  // execution-control phase's chance to pull the plug mid-operation.
  tree.AddStreamingCgi(
      "/cgi-bin/bigreport",
      [](std::size_t step, const std::string& /*query*/)
          -> std::optional<CgiStep> {
        if (step >= 20) return std::nullopt;
        CgiStep s;
        s.chunk = "report section " + std::to_string(step) + "\n";
        s.cpu_seconds = 0.025;
        s.memory_bytes = 1 << 16;
        return s;
      });

  // A status CGI that writes a scratch file (suspicious-behaviour signal).
  tree.AddCgi("/cgi-bin/status", [](const std::string& /*query*/) {
    CgiResult r;
    r.output = "server status: OK";
    r.files_touched.push_back("/tmp/status.scratch");
    return r;
  });

  return tree;
}

}  // namespace gaa::http
