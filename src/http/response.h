// HTTP responses and the Apache-style status constants the GAA translation
// layer produces (paper §6 step 2d: HTTP_OK / HTTP_DECLINED /
// HTTP_AUTHREQUIRED / HTTP_REDIRECT).
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace gaa::http {

enum class StatusCode {
  kOk = 200,
  kFound = 302,             ///< HTTP_REDIRECT
  kNotModified = 304,       ///< conditional GET: validators still match
  kBadRequest = 400,
  kUnauthorized = 401,      ///< HTTP_AUTHREQUIRED
  kForbidden = 403,         ///< HTTP_DECLINED (request rejected)
  kNotFound = 404,
  kRequestTimeout = 408,
  kPayloadTooLarge = 413,
  kMisdirectedRequest = 421,  ///< Host names no tenant this server routes
  kUriTooLong = 414,
  kInternalError = 500,
  kServiceUnavailable = 503,
};

const char* StatusReason(StatusCode code);

struct HttpResponse {
  StatusCode status = StatusCode::kOk;
  std::map<std::string, std::string> headers;
  std::string body;
  /// Zero-copy body: a view into storage that outlives the response (a
  /// DocTree document, a static-plane template).  When set, `body` stays
  /// empty and the transport sends the view as its own iovec without ever
  /// copying the bytes.  Exactly one of body / body_view carries content.
  std::string_view body_view;

  /// The represented body, wherever it lives.
  std::string_view BodyView() const {
    return body_view.empty() ? std::string_view(body) : body_view;
  }
  std::size_t BodySize() const {
    return body_view.empty() ? body.size() : body_view.size();
  }
  /// Drop the body while keeping the head intact (HEAD responses).
  void ClearBody() {
    body.clear();
    body_view = {};
  }

  /// Full response text ("HTTP/1.1 200 OK\r\n...").
  std::string Serialize() const;

  /// Status line + headers + blank line, without the body.  The transport
  /// sends SerializeHead() and the body as separate iovecs (gathered
  /// write); Serialize() == SerializeHead() + BodyView() byte-for-byte.
  std::string SerializeHead() const;

  static HttpResponse Make(StatusCode status, std::string body = {});
  /// 401 with a WWW-Authenticate challenge for `realm`.
  static HttpResponse AuthRequired(const std::string& realm);
  /// 302 with a Location header.
  static HttpResponse Redirect(const std::string& location);
};

}  // namespace gaa::http
