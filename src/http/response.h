// HTTP responses and the Apache-style status constants the GAA translation
// layer produces (paper §6 step 2d: HTTP_OK / HTTP_DECLINED /
// HTTP_AUTHREQUIRED / HTTP_REDIRECT).
#pragma once

#include <map>
#include <string>

namespace gaa::http {

enum class StatusCode {
  kOk = 200,
  kFound = 302,             ///< HTTP_REDIRECT
  kBadRequest = 400,
  kUnauthorized = 401,      ///< HTTP_AUTHREQUIRED
  kForbidden = 403,         ///< HTTP_DECLINED (request rejected)
  kNotFound = 404,
  kRequestTimeout = 408,
  kPayloadTooLarge = 413,
  kUriTooLong = 414,
  kInternalError = 500,
  kServiceUnavailable = 503,
};

const char* StatusReason(StatusCode code);

struct HttpResponse {
  StatusCode status = StatusCode::kOk;
  std::map<std::string, std::string> headers;
  std::string body;

  /// Full response text ("HTTP/1.1 200 OK\r\n...").
  std::string Serialize() const;

  /// Status line + headers + blank line, without the body.  The transport
  /// sends SerializeHead() and the body as separate iovecs (gathered
  /// write); Serialize() == SerializeHead() + body byte-for-byte.
  std::string SerializeHead() const;

  static HttpResponse Make(StatusCode status, std::string body = {});
  /// 401 with a WWW-Authenticate challenge for `realm`.
  static HttpResponse AuthRequired(const std::string& realm);
  /// 302 with a Location header.
  static HttpResponse Redirect(const std::string& location);
};

}  // namespace gaa::http
