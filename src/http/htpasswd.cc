#include "http/htpasswd.h"

#include <cstdio>

#include "util/strings.h"

namespace gaa::http {

namespace {

/// FNV-1a 64-bit, iterated — a toy KDF standing in for crypt(3).
std::uint64_t Fnv1a(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = 14695981039346656037ull ^ seed;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

HtpasswdStore::HtpasswdStore(HtpasswdStore&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  entries_ = std::move(other.entries_);
}

HtpasswdStore& HtpasswdStore::operator=(HtpasswdStore&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mu_, other.mu_);
    entries_ = std::move(other.entries_);
  }
  return *this;
}

std::string HtpasswdStore::HashPassword(const std::string& password,
                                        std::uint64_t salt) {
  std::uint64_t h = salt;
  for (int round = 0; round < 64; ++round) {
    h = Fnv1a(password, h);
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%016llx$%016llx",
                static_cast<unsigned long long>(salt),
                static_cast<unsigned long long>(h));
  return buf;
}

void HtpasswdStore::SetUser(const std::string& user,
                            const std::string& password) {
  // Deterministic salt derived from the user name keeps the simulator
  // reproducible while still exercising per-user salting.
  std::uint64_t salt = Fnv1a(user, 0x5a17);
  std::string entry = HashPassword(password, salt);
  std::lock_guard<std::mutex> lock(mu_);
  entries_[user] = entry;
}

bool HtpasswdStore::RemoveUser(const std::string& user) {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.erase(user) > 0;
}

bool HtpasswdStore::Check(const std::string& user,
                          const std::string& password) const {
  std::string stored;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(user);
    if (it == entries_.end()) return false;
    stored = it->second;
  }
  auto dollar = stored.find('$');
  if (dollar == std::string::npos) return false;
  unsigned long long salt = 0;
  if (std::sscanf(stored.c_str(), "%llx", &salt) != 1) {
    return false;
  }
  return HashPassword(password, static_cast<std::uint64_t>(salt)) == stored;
}

bool HtpasswdStore::HasUser(const std::string& user) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(user) > 0;
}

std::size_t HtpasswdStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string HtpasswdStore::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [user, entry] : entries_) {
    out += user + ":" + entry + "\n";
  }
  return out;
}

util::Result<HtpasswdStore> HtpasswdStore::Parse(std::string_view text) {
  HtpasswdStore store;
  int line_no = 0;
  for (const auto& line : util::Split(text, '\n')) {
    ++line_no;
    auto trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto colon = trimmed.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return util::Error(util::ErrorCode::kParseError,
                         "htpasswd line " + std::to_string(line_no) +
                             ": missing ':'");
    }
    store.entries_[std::string(trimmed.substr(0, colon))] =
        std::string(trimmed.substr(colon + 1));
  }
  return store;
}

HtpasswdStore& HtpasswdRegistry::GetOrCreate(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return stores_[name];
}

const HtpasswdStore* HtpasswdRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stores_.find(name);
  return it == stores_.end() ? nullptr : &it->second;
}

}  // namespace gaa::http
