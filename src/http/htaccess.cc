#include "http/htaccess.h"

#include <algorithm>

#include "util/strings.h"

namespace gaa::http {

namespace {

using util::EqualsIgnoreCase;

bool MatchesAny(const std::vector<util::CidrBlock>& blocks,
                util::Ipv4Address addr) {
  for (const auto& block : blocks) {
    if (block.Contains(addr)) return true;
  }
  return false;
}

/// Host-rule outcome under Order semantics (Apache 1.3 model).
bool HostAllowed(const HtaccessConfig& config, util::Ipv4Address addr) {
  bool denied = config.deny_all || MatchesAny(config.deny_from, addr);
  bool allowed = config.allow_all || MatchesAny(config.allow_from, addr);
  switch (config.order) {
    case AccessOrder::kDenyAllow:
      // Deny rules evaluated first; Allow rules override; default allow.
      if (allowed) return true;
      if (denied) return false;
      return true;
    case AccessOrder::kAllowDeny:
      // Allow first; Deny overrides; default deny.
      if (denied) return false;
      if (allowed) return true;
      return false;
  }
  return false;
}

}  // namespace

bool HtaccessConfig::HasHostRules() const {
  return deny_all || allow_all || !deny_from.empty() || !allow_from.empty();
}

bool HtaccessConfig::HasAuthRules() const {
  return require_valid_user || !require_users.empty();
}

util::Result<HtaccessConfig> ParseHtaccess(std::string_view text) {
  HtaccessConfig config;
  int line_no = 0;
  for (const auto& raw_line : util::Split(text, '\n')) {
    ++line_no;
    std::string_view line = util::Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    auto tokens = util::SplitWhitespace(line);
    const std::string& directive = tokens[0];
    auto fail = [&](const std::string& what) {
      return util::Error(util::ErrorCode::kParseError,
                         ".htaccess line " + std::to_string(line_no) + ": " +
                             what);
    };

    if (EqualsIgnoreCase(directive, "Order")) {
      if (tokens.size() < 2) return fail("Order needs an argument");
      // Apache accepts "Deny,Allow" (no space) or "Deny, Allow".
      std::string arg = util::ToLower(util::Join(
          std::vector<std::string>(tokens.begin() + 1, tokens.end()), ""));
      if (arg == "deny,allow") {
        config.order = AccessOrder::kDenyAllow;
      } else if (arg == "allow,deny") {
        config.order = AccessOrder::kAllowDeny;
      } else {
        return fail("bad Order '" + arg + "'");
      }
      continue;
    }

    if (EqualsIgnoreCase(directive, "Deny") ||
        EqualsIgnoreCase(directive, "Allow")) {
      bool is_deny = EqualsIgnoreCase(directive, "Deny");
      if (tokens.size() < 3 || !EqualsIgnoreCase(tokens[1], "from")) {
        return fail(directive + " needs 'from <host...>'");
      }
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (EqualsIgnoreCase(tokens[i], "All")) {
          (is_deny ? config.deny_all : config.allow_all) = true;
          continue;
        }
        auto block = util::CidrBlock::Parse(tokens[i]);
        if (!block.has_value()) return fail("bad host '" + tokens[i] + "'");
        (is_deny ? config.deny_from : config.allow_from).push_back(*block);
      }
      continue;
    }

    if (EqualsIgnoreCase(directive, "AuthType")) {
      if (tokens.size() != 2 || !EqualsIgnoreCase(tokens[1], "Basic")) {
        return fail("only 'AuthType Basic' is supported");
      }
      config.auth_basic = true;
      continue;
    }

    if (EqualsIgnoreCase(directive, "AuthUserFile")) {
      if (tokens.size() != 2) return fail("AuthUserFile needs a path");
      config.auth_user_file = tokens[1];
      continue;
    }

    if (EqualsIgnoreCase(directive, "AuthName")) {
      if (tokens.size() < 2) return fail("AuthName needs a value");
      config.auth_name = util::Join(
          std::vector<std::string>(tokens.begin() + 1, tokens.end()), " ");
      continue;
    }

    if (EqualsIgnoreCase(directive, "Require")) {
      if (tokens.size() < 2) return fail("Require needs an argument");
      if (EqualsIgnoreCase(tokens[1], "valid-user")) {
        config.require_valid_user = true;
      } else if (EqualsIgnoreCase(tokens[1], "user")) {
        if (tokens.size() < 3) return fail("Require user needs names");
        config.require_users.insert(config.require_users.end(),
                                    tokens.begin() + 2, tokens.end());
      } else {
        return fail("unsupported Require '" + tokens[1] + "'");
      }
      continue;
    }

    if (EqualsIgnoreCase(directive, "Satisfy")) {
      if (tokens.size() != 2) return fail("Satisfy needs All|Any");
      if (EqualsIgnoreCase(tokens[1], "All")) {
        config.satisfy = SatisfyMode::kAll;
      } else if (EqualsIgnoreCase(tokens[1], "Any")) {
        config.satisfy = SatisfyMode::kAny;
      } else {
        return fail("bad Satisfy '" + tokens[1] + "'");
      }
      continue;
    }

    return fail("unknown directive '" + directive + "'");
  }
  return config;
}

HtaccessDecision EvaluateHtaccess(const HtaccessConfig& config,
                                  RequestRec& rec,
                                  const HtpasswdRegistry& passwords) {
  bool host_ok = !config.HasHostRules() || HostAllowed(config, rec.client_ip);

  bool auth_needed = config.HasAuthRules();
  bool auth_ok = false;
  if (auth_needed) {
    auto creds = rec.BasicCredentials();
    if (creds.has_value()) {
      const HtpasswdStore* store =
          config.auth_user_file.empty()
              ? nullptr
              : passwords.Find(config.auth_user_file);
      if (store != nullptr && store->Check(creds->first, creds->second)) {
        bool user_listed =
            config.require_valid_user ||
            std::find(config.require_users.begin(), config.require_users.end(),
                      creds->first) != config.require_users.end();
        if (user_listed) {
          auth_ok = true;
          rec.auth_user = creds->first;
          rec.authenticated = true;
        }
      }
    }
  }

  if (config.satisfy == SatisfyMode::kAny && auth_needed) {
    if (host_ok || auth_ok) return HtaccessDecision::kAllow;
    return auth_ok ? HtaccessDecision::kDeny : HtaccessDecision::kAuthRequired;
  }

  // Satisfy All (or no auth rules): every present constraint must hold.
  if (!host_ok) return HtaccessDecision::kDeny;
  if (auth_needed && !auth_ok) return HtaccessDecision::kAuthRequired;
  return HtaccessDecision::kAllow;
}

}  // namespace gaa::http
