#include "http/static_plane.h"

#include <cstdio>
#include <cstring>

#include "http/response.h"
#include "util/strings.h"

namespace gaa::http {

namespace {

constexpr const char* kDayNames[] = {"Sun", "Mon", "Tue", "Wed",
                                     "Thu", "Fri", "Sat"};
constexpr const char* kMonthNames[] = {"Jan", "Feb", "Mar", "Apr",
                                       "May", "Jun", "Jul", "Aug",
                                       "Sep", "Oct", "Nov", "Dec"};

/// Days since 1970-01-01 -> {year, month 1-12, day 1-31} (Howard Hinnant's
/// civil_from_days, public-domain algorithm).
void CivilFromDays(std::int64_t z, int* y_out, unsigned* m_out,
                   unsigned* d_out) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;
  *y_out = static_cast<int>(y + (m <= 2));
  *m_out = m;
  *d_out = d;
}

/// {year, month 1-12, day 1-31} -> days since 1970-01-01 (days_from_civil).
std::int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m > 2 ? m - 3 : m + 9) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void Put2(char* out, unsigned v) {
  out[0] = static_cast<char>('0' + v / 10);
  out[1] = static_cast<char>('0' + v % 10);
}

std::optional<int> MonthIndex(std::string_view name) {
  for (int i = 0; i < 12; ++i) {
    if (name == kMonthNames[i]) return i;
  }
  return std::nullopt;
}

std::optional<unsigned> ParseDigits(std::string_view s) {
  if (s.empty()) return std::nullopt;
  unsigned v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<unsigned>(c - '0');
  }
  return v;
}

}  // namespace

std::size_t FormatHttpDate(std::int64_t epoch_seconds, char* out) {
  std::int64_t days = epoch_seconds / 86400;
  std::int64_t sod = epoch_seconds % 86400;
  if (sod < 0) {
    sod += 86400;
    --days;
  }
  int year;
  unsigned month, day;
  CivilFromDays(days, &year, &month, &day);
  // 1970-01-01 was a Thursday (index 4).
  const unsigned weekday =
      static_cast<unsigned>(((days % 7) + 7 + 4) % 7);
  // "Sun, 06 Nov 1994 08:49:37 GMT"
  std::memcpy(out, kDayNames[weekday], 3);
  out[3] = ',';
  out[4] = ' ';
  Put2(out + 5, day);
  out[7] = ' ';
  std::memcpy(out + 8, kMonthNames[month - 1], 3);
  out[11] = ' ';
  unsigned y = static_cast<unsigned>(year);
  out[12] = static_cast<char>('0' + (y / 1000) % 10);
  out[13] = static_cast<char>('0' + (y / 100) % 10);
  out[14] = static_cast<char>('0' + (y / 10) % 10);
  out[15] = static_cast<char>('0' + y % 10);
  out[16] = ' ';
  Put2(out + 17, static_cast<unsigned>(sod / 3600));
  out[19] = ':';
  Put2(out + 20, static_cast<unsigned>((sod / 60) % 60));
  out[22] = ':';
  Put2(out + 23, static_cast<unsigned>(sod % 60));
  std::memcpy(out + 25, " GMT", 4);
  return kHttpDateBytes;
}

std::string FormatHttpDate(std::int64_t epoch_seconds) {
  char buf[kHttpDateBytes];
  FormatHttpDate(epoch_seconds, buf);
  return std::string(buf, kHttpDateBytes);
}

std::optional<std::int64_t> ParseHttpDate(std::string_view text) {
  // "Sun, 06 Nov 1994 08:49:37 GMT" — fixed-width IMF-fixdate only.
  text = util::Trim(text);
  if (text.size() != kHttpDateBytes) return std::nullopt;
  if (text[3] != ',' || text[4] != ' ' || text[7] != ' ' || text[11] != ' ' ||
      text[16] != ' ' || text[19] != ':' || text[22] != ':' ||
      text.substr(25) != " GMT") {
    return std::nullopt;
  }
  auto day = ParseDigits(text.substr(5, 2));
  auto month = MonthIndex(text.substr(8, 3));
  auto year = ParseDigits(text.substr(12, 4));
  auto hour = ParseDigits(text.substr(17, 2));
  auto minute = ParseDigits(text.substr(20, 2));
  auto second = ParseDigits(text.substr(23, 2));
  if (!day || !month || !year || !hour || !minute || !second) {
    return std::nullopt;
  }
  if (*day < 1 || *day > 31 || *hour > 23 || *minute > 59 || *second > 60) {
    return std::nullopt;
  }
  std::int64_t days =
      DaysFromCivil(static_cast<int>(*year), static_cast<unsigned>(*month + 1),
                    *day);
  return days * 86400 + static_cast<std::int64_t>(*hour) * 3600 +
         static_cast<std::int64_t>(*minute) * 60 +
         static_cast<std::int64_t>(*second);
}

std::size_t HttpDateCache::Line(util::TimePoint now_us, char* out) {
  const std::int64_t sec = now_us / util::kMicrosPerSecond;
  std::shared_ptr<const Rendered> cur =
      current_.load(std::memory_order_acquire);
  if (cur == nullptr || cur->sec != sec) {
    std::lock_guard<std::mutex> lock(write_mu_);
    cur = current_.load(std::memory_order_acquire);
    if (cur == nullptr || cur->sec != sec) {
      auto fresh = std::make_shared<Rendered>();
      fresh->sec = sec;
      std::memcpy(fresh->text, "Date: ", 6);
      FormatHttpDate(sec, fresh->text + 6);
      fresh->text[kLineBytes - 2] = '\r';
      fresh->text[kLineBytes - 1] = '\n';
      current_.store(fresh, std::memory_order_release);
      cur = std::move(fresh);
    }
  }
  std::memcpy(out, cur->text, kLineBytes);
  return kLineBytes;
}

std::string ComputeEtag(std::string_view content) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (unsigned char c : content) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[48];
  int n = std::snprintf(buf, sizeof(buf), "\"%016llx-%zx\"",
                        static_cast<unsigned long long>(h), content.size());
  return std::string(buf, static_cast<std::size_t>(n));
}

namespace {

/// Split `head` (a full SerializeHead() rendering that contains a marker
/// Date value) into the bytes before and after the Date line.
StaticContentPlane::Entry::Head SplitAtDate(const std::string& head,
                                            const std::string& marker) {
  StaticContentPlane::Entry::Head out;
  const std::string line = "Date: " + marker + "\r\n";
  std::size_t pos = head.find(line);
  if (pos == std::string::npos) {  // unreachable: we put the marker there
    out.pre = head;
    return out;
  }
  out.pre = head.substr(0, pos);
  out.post = head.substr(pos + line.size());
  return out;
}

}  // namespace

StaticContentPlane::StaticContentPlane(const DocTree* tree,
                                       const std::string& server_name) {
  if (tree == nullptr) return;
  // The marker must never collide with a real date rendering; it is
  // replaced by the cached Date line at serve time.
  const std::string marker = "@DATE@";
  for (const auto& [path, doc] : tree->documents()) {
    Entry entry;
    entry.body = doc.content;
    entry.content_type = doc.content_type;
    entry.etag = ComputeEtag(doc.content);
    entry.mtime_s = doc.mtime_us / util::kMicrosPerSecond;
    entry.last_modified = FormatHttpDate(entry.mtime_s);

    for (int keep = 0; keep < 2; ++keep) {
      const char* connection = keep != 0 ? "keep-alive" : "close";
      // Build the exact HttpResponse the dynamic path produces, so the
      // template stays byte-identical with the worker path by construction
      // (one serializer, not two).
      HttpResponse ok;
      ok.status = StatusCode::kOk;
      ok.body_view = entry.body;
      ok.headers["Content-Type"] = entry.content_type;
      ok.headers["ETag"] = entry.etag;
      ok.headers["Last-Modified"] = entry.last_modified;
      ok.headers["Server"] = server_name;
      ok.headers["Connection"] = connection;
      ok.headers["Date"] = marker;
      entry.head200[keep] = SplitAtDate(ok.SerializeHead(), marker);

      HttpResponse not_modified;
      not_modified.status = StatusCode::kNotModified;
      not_modified.headers["Content-Length"] = "0";  // header-only framing
      not_modified.headers["ETag"] = entry.etag;
      not_modified.headers["Last-Modified"] = entry.last_modified;
      not_modified.headers["Server"] = server_name;
      not_modified.headers["Connection"] = connection;
      not_modified.headers["Date"] = marker;
      entry.head304[keep] = SplitAtDate(not_modified.SerializeHead(), marker);
    }
    entries_.emplace(path, std::move(entry));
  }
}

bool NotModified(std::string_view if_none_match,
                 std::string_view if_modified_since,
                 const StaticContentPlane::Entry& entry) {
  if_none_match = util::Trim(if_none_match);
  if (!if_none_match.empty()) {
    if (if_none_match == "*") return true;
    // Comma-separated entity-tag list; weak prefixes compare by opaque tag
    // (If-None-Match uses the weak comparison, RFC 7232 §3.2).
    std::string_view rest = if_none_match;
    while (!rest.empty()) {
      std::size_t comma = rest.find(',');
      std::string_view tag = util::Trim(
          comma == std::string_view::npos ? rest : rest.substr(0, comma));
      rest = comma == std::string_view::npos ? std::string_view()
                                             : rest.substr(comma + 1);
      if (util::StartsWith(tag, "W/")) tag.remove_prefix(2);
      if (tag == entry.etag) return true;
    }
    return false;  // INM present and nothing matched: IMS is ignored
  }
  if (auto since = ParseHttpDate(if_modified_since)) {
    return entry.mtime_s <= *since;
  }
  return false;
}

}  // namespace gaa::http
