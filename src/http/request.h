// HTTP request parsing and the Apache-like request record.
//
// The parser accepts HTTP/1.0-1.1 request text and produces a RequestRec —
// our stand-in for Apache's request_rec, the structure the paper's glue
// code mines for GAA parameters (§6 step 2b).  Parsing is deliberately
// strict and *diagnostic*: hostile input is the norm, so instead of just
// failing, the parser labels what is wrong (ill-formed request line, bad
// percent-escapes, control bytes, oversized fields) — those labels feed the
// GAA→IDS "ill-formed access request" reports (§3 item 1).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/ip.h"
#include "util/status.h"

namespace gaa::telemetry {
class RequestTrace;
}  // namespace gaa::telemetry

namespace gaa::http {

/// Problems the parser can diagnose on hostile input.
enum class RequestDefect {
  kNone = 0,
  kBadRequestLine,    ///< not "METHOD SP target SP HTTP/x.y"
  kBadMethod,         ///< unknown / non-token method
  kBadVersion,        ///< not HTTP/1.0 or HTTP/1.1
  kBadEscape,         ///< malformed %xx in the target
  kControlBytes,      ///< non-printable bytes in the head
  kOversizedHeader,   ///< a single header exceeds the limit
  kTooManyHeaders,    ///< header count exceeds the limit (the §1 DoS:
                      ///< "a large number of HTTP headers")
  kBadHeader,         ///< header without ':', or conflicting framing headers
  kOversizedTarget,   ///< request target exceeds the limit
  kTruncatedBody,     ///< connection closed before the framed request ended
  kPathTraversal,     ///< decoded ".." segment trying to escape the root
};

const char* RequestDefectName(RequestDefect defect);

/// Parser limits (exposed so tests and the DoS workload can probe them).
struct ParseLimits {
  std::size_t max_target_bytes = 8192;
  std::size_t max_header_bytes = 8192;
  std::size_t max_headers = 100;
};

/// Our request_rec: everything downstream processing needs.
struct RequestRec {
  // request line
  std::string method;       ///< "GET", "POST", "HEAD"
  std::string raw_target;   ///< undecoded, e.g. "/cgi-bin/phf?Qalias=x%0a"
  std::string path;         ///< decoded path, e.g. "/cgi-bin/phf"
  std::string query;        ///< undecoded query string
  std::string http_version; ///< "HTTP/1.1"

  // headers (names lower-cased; duplicates comma-joined like Apache)
  std::map<std::string, std::string> headers;
  std::string body;

  // connection
  util::Ipv4Address client_ip;
  std::uint16_t client_port = 0;

  /// Tenant namespace this request resolved to (normalized Host header →
  /// TenantRouter).  "" is the default namespace — the single-tenant
  /// behaviour — so every pre-tenant caller keeps its exact semantics.
  std::string tenant;

  // authentication (filled by the access-control layer from the
  // Authorization header; empty until Basic credentials are verified)
  std::string auth_user;
  bool authenticated = false;

  /// Telemetry trace for this request, owned by the transport/server layer.
  /// Null when tracing is disabled; downstream layers record spans through
  /// it (null-safe via telemetry::ScopedSpan).
  telemetry::RequestTrace* trace = nullptr;

  /// Raw Basic credentials if the request carried them (user, password).
  std::optional<std::pair<std::string, std::string>> BasicCredentials() const;

  const std::string* Header(const std::string& lower_name) const;
};

/// Parse outcome: either a RequestRec or a diagnosed defect.
struct ParseResult {
  std::optional<RequestRec> request;  ///< set on success
  RequestDefect defect = RequestDefect::kNone;
  std::string detail;

  bool ok() const { return request.has_value(); }
};

/// Parse raw request text (head + optional body, CRLF or LF line endings).
ParseResult ParseRequest(std::string_view text, const ParseLimits& limits = {});

/// Canonicalize a Host header value for routing and comparison: lower-case
/// ASCII, strip an optional ":port" suffix and one trailing dot
/// ("WWW.Example.COM:8080" → "www.example.com").  Bracketed IPv6 literals
/// keep their brackets; only a port after the closing bracket is stripped.
/// Writes into `buf` (no allocation) and returns the view; values longer
/// than `cap` are truncated to `cap` bytes, which can only ever turn a
/// would-be match into a miss.
std::string_view NormalizeHostInto(std::string_view host, char* buf,
                                   std::size_t cap);

/// Allocating convenience wrapper around NormalizeHostInto (no length cap).
std::string NormalizeHost(std::string_view host);

/// Build the canonical request text for a GET (workload generator helper).
std::string BuildGetRequest(const std::string& target,
                            const std::map<std::string, std::string>& headers = {});

}  // namespace gaa::http
