#include "gaa/system_state.h"

#include "util/strings.h"

namespace gaa::core {

const char* ThreatLevelName(ThreatLevel level) {
  switch (level) {
    case ThreatLevel::kLow:
      return "low";
    case ThreatLevel::kMedium:
      return "medium";
    case ThreatLevel::kHigh:
      return "high";
  }
  return "?";
}

std::optional<ThreatLevel> ParseThreatLevel(std::string_view token) {
  if (util::EqualsIgnoreCase(token, "low")) return ThreatLevel::kLow;
  if (util::EqualsIgnoreCase(token, "medium")) return ThreatLevel::kMedium;
  if (util::EqualsIgnoreCase(token, "high")) return ThreatLevel::kHigh;
  return std::nullopt;
}

SystemState::SystemState(util::Clock* clock) : clock_(clock) {}

ThreatLevel SystemState::threat_level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threat_level_;
}

void SystemState::SetThreatLevel(ThreatLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  if (threat_level_ == level) return;
  threat_level_ = level;
  // Bump only on an actual transition: ThreatService republishes the level
  // every recompute tick, and a no-op republish must not flush the memo.
  threat_epoch_.fetch_add(1, std::memory_order_release);
}

ThreatLevel SystemState::EffectiveThreatLevel(std::string_view tenant) const {
  if (tenant.empty() ||
      tenant_threat_entries_.load(std::memory_order_acquire) == 0) {
    return threat_level();
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenant_threat_.find(tenant);
  if (it != tenant_threat_.end() && it->second.level.has_value()) {
    return *it->second.level;
  }
  return threat_level_;
}

void SystemState::SetTenantThreatLevel(const std::string& tenant,
                                       ThreatLevel level) {
  if (tenant.empty()) {
    SetThreatLevel(level);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tenant_threat_.try_emplace(tenant);
  if (inserted) tenant_threat_entries_.fetch_add(1, std::memory_order_release);
  ThreatLevel prev_effective =
      it->second.level.has_value() ? *it->second.level : threat_level_;
  it->second.level = level;
  if (prev_effective != level) ++it->second.epoch;
}

void SystemState::ClearTenantThreatLevel(const std::string& tenant) {
  if (tenant.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenant_threat_.find(tenant);
  if (it == tenant_threat_.end() || !it->second.level.has_value()) return;
  // The entry stays (epoch included): erasing it would let the tenant's
  // fence value run backwards and revalidate stale memos.
  bool changed = *it->second.level != threat_level_;
  it->second.level.reset();
  if (changed) ++it->second.epoch;
}

std::uint64_t SystemState::TenantThreatEpoch(std::string_view tenant) const {
  if (tenant.empty() ||
      tenant_threat_entries_.load(std::memory_order_acquire) == 0) {
    return threat_epoch();
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t epoch = threat_epoch_.load(std::memory_order_acquire);
  auto it = tenant_threat_.find(tenant);
  if (it != tenant_threat_.end()) epoch += it->second.epoch;
  return epoch;
}

void SystemState::AddGroupMember(const std::string& group,
                                 const std::string& member) {
  std::lock_guard<std::mutex> lock(mu_);
  groups_[group].insert(member);
}

void SystemState::RemoveGroupMember(const std::string& group,
                                    const std::string& member) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(group);
  if (it != groups_.end()) it->second.erase(member);
}

bool SystemState::GroupContains(const std::string& group,
                                const std::string& member) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(group);
  return it != groups_.end() && it->second.count(member) > 0;
}

std::size_t SystemState::GroupSize(const std::string& group) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.size();
}

std::vector<std::string> SystemState::GroupMembers(
    const std::string& group) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(group);
  if (it == groups_.end()) return {};
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

std::size_t SystemState::RecordEvent(const std::string& key,
                                     util::DurationUs window_us) {
  util::TimePoint now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  auto& q = events_[key];
  q.push_back(now);
  while (!q.empty() && q.front() < now - window_us) q.pop_front();
  return q.size();
}

std::size_t SystemState::CountEvents(const std::string& key,
                                     util::DurationUs window_us) const {
  util::TimePoint now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = events_.find(key);
  if (it == events_.end()) return 0;
  std::size_t n = 0;
  for (util::TimePoint t : it->second) {
    if (t >= now - window_us) ++n;
  }
  return n;
}

void SystemState::SetVariable(const std::string& name,
                              const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  variables_[name] = value;
}

std::optional<std::string> SystemState::GetVariable(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = variables_.find(name);
  if (it == variables_.end()) return std::nullopt;
  return it->second;
}

double SystemState::system_load() const {
  std::lock_guard<std::mutex> lock(mu_);
  return system_load_;
}

void SystemState::SetSystemLoad(double load) {
  std::lock_guard<std::mutex> lock(mu_);
  system_load_ = load;
}

}  // namespace gaa::core
