#include "gaa/config.h"

#include "util/config.h"
#include "util/strings.h"

namespace gaa::core {

namespace {
using util::Error;
using util::ErrorCode;
}  // namespace

util::Result<GaaConfigFile> ParseGaaConfig(std::string_view text) {
  auto lines_or = util::ParseConfigText(text);
  if (!lines_or.ok()) return lines_or.error();

  GaaConfigFile out;
  for (const auto& line : lines_or.value()) {
    const auto& t = line.tokens;
    if (t.empty()) continue;

    if (t[0] == "condition") {
      if (t.size() < 4) {
        return Error(ErrorCode::kParseError,
                     "line " + std::to_string(line.line_number) +
                         ": condition needs <type> <def_auth> <routine>");
      }
      ConditionBinding binding;
      binding.cond_type = t[1];
      binding.def_auth = t[2];
      binding.routine = t[3];
      for (std::size_t i = 4; i < t.size(); ++i) {
        auto eq = t[i].find('=');
        if (eq == std::string::npos) {
          return Error(ErrorCode::kParseError,
                       "line " + std::to_string(line.line_number) +
                           ": expected key=value, got '" + t[i] + "'");
        }
        binding.params[t[i].substr(0, eq)] = t[i].substr(eq + 1);
      }
      out.bindings.push_back(std::move(binding));
      continue;
    }

    if (t[0] == "param") {
      if (t.size() < 3) {
        return Error(ErrorCode::kParseError,
                     "line " + std::to_string(line.line_number) +
                         ": param needs <key> <value>");
      }
      std::vector<std::string> rest(t.begin() + 2, t.end());
      out.params[t[1]] = util::Join(rest, " ");
      continue;
    }

    return Error(ErrorCode::kParseError,
                 "line " + std::to_string(line.line_number) +
                     ": unknown directive '" + t[0] + "'");
  }
  return out;
}

util::Result<GaaConfigFile> ParseGaaConfigFile(const std::string& path) {
  auto text = util::ReadFileToString(path);
  if (!text.ok()) return text.error();
  return ParseGaaConfig(text.value());
}

}  // namespace gaa::core
