// Request context and evaluation services passed to condition routines.
//
// The integration glue (paper §6, step 2b) extracts everything the condition
// routines may need from the application's request structure (Apache's
// request_rec in the paper; our http::RequestRec) and packages it here.
// Parameters are classified with a type and an authority "so that GAA-API
// routines that evaluate conditions with the same type and authority could
// find the relevant parameters".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"
#include "util/ip.h"

namespace gaa::telemetry {
class RequestTrace;
}  // namespace gaa::telemetry

namespace gaa::core {

/// A typed, authority-tagged parameter attached to a requested right.
struct Param {
  std::string type;       ///< e.g. "client_ip", "url", "cgi_input_length"
  std::string authority;  ///< namespace of the type, e.g. "local", "apache"
  std::string value;
};

/// Runtime statistics of the operation being executed; consumed by
/// mid-conditions (execution-control phase) and post-conditions.
struct OperationStats {
  double cpu_seconds = 0.0;          ///< CPU consumed by the operation so far
  util::DurationUs wall_us = 0;      ///< wall time elapsed
  std::uint64_t bytes_written = 0;   ///< response bytes produced
  std::uint64_t memory_bytes = 0;    ///< peak memory attributed to the op
  std::vector<std::string> files_created;  ///< suspicious-behaviour signal
  bool completed = false;
  bool succeeded = false;
};

/// Everything condition routines can see about one access request.
struct RequestContext {
  // --- identity -----------------------------------------------------------
  bool authenticated = false;
  std::string user;                    ///< empty when unauthenticated
  std::vector<std::string> groups;     ///< groups asserted by authentication

  // --- connection ---------------------------------------------------------
  util::Ipv4Address client_ip;
  std::uint16_t client_port = 0;

  // --- request ------------------------------------------------------------
  std::string application;  ///< defining authority of the right ("apache")
  std::string operation;    ///< requested right value ("GET", "POST", ...)
  std::string object;       ///< URL path of the protected object
  std::string query;        ///< raw query string (CGI input)
  std::string raw_url;      ///< undecoded request target (signature matching)

  /// Policy namespace resolved from the request's Host header (DESIGN.md
  /// §14).  "" is the default namespace — the single-tenant behaviour —
  /// so every pre-tenant caller keeps its exact semantics.
  std::string tenant;

  // --- extension parameters (paper §6 step 2b) ----------------------------
  std::vector<Param> params;

  // --- runtime (filled during/after execution) ----------------------------
  OperationStats stats;

  /// Set by the evaluation engine immediately before request-result
  /// conditions run, so `on:success` / `on:failure` triggers can tell
  /// whether the authorization request was granted.
  std::optional<bool> request_granted;

  /// Telemetry trace of the enclosing HTTP request (null when tracing is
  /// off).  Condition phases record spans through it; audit records use its
  /// id for correlation.
  telemetry::RequestTrace* trace = nullptr;

  /// First parameter matching type (+ authority unless "*").
  const Param* FindParam(std::string_view type,
                         std::string_view authority = "*") const;
  void AddParam(std::string type, std::string authority, std::string value);

  /// True if `name` is the user or one of the groups.
  bool InGroup(std::string_view name) const;
};

/// The requested right, paired with the context: §6 step 2b builds a "list
/// of requested rights" from the HTTP request.
struct RequestedRight {
  std::string def_auth;  ///< application namespace, e.g. "apache"
  std::string value;     ///< operation, e.g. "GET"
};

}  // namespace gaa::core
