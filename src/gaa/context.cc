#include "gaa/context.h"

namespace gaa::core {

const Param* RequestContext::FindParam(std::string_view type,
                                       std::string_view authority) const {
  for (const auto& p : params) {
    if (p.type == type && (authority == "*" || p.authority == authority)) {
      return &p;
    }
  }
  return nullptr;
}

void RequestContext::AddParam(std::string type, std::string authority,
                              std::string value) {
  params.push_back(Param{std::move(type), std::move(authority), std::move(value)});
}

bool RequestContext::InGroup(std::string_view name) const {
  if (!user.empty() && user == name) return true;
  for (const auto& g : groups) {
    if (g == name) return true;
  }
  return false;
}

}  // namespace gaa::core
