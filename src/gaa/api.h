// The GAA-API facade: initialization plus the three per-request phases
// (paper Figure 1 and §6).
//
//   init                gaa_initialize — parse the system/local configuration
//                       files, instantiate condition routines from the
//                       catalog and register them.
//   phase 2a            GetObjectPolicyInfo — retrieve the system-wide and
//                       local policies protecting an object, compose them
//                       (§2.1), optionally serving from the policy cache.
//   phase 2c            CheckAuthorization — ordered evaluation of pre- and
//                       request-result conditions; returns YES / NO / MAYBE
//                       plus the full evaluation trace and the conditions
//                       left unevaluated (drives 401 / redirect translation).
//   phase 3             ExecutionControl — evaluate mid-conditions against
//                       live operation statistics; NO aborts the operation.
//   phase 4             PostExecutionActions — evaluate post-conditions with
//                       the operation's success/failure status.
//
// Evaluation semantics (normative; see DESIGN.md §5):
//   * Entries are scanned first-to-last; only entries whose right covers the
//     requested right are considered.
//   * A pre-condition block is an ordered conjunction.  Evaluation stops at
//     the first failed condition (the entry then *does not apply* and the
//     scan continues); otherwise any unevaluated condition makes the block
//     MAYBE, else YES.
//   * Block YES ⇒ the entry decides: grant for a positive right, deny for a
//     negative right.  Block MAYBE ⇒ the policy's answer is MAYBE (the entry
//     might apply; later entries cannot soundly override it).
//   * Request-result conditions of the deciding entry are then evaluated
//     (each checks its own on:success / on:failure trigger) and their result
//     is conjoined into the authorization status.
//   * A policy none of whose entries applies is "not applicable"; sides
//     (system-wide vs local) conjoin their applicable policies, and the
//     composition mode combines the two sides (eacl::CombineDecisions).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "eacl/ast.h"
#include "eacl/compile.h"
#include "eacl/composition.h"
#include "gaa/cache.h"
#include "gaa/config.h"
#include "gaa/context.h"
#include "gaa/decision_cache.h"
#include "gaa/policy_store.h"
#include "gaa/registry.h"
#include "gaa/services.h"
#include "util/status.h"
#include "util/tristate.h"

namespace gaa::telemetry {
class Counter;
class Histogram;
}  // namespace gaa::telemetry

namespace gaa::core {

/// One condition's evaluation, in order, for audit and debugging.
struct CondTrace {
  eacl::Condition cond;
  EvalOutcome outcome;
  eacl::CondPhase phase = eacl::CondPhase::kPre;
};

/// Provenance of an authorization decision: the policy, entry index and
/// condition that produced the final YES / NO / MAYBE.  Best-effort when
/// several policies combine (the side that settled the composed answer
/// wins); always present when any entry applied.
struct DecisionAttribution {
  std::string policy;     ///< policy name ("system#0", "local:/cgi-bin", a path)
  int entry = -1;         ///< entry index within that policy
  std::string condition;  ///< deciding condition type ("" = the right itself)
  util::Tristate status = util::Tristate::kNo;
};

/// Answer from CheckAuthorization (paper §6: the authorization status).
struct AuthzResult {
  util::Tristate status = util::Tristate::kNo;

  /// Which EACL entry (and condition) decided — for the audit stream,
  /// per-entry metrics and /__status/policies.  Empty when no entry applied.
  std::optional<DecisionAttribution> attribution;

  /// Conditions evaluated, in evaluation order.
  std::vector<CondTrace> trace;

  /// Conditions left unevaluated (no routine registered, missing
  /// credentials, or deliberately application-interpreted such as
  /// pre_cond_redirect).  Non-empty exactly when some block went MAYBE via
  /// unevaluated conditions; the integration layer inspects this for the
  /// 401-vs-redirect translation.
  std::vector<eacl::Condition> unevaluated;

  /// Mid/post blocks of the granting entries, saved for phases 3 and 4.
  std::vector<eacl::Condition> mid_conditions;
  std::vector<eacl::Condition> post_conditions;

  /// True if any policy entry (on either side) covered the requested right.
  bool applicable = false;

  std::string detail;  ///< one-line summary for logs
};

/// Result of the execution-control or post-execution phase.
struct PhaseResult {
  util::Tristate status = util::Tristate::kYes;
  std::vector<CondTrace> trace;
};

/// Which evaluation pipeline Authorize uses (DESIGN.md §9).
enum class EngineMode {
  /// Walk the parsed EACL AST per request, resolving routines through the
  /// registry, with the §9 LRU policy cache in front (the pre-compiler
  /// pipeline; kept for differential testing and the A1 ablation).
  kInterpreted,
  /// Evaluate the compiled IR published by the PolicyStore snapshot —
  /// lock-free lookup, pre-resolved evaluators, decision memoization.
  /// Falls back to the interpreter when no snapshot is available
  /// (parse-on-retrieve mode, or the store is bound to another engine).
  kCompiled,
};

class GaaApi {
 public:
  /// `store` and the services outlive the API object.
  GaaApi(PolicyStore* store, EvalServices services);

  /// Initialization phase: instantiate and register condition routines
  /// named by the system-wide and local configuration files.  Local
  /// bindings override system bindings for the same (type, authority).
  util::VoidResult Initialize(const RoutineCatalog& catalog,
                              std::string_view system_config_text,
                              std::string_view local_config_text);

  /// Direct registration (tests / embedded use).
  ConditionRegistry& registry() { return registry_; }
  EvalServices& services() { return services_; }

  // --- phase 2a -----------------------------------------------------------
  eacl::ComposedPolicy GetObjectPolicyInfo(const std::string& object_path);

  /// Tenant-scoped retrieval: the tenant's namespace (globals + tenant
  /// layer) composed for `object_path`.  "" is the default namespace.
  eacl::ComposedPolicy GetObjectPolicyInfo(const std::string& object_path,
                                           std::string_view tenant);

  // --- phase 2c -----------------------------------------------------------
  AuthzResult CheckAuthorization(const eacl::ComposedPolicy& policy,
                                 const RequestedRight& right,
                                 RequestContext& ctx);

  /// Convenience: 2a + 2c in one call.
  AuthzResult Authorize(const std::string& object_path,
                        const RequestedRight& right, RequestContext& ctx);

  // --- phase 3 ------------------------------------------------------------
  /// May be called repeatedly while the operation runs; ctx.stats carries
  /// the live statistics.  status NO means "abort the operation now".
  PhaseResult ExecutionControl(const AuthzResult& authz, RequestContext& ctx);

  // --- phase 4 ------------------------------------------------------------
  PhaseResult PostExecutionActions(const AuthzResult& authz,
                                   RequestContext& ctx,
                                   bool operation_succeeded);

  // --- policy cache (paper §9 future work; ablation A1) --------------------
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }
  bool cache_enabled() const { return cache_enabled_; }
  const PolicyCache& cache() const { return cache_; }
  void ClearCache() { cache_.Clear(); }

  // --- compiled engine (DESIGN.md §9) --------------------------------------
  void set_engine_mode(EngineMode mode) { engine_mode_ = mode; }
  EngineMode engine_mode() const { return engine_mode_; }

  /// Decision memoization rides on the compiled engine; disabling it keeps
  /// snapshot evaluation but re-runs every condition per request.
  void set_decision_cache_enabled(bool enabled) {
    decision_cache_enabled_ = enabled;
  }
  bool decision_cache_enabled() const { return decision_cache_enabled_; }
  const DecisionCache& decision_cache() const { return decision_cache_; }
  void ClearDecisionCache() { decision_cache_.Clear(); }

  /// Admission probe for the transport's inline fast path: true when an
  /// *anonymous* request (no credentials, no groups) for `right` on
  /// `object_path` from `client_ip` would be answered from the decision
  /// memo — i.e. a pure terminal YES/NO is already cached against the
  /// current snapshot.  Side-effect free and lock-free; false on any doubt
  /// (stale snapshot, cache disabled, interpreter mode), in which case the
  /// caller takes the ordinary worker path.
  bool DecisionIsMemoized(const std::string& object_path,
                          const RequestedRight& right,
                          util::Ipv4Address client_ip) const {
    return DecisionIsMemoized(object_path, right, client_ip, {});
  }

  /// Tenant-scoped probe: checks the tenant's snapshot and the memo keyed
  /// under its namespace ("" = default, identical to the overload above).
  bool DecisionIsMemoized(const std::string& object_path,
                          const RequestedRight& right,
                          util::Ipv4Address client_ip,
                          std::string_view tenant) const;

 private:
  struct BlockResult {
    util::Tristate status = util::Tristate::kYes;
    std::vector<eacl::Condition> unevaluated;
    /// The condition that settled the block: the failing condition on NO,
    /// the first MAYBE contributor otherwise (empty when the block was an
    /// unconditional YES).
    std::string deciding_condition;
  };

  struct PolicyAnswer {
    util::Tristate status = util::Tristate::kNo;
    bool applicable = false;
    DecisionAttribution attribution;  ///< valid when `applicable`
  };

  /// Evaluate one condition through the registry (unregistered ⇒
  /// unevaluated ⇒ MAYBE), appending to the trace.  When metrics are
  /// attached, the evaluation is timed into the per-condition
  /// `gaa_cond_eval_us{cond,auth}` histogram.
  EvalOutcome EvalCondition(const eacl::Condition& cond,
                            eacl::CondPhase phase, RequestContext& ctx,
                            std::vector<CondTrace>* trace);

  /// Ordered conjunction of a block; stops at the first NO.
  BlockResult EvalBlock(const std::vector<eacl::Condition>& block,
                        eacl::CondPhase phase, RequestContext& ctx,
                        std::vector<CondTrace>* trace);

  PolicyAnswer EvalPolicy(const eacl::Eacl& policy,
                          const std::string& policy_name,
                          const RequestedRight& right, RequestContext& ctx,
                          AuthzResult* out);

  /// Memoizability of a compiled decision, joined across every condition
  /// evaluated on the way to it (DESIGN.md §12): kPure ⊔ kThreatFenced =
  /// kThreatFenced; anything ⊔ kUncacheable = kUncacheable.
  enum class MemoClass {
    kPure,          ///< admit with no fence
    kThreatFenced,  ///< admit pinned to the current threat epoch
    kUncacheable,   ///< a volatile/effect condition fired — never admit
  };

  static void JoinMemoClass(MemoClass* memo, CondPurity purity);

  // --- compiled-IR twins of the evaluators above ---------------------------
  // Same semantics, same trace/attribution output, but evaluators, metric
  // handles and purity classes come pre-resolved from the IR.  `memo`
  // starts kPure and is widened by every condition evaluated; the caller
  // memoizes the decision only if it ends at kPure or kThreatFenced.

  EvalOutcome EvalCompiledCond(const eacl::CompiledCond& cond,
                               RequestContext& ctx,
                               std::vector<CondTrace>* trace,
                               MemoClass* memo);

  BlockResult EvalCompiledBlock(const std::vector<eacl::CompiledCond>& block,
                                eacl::CondPhase phase, RequestContext& ctx,
                                std::vector<CondTrace>* trace,
                                MemoClass* memo);

  PolicyAnswer EvalCompiledPolicy(const eacl::CompiledPolicy& policy,
                                  const RequestedRight& right,
                                  RequestContext& ctx, AuthzResult* out,
                                  MemoClass* memo);

  /// Compiled twin of CheckAuthorization over a snapshot's per-path view.
  AuthzResult CheckAuthorizationCompiled(const eacl::CompiledComposition& view,
                                         const RequestedRight& right,
                                         RequestContext& ctx,
                                         MemoClass* memo);

  /// Memo key: every input a kPure condition may read — requested right,
  /// object path, request identity, client address — joined unambiguously.
  static std::string DecisionKey(const std::string& object_path,
                                 const RequestedRight& right,
                                 const RequestContext& ctx);

  /// Cached `eacl_entry_decisions_total{policy,entry,outcome}` handle;
  /// `outcome_idx`: 0 yes, 1 no, 2 maybe, 3 miss (pre-block failed, entry
  /// skipped).  Null when metrics are detached.
  telemetry::Counter* EntryCounter(const std::string& policy, int entry,
                                   int outcome_idx);
  /// Cached per-condition latency histogram.  Null when detached.
  telemetry::Histogram* CondHistogram(const eacl::Condition& cond);

  PolicyStore* store_;
  EvalServices services_;
  ConditionRegistry registry_;
  PolicyCache cache_;
  bool cache_enabled_ = false;
  EngineMode engine_mode_ = EngineMode::kCompiled;
  DecisionCache decision_cache_;
  bool decision_cache_enabled_ = true;

  /// Attribution-metric handle caches: registry lookups build a label
  /// string per call, so hot entries resolve through this mutex-guarded
  /// map instead (handles are stable for the registry's lifetime).
  std::mutex attr_mu_;
  std::unordered_map<std::string, telemetry::Counter*> entry_counters_;
  std::unordered_map<std::string, telemetry::Histogram*> cond_histograms_;
};

}  // namespace gaa::core
