#include "gaa/registry.h"

namespace gaa::core {

const char* ReportKindName(ReportKind kind) {
  switch (kind) {
    case ReportKind::kIllFormedRequest:
      return "ill_formed_request";
    case ReportKind::kAbnormalParameters:
      return "abnormal_parameters";
    case ReportKind::kSensitiveDenial:
      return "sensitive_denial";
    case ReportKind::kThresholdViolation:
      return "threshold_violation";
    case ReportKind::kDetectedAttack:
      return "detected_attack";
    case ReportKind::kSuspiciousBehavior:
      return "suspicious_behavior";
    case ReportKind::kLegitimatePattern:
      return "legitimate_pattern";
  }
  return "?";
}

void ConditionRegistry::Register(std::string type, std::string def_auth,
                                 CondRoutine routine) {
  routines_[{std::move(type), std::move(def_auth)}] = std::move(routine);
}

bool ConditionRegistry::Unregister(const std::string& type,
                                   const std::string& def_auth) {
  return routines_.erase({type, def_auth}) > 0;
}

const CondRoutine* ConditionRegistry::Find(std::string_view type,
                                           std::string_view def_auth) const {
  auto it = routines_.find({std::string(type), std::string(def_auth)});
  if (it != routines_.end()) return &it->second;
  it = routines_.find({std::string(type), "*"});
  if (it != routines_.end()) return &it->second;
  return nullptr;
}

void RoutineCatalog::Add(std::string name, Factory factory) {
  factories_[std::move(name)] = std::move(factory);
}

util::Result<CondRoutine> RoutineCatalog::Make(
    const std::string& name,
    const std::map<std::string, std::string>& params) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return util::Error(util::ErrorCode::kNotFound,
                       "no routine factory named '" + name + "'");
  }
  return it->second(params);
}

bool RoutineCatalog::Contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> RoutineCatalog::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, _] : factories_) names.push_back(name);
  return names;
}

}  // namespace gaa::core
