#include "gaa/registry.h"

namespace gaa::core {

const char* ReportKindName(ReportKind kind) {
  switch (kind) {
    case ReportKind::kIllFormedRequest:
      return "ill_formed_request";
    case ReportKind::kAbnormalParameters:
      return "abnormal_parameters";
    case ReportKind::kSensitiveDenial:
      return "sensitive_denial";
    case ReportKind::kThresholdViolation:
      return "threshold_violation";
    case ReportKind::kDetectedAttack:
      return "detected_attack";
    case ReportKind::kSuspiciousBehavior:
      return "suspicious_behavior";
    case ReportKind::kLegitimatePattern:
      return "legitimate_pattern";
  }
  return "?";
}

const char* CondPurityName(CondPurity purity) {
  switch (purity) {
    case CondPurity::kPure:
      return "pure";
    case CondPurity::kThreatFenced:
      return "threat-fenced";
    case CondPurity::kVolatile:
      return "volatile";
    case CondPurity::kEffect:
      return "effect";
  }
  return "?";
}

void ConditionRegistry::Register(std::string type, std::string def_auth,
                                 CondRoutine routine) {
  Register(std::move(type), std::move(def_auth), std::move(routine),
           CondTraits{}, nullptr);
}

void ConditionRegistry::Register(std::string type, std::string def_auth,
                                 CondRoutine routine, CondTraits traits,
                                 CondSpecializer specialize) {
  routines_[{std::move(type), std::move(def_auth)}] =
      CondRegistration{std::move(routine), traits, std::move(specialize)};
  change_version_.fetch_add(1, std::memory_order_acq_rel);
}

bool ConditionRegistry::Unregister(const std::string& type,
                                   const std::string& def_auth) {
  bool removed = routines_.erase({type, def_auth}) > 0;
  if (removed) change_version_.fetch_add(1, std::memory_order_acq_rel);
  return removed;
}

const CondRoutine* ConditionRegistry::Find(std::string_view type,
                                           std::string_view def_auth) const {
  const CondRegistration* reg = FindRegistration(type, def_auth);
  return reg == nullptr ? nullptr : &reg->routine;
}

const CondRegistration* ConditionRegistry::FindRegistration(
    std::string_view type, std::string_view def_auth) const {
  auto it = routines_.find({std::string(type), std::string(def_auth)});
  if (it != routines_.end()) return &it->second;
  it = routines_.find({std::string(type), "*"});
  if (it != routines_.end()) return &it->second;
  return nullptr;
}

void RoutineCatalog::Add(std::string name, Factory factory) {
  factories_[std::move(name)] =
      RoutineInfo{std::move(factory), nullptr, nullptr};
}

void RoutineCatalog::Add(std::string name, RoutineInfo info) {
  factories_[std::move(name)] = std::move(info);
}

util::Result<CondRoutine> RoutineCatalog::Make(
    const std::string& name,
    const std::map<std::string, std::string>& params) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return util::Error(util::ErrorCode::kNotFound,
                       "no routine factory named '" + name + "'");
  }
  return it->second.factory(params);
}

util::Result<RoutineCatalog::Instantiated> RoutineCatalog::Instantiate(
    const std::string& name, const std::string& def_auth,
    const std::map<std::string, std::string>& params) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return util::Error(util::ErrorCode::kNotFound,
                       "no routine factory named '" + name + "'");
  }
  const RoutineInfo& info = it->second;
  Instantiated out;
  out.routine = info.factory(params);
  out.traits = info.traits ? info.traits(def_auth) : CondTraits{};
  if (info.specialize) {
    out.specialize = [specialize = info.specialize,
                      params](const eacl::Condition& cond) {
      return specialize(cond, params);
    };
  }
  return out;
}

bool RoutineCatalog::Contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> RoutineCatalog::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, _] : factories_) names.push_back(name);
  return names;
}

}  // namespace gaa::core
