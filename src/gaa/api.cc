#include "gaa/api.h"

#include "eacl/printer.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/clock.h"
#include "util/log.h"

namespace gaa::core {

namespace {
const char* BlockSpanName(eacl::CondPhase phase) {
  switch (phase) {
    case eacl::CondPhase::kPre:
      return "gaa.cond.pre";
    case eacl::CondPhase::kRequestResult:
      return "gaa.cond.request_result";
    case eacl::CondPhase::kMid:
      return "gaa.cond.mid";
    case eacl::CondPhase::kPost:
      return "gaa.cond.post";
  }
  return "gaa.cond";
}

int OutcomeIndex(util::Tristate status) {
  return status == util::Tristate::kYes  ? 0
         : status == util::Tristate::kNo ? 1
                                         : 2;
}
}  // namespace

using util::Tristate;

GaaApi::GaaApi(PolicyStore* store, EvalServices services)
    : store_(store), services_(services) {
  cache_.AttachMetrics(services_.metrics);
  decision_cache_.AttachMetrics(services_.metrics);
  // Publish the first compiled snapshot; every later policy mutation
  // republishes under the store's lock.
  store_->BindEngine({&registry_, services_.metrics, services_.clock});
}

util::VoidResult GaaApi::Initialize(const RoutineCatalog& catalog,
                                    std::string_view system_config_text,
                                    std::string_view local_config_text) {
  auto system_cfg = ParseGaaConfig(system_config_text);
  if (!system_cfg.ok()) return system_cfg.error();
  auto local_cfg = ParseGaaConfig(local_config_text);
  if (!local_cfg.ok()) return local_cfg.error();

  // Global params: system first, local overrides.
  std::map<std::string, std::string> global_params = system_cfg.value().params;
  for (const auto& [k, v] : local_cfg.value().params) global_params[k] = v;

  auto install = [&](const GaaConfigFile& cfg) -> util::VoidResult {
    for (const auto& binding : cfg.bindings) {
      std::map<std::string, std::string> params = global_params;
      for (const auto& [k, v] : binding.params) params[k] = v;
      auto inst = catalog.Instantiate(binding.routine, binding.def_auth,
                                      params);
      if (!inst.ok()) return inst.error();
      RoutineCatalog::Instantiated taken = std::move(inst).take();
      registry_.Register(binding.cond_type, binding.def_auth,
                         std::move(taken.routine), taken.traits,
                         std::move(taken.specialize));
    }
    return util::VoidResult::Ok();
  };

  auto r = install(system_cfg.value());
  if (!r.ok()) return r;
  return install(local_cfg.value());
}

eacl::ComposedPolicy GaaApi::GetObjectPolicyInfo(
    const std::string& object_path) {
  return GetObjectPolicyInfo(object_path, {});
}

eacl::ComposedPolicy GaaApi::GetObjectPolicyInfo(const std::string& object_path,
                                                 std::string_view tenant) {
  if (cache_enabled_) {
    // The §9 policy cache is keyed per namespace: '\x1f' cannot occur in a
    // URL path, so tenant-qualified keys never collide with plain paths.
    std::string cache_key =
        tenant.empty() ? object_path
                       : std::string(tenant) + '\x1f' + object_path;
    std::uint64_t version = store_->version();
    if (auto cached = cache_.Get(cache_key, version)) {
      return *std::move(cached);
    }
    eacl::ComposedPolicy composed =
        store_->PoliciesForTenant(tenant, object_path);
    cache_.Put(cache_key, version, composed);
    return composed;
  }
  return store_->PoliciesForTenant(tenant, object_path);
}

telemetry::Counter* GaaApi::EntryCounter(const std::string& policy, int entry,
                                         int outcome_idx) {
  if (services_.metrics == nullptr) return nullptr;
  std::string key = policy + '#' + std::to_string(entry) + '#' +
                    eacl::EntryOutcomeName(outcome_idx);
  {
    std::lock_guard<std::mutex> lock(attr_mu_);
    auto it = entry_counters_.find(key);
    if (it != entry_counters_.end()) return it->second;
  }
  telemetry::Counter* counter = services_.metrics->GetCounter(
      "eacl_entry_decisions_total",
      "policy=\"" + policy + "\",entry=\"" + std::to_string(entry) +
          "\",outcome=\"" + eacl::EntryOutcomeName(outcome_idx) + "\"");
  std::lock_guard<std::mutex> lock(attr_mu_);
  entry_counters_.emplace(std::move(key), counter);
  return counter;
}

telemetry::Histogram* GaaApi::CondHistogram(const eacl::Condition& cond) {
  if (services_.metrics == nullptr) return nullptr;
  std::string key = cond.type + '/' + cond.def_auth;
  {
    std::lock_guard<std::mutex> lock(attr_mu_);
    auto it = cond_histograms_.find(key);
    if (it != cond_histograms_.end()) return it->second;
  }
  telemetry::Histogram* histogram = services_.metrics->GetHistogram(
      "gaa_cond_eval_us",
      "cond=\"" + cond.type + "\",auth=\"" + cond.def_auth + "\"",
      eacl::CondLatencyBoundsUs());
  std::lock_guard<std::mutex> lock(attr_mu_);
  cond_histograms_.emplace(std::move(key), histogram);
  return histogram;
}

EvalOutcome GaaApi::EvalCondition(const eacl::Condition& cond,
                                  eacl::CondPhase phase, RequestContext& ctx,
                                  std::vector<CondTrace>* trace) {
  telemetry::Histogram* latency = CondHistogram(cond);
  util::Stopwatch sw;
  EvalOutcome outcome;
  const CondRoutine* routine = registry_.Find(cond.type, cond.def_auth);
  if (routine == nullptr) {
    // Paper: "The GAA-API returns MAYBE if the corresponding condition
    // evaluation function is not registered with the API."
    outcome = EvalOutcome::Unevaluated("no routine registered for " +
                                       cond.type + "/" + cond.def_auth);
  } else {
    outcome = (*routine)(cond, ctx, services_);
  }
  if (latency != nullptr) {
    latency->Record(static_cast<std::uint64_t>(sw.ElapsedUs()));
  }
  if (trace != nullptr) trace->push_back(CondTrace{cond, outcome, phase});
  return outcome;
}

GaaApi::BlockResult GaaApi::EvalBlock(
    const std::vector<eacl::Condition>& block, eacl::CondPhase phase,
    RequestContext& ctx, std::vector<CondTrace>* trace) {
  BlockResult result;
  result.status = Tristate::kYes;
  telemetry::ScopedSpan span(block.empty() ? nullptr : ctx.trace,
                             BlockSpanName(phase));
  for (const auto& cond : block) {
    EvalOutcome outcome = EvalCondition(cond, phase, ctx, trace);
    if (outcome.status == Tristate::kNo) {
      result.status = Tristate::kNo;
      result.deciding_condition = cond.type;
      // Ordered conjunction: a failed condition settles the block; later
      // conditions (and their side effects) must not run.
      return result;
    }
    if (outcome.status == Tristate::kMaybe) {
      if (result.status != Tristate::kMaybe) {
        result.deciding_condition = cond.type;
      }
      result.status = Tristate::kMaybe;
      if (!outcome.evaluated) result.unevaluated.push_back(cond);
    }
  }
  return result;
}

GaaApi::PolicyAnswer GaaApi::EvalPolicy(const eacl::Eacl& policy,
                                        const std::string& policy_name,
                                        const RequestedRight& right,
                                        RequestContext& ctx,
                                        AuthzResult* out) {
  PolicyAnswer answer;
  for (std::size_t i = 0; i < policy.entries.size(); ++i) {
    const eacl::Entry& entry = policy.entries[i];
    const int entry_index = static_cast<int>(i);
    if (!entry.right.Covers(right.def_auth, right.value)) continue;

    BlockResult pre =
        EvalBlock(entry.pre, eacl::CondPhase::kPre, ctx, &out->trace);

    if (pre.status == Tristate::kNo) {
      // Entry does not apply; scan continues.  Counted as a "miss" so an
      // entry that never fires (a misconfigured signature, say) is visible
      // in /__status/policies.
      if (telemetry::Counter* c = EntryCounter(policy_name, entry_index, 3)) {
        c->Inc();
      }
      continue;
    }

    answer.applicable = true;
    answer.attribution.policy = policy_name;
    answer.attribution.entry = entry_index;
    answer.attribution.condition = pre.deciding_condition;

    if (pre.status == Tristate::kMaybe) {
      // The entry *might* apply; no later entry can soundly override it.
      answer.status = Tristate::kMaybe;
      answer.attribution.status = Tristate::kMaybe;
      out->unevaluated.insert(out->unevaluated.end(), pre.unevaluated.begin(),
                              pre.unevaluated.end());
      if (telemetry::Counter* c = EntryCounter(policy_name, entry_index, 2)) {
        c->Inc();
      }
      return answer;
    }

    // pre.status == YES: the entry decides.
    Tristate status =
        entry.right.positive ? Tristate::kYes : Tristate::kNo;

    if (!entry.request_result.empty()) {
      ctx.request_granted = (status == Tristate::kYes);
      BlockResult rr = EvalBlock(entry.request_result,
                                 eacl::CondPhase::kRequestResult, ctx,
                                 &out->trace);
      ctx.request_granted.reset();
      // "The conjunction of the intermediate result ... is stored in the
      // authorization status."
      status = util::And3(status, rr.status);
      if (rr.status != Tristate::kYes) {
        answer.attribution.condition = rr.deciding_condition;
      }
      if (rr.status == Tristate::kMaybe) {
        out->unevaluated.insert(out->unevaluated.end(), rr.unevaluated.begin(),
                                rr.unevaluated.end());
      }
    }

    if (entry.right.positive && status != Tristate::kNo) {
      out->mid_conditions.insert(out->mid_conditions.end(), entry.mid.begin(),
                                 entry.mid.end());
      out->post_conditions.insert(out->post_conditions.end(),
                                  entry.post.begin(), entry.post.end());
    }

    answer.status = status;
    answer.attribution.status = status;
    if (telemetry::Counter* c =
            EntryCounter(policy_name, entry_index, OutcomeIndex(status))) {
      c->Inc();
    }
    return answer;
  }
  // No entry applied.
  answer.applicable = false;
  answer.status = Tristate::kNo;
  return answer;
}

AuthzResult GaaApi::CheckAuthorization(const eacl::ComposedPolicy& policy,
                                       const RequestedRight& right,
                                       RequestContext& ctx) {
  AuthzResult out;
  telemetry::ScopedSpan span(ctx.trace, "gaa.check_authorization");

  auto eval_side = [&](const std::vector<eacl::Eacl>& policies, bool system,
                       bool* any, std::optional<DecisionAttribution>* attr) {
    // Several separately-specified policies on one side conjoin (§2.1).
    // The side's attribution follows the conjunction: the first applicable
    // policy seeds it, and any policy that downgrades the side's running
    // status (YES → MAYBE → NO) takes it over.
    Tristate side = Tristate::kYes;
    *any = false;
    for (std::size_t i = 0; i < policies.size(); ++i) {
      PolicyAnswer a = EvalPolicy(
          policies[i], system ? policy.SystemName(i) : policy.LocalName(i),
          right, ctx, &out);
      if (!a.applicable) continue;
      Tristate combined = util::And3(side, a.status);
      if (!*any || combined != side) *attr = a.attribution;
      *any = true;
      side = combined;
      if (side == Tristate::kNo) break;  // conjunction settled
    }
    return side;
  };

  bool have_system = false;
  bool have_local = false;
  std::optional<DecisionAttribution> system_attr;
  std::optional<DecisionAttribution> local_attr;
  Tristate system_status =
      eval_side(policy.system_policies, true, &have_system, &system_attr);
  Tristate local_status = Tristate::kNo;
  if (policy.mode != eacl::CompositionMode::kStop &&
      !(policy.mode == eacl::CompositionMode::kNarrow &&
        have_system && system_status == Tristate::kNo)) {
    // Under narrow, a definite system-side denial is final: skip the local
    // side entirely (its request-result actions must not fire for a request
    // the mandatory policy already rejected).
    local_status = eval_side(policy.local_policies, false, &have_local,
                             &local_attr);
  }

  out.applicable = have_system || have_local;
  out.status = eacl::CombineDecisions(policy.mode, system_status, have_system,
                                      local_status, have_local);
  // Best-effort provenance: prefer the side whose answer became the final
  // one (system wins ties — it is the higher-priority side).
  if (have_system && system_status == out.status) {
    out.attribution = std::move(system_attr);
  } else if (have_local && local_status == out.status) {
    out.attribution = std::move(local_attr);
  } else if (system_attr.has_value()) {
    out.attribution = std::move(system_attr);
  } else {
    out.attribution = std::move(local_attr);
  }
  out.detail = std::string("authz=") + util::TristateName(out.status) +
               " right=" + right.def_auth + ":" + right.value +
               " object=" + ctx.object;
  return out;
}

void GaaApi::JoinMemoClass(MemoClass* memo, CondPurity purity) {
  switch (purity) {
    case CondPurity::kPure:
      break;
    case CondPurity::kThreatFenced:
      if (*memo == MemoClass::kPure) *memo = MemoClass::kThreatFenced;
      break;
    case CondPurity::kVolatile:
    case CondPurity::kEffect:
      *memo = MemoClass::kUncacheable;
      break;
  }
}

EvalOutcome GaaApi::EvalCompiledCond(const eacl::CompiledCond& cond,
                                     RequestContext& ctx,
                                     std::vector<CondTrace>* trace,
                                     MemoClass* memo) {
  JoinMemoClass(memo, cond.purity);
  util::Stopwatch sw;
  EvalOutcome outcome = cond.fn(cond.source, ctx, services_);
  if (cond.latency != nullptr) {
    cond.latency->Record(static_cast<std::uint64_t>(sw.ElapsedUs()));
  }
  if (trace != nullptr) {
    trace->push_back(CondTrace{cond.source, outcome, cond.phase});
  }
  return outcome;
}

GaaApi::BlockResult GaaApi::EvalCompiledBlock(
    const std::vector<eacl::CompiledCond>& block, eacl::CondPhase phase,
    RequestContext& ctx, std::vector<CondTrace>* trace, MemoClass* memo) {
  BlockResult result;
  result.status = Tristate::kYes;
  telemetry::ScopedSpan span(block.empty() ? nullptr : ctx.trace,
                             BlockSpanName(phase));
  for (const auto& cond : block) {
    EvalOutcome outcome = EvalCompiledCond(cond, ctx, trace, memo);
    if (outcome.status == Tristate::kNo) {
      result.status = Tristate::kNo;
      result.deciding_condition = cond.source.type;
      return result;
    }
    if (outcome.status == Tristate::kMaybe) {
      if (result.status != Tristate::kMaybe) {
        result.deciding_condition = cond.source.type;
      }
      result.status = Tristate::kMaybe;
      if (!outcome.evaluated) result.unevaluated.push_back(cond.source);
    }
  }
  return result;
}

GaaApi::PolicyAnswer GaaApi::EvalCompiledPolicy(
    const eacl::CompiledPolicy& policy, const RequestedRight& right,
    RequestContext& ctx, AuthzResult* out, MemoClass* memo) {
  // Candidate selection through the per-right index: a concrete hit yields
  // the pre-computed covering list; otherwise only wildcard entries can
  // cover the right and the fallback scans just those.
  const std::vector<std::uint32_t>* indexed =
      policy.IndexedCover(right.def_auth, right.value);
  const std::vector<std::uint32_t>& candidates =
      indexed != nullptr ? *indexed : policy.unindexed_entries();

  PolicyAnswer answer;
  for (std::uint32_t idx : candidates) {
    const eacl::CompiledEntry& entry = policy.entries()[idx];
    if (indexed == nullptr &&
        !entry.right.Covers(right.def_auth, right.value)) {
      continue;
    }

    BlockResult pre =
        EvalCompiledBlock(entry.pre, eacl::CondPhase::kPre, ctx, &out->trace,
                          memo);

    if (pre.status == Tristate::kNo) {
      if (entry.outcomes[3] != nullptr) entry.outcomes[3]->Inc();
      continue;
    }

    answer.applicable = true;
    answer.attribution.policy = policy.name();
    answer.attribution.entry = entry.index;
    answer.attribution.condition = pre.deciding_condition;

    if (pre.status == Tristate::kMaybe) {
      answer.status = Tristate::kMaybe;
      answer.attribution.status = Tristate::kMaybe;
      out->unevaluated.insert(out->unevaluated.end(), pre.unevaluated.begin(),
                              pre.unevaluated.end());
      if (entry.outcomes[2] != nullptr) entry.outcomes[2]->Inc();
      return answer;
    }

    Tristate status = entry.right.positive ? Tristate::kYes : Tristate::kNo;

    if (!entry.request_result.empty()) {
      ctx.request_granted = (status == Tristate::kYes);
      BlockResult rr =
          EvalCompiledBlock(entry.request_result,
                            eacl::CondPhase::kRequestResult, ctx, &out->trace,
                            memo);
      ctx.request_granted.reset();
      status = util::And3(status, rr.status);
      if (rr.status != Tristate::kYes) {
        answer.attribution.condition = rr.deciding_condition;
      }
      if (rr.status == Tristate::kMaybe) {
        out->unevaluated.insert(out->unevaluated.end(), rr.unevaluated.begin(),
                                rr.unevaluated.end());
      }
    }

    if (entry.right.positive && status != Tristate::kNo) {
      out->mid_conditions.insert(out->mid_conditions.end(), entry.mid.begin(),
                                 entry.mid.end());
      out->post_conditions.insert(out->post_conditions.end(),
                                  entry.post.begin(), entry.post.end());
    }

    answer.status = status;
    answer.attribution.status = status;
    if (telemetry::Counter* c = entry.outcomes[OutcomeIndex(status)]) c->Inc();
    return answer;
  }
  answer.applicable = false;
  answer.status = Tristate::kNo;
  return answer;
}

AuthzResult GaaApi::CheckAuthorizationCompiled(
    const eacl::CompiledComposition& view, const RequestedRight& right,
    RequestContext& ctx, MemoClass* memo) {
  AuthzResult out;
  telemetry::ScopedSpan span(ctx.trace, "gaa.check_authorization");

  auto eval_side = [&](const std::vector<const eacl::CompiledPolicy*>& side_p,
                       bool* any, std::optional<DecisionAttribution>* attr) {
    Tristate side = Tristate::kYes;
    *any = false;
    for (const eacl::CompiledPolicy* p : side_p) {
      PolicyAnswer a = EvalCompiledPolicy(*p, right, ctx, &out, memo);
      if (!a.applicable) continue;
      Tristate combined = util::And3(side, a.status);
      if (!*any || combined != side) *attr = a.attribution;
      *any = true;
      side = combined;
      if (side == Tristate::kNo) break;  // conjunction settled
    }
    return side;
  };

  bool have_system = false;
  bool have_local = false;
  std::optional<DecisionAttribution> system_attr;
  std::optional<DecisionAttribution> local_attr;
  Tristate system_status = eval_side(view.system, &have_system, &system_attr);
  Tristate local_status = Tristate::kNo;
  if (view.mode != eacl::CompositionMode::kStop &&
      !(view.mode == eacl::CompositionMode::kNarrow && have_system &&
        system_status == Tristate::kNo)) {
    local_status = eval_side(view.local, &have_local, &local_attr);
  }

  out.applicable = have_system || have_local;
  out.status = eacl::CombineDecisions(view.mode, system_status, have_system,
                                      local_status, have_local);
  if (have_system && system_status == out.status) {
    out.attribution = std::move(system_attr);
  } else if (have_local && local_status == out.status) {
    out.attribution = std::move(local_attr);
  } else if (system_attr.has_value()) {
    out.attribution = std::move(system_attr);
  } else {
    out.attribution = std::move(local_attr);
  }
  out.detail = std::string("authz=") + util::TristateName(out.status) +
               " right=" + right.def_auth + ":" + right.value +
               " object=" + ctx.object;
  return out;
}

std::string GaaApi::DecisionKey(const std::string& object_path,
                                const RequestedRight& right,
                                const RequestContext& ctx) {
  // '\x1f' (unit separator) joins fields, '\x1e' joins list items — neither
  // occurs in HTTP tokens, so distinct inputs cannot collide into one key.
  std::string key;
  key.reserve(object_path.size() + ctx.object.size() + ctx.user.size() + 48);
  key.append(right.def_auth);
  key.push_back('\x1f');
  key.append(right.value);
  key.push_back('\x1f');
  key.append(object_path);
  key.push_back('\x1f');
  key.append(ctx.object);
  key.push_back('\x1f');
  key.push_back(ctx.authenticated ? '1' : '0');
  key.append(ctx.user);
  key.push_back('\x1f');
  for (const auto& g : ctx.groups) {
    key.append(g);
    key.push_back('\x1e');
  }
  key.push_back('\x1f');
  key.append(ctx.client_ip.ToString());
  // Namespace-qualify the memo: two tenants asking the identical question
  // must never share an answer (their policy layers differ), and keeping
  // the tenant in the key — instead of flushing on tenant switches — is
  // what lets one tenant's reload leave every other tenant's memos warm.
  key.push_back('\x1f');
  key.append(ctx.tenant);
  return key;
}

AuthzResult GaaApi::Authorize(const std::string& object_path,
                              const RequestedRight& right,
                              RequestContext& ctx) {
  if (engine_mode_ == EngineMode::kCompiled) {
    std::shared_ptr<const PolicySnapshot> snap = store_->FreshSnapshotFor(
        ctx.tenant, &registry_, registry_.change_version());
    if (snap != nullptr) {
      const bool memo_on =
          decision_cache_enabled_ && decision_cache_.capacity() > 0;
      // Read the threat epoch BEFORE evaluating: if the level transitions
      // mid-evaluation, the entry is stored against the older epoch and is
      // conservatively stale, never freshly wrong.  The fence is the
      // tenant-scoped epoch, so one tenant's threat transition leaves the
      // other namespaces' threat-fenced memos alive.
      const std::uint64_t epoch =
          services_.state != nullptr
              ? services_.state->TenantThreatEpoch(ctx.tenant)
              : 0;
      std::string key;
      if (memo_on) {
        key = DecisionKey(object_path, right, ctx);
        if (auto hit = decision_cache_.Get(key, snap->store_version(),
                                           epoch)) {
          // Keep per-entry attribution counters exact on the memo fast path.
          if (hit->entry_counter != nullptr) hit->entry_counter->Inc();
          return *hit->result;
        }
      }
      telemetry::ScopedSpan lookup_span(ctx.trace, "gaa.snapshot_lookup");
      eacl::CompiledComposition view = snap->ForPath(object_path);
      lookup_span.End();
      MemoClass memo = MemoClass::kPure;
      AuthzResult out = CheckAuthorizationCompiled(view, right, ctx, &memo);
      // Memoize only terminal answers proven repeatable: every evaluated
      // condition was kPure (or kThreatFenced, pinning the entry to the
      // threat epoch) and the result is not MAYBE (a MAYBE must be
      // re-derived so the 401/redirect translation sees fresh unevaluated
      // conditions and new credentials can flip it).
      if (memo_on && memo != MemoClass::kUncacheable &&
          out.status != Tristate::kMaybe) {
        telemetry::Counter* ec = nullptr;
        if (out.attribution.has_value()) {
          ec = EntryCounter(out.attribution->policy, out.attribution->entry,
                            OutcomeIndex(out.status));
        }
        decision_cache_.Put(std::move(key), snap->store_version(),
                            std::make_shared<AuthzResult>(out), ec, epoch,
                            memo == MemoClass::kThreatFenced);
      }
      return out;
    }
    // No snapshot (parse-on-retrieve ablation, or the store is bound to a
    // different engine): fall through to the interpreted pipeline.
  }
  telemetry::ScopedSpan compose_span(ctx.trace, "gaa.policy_compose");
  eacl::ComposedPolicy composed = GetObjectPolicyInfo(object_path, ctx.tenant);
  compose_span.End();
  return CheckAuthorization(composed, right, ctx);
}

bool GaaApi::DecisionIsMemoized(const std::string& object_path,
                                const RequestedRight& right,
                                util::Ipv4Address client_ip,
                                std::string_view tenant) const {
  if (engine_mode_ != EngineMode::kCompiled || !decision_cache_enabled_ ||
      decision_cache_.capacity() == 0) {
    return false;
  }
  std::shared_ptr<const PolicySnapshot> snap =
      store_->CurrentSnapshotFor(tenant);
  if (snap == nullptr || snap->compiled_for() != &registry_ ||
      snap->registry_version() != registry_.change_version()) {
    // A stale or foreign snapshot means Authorize would recompile (or fall
    // back to the interpreter); the probe must not promise a memo hit.
    return false;
  }
  // Mirror the context BuildContext would produce for an anonymous request:
  // DecisionKey reads only object, identity (absent here), client address
  // and tenant, so this key equals the one the full pipeline computes for a
  // credential-less request in the same namespace.
  RequestContext ctx;
  ctx.object = object_path;
  ctx.client_ip = client_ip;
  ctx.tenant = std::string(tenant);
  return decision_cache_.Peek(
      DecisionKey(object_path, right, ctx), snap->store_version(),
      services_.state != nullptr ? services_.state->TenantThreatEpoch(tenant)
                                 : 0);
}

PhaseResult GaaApi::ExecutionControl(const AuthzResult& authz,
                                     RequestContext& ctx) {
  PhaseResult result;
  // Paper §6 phase 3: no mid-conditions ⇒ YES.
  telemetry::ScopedSpan span(authz.mid_conditions.empty() ? nullptr : ctx.trace,
                             BlockSpanName(eacl::CondPhase::kMid));
  for (const auto& cond : authz.mid_conditions) {
    EvalOutcome outcome =
        EvalCondition(cond, eacl::CondPhase::kMid, ctx, &result.trace);
    result.status = util::And3(result.status, outcome.status);
    if (result.status == Tristate::kNo) break;
  }
  return result;
}

PhaseResult GaaApi::PostExecutionActions(const AuthzResult& authz,
                                         RequestContext& ctx,
                                         bool operation_succeeded) {
  PhaseResult result;
  ctx.stats.completed = true;
  ctx.stats.succeeded = operation_succeeded;
  // Paper §6 phase 4: no post-conditions ⇒ YES; otherwise evaluate all (they
  // are actions — each checks its own success/failure trigger).
  telemetry::ScopedSpan span(
      authz.post_conditions.empty() ? nullptr : ctx.trace,
      BlockSpanName(eacl::CondPhase::kPost));
  for (const auto& cond : authz.post_conditions) {
    EvalOutcome outcome =
        EvalCondition(cond, eacl::CondPhase::kPost, ctx, &result.trace);
    result.status = util::And3(result.status, outcome.status);
  }
  return result;
}

}  // namespace gaa::core
