#include "gaa/cache.h"

#include "telemetry/metrics.h"

namespace gaa::core {

std::optional<eacl::ComposedPolicy> PolicyCache::Get(
    const std::string& object_path, std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(object_path);
  if (it == slots_.end()) {
    ++misses_;
    if (miss_counter_ != nullptr) miss_counter_->Inc();
    return std::nullopt;
  }
  if (it->second.version != version) {
    lru_.erase(it->second.lru_it);
    slots_.erase(it);
    ++misses_;
    if (miss_counter_ != nullptr) miss_counter_->Inc();
    return std::nullopt;
  }
  TouchLocked(object_path, it->second);
  ++hits_;
  if (hit_counter_ != nullptr) hit_counter_->Inc();
  return it->second.policy;
}

void PolicyCache::Put(const std::string& object_path, std::uint64_t version,
                      eacl::ComposedPolicy policy) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(object_path);
  if (it != slots_.end()) {
    it->second.version = version;
    it->second.policy = std::move(policy);
    TouchLocked(object_path, it->second);
    return;
  }
  while (slots_.size() >= capacity_) {
    const std::string& victim = lru_.back();
    slots_.erase(victim);
    lru_.pop_back();
  }
  lru_.push_front(object_path);
  slots_[object_path] = Slot{version, std::move(policy), lru_.begin()};
}

void PolicyCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  lru_.clear();
}

std::size_t PolicyCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

void PolicyCache::AttachMetrics(telemetry::MetricRegistry* registry) {
  if (registry == nullptr) return;
  hit_counter_ = registry->GetCounter("gaa_policy_cache_hits_total");
  miss_counter_ = registry->GetCounter("gaa_policy_cache_misses_total");
}

void PolicyCache::TouchLocked(const std::string& key, Slot& slot) {
  lru_.erase(slot.lru_it);
  lru_.push_front(key);
  slot.lru_it = lru_.begin();
}

}  // namespace gaa::core
