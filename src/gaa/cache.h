// Policy cache (paper §9 future work: "To improve efficiency of the
// GAA-Apache integration we will add support for caching of the retrieved
// and translated policies for later reuse by subsequent requests").
//
// Bounded LRU keyed by object path.  Entries carry the PolicyStore version
// at fill time; a version mismatch (any policy change) invalidates on read,
// so responses to an attack — tightened policies, blacklist updates that
// rewrite policy files — take effect immediately.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "eacl/composition.h"

namespace gaa::telemetry {
class Counter;
class MetricRegistry;
}  // namespace gaa::telemetry

namespace gaa::core {

class PolicyCache {
 public:
  explicit PolicyCache(std::size_t capacity = 256) : capacity_(capacity) {}

  /// Look up the composed policy for `object_path` filled at store version
  /// `version`.  A hit at a stale version is treated as a miss (and evicted).
  std::optional<eacl::ComposedPolicy> Get(const std::string& object_path,
                                          std::uint64_t version);

  void Put(const std::string& object_path, std::uint64_t version,
           eacl::ComposedPolicy policy);

  void Clear();

  /// Mirror hit/miss accounting into gaa_policy_cache_{hits,misses}_total so
  /// /__status reports the interpreted engine's cache alongside the compiled
  /// engine's decision cache.  The local atomics stay authoritative for the
  /// accessors below (tests read them without a registry).
  void AttachMetrics(telemetry::MetricRegistry* registry);

  std::size_t size() const;
  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }

 private:
  struct Slot {
    std::uint64_t version;
    eacl::ComposedPolicy policy;
    std::list<std::string>::iterator lru_it;
  };

  void TouchLocked(const std::string& key, Slot& slot);

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::map<std::string, Slot> slots_;
  std::list<std::string> lru_;  // front = most recent
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  telemetry::Counter* hit_counter_ = nullptr;
  telemetry::Counter* miss_counter_ = nullptr;
};

}  // namespace gaa::core
