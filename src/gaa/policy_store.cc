#include "gaa/policy_store.h"

#include "eacl/parser.h"
#include "eacl/validate.h"
#include "eacl/printer.h"
#include "telemetry/metrics.h"
#include "util/clock.h"
#include "util/config.h"

namespace gaa::core {

util::VoidResult PolicyStore::AddSystemPolicy(const std::string& eacl_text) {
  return AddSystemPolicyNamed(eacl_text, "");
}

util::VoidResult PolicyStore::AddSystemPolicyNamed(const std::string& eacl_text,
                                                   const std::string& name) {
  auto parsed = eacl::ParseEacl(eacl_text);
  if (!parsed.ok()) return parsed.error();
  auto valid = eacl::Validate(parsed.value());
  if (!valid.ok()) return valid.error();
  std::lock_guard<std::mutex> lock(mu_);
  system_policies_.push_back(std::move(parsed).take());
  system_texts_.push_back(eacl_text);
  system_names_.push_back(
      name.empty() ? "system#" + std::to_string(system_policies_.size() - 1)
                   : name);
  version_.fetch_add(1);
  default_version_.fetch_add(1, std::memory_order_release);
  RepublishAllLocked();
  return util::VoidResult::Ok();
}

util::VoidResult PolicyStore::AddSystemPolicyFile(const std::string& path) {
  auto text = util::ReadFileToString(path);
  if (!text.ok()) return text.error();
  return AddSystemPolicyNamed(text.value(), path);
}

util::VoidResult PolicyStore::SetLocalPolicyFile(const std::string& dir_prefix,
                                                 const std::string& path) {
  auto text = util::ReadFileToString(path);
  if (!text.ok()) return text.error();
  return SetLocalPolicy(dir_prefix, text.value());
}

util::VoidResult PolicyStore::SetLocalPolicy(const std::string& dir_prefix,
                                             const std::string& eacl_text) {
  auto parsed = eacl::ParseEacl(eacl_text);
  if (!parsed.ok()) return parsed.error();
  auto valid = eacl::Validate(parsed.value());
  if (!valid.ok()) return valid.error();
  std::string key = dir_prefix.empty() ? "/" : dir_prefix;
  std::lock_guard<std::mutex> lock(mu_);
  local_policies_[key] = std::move(parsed).take();
  local_texts_[key] = eacl_text;
  version_.fetch_add(1);
  default_version_.fetch_add(1, std::memory_order_release);
  RepublishAllLocked();
  return util::VoidResult::Ok();
}

bool PolicyStore::RemoveLocalPolicy(const std::string& dir_prefix) {
  std::string key = dir_prefix.empty() ? "/" : dir_prefix;
  std::lock_guard<std::mutex> lock(mu_);
  bool removed = local_policies_.erase(key) > 0;
  removed = local_texts_.erase(key) > 0 || removed;
  // Republish even when nothing was erased: the bump + rebuild must track
  // *any* divergence between the source maps and the published snapshot
  // (the text and parsed maps are erased separately above, so gating the
  // rebuild on just one of them is exactly the staleness bug this funnels
  // away from).
  version_.fetch_add(1);
  default_version_.fetch_add(1, std::memory_order_release);
  RepublishAllLocked();
  return removed;
}

void PolicyStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  system_policies_.clear();
  system_texts_.clear();
  system_names_.clear();
  local_policies_.clear();
  local_texts_.clear();
  tenants_.clear();
  version_.fetch_add(1);
  default_version_.fetch_add(1, std::memory_order_release);
  tenant_version_.fetch_add(1, std::memory_order_release);
  RepublishAllLocked();
}

std::vector<std::string> PolicyStore::DirectoryChain(
    const std::string& object_path) {
  std::vector<std::string> chain;
  chain.push_back("/");
  if (object_path.empty() || object_path[0] != '/') return chain;
  std::size_t pos = 1;
  while (pos < object_path.size()) {
    std::size_t slash = object_path.find('/', pos);
    if (slash == std::string::npos) break;  // final component is the object
    chain.push_back(object_path.substr(0, slash));
    pos = slash + 1;
  }
  return chain;
}

eacl::ComposedPolicy PolicyStore::PoliciesFor(
    const std::string& object_path) const {
  std::vector<eacl::Eacl> system_list;
  std::vector<eacl::Eacl> local_list;
  std::vector<std::string> system_names;
  std::vector<std::string> local_names;
  if (parse_on_retrieve_.load()) {
    // Paper-faithful mode: read and translate the policy text per request
    // (gaa_get_object_policy_info "reads the system-wide policy file,
    // converts it to the internal EACL representation...").
    std::vector<std::string> system_texts;
    std::vector<std::string> local_texts;
    {
      std::lock_guard<std::mutex> lock(mu_);
      system_texts = system_texts_;
      system_names = system_names_;
      for (const auto& dir : DirectoryChain(object_path)) {
        auto it = local_texts_.find(dir);
        if (it != local_texts_.end()) {
          local_texts.push_back(it->second);
          local_names.push_back("local:" + it->first);
        }
      }
    }
    for (const auto& text : system_texts) {
      auto parsed = eacl::ParseEacl(text);
      if (parsed.ok()) system_list.push_back(std::move(parsed).take());
    }
    for (const auto& text : local_texts) {
      auto parsed = eacl::ParseEacl(text);
      if (parsed.ok()) local_list.push_back(std::move(parsed).take());
    }
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    system_list = system_policies_;
    system_names = system_names_;
    for (const auto& dir : DirectoryChain(object_path)) {
      auto it = local_policies_.find(dir);
      if (it != local_policies_.end()) {
        local_list.push_back(it->second);
        local_names.push_back("local:" + it->first);
      }
    }
  }
  return eacl::Compose(std::move(system_list), std::move(local_list),
                       std::move(system_names), std::move(local_names));
}

// --- tenant namespaces (DESIGN.md §14) --------------------------------------

util::VoidResult PolicyStore::AddTenant(const std::string& tenant) {
  if (tenant.empty()) {
    return util::VoidResult(util::ErrorCode::kInvalidArgument,
                            "tenant name must be non-empty (\"\" is the "
                            "default namespace)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (!inserted) return util::VoidResult::Ok();  // idempotent
  version_.fetch_add(1);
  tenant_version_.fetch_add(1, std::memory_order_release);
  RepublishTenantLocked(tenant);
  return util::VoidResult::Ok();
}

bool PolicyStore::RemoveTenant(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tenants_.erase(tenant) == 0) return false;
  version_.fetch_add(1);
  tenant_version_.fetch_add(1, std::memory_order_release);
  SwapTenantTableLocked(tenant, nullptr);
  return true;
}

bool PolicyStore::HasTenant(std::string_view tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.find(tenant) != tenants_.end();
}

std::vector<std::string> PolicyStore::TenantNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, sources] : tenants_) names.push_back(name);
  return names;
}

std::size_t PolicyStore::tenant_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

util::VoidResult PolicyStore::AddTenantSystemPolicy(const std::string& tenant,
                                                    const std::string& eacl_text,
                                                    const std::string& name) {
  if (tenant.empty()) return AddSystemPolicyNamed(eacl_text, name);
  auto parsed = eacl::ParseEacl(eacl_text);
  if (!parsed.ok()) return parsed.error();
  auto valid = eacl::Validate(parsed.value());
  if (!valid.ok()) return valid.error();
  std::lock_guard<std::mutex> lock(mu_);
  TenantSources& src = tenants_[tenant];
  src.system_policies.push_back(std::move(parsed).take());
  src.system_texts.push_back(eacl_text);
  // Positional default names deliberately restart per tenant: two tenants
  // installing the same boilerplate text get the same (structure, name)
  // pair and intern to ONE compiled object in the IrStore.
  src.system_names.push_back(
      name.empty() ? "system#" + std::to_string(src.system_policies.size() - 1)
                   : name);
  version_.fetch_add(1);
  tenant_version_.fetch_add(1, std::memory_order_release);
  RepublishTenantLocked(tenant);
  return util::VoidResult::Ok();
}

util::VoidResult PolicyStore::SetTenantLocalPolicy(const std::string& tenant,
                                                   const std::string& dir_prefix,
                                                   const std::string& eacl_text) {
  if (tenant.empty()) return SetLocalPolicy(dir_prefix, eacl_text);
  auto parsed = eacl::ParseEacl(eacl_text);
  if (!parsed.ok()) return parsed.error();
  auto valid = eacl::Validate(parsed.value());
  if (!valid.ok()) return valid.error();
  std::string key = dir_prefix.empty() ? "/" : dir_prefix;
  std::lock_guard<std::mutex> lock(mu_);
  TenantSources& src = tenants_[tenant];
  src.local_policies[key] = std::move(parsed).take();
  src.local_texts[key] = eacl_text;
  version_.fetch_add(1);
  tenant_version_.fetch_add(1, std::memory_order_release);
  RepublishTenantLocked(tenant);
  return util::VoidResult::Ok();
}

bool PolicyStore::RemoveTenantLocalPolicy(const std::string& tenant,
                                          const std::string& dir_prefix) {
  if (tenant.empty()) return RemoveLocalPolicy(dir_prefix);
  std::string key = dir_prefix.empty() ? "/" : dir_prefix;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return false;
  bool removed = it->second.local_policies.erase(key) > 0;
  removed = it->second.local_texts.erase(key) > 0 || removed;
  // Same unconditional-republish funnel as the global mutators.
  version_.fetch_add(1);
  tenant_version_.fetch_add(1, std::memory_order_release);
  RepublishTenantLocked(tenant);
  return removed;
}

std::vector<PolicyStore::TenantInfo> PolicyStore::TenantInfos() const {
  std::shared_ptr<const TenantTable> table =
      tenant_table_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantInfo> out;
  out.reserve(tenants_.size());
  for (const auto& [name, src] : tenants_) {
    TenantInfo info;
    info.name = name;
    info.system_policies = src.system_policies.size();
    info.local_policies = src.local_policies.size();
    if (table != nullptr) {
      auto it = table->snapshots.find(name);
      if (it != table->snapshots.end()) {
        info.snapshot_version = it->second->store_version();
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

eacl::ComposedPolicy PolicyStore::PoliciesForTenant(
    std::string_view tenant, const std::string& object_path) const {
  if (tenant.empty()) return PoliciesFor(object_path);
  std::vector<eacl::Eacl> system_list;
  std::vector<eacl::Eacl> local_list;
  std::vector<std::string> system_names;
  std::vector<std::string> local_names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      // Unknown tenant: fall back to the default namespace (under the lock
      // we cannot call PoliciesFor, so duplicate its parsed-mode gather).
    }
    const TenantSources* src = it == tenants_.end() ? nullptr : &it->second;
    system_list = system_policies_;
    system_names = system_names_;
    if (src != nullptr) {
      for (std::size_t i = 0; i < src->system_policies.size(); ++i) {
        system_list.push_back(src->system_policies[i]);
        system_names.push_back(src->system_names[i]);
      }
    }
    for (const auto& dir : DirectoryChain(object_path)) {
      // Tenant local shadows the global local at the same prefix.
      if (src != nullptr) {
        auto tl = src->local_policies.find(dir);
        if (tl != src->local_policies.end()) {
          local_list.push_back(tl->second);
          local_names.push_back("local:" + tl->first);
          continue;
        }
      }
      auto gl = local_policies_.find(dir);
      if (gl != local_policies_.end()) {
        local_list.push_back(gl->second);
        local_names.push_back("local:" + gl->first);
      }
    }
  }
  return eacl::Compose(std::move(system_list), std::move(local_list),
                       std::move(system_names), std::move(local_names));
}

eacl::CompiledComposition PolicySnapshot::ForPath(
    const std::string& object_path) const {
  eacl::CompiledComposition out;
  out.mode = mode_;
  out.system.reserve(system_.size());
  for (const auto& p : system_) out.system.push_back(p.get());
  if (mode_ != eacl::CompositionMode::kStop) {
    for (const auto& dir : PolicyStore::DirectoryChain(object_path)) {
      auto it = locals_.find(dir);
      if (it != locals_.end()) out.local.push_back(it->second.get());
    }
  }
  return out;
}

void PolicyStore::BindEngine(EngineBinding binding) {
  std::lock_guard<std::mutex> lock(mu_);
  binding_ = binding;
  ir_store_.AttachMetrics(binding.metrics);
  RepublishAllLocked();
}

std::shared_ptr<const PolicySnapshot> PolicyStore::FreshSnapshot(
    const ConditionRegistry* registry, std::uint64_t registry_version) {
  if (parse_on_retrieve_.load(std::memory_order_relaxed)) return nullptr;
  std::shared_ptr<const PolicySnapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  if (snap != nullptr && snap->compiled_for() == registry &&
      snap->registry_version() == registry_version &&
      snap->source_version() ==
          default_version_.load(std::memory_order_acquire)) {
    // Hot path: one atomic shared_ptr load plus one counter compare.  The
    // source_version check is the staleness regression guard: a snapshot
    // that lags its sources (a mutator that forgot to republish) is
    // recompiled here instead of being served forever.
    return snap;
  }
  // Cold path: routines were (un)registered since the last compile, the
  // snapshot lags the sources, or another GaaApi rebound the store.
  // Recompile under the mutex.
  std::lock_guard<std::mutex> lock(mu_);
  if (binding_.registry != registry) {
    // Engine bound elsewhere (e.g. two APIs sharing one store): serving a
    // snapshot compiled against a different registry would evaluate the
    // wrong routines.  Fall back to the interpreter.
    return nullptr;
  }
  snap = snapshot_.load(std::memory_order_acquire);
  if (snap == nullptr ||
      snap->registry_version() != binding_.registry->change_version() ||
      snap->source_version() !=
          default_version_.load(std::memory_order_acquire)) {
    RepublishAllLocked();
    snap = snapshot_.load(std::memory_order_acquire);
  }
  return snap;
}

std::shared_ptr<const PolicySnapshot> PolicyStore::CurrentSnapshotFor(
    std::string_view tenant) const {
  if (!tenant.empty()) {
    std::shared_ptr<const TenantTable> table =
        tenant_table_.load(std::memory_order_acquire);
    if (table != nullptr) {
      auto it = table->snapshots.find(tenant);
      if (it != table->snapshots.end()) return it->second;
    }
  }
  return CurrentSnapshot();
}

std::shared_ptr<const PolicySnapshot> PolicyStore::FreshSnapshotFor(
    std::string_view tenant, const ConditionRegistry* registry,
    std::uint64_t registry_version) {
  if (tenant.empty()) return FreshSnapshot(registry, registry_version);
  if (parse_on_retrieve_.load(std::memory_order_relaxed)) return nullptr;
  std::shared_ptr<const TenantTable> table =
      tenant_table_.load(std::memory_order_acquire);
  if (table != nullptr &&
      table->source_version ==
          tenant_version_.load(std::memory_order_acquire)) {
    auto it = table->snapshots.find(tenant);
    if (it == table->snapshots.end()) {
      // Unknown tenant: governed by the default namespace.
      return FreshSnapshot(registry, registry_version);
    }
    const auto& snap = it->second;
    if (snap->compiled_for() == registry &&
        snap->registry_version() == registry_version) {
      return snap;  // hot path: two atomic loads, no lock
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (binding_.registry != registry) return nullptr;
  table = tenant_table_.load(std::memory_order_acquire);
  bool stale =
      table == nullptr ||
      table->source_version != tenant_version_.load(std::memory_order_acquire);
  if (!stale) {
    auto it = table->snapshots.find(tenant);
    stale = it != table->snapshots.end() &&
            it->second->registry_version() != binding_.registry->change_version();
  }
  if (stale) {
    RepublishAllLocked();
    table = tenant_table_.load(std::memory_order_acquire);
  }
  if (table != nullptr) {
    auto it = table->snapshots.find(tenant);
    if (it != table->snapshots.end()) return it->second;
  }
  return FreshSnapshot(registry, registry_version);
}

std::uint64_t PolicyStore::CompileEnvKeyLocked() const {
  std::uint64_t key = binding_.registry->change_version();
  key = key * 0x9E3779B97F4A7C15ULL ^
        static_cast<std::uint64_t>(
            reinterpret_cast<std::uintptr_t>(binding_.registry));
  key ^= static_cast<std::uint64_t>(
             reinterpret_cast<std::uintptr_t>(binding_.metrics)) << 1;
  return key;
}

std::shared_ptr<const PolicySnapshot> PolicyStore::BuildSnapshotLocked(
    const std::string& tenant_name, const TenantSources* tenant) {
  auto snap = std::make_shared<PolicySnapshot>();
  snap->store_version_ = version_.load();
  snap->registry_version_ = binding_.registry->change_version();
  snap->source_version_ =
      tenant == nullptr ? default_version_.load(std::memory_order_acquire)
                        : tenant_version_.load(std::memory_order_acquire);
  snap->compiled_for_ = binding_.registry;
  snap->tenant_ = tenant_name;

  eacl::CompileEnv env{binding_.registry, binding_.metrics};
  const std::uint64_t env_key = CompileEnvKeyLocked();
  auto intern = [&](const eacl::Eacl& policy, const std::string& name) {
    return ir_store_.Intern(policy, name, env, env_key);
  };

  // Effective composition mode mirrors eacl::Compose: the first system
  // policy declaring one wins; default narrow.  Tenant system policies
  // evaluate after the globals, so globals also win the mode.
  snap->mode_ = eacl::CompositionMode::kNarrow;
  bool mode_set = false;
  snap->system_.reserve(system_policies_.size() +
                        (tenant != nullptr ? tenant->system_policies.size()
                                           : 0));
  for (std::size_t i = 0; i < system_policies_.size(); ++i) {
    if (!mode_set && system_policies_[i].mode.has_value()) {
      snap->mode_ = *system_policies_[i].mode;
      mode_set = true;
    }
    snap->system_.push_back(intern(system_policies_[i], system_names_[i]));
  }
  for (const auto& [prefix, policy] : local_policies_) {
    snap->locals_[prefix] = intern(policy, "local:" + prefix);
  }
  if (tenant != nullptr) {
    for (std::size_t i = 0; i < tenant->system_policies.size(); ++i) {
      if (!mode_set && tenant->system_policies[i].mode.has_value()) {
        snap->mode_ = *tenant->system_policies[i].mode;
        mode_set = true;
      }
      snap->system_.push_back(
          intern(tenant->system_policies[i], tenant->system_names[i]));
    }
    // Overlay: a tenant local replaces the global local at its prefix.
    for (const auto& [prefix, policy] : tenant->local_policies) {
      snap->locals_[prefix] = intern(policy, "local:" + prefix);
    }
  }
  return snap;
}

void PolicyStore::SwapTenantTableLocked(
    const std::string& tenant, std::shared_ptr<const PolicySnapshot> snap) {
  auto table = std::make_shared<TenantTable>();
  std::shared_ptr<const TenantTable> prev =
      tenant_table_.load(std::memory_order_acquire);
  if (prev != nullptr) table->snapshots = prev->snapshots;
  auto it = table->snapshots.find(tenant);
  if (it != table->snapshots.end()) {
    retired_.push_back(it->second);
    table->snapshots.erase(it);
  }
  if (snap != nullptr) table->snapshots[tenant] = std::move(snap);
  table->source_version = tenant_version_.load(std::memory_order_acquire);
  tenant_table_.store(std::shared_ptr<const TenantTable>(std::move(table)),
                      std::memory_order_release);
  ReclaimRetiredLocked();
}

void PolicyStore::RepublishTenantLocked(const std::string& tenant) {
  if (binding_.registry == nullptr) return;
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    SwapTenantTableLocked(tenant, nullptr);
    return;
  }
  util::Stopwatch sw;
  std::shared_ptr<const PolicySnapshot> snap =
      BuildSnapshotLocked(tenant, &it->second);
  if (binding_.metrics != nullptr) {
    binding_.metrics->GetHistogram("gaa_policy_compile_us")
        ->Record(static_cast<std::uint64_t>(sw.ElapsedUs()));
  }
  SwapTenantTableLocked(tenant, std::move(snap));
}

void PolicyStore::RepublishAllLocked() {
  if (binding_.registry == nullptr) return;
  util::Stopwatch sw;
  std::shared_ptr<const PolicySnapshot> snap = BuildSnapshotLocked("", nullptr);

  // Rebuild every tenant against the new global layer and publish the
  // whole table as one object.  Shared fragments intern to the objects the
  // default snapshot just created, so this is N pointer-sharing passes,
  // not N compiles.
  auto table = std::make_shared<TenantTable>();
  for (const auto& [name, sources] : tenants_) {
    table->snapshots[name] = BuildSnapshotLocked(name, &sources);
  }
  table->source_version = tenant_version_.load(std::memory_order_acquire);

  if (binding_.metrics != nullptr) {
    binding_.metrics->GetHistogram("gaa_policy_compile_us")
        ->Record(static_cast<std::uint64_t>(sw.ElapsedUs()));
    binding_.metrics->GetGauge("gaa_policy_snapshot_version")
        ->Set(static_cast<std::int64_t>(snap->store_version_));
    binding_.metrics->GetGauge("gaa_policy_snapshot_built_us")
        ->Set(static_cast<std::int64_t>(sw.ElapsedUs()));
    binding_.metrics->GetGauge("gaa_tenant_count")
        ->Set(static_cast<std::int64_t>(tenants_.size()));
  }

  // Publish, retire the predecessors, reclaim quiescent retirees.  Readers
  // that loaded an old snapshot before the swap hold their own reference;
  // it is freed once the last of them releases it.
  std::shared_ptr<const PolicySnapshot> prev = snapshot_.exchange(
      std::shared_ptr<const PolicySnapshot>(snap), std::memory_order_acq_rel);
  if (prev != nullptr) retired_.push_back(std::move(prev));
  std::shared_ptr<const TenantTable> prev_table = tenant_table_.exchange(
      std::shared_ptr<const TenantTable>(std::move(table)),
      std::memory_order_acq_rel);
  if (prev_table != nullptr) {
    for (const auto& [name, old_snap] : prev_table->snapshots) {
      retired_.push_back(old_snap);
    }
  }
  ReclaimRetiredLocked();
}

void PolicyStore::ReclaimRetiredLocked() {
  if (retired_.size() > retired_floor_) {
    std::vector<std::shared_ptr<const PolicySnapshot>> kept;
    kept.reserve(retired_.size());
    for (std::size_t i = 0; i < retired_.size(); ++i) {
      // Entries within the floor window (newest last) are kept regardless.
      bool in_floor = i + retired_floor_ >= retired_.size();
      // use_count()==1 means only retired_ itself holds the snapshot.  It
      // left publication before entering this list (under this mutex), so
      // no reader can acquire a new reference — the count only decreases
      // and 1 is a stable "quiescent" reading.
      if (in_floor || retired_[i].use_count() > 1) {
        kept.push_back(std::move(retired_[i]));
      }
    }
    retired_.swap(kept);
  }
  if (binding_.metrics != nullptr) {
    binding_.metrics->GetGauge("gaa_policy_snapshots_retired")
        ->Set(static_cast<std::int64_t>(retired_.size()));
  }
}

std::size_t PolicyStore::retired_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_.size();
}

void PolicyStore::set_retired_floor(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  retired_floor_ = n;
  ReclaimRetiredLocked();
}

std::size_t PolicyStore::retired_floor() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_floor_;
}

std::string PolicyStore::ExportSystemPolicies() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (std::size_t i = 0; i < system_policies_.size(); ++i) {
    if (i > 0) out += "\n";
    out += eacl::PrintEacl(system_policies_[i]);
  }
  return out;
}

std::optional<std::string> PolicyStore::ExportLocalPolicy(
    const std::string& dir_prefix) const {
  std::string key = dir_prefix.empty() ? "/" : dir_prefix;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = local_policies_.find(key);
  if (it == local_policies_.end()) return std::nullopt;
  return eacl::PrintEacl(it->second);
}

std::size_t PolicyStore::system_policy_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return system_policies_.size();
}

std::size_t PolicyStore::local_policy_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return local_policies_.size();
}

}  // namespace gaa::core
